#!/usr/bin/env python3
"""The artifact's experiment workflow, end to end.

Mirrors appendix A.5 of the paper: generate the input graphs, run each
"executable" (connected components, approximate cut, exact cut) over a
sweep of processor counts and seeds, collect the Listing-1-style CSV
records, and aggregate them with the medians-and-CI methodology of §5 —
all through the public API and the CLI module.

Run:  python examples/artifact_workflow.py
"""

import tempfile
from pathlib import Path

from repro.cli import main as cli
from repro.core import connected_components, minimum_cut
from repro.graph import read_edgelist
from repro.harness import format_table, measure


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro_artifact_"))
    inputs = workdir / "inputs"
    inputs.mkdir()

    # 1. Input generation (the artifact's input_generators/ stage).
    graphs = {}
    for family, n, degree in (("er", 512, 8), ("ws", 512, 8), ("rmat", 512, 16)):
        out = inputs / f"{family}_{n}.in"
        cli([
            "generate", "--family", family, "--n", str(n),
            "--degree", str(degree), "--weighted", "--seed", "7",
            "--out", str(out),
        ])
        graphs[family] = out

    # 2. The executables, one CSV line per run (experiment_runners/ stage).
    print("\nprofile records (input, seed, p, n, m, time, mpi, algo, result):")
    for family, path in graphs.items():
        for algo in ("parallel_cc", "approx_cut"):
            cli([algo, str(path), "--procs", "8", "--seed", "1"])
        cli(["square_root", str(path), "--procs", "8", "--seed", "1",
             "--trial-scale", "0.05"])

    # 3. Statistical aggregation (the evaluation/R stage): medians over
    #    fresh seeds until the CI bar is met, per §5's methodology.
    g = read_edgelist(graphs["er"])
    rows = []
    for p in (2, 4, 8):
        cc_time = measure(
            lambda seed: connected_components(g, p=p, seed=seed).time.total_s,
            seed_base=100, min_repetitions=5, max_repetitions=15,
        )
        mc_time = measure(
            lambda seed: minimum_cut(g, p=p, seed=seed, trials=8).time.total_s,
            seed_base=200, min_repetitions=3, max_repetitions=7,
        )
        rows.append([
            p,
            cc_time.median, cc_time.repetitions, cc_time.ci_ok,
            mc_time.median, mc_time.repetitions,
        ])
    print()
    print(format_table(
        "aggregated datapoints (medians over fresh seeds)",
        ["p", "cc_median_s", "cc_reps", "cc_ci<5%", "mc_median_s", "mc_reps"],
        rows,
    ))

    # MC has enough work per trial to scale at this tiny size; CC is
    # latency-floor-bound here (its whole run is sub-millisecond).
    mc_medians = [r[4] for r in rows]
    assert mc_medians[-1] < mc_medians[0], "MC should get cheaper with p"
    print(f"\nworkspace: {workdir} (inputs kept for inspection)")


if __name__ == "__main__":
    main()
