#!/usr/bin/env python3
"""Minimum-cut graph clustering (CLICK-style, §1 [39, 40]).

Gene-expression analysis and large-scale graph clustering split a
similarity graph recursively along its global minimum cut: if the cut is
cheap relative to the cluster's internal density, the cluster is split;
otherwise it is accepted (the kernel of the CLICK algorithm the paper
cites).

This example plants ground-truth clusters (a noisy ring of cliques),
recursively splits with the exact minimum cut, and scores the recovered
clustering against the planted one.

Run:  python examples/graph_clustering.py
"""

import numpy as np

from repro import EdgeList, minimum_cut
from repro.graph import ring_of_cliques
from repro.rng import philox_stream


def noisy_clusters(clusters=4, size=9, noise_edges=10, seed=11):
    """Ring of cliques plus random inter-cluster noise edges."""
    g = ring_of_cliques(clusters, size)
    rng = philox_stream(seed)
    extra = []
    n = g.n
    while len(extra) < noise_edges:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u // size != v // size and u != v:
            extra.append((u, v, 1.0))
    all_edges = g.as_tuples() + extra
    truth = np.arange(n) // size
    return EdgeList.from_pairs(n, all_edges), truth


def subgraph(g, vertices):
    """Induced subgraph with a local vertex numbering."""
    vmap = -np.ones(g.n, dtype=np.int64)
    vmap[vertices] = np.arange(len(vertices))
    keep = (vmap[g.u] >= 0) & (vmap[g.v] >= 0)
    return EdgeList(len(vertices), vmap[g.u[keep]], vmap[g.v[keep]],
                    g.w[keep], canonical=False), keep


def cluster(g, vertices, *, stop_ratio, seed, depth=0):
    """Recursive min-cut splitting; returns a list of vertex arrays."""
    if len(vertices) <= 2:
        return [vertices]
    sub, _ = subgraph(g, vertices)
    if sub.m == 0:
        return [np.array([v]) for v in vertices]
    mc = minimum_cut(sub, p=4, seed=seed + depth)
    # density criterion: accept the cluster when splitting it costs more
    # than `stop_ratio` of its average incident weight
    internal = sub.total_weight()
    if mc.value >= stop_ratio * internal / max(len(vertices), 1) * 2:
        return [vertices]
    left = vertices[mc.side]
    right = vertices[~mc.side]
    return (cluster(g, left, stop_ratio=stop_ratio, seed=seed, depth=depth + 1)
            + cluster(g, right, stop_ratio=stop_ratio, seed=seed, depth=depth + 1))


def rand_index(a, b):
    """Agreement of two labelings over all vertex pairs."""
    n = a.size
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    agree = (same_a == same_b).sum() - n  # ignore the diagonal
    return agree / (n * (n - 1))


def main():
    g, truth = noisy_clusters()
    print(f"similarity graph: n={g.n}, m={g.m}, "
          f"{truth.max() + 1} planted clusters")

    parts = cluster(g, np.arange(g.n), stop_ratio=0.8, seed=5)
    labels = np.empty(g.n, dtype=np.int64)
    for i, part in enumerate(parts):
        labels[part] = i
    print(f"recovered {len(parts)} clusters "
          f"(sizes: {sorted(len(p) for p in parts)})")

    ri = rand_index(labels, truth)
    print(f"Rand index vs planted clustering: {ri:.3f}")
    assert ri > 0.85, "clustering should recover the planted structure"
    print("clustering recovered the planted structure.")


if __name__ == "__main__":
    main()
