#!/usr/bin/env python3
"""Network reliability: the global minimum cut as the weakest failure set.

The paper motivates minimum cuts with network reliability studies [23]: in
a network whose links fail independently, the all-terminal reliability is
dominated by the smallest link sets whose removal disconnects the network —
the (near-)minimum cuts.

This example builds a two-level datacenter-like topology (racks of hosts,
a core ring, a few cross links), finds its global minimum cut exactly,
cross-checks with the approximate variant, and estimates the disconnection
probability from the cut structure.

Run:  python examples/network_reliability.py
"""

import math

import numpy as np

from repro import EdgeList, approx_minimum_cut, minimum_cut


def build_datacenter(racks=6, hosts_per_rack=8, core_ring_weight=4.0,
                     uplinks=2, cross_links=3):
    """Racks of hosts star-wired to a ToR switch; ToRs on a weighted core
    ring plus a few cross links.  Link weight = capacity (parallel fibres).
    """
    n_tor = racks
    n = n_tor + racks * hosts_per_rack
    edges = []
    # host <-> ToR access links (weight 1)
    for r in range(racks):
        for h in range(hosts_per_rack):
            host = n_tor + r * hosts_per_rack + h
            edges.append((r, host, 1.0))
    # core ring between ToRs (weight = core_ring_weight), `uplinks` parallel
    for r in range(racks):
        for _ in range(uplinks):
            edges.append((r, (r + 1) % racks, core_ring_weight))
    # a few shortcut cross links
    for i in range(cross_links):
        a = i % racks
        b = (i + racks // 2) % racks
        if a != b:
            edges.append((a, b, core_ring_weight / 2))
    return EdgeList.from_pairs(n, edges)


def main():
    g = build_datacenter()
    print(f"datacenter fabric: {g.n} nodes, {g.m} links, "
          f"capacity {g.total_weight():.0f}")

    mc = minimum_cut(g, p=8, seed=7)
    inside = int(mc.side.sum())
    print(f"\nglobal minimum cut: capacity {mc.value:.1f} "
          f"(isolates {min(inside, g.n - inside)} nodes)")

    # Which physical links cross the weakest cut?
    crossing = mc.side[g.u] != mc.side[g.v]
    print("links in the weakest failure set:")
    for u, v, w in zip(g.u[crossing], g.v[crossing], g.w[crossing]):
        kind = "access" if w == 1.0 else "core"
        print(f"  {u:4d} -- {v:4d}  capacity {w:.1f} ({kind})")

    ap = approx_minimum_cut(g, p=8, seed=7)
    print(f"\napproximate estimate (fraction of the cores/time): "
          f"{ap.estimate:.0f}  (exact {mc.value:.0f})")

    # Reliability estimate: if each unit of capacity fails independently
    # with probability q, the weakest cut fails with ~q^capacity; it
    # dominates the all-terminal unreliability for small q (Karger [23]).
    for q in (0.1, 0.01):
        p_disconnect = q ** mc.value
        print(f"per-fibre failure prob {q}: "
              f"weakest-cut failure ≈ {p_disconnect:.2e}")

    assert g.cut_value(mc.side) == mc.value
    print("\nwitness verified against the fabric graph.")


if __name__ == "__main__":
    main()
