#!/usr/bin/env python3
"""Quickstart: the three algorithms on one graph, with cost counters.

Builds an Erdős–Rényi graph, then runs on a simulated 8-processor BSP
machine:

* connected components (§3.2),
* the O(log n)-approximate minimum cut (§3.3),
* the exact minimum cut (§4),

printing each result alongside the BSP cost counters (supersteps,
communication volume, computation) and the machine-model time estimate —
the quantities the paper's evaluation is phrased in.

Run:  python examples/quickstart.py
"""

from repro import (
    approx_minimum_cut,
    connected_components,
    erdos_renyi,
    minimum_cut,
)
from repro.rng import philox_stream


def describe(name, report, time):
    print(f"  [{name}] supersteps={report.supersteps}  "
          f"volume={report.volume:.0f} words  "
          f"computation={report.computation:.2e} ops")
    print(f"  [{name}] predicted time: {time.total_s * 1e3:.2f} ms "
          f"(MPI fraction {time.mpi_fraction:.1%})")


def main():
    n, m, p, seed = 600, 4_800, 8, 42
    g = erdos_renyi(n, m, philox_stream(seed), weighted=True)
    print(f"graph: n={g.n}, m={g.m}, total weight={g.total_weight():.0f}")
    print(f"simulated BSP machine: p={p} processors\n")

    cc = connected_components(g, p=p, seed=seed)
    print(f"connected components: {cc.n_components}")
    describe("CC", cc.report, cc.time)

    ap = approx_minimum_cut(g, p=p, seed=seed)
    print(f"\napproximate minimum cut estimate: {ap.estimate:.0f}"
          f" (witness cut of exact value {ap.witness_value:.0f})")
    describe("AppMC", ap.report, ap.time)

    # trial_scale shrinks the Theta((n^2/m) log^2 n) trial count so the
    # simulated run finishes in seconds; drop it for full confidence.
    mc = minimum_cut(g, p=p, seed=seed, trial_scale=0.05)
    print(f"\nexact minimum cut: {mc.value:.0f} "
          f"({mc.trials} trials; witness side has {int(mc.side.sum())} vertices)")
    describe("MC", mc.report, mc.time)

    # The witness is verifiable against the input graph:
    assert g.cut_value(mc.side) == mc.value
    print("\nwitness verified: recomputed cut value matches.")


if __name__ == "__main__":
    main()
