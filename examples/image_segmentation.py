#!/usr/bin/env python3
"""Image segmentation: connected components over a pixel grid.

Connected components power medical imaging and image processing pipelines
(§1, [21, 32, 46]): after thresholding, each connected blob of foreground
pixels is one object.  This example synthesizes an image with Gaussian
blobs, builds the 4-neighbourhood graph over foreground pixels, labels the
blobs with the communication-avoiding CC algorithm, and cross-checks the
segment count with the BFS baseline.

Run:  python examples/image_segmentation.py
"""

import numpy as np

from repro import EdgeList, connected_components
from repro.baselines import bgl_cc
from repro.rng import philox_stream


def synth_image(h=96, w=96, blobs=12, seed=3):
    """Grayscale image with random Gaussian blobs on a dark background."""
    rng = philox_stream(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    img = np.zeros((h, w))
    for _ in range(blobs):
        cy, cx = rng.uniform(8, h - 8), rng.uniform(8, w - 8)
        r = rng.uniform(3, 7)
        img += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * r * r))
    return img


def foreground_graph(mask):
    """4-neighbourhood graph over the True pixels of ``mask``.

    Vertices are numbered over all pixels; background pixels stay isolated
    (they are filtered out of the final count).
    """
    h, w = mask.shape
    ids = np.arange(h * w).reshape(h, w)
    right = mask[:, :-1] & mask[:, 1:]
    down = mask[:-1, :] & mask[1:, :]
    u = np.concatenate([ids[:, :-1][right], ids[:-1, :][down]])
    v = np.concatenate([ids[:, 1:][right], ids[1:, :][down]])
    return EdgeList(h * w, u, v)


def main():
    img = synth_image()
    mask = img > 0.35
    print(f"image: {img.shape[0]}x{img.shape[1]}, "
          f"{int(mask.sum())} foreground pixels")

    g = foreground_graph(mask)
    res = connected_components(g, p=8, seed=1)

    # Count only segments that contain foreground pixels.
    fg_labels = res.labels[mask.ravel()]
    segments, sizes = np.unique(fg_labels, return_counts=True)
    print(f"{segments.size} segments "
          f"(sizes: min {sizes.min()}, median {int(np.median(sizes))}, "
          f"max {sizes.max()})")
    print(f"BSP costs: {res.report.supersteps} supersteps, "
          f"{res.report.volume:.0f} words of communication")

    # Cross-check with the sequential BFS baseline.
    labels_bfs, _ = bgl_cc(g)
    bfs_segments = np.unique(labels_bfs[mask.ravel()]).size
    assert bfs_segments == segments.size
    print(f"BFS baseline agrees: {bfs_segments} segments")

    # Largest blob bounding box, as a segmentation pipeline would extract.
    big = segments[np.argmax(sizes)]
    pix = np.flatnonzero((res.labels == big) & mask.ravel())
    ys, xs = pix // img.shape[1], pix % img.shape[1]
    print(f"largest blob: {sizes.max()} px, "
          f"bbox y=[{ys.min()},{ys.max()}] x=[{xs.min()},{xs.max()}]")


if __name__ == "__main__":
    main()
