"""Figure 1: MC strong scaling on a sparse Erdős–Rényi graph.

Paper setup: ER n = 96'000, d = 32, 144-1008 cores; execution time broken
into application and MPI time, with the §5.3 model prediction overlaid
(Fig 1a), and the MPI-to-total ratio (Fig 1b, under 9% at 1008 cores).

Scaled reproduction: ER n = 512, d = 8, p = 2..32 virtual processors, with
a proportionally scaled trial count.  Expected shape: near-linear decrease
of execution time with p, model prediction tracking the measurement, and a
small but slowly growing MPI fraction.
"""

import pytest

from repro.bsp.machine import fit_model
from repro.core import minimum_cut
from repro.graph import erdos_renyi
from repro.rng import philox_stream

from common import MODEL, once, report_experiment

N, DEG, TRIALS, SEED = 512, 8, 32, 1


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(N, N * DEG // 2, philox_stream(SEED), weighted=True)


@pytest.fixture(scope="module")
def sweep(graph):
    rows = []
    reports = []
    times = []
    for p in (2, 4, 8, 16, 32):
        res = minimum_cut(graph, p=p, seed=SEED, trials=TRIALS)
        t = MODEL.predict(res.report)
        rows.append([p, t.total_s, t.app_s, t.mpi_s, t.mpi_fraction])
        reports.append(res.report)
        times.append(t.total_s)
    # Fit the constant-factor model to the runs and overlay its prediction,
    # exactly as Figure 1a overlays the fitted model on the measurements.
    fitted = fit_model(reports, times)
    for row, rep in zip(rows, reports):
        row.append(fitted.predict(rep).total_s)
    return rows


def test_fig1a_strong_scaling(benchmark, graph, sweep):
    report_experiment(
        "fig1a_mc_strong_sparse",
        f"MC strong scaling, ER n={N} d={DEG}, {TRIALS} trials",
        ["cores", "time_s", "app_s", "mpi_s", "mpi_frac", "model_s"],
        sweep,
        notes="shape check: time decreases near-linearly with p; "
              "model tracks measurement",
    )
    t2 = sweep[0][1]
    t32 = sweep[-1][1]
    assert t32 < t2 / 6, "strong scaling: 16x procs must give >6x speedup"
    for row in sweep:
        assert row[5] == pytest.approx(row[1], rel=0.5)
    # time the largest configuration once for pytest-benchmark
    once(benchmark, minimum_cut, graph, p=32, seed=SEED, trials=TRIALS)


def test_fig1b_mpi_ratio(benchmark, graph, sweep):
    report_experiment(
        "fig1b_mc_mpi_ratio",
        f"MC time-in-MPI ratio, ER n={N} d={DEG}",
        ["cores", "mpi_fraction"],
        [[row[0], row[4]] for row in sweep],
        notes="paper: below 9% at 1008 cores, slowly growing",
    )
    fractions = [row[4] for row in sweep]
    assert all(f < 0.5 for f in fractions), "communication stays a minor share"
    assert fractions[-1] >= fractions[0] * 0.5, "ratio does not collapse"
    once(benchmark, minimum_cut, graph, p=8, seed=SEED, trials=8)
