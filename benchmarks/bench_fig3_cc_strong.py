"""Figure 3: CC strong scaling on sparse and dense graphs vs baselines.

Paper setup: (a) Barabási–Albert n = 1M, d = 32 — CC initially beats Galois
and PBGL but scaling is limited by the sparse graph's parallelism; (b)
R-MAT n = 128'000, d = 2'000 — the dense graph gives CC scalability
comparable to PBGL/Galois while staying consistently faster.  The BGL
sequential time is the horizontal reference line.

Scaled reproduction: BA n = 8'192, d = 16 (sparse) and R-MAT n = 1'024,
d = 128 (dense), p = 1..16.
"""

import pytest

from repro.baselines import bgl_cc, galois_cc_parallel, pbgl_cc
from repro.cache import AnalyticTracker
from repro.core import connected_components
from repro.graph import barabasi_albert, rmat
from repro.rng import philox_stream

from common import MODEL, once, report_experiment, sequential_time

PS = (1, 2, 4, 8, 16)
SEED = 3


def time_of(report):
    return MODEL.predict(report).total_s


def run_sweep(g):
    rows = []
    for p in PS:
        t_cc = time_of(connected_components(g, p=p, seed=SEED).report)
        t_gal = time_of(galois_cc_parallel(g, p=p, seed=SEED)[2])
        t_pbgl = time_of(pbgl_cc(g, p=p, seed=SEED)[2])
        rows.append([p, t_cc, t_gal, t_pbgl])
    mem = AnalyticTracker()
    bgl_cc(g, mem=mem)
    t_bgl = sequential_time(mem)
    for row in rows:
        row.append(t_bgl)
    return rows


@pytest.fixture(scope="module")
def sparse_graph():
    return barabasi_albert(8_192, 8, philox_stream(SEED))


@pytest.fixture(scope="module")
def dense_graph():
    return rmat(2_048, 1_048_576, philox_stream(SEED + 1))


def test_fig3a_sparse_strong_scaling(benchmark, sparse_graph):
    rows = run_sweep(sparse_graph)
    report_experiment(
        "fig3a_cc_strong_sparse",
        f"CC strong scaling sparse (BA n={sparse_graph.n} d~16) vs baselines",
        ["cores", "cc_s", "galois_s", "pbgl_s", "bgl_s"],
        rows,
        notes="shape: CC faster than PBGL everywhere; sequential CC "
              "competitive with BGL; limited scaling on sparse inputs",
    )
    by_p = {r[0]: r for r in rows}
    # CC beats the BSP baseline at every p (paper: PBGL ~1 order slower).
    for r in rows:
        assert r[1] < r[3], f"CC slower than PBGL at p={r[0]}"
    # sequential CC is in BGL's ballpark (paper: slightly faster).
    assert by_p[1][1] < 3 * by_p[1][4]
    once(benchmark, connected_components, sparse_graph, p=8, seed=SEED)


def test_fig3b_dense_strong_scaling(benchmark, dense_graph):
    rows = run_sweep(dense_graph)
    report_experiment(
        "fig3b_cc_strong_dense",
        f"CC strong scaling dense (R-MAT n={dense_graph.n} d~500) vs baselines",
        ["cores", "cc_s", "galois_s", "pbgl_s", "bgl_s"],
        rows,
        notes="shape: dense graphs provide parallelism — CC scales and "
              "stays consistently fastest",
    )
    by_p = {r[0]: r for r in rows}
    # dense graphs provide parallelism: CC keeps scaling to p=16
    assert by_p[16][1] < by_p[1][1] / 2.5
    # consistently faster than both parallel baselines (paper Fig 3b)
    for r in rows:
        assert r[1] <= r[3], f"CC slower than PBGL at p={r[0]}"
    assert by_p[16][1] < by_p[16][2], "CC beats Galois at scale"
    once(benchmark, connected_components, dense_graph, p=16, seed=SEED)
