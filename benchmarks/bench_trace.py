"""Microbenchmark: cost of the tracing hook on the BSP engine hot path.

Three configurations of the same fixed iterated-sampling CC workload:

* ``off`` — the default :class:`~repro.trace.tracer.NullTracer`; an
  untraced run pays exactly one ``tracer.enabled`` attribute check per
  executed collective, so this must sit inside the blessed
  ``results/perf_baseline.json`` envelope (the perf gate's counter
  fingerprints and timings are checked *without* re-blessing — that is
  the zero-overhead-when-off acceptance criterion).
* ``recording`` — a :class:`~repro.trace.tracer.RecordingTracer`:
  the real price of per-superstep event capture (exact_delta chains and
  snapshot tuples), reported as a ratio over ``off``.
* ``recording+jsonl`` — capture plus serialization to a JSON-lines
  file, the full ``--trace PATH`` pipeline.

Run standalone::

    PYTHONPATH=src python -m benchmarks.bench_trace [--scale N] [--json]
"""

from __future__ import annotations

import argparse
import io
import json
import time

from repro.core import connected_components
from repro.graph import barabasi_albert
from repro.rng import philox_stream
from repro.runtime.sim import SimBackend
from repro.trace import RecordingTracer, write_jsonl

__all__ = ["run_benchmarks"]

#: Default workload at --scale 1.0.
_N = 4_000
_DEGREE = 8
_P = 8
_REPEATS = 5


def _best_of(fn, repeats: int = _REPEATS) -> tuple[float, object]:
    """Minimum wall-clock of ``repeats`` runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_benchmarks(scale: float = 1.0, seed: int = 0) -> dict:
    """Time the three tracing configurations; return a results record."""
    n = max(64, int(_N * scale))
    g = barabasi_albert(n, _DEGREE, philox_stream(seed))

    def run_off():
        return connected_components(g, p=_P, seed=seed)

    def run_recording():
        return connected_components(
            g, p=_P, seed=seed, backend=SimBackend(tracer=RecordingTracer())
        )

    def run_jsonl():
        res = run_recording()
        write_jsonl(res.trace, io.StringIO())
        return res

    off_s, res_off = _best_of(run_off)
    rec_s, res_rec = _best_of(run_recording)
    jsonl_s, _ = _best_of(run_jsonl)

    assert res_off.report == res_rec.report, (
        "tracing altered the simulated run"
    )
    assert res_off.trace is None and res_rec.trace is not None
    return {
        "trace_off": {"fast_s": off_s, "events": 0},
        "trace_recording": {
            "fast_s": rec_s,
            "events": len(res_rec.trace),
            "overhead": rec_s / off_s if off_s else float("inf"),
        },
        "trace_recording_jsonl": {
            "fast_s": jsonl_s,
            "events": len(res_rec.trace),
            "overhead": jsonl_s / off_s if off_s else float("inf"),
        },
        "meta": {"n": n, "p": _P, "scale": scale, "seed": seed},
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="workload size multiplier (default 1.0)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--json", action="store_true",
                    help="machine-readable output")
    args = ap.parse_args(argv)
    record = run_benchmarks(scale=args.scale, seed=args.seed)
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
        return 0
    off = record["trace_off"]["fast_s"]
    print(f"trace off:              {off * 1e3:8.2f} ms  (baseline)")
    for key in ("trace_recording", "trace_recording_jsonl"):
        r = record[key]
        print(f"{key + ':':<24}{r['fast_s'] * 1e3:8.2f} ms  "
              f"({r['overhead']:.2f}x, {r['events']} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
