#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the benchmark records under results/.

Run the benchmarks first (``pytest benchmarks/ --benchmark-only``), then::

    python benchmarks/collect_experiments.py

Each experiment section pairs the paper's reported behaviour with the
regenerated series and the reproduction verdict asserted by the bench.
"""

from __future__ import annotations

import json
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
OUT = ROOT / "EXPERIMENTS.md"

#: Paper-side context per experiment id: (paper setup, paper observation).
PAPER = {
    "fig1a_mc_strong_sparse": (
        "Fig 1a — MC strong scaling, ER n=96'000 d=32, 144-1008 cores",
        "Execution time drops near-linearly with cores (~30 s at 144 to a "
        "few seconds at 1008); the fitted model's points track the bars; "
        "~20x over sequential KS at 144 cores, 115x at 1008.",
    ),
    "fig1b_mc_mpi_ratio": (
        "Fig 1b — MC time-in-MPI ratio on the same runs",
        "T_MPI/T stays below ~9% at 1008 cores, growing slowly with scale.",
    ),
    "fig3a_cc_strong_sparse": (
        "Fig 3a — CC strong scaling, Barabási-Albert n=1M d=32, 1-72 cores",
        "CC initially beats Galois and PBGL but scaling is limited on the "
        "sparse input; sequential CC slightly faster than BGL and Galois; "
        "PBGL an order of magnitude slower sequentially.",
    ),
    "fig3b_cc_strong_dense": (
        "Fig 3b — CC strong scaling, R-MAT n=128'000 d=2'000",
        "The dense input provides enough parallelism: CC scales comparably "
        "to PBGL and Galois while staying consistently faster than both.",
    ),
    "fig4a_cc_llc_misses": (
        "Fig 4a — sequential LLC misses, R-MAT d=256, n up to 1M",
        "CC and Galois incur significantly fewer misses than BGL as inputs "
        "grow (~3x at about a million vertices).",
    ),
    "fig4b_cc_sequential_time": (
        "Fig 4b — sequential execution time on the Fig 4a sweep",
        "Despite ~33% more instructions than BGL, CC's higher IPM yields a "
        "better time trend as the problem grows.",
    ),
    "fig4c_cc_ipm": (
        "Fig 4c — instructions per LLC miss vs cores, R-MAT n=128'000 d=2'048",
        "CC and Galois sustain a lower miss rate (higher IPM) than PBGL at "
        "low parallelism; the IPM is eventually matched as parallelism is "
        "exhausted.",
    ),
    "fig4d_cc_strong_scaling": (
        "Fig 4d — CC strong scaling with app/MPI split on the Fig 4c graph",
        "MPI time is ~2.8% of execution at 36 cores growing to ~9.6% at 72; "
        "the ratio tracks node count rather than core count.",
    ),
    "fig5a_appmc_strong_dense": (
        "Fig 5a — AppMC strong scaling, R-MAT n=256'000 d=4'096, 36-360 cores",
        "AppMC scales to hundreds of processors on dense inputs; MPI is "
        "~26% of total time at 144 cores.",
    ),
    "fig5b_appmc_weak": (
        "Fig 5b — AppMC weak scaling, R-MAT n=16'000, 2.048M edges/node",
        "Near-constant time: 8x more edges and processors cost only 1.55x "
        "more time.",
    ),
    "fig6_mc_strong_dense": (
        "Fig 6 — MC strong scaling, R-MAT n=16'000 d=4'000, 48-1536 cores",
        "Near-linear scaling with better efficiency than the sparse case; "
        "the model tracks the measurement; both sequential baselines time "
        "out (>3h) on this input.",
    ),
    "fig6_mc_mpi_fraction": (
        "Fig 6 (right) — MC MPI fraction on the dense input",
        "Communication costs decrease proportionately to p but form a "
        "larger fraction of total time than in the sparse regime.",
    ),
    "fig7_mc_weak_sparse": (
        "Fig 7 (left) — MC weak scaling, Watts-Strogatz d=32, 4'000 verts/node",
        "Execution time grows linearly in n at fixed n/p (time ~ n^2/p), "
        "i.e. the straight trend line.",
    ),
    "fig7_mc_weak_dense": (
        "Fig 7 (right) — MC weak scaling, R-MAT d=1'000, 2'000 verts/node",
        "Same linear trend on the dense family.",
    ),
    "fig8a_cut_ipm": (
        "Fig 8a — IPM of KS vs MC vs SW (setup of Fig 9)",
        "KS sustains the highest IPM (designed for sequential cache "
        "efficiency), MC is in between, SW's IPM collapses with n.",
    ),
    "fig8b_cc_ipm": (
        "Fig 8b — IPM of BGL vs CC vs Galois (setup of Fig 4)",
        "CC's IPM is significantly higher than BGL's, explaining its "
        "better time trend despite more instructions.",
    ),
    "fig9a_seq_cache_misses": (
        "Fig 9a — sequential LLC misses of KS, MC, SW on ER d=32",
        "SW incurs dramatically more misses than both KS and MC; KS is the "
        "most efficient.",
    ),
    "fig9b_seq_time": (
        "Fig 9b — sequential execution time on the same sweep",
        "All three show ~O(n^2)-like growth on m=O(n) inputs, with SW far "
        "above (~40x slower than KS; baselines time out on dense inputs).",
    ),
    "table1_n_sweep": (
        "Table 1 — MC computation bound O(n^2 log^3 n / p), n sweep",
        "Stated asymptotic bound (the paper proves it; no measured table).",
    ),
    "table1_p_sweep": (
        "Table 1 — MC computation bound, p sweep",
        "Computation is inversely proportional to p.",
    ),
    "table1_supersteps": (
        "Table 1 — supersteps bound O(log(pm/n^2))",
        "Supersteps grow only logarithmically once p exceeds the trial "
        "count.",
    ),
    "appmc_vs_mc": (
        "§5.2 — AppMC vs MC on the Fig 1 inputs",
        "AppMC is an order of magnitude faster than MC on sparse graphs, "
        "using a fraction of cores in a fraction of time.",
    ),
    "appmc_ratio": (
        "§A.6.2 — AppMC approximation quality",
        "Observed approximation ratio below 11 on all inputs.",
    ),
    "ablation_unweighted_sampling": (
        "§3.2 remark — unweighted local sampling",
        "Avoiding the root round-trip and O(log n)-per-edge draws 'turned "
        "out to be crucial in practice'.",
    ),
    "ablation_appmc_schedule": (
        "§3.3 remark — staged vs pipelined AppMC",
        "'It does not pay off to pipeline the outer loop'; the staged "
        "variant is faster when the minimum cut value is small.",
    ),
    "ablation_contraction": (
        "§3/§4.1 — edge-array vs adjacency-matrix representation",
        "The AM representation is crucial for consistent performance on "
        "very dense graphs (switch at m >= n^2/log n).",
    ),
    "ablation_eager_step": (
        "§4 — the Eager Step",
        "Contracting to sqrt(m) vertices before Recursive Contraction keeps "
        "each sparse trial at O(m log n) work instead of Theta(n^2).",
    ),
    "ext_hybrid_cc": (
        "Extension (§3.2 remark) — sparsification as a CC preconditioner",
        "'Sparsification could be used to speed up other connected "
        "components algorithms.'",
    ),
    "ext_preprocessing": (
        "Extension (§2.3 remark) — weight preprocessing",
        "'This assumption can be removed by a preprocessing step without "
        "increasing the presented bounds.'",
    ),
    "ext_all_min_cuts": (
        "Extension (Lemma 4.3) — all minimum cuts",
        "'The communication-avoiding minimum cut algorithm finds all "
        "minimum cuts w.h.p.'",
    ),
    "ext_spanning_forest": (
        "Extension — Borůvka minimum spanning forest",
        "The BSP comparator family the paper cites for CC (Adler et al. "
        "[2]) is an MST algorithm; this closes the circle on our substrate.",
    ),
}

HEADER = """\
# EXPERIMENTS — paper vs reproduction

Regenerated from ``results/*.json`` by ``benchmarks/collect_experiments.py``
after ``pytest benchmarks/ --benchmark-only``.

**Reading guide.** The paper ran MPI on Piz Daint (Cray XC50, up to 1536
cores); this reproduction runs the same algorithms on a deterministic BSP
simulator and reports the paper's §5.3 performance model applied to
exactly-measured counters (see DESIGN.md §2 for the substitution table).
Absolute numbers are therefore not comparable; each experiment's *shape*
(orderings, scaling exponents, crossovers, ratios) is what the benchmark
asserts.  Scales are reduced ~100-1000x to fit pure-Python simulation.

Every row below is live data from the last benchmark run.
"""


def chart_for(data):
    """Best-effort ASCII chart of numeric series over a numeric first column."""
    from repro.harness.asciiplot import ascii_chart

    headers = data["headers"]
    rows = [r for r in data["rows"] if r and isinstance(r[0], (int, float))]
    if len(rows) < 2 or len(headers) < 2:
        return None
    xs = [float(r[0]) for r in rows]
    if len(set(xs)) < 2:
        return None
    series = {}
    for col in range(1, len(headers)):
        vals = [r[col] for r in rows]
        if all(isinstance(v, (int, float)) for v in vals):
            series[str(headers[col])] = [float(v) for v in vals]
        if len(series) == 4:
            break
    if not series:
        return None
    flat = [v for ys in series.values() for v in ys]
    logy = min(flat) > 0 and max(flat) / max(min(flat), 1e-300) > 100
    logx = min(xs) > 0 and max(xs) / min(xs) > 30
    try:
        return ascii_chart(xs, series, logx=logx, logy=logy,
                           title=f"x = {headers[0]}")
    except ValueError:
        return None


def fmt(x):
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e5 or abs(x) < 1e-3:
            return f"{x:.3e}"
        return f"{x:.4g}"
    return str(x)


def main():
    sections = [HEADER]
    order = list(PAPER)
    extras = sorted(p.stem for p in RESULTS.glob("*.json")
                    if p.stem not in PAPER)
    for exp_id in order + extras:
        path = RESULTS / f"{exp_id}.json"
        if not path.exists():
            sections.append(f"## {exp_id}\n\n*(no record — benchmark not run)*\n")
            continue
        data = json.loads(path.read_text())
        paper_setup, paper_obs = PAPER.get(exp_id, ("(extra experiment)", ""))
        lines = [f"## {paper_setup}", ""]
        if paper_obs:
            lines += [f"**Paper:** {paper_obs}", ""]
        lines += [f"**Reproduction:** {data['description']}", ""]
        headers = data["headers"]
        lines.append("| " + " | ".join(map(str, headers)) + " |")
        lines.append("|" + "|".join(["---"] * len(headers)) + "|")
        for row in data["rows"]:
            lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
        chart = chart_for(data)
        if chart:
            lines += ["", "```", chart, "```"]
        if data.get("notes"):
            lines += ["", f"*Measured shape:* {data['notes']}"]
        lines.append("")
        sections.append("\n".join(lines))
    OUT.write_text("\n".join(sections))
    print(f"wrote {OUT} ({len(order + extras)} experiments)")


if __name__ == "__main__":
    main()
