"""Benchmark: predicted-time reduction from fusion + group-shrink.

Two workloads, each run in three configurations — ``base`` (no fusion,
no shrink), ``fused`` (``fuse=True``) and ``fused_shrink`` (fusion plus
group-shrink) — with the algorithmic results asserted bit-identical
across all three (both mechanisms are pure schedule transformations):

* ``appmc_dense`` — the approximate minimum cut on a dense weighted
  Erdos-Renyi graph.  Its staged schedule runs one CC kernel per
  sparsity level, so the per-round ``allreduce`` pairs (and the closing
  ``allreduce``/``bcast`` seams between phases) dominate the superstep
  count; fusion merges them and cuts predicted time by well over the
  1.3x acceptance floor on the *cluster* machine profile.
* ``cc_multiround`` — iterated-sampling CC on a heavily duplicated path
  graph whose rare bridge edges survive the first sampling round.  Most
  processors' slices contract away mid-run, so group-shrink fires: the
  released ranks stop at the split and skip every remaining round's
  relabel pass, cutting *total* work (sum over ranks) — the
  throughput/energy win the max-based predicted time cannot see.

Machine profiles: predicted times are reported for the default
:class:`~repro.bsp.machine.MachineModel` (the paper's measured
single-switch cluster, L = 15 us) and for ``CLUSTER_MACHINE`` — the
same model with L = 100 us, a commodity/oversubscribed interconnect
where synchronization latency dominates.  The >= 1.3x gate applies to
the cluster profile: communication avoidance is exactly the regime the
paper targets, and the latency term is what fusion elides.  Both
profiles' numbers are recorded so the default-profile reduction is
visible (it is smaller but still real).

Run standalone::

    PYTHONPATH=src python -m benchmarks.bench_fusion [--scale N] [--json]
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.bsp.machine import MachineModel
from repro.core import approx_minimum_cut, connected_components
from repro.graph import erdos_renyi
from repro.graph.edgelist import EdgeList
from repro.rng import philox_stream
from repro.runtime.sim import SimBackend
from repro.trace import RecordingTracer

__all__ = ["run_benchmarks", "REDUCTION_FLOOR", "OPS_REDUCTION_FLOOR",
           "CLUSTER_MACHINE", "bridge_path_graph"]

#: Predicted-time reduction floor for base -> fused_shrink on the dense
#: approximate-min-cut workload under the cluster machine profile.
REDUCTION_FLOOR = 1.3

#: Total-work (sum-over-ranks ops) reduction floor for group-shrink on
#: the multi-round CC workload.
OPS_REDUCTION_FLOOR = 1.2

#: High-latency profile: the default machine with L raised to 100 us —
#: an oversubscribed commodity interconnect, the regime the paper's
#: communication-avoidance argument targets.
CLUSTER_MACHINE = MachineModel(L_s=1.0e-4)

#: Default workload sizes at --scale 1.0.
_APPMC_N = 120
_APPMC_DEG = 40          # m = n * deg / 2: dense
_CC_N = 2400
_CC_REP = 40             # duplicate multiplicity of each path edge
_CC_GAPS = 7             # rare single-copy bridge edges
_P = 8


def bridge_path_graph(n: int, rep: int, gaps: int) -> EdgeList:
    """A duplicated path with ``gaps`` rare single-copy bridge edges.

    Every path edge appears ``rep`` times except the bridges, which
    appear once (appended last, so they land on the highest rank's
    slice).  The first sampling round collapses the duplicated segments
    w.h.p. but misses bridges, leaving live edges on few ranks — the
    group-shrink trigger.
    """
    step = max(2, n // (gaps + 1))
    gap_set = {step * (i + 1) for i in range(gaps) if step * (i + 1) < n - 1}
    uu, vv = [], []
    for i in range(n - 1):
        if i in gap_set:
            continue
        uu.extend([i] * rep)
        vv.extend([i + 1] * rep)
    for i in sorted(gap_set):
        uu.append(i)
        vv.append(i + 1)
    return EdgeList(n, np.array(uu, dtype=np.int64),
                    np.array(vv, dtype=np.int64),
                    canonical=False, validate=False)


def _configs(run, machine) -> dict:
    """base / fused / fused_shrink records of one workload on one machine."""
    out = {}
    for name, fuse, shrink in (("base", None, False),
                               ("fused", True, False),
                               ("fused_shrink", True, True)):
        res = run(SimBackend(machine=machine, fuse=fuse), shrink)
        out[name] = {
            "total_s": res.time.total_s,
            "mpi_s": res.time.mpi_s,
            "supersteps": res.report.supersteps,
            "total_ops": res.report.total_ops,
            "wait": res.report.wait,
            "_res": res,
        }
    return out


def _strip(cfgs: dict) -> dict:
    return {k: {f: v for f, v in r.items() if not f.startswith("_")}
            for k, r in cfgs.items()}


def run_benchmarks(scale: float = 1.0, seed: int = 0) -> dict:
    """Run both workloads in all three configurations; return the record."""
    out: dict = {}

    # -- appmc_dense: fusion carries the predicted-time gate ---------------
    n = max(48, int(_APPMC_N * scale))
    g = erdos_renyi(n, n * _APPMC_DEG // 2, philox_stream(seed + 1),
                    weighted=True)

    def run_appmc(backend, shrink):
        return approx_minimum_cut(g, _P, seed=seed, shrink=shrink,
                                  backend=backend)

    cluster = _configs(run_appmc, CLUSTER_MACHINE)
    default = _configs(run_appmc, None)
    base, best = cluster["base"], cluster["fused_shrink"]
    estimates = {k: r["_res"].estimate for k, r in cluster.items()}
    estimates.update({f"default_{k}": r["_res"].estimate
                      for k, r in default.items()})
    out["appmc_dense"] = {
        "n": n, "m": g.m, "p": _P,
        "cluster": _strip(cluster),
        "default": _strip(default),
        "reduction": base["total_s"] / best["total_s"],
        "default_reduction": (default["base"]["total_s"]
                              / default["fused_shrink"]["total_s"]),
        "values_match": len(set(estimates.values())) == 1,
    }

    # -- cc_multiround: group-shrink cuts total work -----------------------
    cn = max(320, int(_CC_N * scale))
    gc = bridge_path_graph(cn, _CC_REP, _CC_GAPS)

    def run_cc(backend, shrink):
        return connected_components(gc, _P, seed=seed, shrink=shrink,
                                    backend=backend)

    cfgs = _configs(run_cc, None)
    base, best = cfgs["base"], cfgs["fused_shrink"]
    labels = [r["_res"].labels for r in cfgs.values()]
    counts = {r["_res"].n_components for r in cfgs.values()}
    tracer = RecordingTracer()
    traced = connected_components(
        gc, _P, seed=seed, shrink=True,
        backend=SimBackend(tracer=tracer, fuse=True))
    kinds = [ev.kind for ev in traced.trace]
    ss_by_rank: dict[int, int] = {}
    for ev in traced.trace:
        for i, r in enumerate(ev.participants):
            ss_by_rank[r] = max(ss_by_rank.get(r, 0), ev.supersteps[i])
    out["cc_multiround"] = {
        "n": cn, "m": gc.m, "p": _P,
        "default": _strip(cfgs),
        "ops_reduction": base["total_ops"] / max(best["total_ops"], 1.0),
        "shrink_fired": "split" in kinds,
        "released_min_supersteps": min(ss_by_rank.values()),
        "max_supersteps": max(ss_by_rank.values()),
        "values_match": (
            len(counts) == 1
            and all(np.array_equal(labels[0], lb) for lb in labels[1:])
            and traced.n_components in counts
            and np.array_equal(traced.labels, labels[0])
        ),
    }

    out["meta"] = {"scale": scale, "seed": seed, "p": _P}
    out["reduction_ok"] = out["appmc_dense"]["reduction"] >= REDUCTION_FLOOR
    out["ops_reduction_ok"] = (out["cc_multiround"]["ops_reduction"]
                               >= OPS_REDUCTION_FLOOR)
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="workload size multiplier (default 1.0)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--json", action="store_true",
                    help="machine-readable output")
    args = ap.parse_args(argv)
    r = run_benchmarks(scale=args.scale, seed=args.seed)
    if args.json:
        print(json.dumps(r, indent=1, sort_keys=True))
        return 0
    a = r["appmc_dense"]
    print(f"appmc_dense (n={a['n']}, m={a['m']}, p={a['p']}):")
    for profile in ("cluster", "default"):
        cfg = a[profile]
        row = " | ".join(
            f"{k} {v['total_s'] * 1e3:7.3f} ms ({v['supersteps']} ss)"
            for k, v in cfg.items())
        print(f"  {profile:<8} {row}")
    print(f"  reduction: {a['reduction']:.2f}x cluster "
          f"(floor {REDUCTION_FLOOR:g}x), "
          f"{a['default_reduction']:.2f}x default; "
          f"values_match={a['values_match']}")
    c = r["cc_multiround"]
    print(f"cc_multiround (n={c['n']}, m={c['m']}, p={c['p']}):")
    row = " | ".join(
        f"{k} {v['total_ops']:.0f} total ops ({v['supersteps']} ss)"
        for k, v in c["default"].items())
    print(f"  {row}")
    print(f"  ops_reduction: {c['ops_reduction']:.2f}x "
          f"(floor {OPS_REDUCTION_FLOOR:g}x), shrink_fired="
          f"{c['shrink_fired']}, released rank supersteps "
          f"{c['released_min_supersteps']} vs max {c['max_supersteps']}, "
          f"values_match={c['values_match']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
