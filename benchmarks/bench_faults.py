"""Fault-tolerant scheduler benchmark: overhead off, recovery on.

Runs the exact minimum cut on a fixed random graph three ways and writes
``results/BENCH_faults.json``:

* ``legacy``: the monolithic ``minimum_cut`` dispatch (no scheduler);
* ``scheduled``: the same trials through :class:`repro.sched.TrialScheduler`
  with no faults injected — the zero-fault tax;
* ``recovery``: the scheduled run with a deterministic worker crash at
  the first dispatch, which the scheduler must absorb with one retry.

The headline numbers are deterministic, so they gate exactly in
:mod:`benchmarks.perf_gate`:

* ``values_match`` / ``recovery_value_match`` — all three paths produce
  the same cut value;
* ``fingerprint_match`` — the recovery run's trial ledger is
  bit-identical to the fault-free scheduled run's (per-trial RNG streams
  are keyed by global trial id, so a retry replays the same trials);
* ``predicted_overhead_pct`` — scheduler overhead on the *analytic*
  time model (machine-noise-free): the scheduled run's predicted seconds
  over the legacy run's.  Acceptance bar: <= 2%.

Wall-clock seconds (min over repeats) are recorded for context but never
gated — they are machine noise territory.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_faults
    PYTHONPATH=src python -m benchmarks.bench_faults --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Acceptance bar: predicted (analytic-model) scheduler overhead with
#: fault injection off, as a percentage of the legacy dispatch.
OVERHEAD_CEILING_PCT = 2.0


def _workload(scale: float, seed: int):
    from repro.graph import erdos_renyi
    from repro.rng import philox_stream

    n = max(96, int(512 * scale))
    m = max(n + 1, int(4096 * scale))
    g = erdos_renyi(n, m, philox_stream(seed + 13), weighted=True)
    trials = 16
    return g, trials


def _timed(fn, repeats: int):
    """(result of last call, min wall seconds over repeats)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def run_benchmarks(scale: float = 1.0, seed: int = 0,
                   repeats: int = 3) -> dict:
    from repro.core.mincut import minimum_cut
    from repro.faults import parse_fault_plan
    from repro.sched import TrialScheduler

    g, trials = _workload(scale, seed)
    p = 4

    legacy, legacy_wall = _timed(
        lambda: minimum_cut(g, p=p, seed=seed, trials=trials), repeats)
    sched, sched_wall = _timed(
        lambda: TrialScheduler().run(g, p, seed=seed, trials=trials),
        repeats)
    plan = parse_fault_plan("crash:rank=1,step=1")
    recov, recov_wall = _timed(
        lambda: TrialScheduler(fault_plan=plan, backoff_s=0.0).run(
            g, p, seed=seed, trials=trials),
        repeats)

    legacy_pred = legacy.time.total_s
    sched_pred = sched.time.total_s
    overhead_pct = 100.0 * (sched_pred - legacy_pred) / legacy_pred

    return {
        "workload": {"n": g.n, "m": g.m, "p": p, "trials": trials,
                     "seed": seed},
        "legacy": {"value": legacy.value, "predicted_s": legacy_pred,
                   "wall_s": legacy_wall},
        "scheduled": {"value": sched.value, "predicted_s": sched_pred,
                      "wall_s": sched_wall, "dispatches": sched.dispatches,
                      "fingerprint": sched.ledger.fingerprint()},
        "recovery": {"value": recov.value, "wall_s": recov_wall,
                     "retries": recov.retries,
                     "fingerprint": recov.ledger.fingerprint()},
        "values_match": legacy.value == sched.value,
        "recovery_value_match": recov.value == sched.value,
        "recovery_retried": recov.retries == 1,
        "fingerprint_match": (recov.ledger.fingerprint()
                              == sched.ledger.fingerprint()),
        "predicted_overhead_pct": overhead_pct,
        "overhead_ok": overhead_pct <= OVERHEAD_CEILING_PCT,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)

    record = run_benchmarks(scale=args.scale, seed=args.seed,
                            repeats=args.repeats)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "BENCH_faults.json"
    out.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    print(f"legacy     predicted {record['legacy']['predicted_s']:.6f}s  "
          f"wall {record['legacy']['wall_s']:.4f}s  "
          f"value {record['legacy']['value']:g}")
    print(f"scheduled  predicted {record['scheduled']['predicted_s']:.6f}s  "
          f"wall {record['scheduled']['wall_s']:.4f}s  "
          f"overhead {record['predicted_overhead_pct']:+.3f}%")
    print(f"recovery   wall {record['recovery']['wall_s']:.4f}s  "
          f"retries {record['recovery']['retries']}  "
          f"ledger match {record['fingerprint_match']}")
    print(f"wrote {out}")
    ok = (record["values_match"] and record["recovery_value_match"]
          and record["recovery_retried"] and record["fingerprint_match"]
          and record["overhead_ok"])
    if not ok:
        print("bench_faults: acceptance bars FAILED", file=sys.stderr)
        return 1
    print(f"bench_faults: OK (overhead within {OVERHEAD_CEILING_PCT:g}%, "
          f"recovery bit-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
