"""Figure 6: MC strong scaling on a dense graph, with model prediction.

Paper setup: R-MAT n = 16'000, d = 4'000, 48-1536 cores.  Near-linear
scaling; the fitted §5.3 model tracks the measurements; the MPI fraction is
larger than on sparse inputs (the parallel trials' communication pattern is
more complex) but still decreases proportionately to p in absolute terms.
Both sequential baselines timed out (> 3 hours) on this input.

Scaled reproduction: R-MAT n = 192, d ~ 96, p = 2..32 with a fixed trial
count so that larger p crosses into the processor-group regime (p > t,
fully parallel trials with the distributed eager + recursive steps).
"""

import pytest

from repro.bsp.machine import fit_model
from repro.core import minimum_cut
from repro.graph import rmat
from repro.rng import philox_stream

from common import MODEL, once, report_experiment

SEED = 6
N, M_EDGES, TRIALS = 192, 9_216, 8


@pytest.fixture(scope="module")
def graph():
    return rmat(N, M_EDGES, philox_stream(SEED), simple=False)


@pytest.fixture(scope="module")
def sweep(graph):
    rows = []
    reports = []
    times = []
    for p in (2, 4, 8, 16, 32):
        res = minimum_cut(graph, p=p, seed=SEED, trials=TRIALS)
        t = MODEL.predict(res.report)
        rows.append([p, t.total_s, t.app_s, t.mpi_s, t.mpi_fraction])
        reports.append(res.report)
        times.append(t.total_s)
    fitted = fit_model(reports, times)
    for row, rep in zip(rows, reports):
        row.append(fitted.predict(rep).total_s)
    return rows


def test_fig6_strong_scaling_dense(benchmark, graph, sweep):
    report_experiment(
        "fig6_mc_strong_dense",
        f"MC strong scaling, R-MAT n={N} d~{2 * M_EDGES // N}, "
        f"{TRIALS} trials (p>t uses processor groups)",
        ["cores", "time_s", "app_s", "mpi_s", "mpi_frac", "model_s"],
        sweep,
        notes="shape: near-linear scaling until the processor-group regime "
              "amortizes collective latency poorly at this toy scale (the "
              "paper's full-size input keeps scaling); model tracks "
              "measurement; MPI fraction larger than on the sparse input",
    )
    best = min(r[1] for r in sweep)
    assert best < sweep[0][1] / 3, "strong scaling up to the latency floor"
    assert sweep[-1][2] < sweep[0][2] / 6, "application time keeps scaling"
    for row in sweep:
        assert row[5] == pytest.approx(row[1], rel=0.6), "model tracks"
    once(benchmark, minimum_cut, graph, p=32, seed=SEED, trials=TRIALS)


def test_fig6_mpi_fraction_larger_than_sparse(benchmark, graph, sweep):
    """Cross-reference against Fig 1: dense MC spends a larger share in
    communication than the sparse embarrassingly-parallel regime."""
    import json
    from common import RESULTS_DIR

    fig1 = RESULTS_DIR / "fig1b_mc_mpi_ratio.json"
    rows = [[r[0], r[4]] for r in sweep]
    report_experiment(
        "fig6_mc_mpi_fraction",
        "MC MPI fraction on the dense input",
        ["cores", "mpi_fraction"],
        rows,
    )
    if fig1.exists():  # fig1 bench ran first in a full sweep
        sparse_rows = json.loads(fig1.read_text())["rows"]
        sparse_at_8 = dict((int(r[0]), r[1]) for r in sparse_rows).get(8)
        dense_at_8 = dict((int(r[0]), r[1]) for r in rows).get(8)
        if sparse_at_8 is not None and dense_at_8 is not None:
            assert dense_at_8 > sparse_at_8
    once(benchmark, minimum_cut, graph, p=16, seed=SEED, trials=4)
