"""Benchmarks for the library extensions beyond the paper's figures.

* Hybrid CC (§3.2 remark): sparsification as a preconditioner for the
  hooking algorithm — compared against pure sampling CC and raw PBGL.
* Heavy-edge preprocessing (§2.3): work saved on wide-weight-spread inputs.
* All-minimum-cuts (Lemma 4.3): enumeration completeness on graphs with
  known cut structure.
* Minimum spanning forest: the Borůvka extension's costs vs the CC run it
  generalizes.
"""

import numpy as np
from repro.baselines import pbgl_cc
from repro.core import (
    connected_components,
    minimum_cut,
    minimum_cuts,
    minimum_spanning_forest,
)
from repro.graph import EdgeList, erdos_renyi, weighted_cycle
from repro.rng import philox_stream

from common import MODEL, once, report_experiment

SEED = 14


def test_ext_hybrid_cc(benchmark):
    g = erdos_renyi(4_096, 32_768, philox_stream(SEED))
    rows = []
    for p in (4, 8):
        pure = connected_components(g, p=p, seed=SEED)
        hyb = connected_components(g, p=p, seed=SEED, hybrid=True)
        _, _, raw, _ = pbgl_cc(g, p=p, seed=SEED)
        rows.append([
            p,
            pure.report.supersteps, hyb.report.supersteps, raw.supersteps,
            MODEL.predict(pure.report).total_s,
            MODEL.predict(hyb.report).total_s,
            MODEL.predict(raw).total_s,
        ])
    report_experiment(
        "ext_hybrid_cc",
        "pure sampling CC vs sparsify+hooking hybrid vs raw PBGL",
        ["p", "pure_steps", "hybrid_steps", "pbgl_steps",
         "pure_s", "hybrid_s", "pbgl_s"],
        rows,
        notes="§3.2 remark: sparsification preconditions other CC "
              "algorithms — the hybrid cuts PBGL's supersteps several-fold, "
              "while pure sampling CC stays the cheapest",
    )
    for row in rows:
        assert row[2] < row[3], "hybrid must beat raw PBGL on supersteps"
        assert row[1] <= row[2], "pure sampling CC needs the fewest steps"
    once(benchmark, connected_components, g, p=8, seed=SEED, hybrid=True)


def test_ext_preprocessing(benchmark):
    """Wide weight spread: heavy-edge contraction shrinks the instance."""
    rng = philox_stream(SEED)
    n = 256
    base = erdos_renyi(n, 4 * n, rng)
    # a backbone of very heavy edges + one light pendant-ish region
    heavy = np.minimum(np.arange(n - 1), 1) * 0 + 500.0
    bb_u = np.arange(n - 1, dtype=np.int64)
    bb_v = bb_u + 1
    g = EdgeList(
        n,
        np.concatenate([base.u, bb_u]),
        np.concatenate([base.v, bb_v]),
        np.concatenate([np.full(base.m, 1.0), heavy]),
    )
    plain = minimum_cut(g, p=4, seed=SEED, trials=16)
    pre = minimum_cut(g, p=4, seed=SEED, trials=16, preprocess=True)
    rows = [[
        "plain", g.n, plain.report.total_ops, plain.value,
    ], [
        "preprocessed", g.n, pre.report.total_ops, pre.value,
    ]]
    report_experiment(
        "ext_preprocessing",
        "MC with vs without §2.3 heavy-edge contraction (weight spread 500x)",
        ["variant", "n", "total_ops", "value"],
        rows,
        notes="heavy edges provably cross no minimum cut; contracting them "
              "first shrinks every trial",
    )
    assert pre.value == plain.value
    assert pre.report.total_ops < plain.report.total_ops
    once(benchmark, minimum_cut, g, p=4, seed=SEED, trials=8, preprocess=True)


def test_ext_all_minimum_cuts(benchmark):
    rows = []
    for n in (5, 6, 7):
        g = weighted_cycle(n)
        res = minimum_cuts(g, p=4, seed=SEED, trials=40 * n)
        expected = n * (n - 1) // 2
        rows.append([n, res.value, len(res.sides), expected])
    report_experiment(
        "ext_all_min_cuts",
        "all-minimum-cuts enumeration on cycles (C(n,2) tied cuts)",
        ["n", "value", "found", "expected"],
        rows,
        notes="Lemma 4.3: the trial budget finds every minimum cut w.h.p.",
    )
    for row in rows:
        assert row[2] == row[3], f"missed cuts on the {row[0]}-cycle"
    once(benchmark, minimum_cuts, weighted_cycle(6), p=4, seed=SEED, trials=60)


def test_ext_spanning_forest(benchmark):
    g = erdos_renyi(2_048, 16_384, philox_stream(SEED + 1), weighted=True)
    msf = minimum_spanning_forest(g, p=8, seed=SEED)
    cc = connected_components(g, p=8, seed=SEED)
    rows = [[
        "msf", msf.report.supersteps, msf.report.volume,
        MODEL.predict(msf.report).total_s,
    ], [
        "cc", cc.report.supersteps, cc.report.volume,
        MODEL.predict(cc.report).total_s,
    ]]
    report_experiment(
        "ext_spanning_forest",
        "Boruvka MSF vs plain CC on the same input (p=8)",
        ["algorithm", "supersteps", "volume", "time_s"],
        rows,
        notes="the MSF pays O(log n) candidate rounds where CC needs O(1) "
              "sampling rounds — components alone are strictly cheaper",
    )
    assert msf.n_components == cc.n_components
    assert cc.report.supersteps < msf.report.supersteps
    once(benchmark, minimum_spanning_forest, g, p=8, seed=SEED)
