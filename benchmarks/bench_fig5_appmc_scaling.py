"""Figure 5: AppMC strong and weak scaling.

Paper setup: (5a) strong scaling on a dense R-MAT (n = 256'000, d = 4'096),
36-360 cores, app/MPI split — AppMC scales to hundreds of processors on
dense inputs, MPI ~26% of time at 144 cores; (5b) weak scaling on R-MAT
n = 16'000 with 2.048M edges per node — time stays near-constant: growing
edges and processors 8x increased time only 1.55x.

Scaled reproduction: strong scaling on R-MAT n = 1'024, d ~ 256, p = 2..32;
weak scaling with fixed n = 1'024 and ~16'384 edges per processor.
"""

import pytest

from repro.core import approx_minimum_cut
from repro.graph import rmat
from repro.rng import philox_stream

from common import MODEL, once, report_experiment

SEED = 5
N = 1_024


@pytest.fixture(scope="module")
def dense_graph():
    return rmat(N, 524_288, philox_stream(SEED), simple=False)


def test_fig5a_strong_scaling(benchmark, dense_graph):
    rows = []
    for p in (2, 4, 8, 16):
        res = approx_minimum_cut(dense_graph, p=p, seed=SEED, trials_per_level=4)
        t = MODEL.predict(res.report)
        rows.append([p, t.total_s, t.app_s, t.mpi_s, t.mpi_fraction])
    report_experiment(
        "fig5a_appmc_strong_dense",
        f"AppMC strong scaling, R-MAT n={N} d~512, app/MPI split",
        ["cores", "total_s", "app_s", "mpi_s", "mpi_frac"],
        rows,
        notes="shape: scales on dense inputs; MPI share noticeable but "
              "bounded (paper: ~26% at 144 cores)",
    )
    assert rows[-1][2] < rows[0][2] / 3.5, "application time strong-scales"
    assert all(r[4] < 0.8 for r in rows), "MPI share stays bounded"
    once(benchmark, approx_minimum_cut, dense_graph, p=16, seed=SEED,
         trials_per_level=4)


def test_fig5b_weak_scaling(benchmark):
    """Edges grow with the processor count; time should stay near-flat."""
    edges_per_proc = 16_384
    rows = []
    for p in (2, 4, 8, 16):
        g = rmat(N, edges_per_proc * p, philox_stream(SEED + p), simple=False)
        res = approx_minimum_cut(g, p=p, seed=SEED, trials_per_level=4)
        t = MODEL.predict(res.report)
        rows.append([p, g.m, t.total_s])
    report_experiment(
        "fig5b_appmc_weak",
        f"AppMC weak scaling, R-MAT n={N}, {edges_per_proc} edges/proc",
        ["cores", "edges", "total_s"],
        rows,
        notes="paper: 8x more edges and processors -> only 1.55x more time",
    )
    # 8x growth in edges+procs costs well under 8x in time.
    growth = rows[-1][2] / rows[0][2]
    assert growth < 4.0, f"weak scaling broke: {growth:.2f}x time for 8x work"
    g = rmat(N, edges_per_proc * 4, philox_stream(SEED + 4), simple=False)
    once(benchmark, approx_minimum_cut, g, p=4, seed=SEED, trials_per_level=4)
