"""Figure 9: sequential cache efficiency of KS, MC and SW.

Paper setup: Erdős–Rényi d = 32 with growing n, full executions at 0.9
success probability.  (9a) SW incurs dramatically more cache misses than
both randomized codes as n grows (its n^3 whole-matrix traffic vs their
~n^2 log n); (9b) the same effect in execution time (SW ~40x slower than
KS at the paper's scale; both baselines time out on large dense inputs).

Scaled reproduction: ER d = 8, n in {96, 128, 192}, LRU-traced with a
2k-word cache, compared *per recursive-contraction / per phase-sweep*:
SW is deterministic (one execution), the randomized codes are normalized
to one repetition.  At the paper's scale (n >= 8000) full 0.9-success
executions are past the crossover where SW's n^3 traffic dwarfs the
repetition factors; at toy scale the repetition factors still dominate,
so the per-unit comparison is the one whose shape transfers.  Both views
are recorded.

Fidelity note: our sequential MC profits from the Eager Step and lands
below KS, whereas the paper's hand-tuned KS is the most efficient — a
constant-factor effect the tracer does not model.  The headline shape —
SW diverging above both with a ~n^3 trend — is reproduced.
"""

import pytest

from repro.baselines import karger_stein, stoer_wagner
from repro.baselines.karger_stein import ks_repetitions
from repro.cache import LRUTracker
from repro.core import minimum_cut_sequential, num_trials
from repro.graph import erdos_renyi
from repro.rng import philox_stream

from common import once, report_experiment, sequential_time

SEED = 9
CACHE_M, CACHE_B = 2_048, 8
NS = (96, 128, 192)
KS_REPS_MEASURED = 2
MC_TRIALS_MEASURED = 8


def tracker():
    return LRUTracker(M=CACHE_M, B=CACHE_B)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in NS:
        g = erdos_renyi(n, 4 * n, philox_stream(SEED), weighted=True)
        ks_scale = ks_repetitions(n) / KS_REPS_MEASURED
        mc_scale = num_trials(n, g.m) / MC_TRIALS_MEASURED

        mem_ks = tracker()
        karger_stein(g, seed=SEED, repetitions=KS_REPS_MEASURED, mem=mem_ks)
        mem_mc = tracker()
        minimum_cut_sequential(g, seed=SEED, trials=MC_TRIALS_MEASURED,
                               mem=mem_mc)
        mem_sw = tracker()
        stoer_wagner(g, mem=mem_sw)

        rows.append([
            n,
            # per-repetition traffic (the comparable unit at toy scale)
            mem_ks.miss_count / KS_REPS_MEASURED,
            mem_mc.miss_count / MC_TRIALS_MEASURED,
            float(mem_sw.miss_count),
            sequential_time(mem_ks) / KS_REPS_MEASURED,
            sequential_time(mem_mc) / MC_TRIALS_MEASURED,
            sequential_time(mem_sw),
            # full 0.9-success execution counts, for the record
            mem_ks.miss_count * ks_scale,
            mem_mc.miss_count * mc_scale,
        ])
    return rows


def test_fig9a_cache_misses(benchmark, sweep):
    rows = [r[:4] + r[7:9] for r in sweep]
    report_experiment(
        "fig9a_seq_cache_misses",
        "sequential LLC misses per contraction run: KS vs MC vs SW, ER d=8 "
        "(LRU-traced; last two columns: full 0.9-success executions)",
        ["n", "ks_misses", "mc_misses", "sw_misses", "ks_full", "mc_full"],
        rows,
        notes="shape: SW incurs dramatically more misses per run, with a "
              "~n^3 trend vs the randomized codes' ~n^2; MC below KS via "
              "the Eager Step (paper has KS lowest — constant-factor "
              "fidelity limit). Full-execution counts cross over only at "
              "n >~ 10^3, beyond the traceable scale.",
    )
    import numpy as np

    last = rows[-1]
    assert last[3] > 2 * last[1], "SW misses far above KS per run"
    assert last[3] > 2 * last[2], "SW misses far above MC per run"
    # SW's miss growth is superquadratic (n^3 whole-matrix phases).
    ns = np.log([r[0] for r in rows])
    sw = np.log([r[3] for r in rows])
    slope = np.polyfit(ns, sw, 1)[0]
    assert slope > 2.4, f"SW trend should be ~cubic, got n^{slope:.2f}"
    g = erdos_renyi(64, 256, philox_stream(SEED), weighted=True)
    once(benchmark, karger_stein, g, seed=SEED, repetitions=1, mem=tracker())


def test_fig9b_execution_time(benchmark, sweep):
    rows = [[r[0], r[4], r[5], r[6]] for r in sweep]
    report_experiment(
        "fig9b_seq_time",
        "sequential time per contraction run: KS vs MC vs SW, ER d=8",
        ["n", "ks_s", "mc_s", "sw_s"],
        rows,
        notes="shape: SW's cubic whole-matrix phases give it the steepest "
              "per-run growth; the randomized codes' repetition factors "
              "dominate only below the (untraceable) crossover size",
    )
    last = rows[-1]
    assert last[3] > last[2], "SW slower than one MC trial at the largest n"
    g = erdos_renyi(64, 256, philox_stream(SEED), weighted=True)
    once(benchmark, minimum_cut_sequential, g, seed=SEED, trials=2,
         mem=tracker())
