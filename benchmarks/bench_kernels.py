"""Microbenchmarks of the vectorized kernel layer vs its scalar references.

Each benchmark times one :mod:`repro.kernels` entry point against the
original per-element Python loop it replaced (kept verbatim in
``repro.kernels.reference``) on the same inputs, and reports wall-clock
seconds plus the speedup ratio.  The regression gate
(``python -m benchmarks.perf_gate --check``) runs these and fails if the
vectorized timings regress past the blessed baseline or a speedup falls
under its floor.

Run standalone::

    PYTHONPATH=src python -m benchmarks.bench_kernels [--scale N] [--json]

``--scale`` multiplies every input size (default 1.0: a 10^5-edge
multigraph for the contraction benchmark, matching the acceptance
criterion); ``--json`` prints machine-readable results.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bsp.comm import payload_words
from repro.kernels import (
    bulk_contract_edges,
    cc_roots,
    prefix_select_labels,
    scalar_bulk_contract,
    scalar_cc_roots,
    scalar_prefix_select,
)

__all__ = ["run_benchmarks", "BENCHES"]

#: Default sizes at --scale 1.0.
_CONTRACT_EDGES = 100_000
_CONTRACT_N = 5_000
_CC_EDGES = 60_000
_CC_N = 30_000
_PREFIX_EDGES = 40_000
_PREFIX_N = 20_000
_PAYLOAD_PARCELS = 20_000


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock of ``repeats`` runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _multigraph(rng, n: int, m: int):
    """Random multigraph edges: heavy on parallel edges and self-loops."""
    # Sampling endpoints from sqrt(n*m)-ish support makes parallel classes
    # common, which is the work the combine step exists to do.
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n, size=m, dtype=np.int64)
    loops = rng.random(m) < 0.05
    v[loops] = u[loops]
    w = rng.random(m) + 0.5
    return u, v, w


def bench_contract(scale: float, rng) -> dict:
    """Bulk contraction of a random multigraph: kernel vs dict loop."""
    m = max(16, int(_CONTRACT_EDGES * scale))
    n = max(8, int(_CONTRACT_N * scale))
    u, v, w = _multigraph(rng, n, m)
    n_new = max(2, n // 3)
    labels = rng.integers(0, n_new, size=n, dtype=np.int64)

    fast_t, fast = _best_of(lambda: bulk_contract_edges(u, v, w, labels, n_new))
    slow_t, slow = _best_of(
        lambda: scalar_bulk_contract(u, v, w, labels, n_new), repeats=1
    )
    assert np.array_equal(fast[0], slow[0]) and np.array_equal(fast[1], slow[1]) \
        and np.allclose(fast[2], slow[2], rtol=1e-12, atol=0.0), \
        "vectorized contraction disagrees with scalar reference"
    return {"m": m, "fast_s": fast_t, "slow_s": slow_t,
            "speedup": slow_t / fast_t}


def bench_cc(scale: float, rng) -> dict:
    """Connected-component roots: compiled/vectorized vs per-edge loop."""
    m = max(16, int(_CC_EDGES * scale))
    n = max(8, int(_CC_N * scale))
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n, size=m, dtype=np.int64)

    fast_t, fast = _best_of(lambda: cc_roots(n, u, v))
    jump_t, jump = _best_of(lambda: cc_roots(n, u, v, backend="jumping"))
    slow_t, slow = _best_of(lambda: scalar_cc_roots(n, u, v), repeats=1)
    assert np.array_equal(fast, slow) and np.array_equal(jump, slow), \
        "cc backends disagree"
    return {"m": m, "fast_s": fast_t, "jumping_s": jump_t, "slow_s": slow_t,
            "speedup": slow_t / fast_t}


def bench_prefix_select(scale: float, rng) -> dict:
    """Prefix Selection: MSF-replay kernel vs incremental union-find loop."""
    m = max(16, int(_PREFIX_EDGES * scale))
    n = max(8, int(_PREFIX_N * scale))
    u = rng.integers(0, n, size=m, dtype=np.int64)
    v = rng.integers(0, n, size=m, dtype=np.int64)
    t = max(2, n // 10)

    fast_t, fast = _best_of(lambda: prefix_select_labels(n, u, v, t))
    slow_t, slow = _best_of(lambda: scalar_prefix_select(n, u, v, t), repeats=1)
    assert np.array_equal(fast[0], slow[0]) and fast[1] == slow[1], \
        "prefix_select kernels disagree"
    return {"m": m, "fast_s": fast_t, "slow_s": slow_t,
            "speedup": slow_t / fast_t}


def _generic_payload_words(x):
    """The pre-fast-path generic walk, kept here as the timing reference."""
    if x is None:
        return 0
    if isinstance(x, np.ndarray):
        return int(x.size)
    if hasattr(x, "__bsp_words__"):
        return int(x.__bsp_words__())
    if isinstance(x, (list, tuple)):
        return sum(_generic_payload_words(item) for item in x)
    if isinstance(x, dict):
        return sum(1 + _generic_payload_words(vv) for vv in x.values())
    return 1


def bench_payload_words(scale: float, rng) -> dict:
    """Wire-volume accounting of sort parcels: fast path vs generic walk."""
    k = max(16, int(_PAYLOAD_PARCELS * scale))
    parcels = [
        (np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64),
         np.zeros(3, dtype=np.float64))
        for _ in range(k)
    ]
    fast_t, fast = _best_of(lambda: payload_words(parcels))
    slow_t, slow = _best_of(lambda: _generic_payload_words(parcels))
    assert fast == slow, "payload_words fast path disagrees with generic walk"
    return {"parcels": k, "fast_s": fast_t, "slow_s": slow_t,
            "speedup": slow_t / fast_t}


#: name -> benchmark callable(scale, rng) -> result dict.
BENCHES = {
    "contract": bench_contract,
    "cc": bench_cc,
    "prefix_select": bench_prefix_select,
    "payload_words": bench_payload_words,
}


def run_benchmarks(scale: float = 1.0, seed: int = 0, names=None) -> dict:
    """Run the selected microbenchmarks; returns ``{name: result_dict}``."""
    rng = np.random.default_rng(seed)
    out = {}
    for name, fn in BENCHES.items():
        if names is not None and name not in names:
            continue
        out[name] = fn(scale, rng)
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="input size multiplier (default 1.0)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--json", action="store_true",
                    help="print machine-readable JSON instead of a table")
    ap.add_argument("--bench", action="append", choices=sorted(BENCHES),
                    help="run only the named benchmark (repeatable)")
    args = ap.parse_args(argv)

    results = run_benchmarks(args.scale, args.seed, names=args.bench)
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
        return 0
    print(f"kernel microbenchmarks (scale={args.scale:g})")
    print(f"{'bench':<16}{'vectorized':>12}{'scalar':>12}{'speedup':>10}")
    for name, r in results.items():
        print(f"{name:<16}{r['fast_s']:>11.4f}s{r['slow_s']:>11.4f}s"
              f"{r['speedup']:>9.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
