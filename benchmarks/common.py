"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one table/figure of the paper's §5 at reduced
scale: it sweeps the figure's x-axis, reports the paper's metric computed
from BSP counters (or LRU cache simulation for the sequential studies),
prints the series in a paper-style table, and records them under
``results/`` for EXPERIMENTS.md.

"Execution time" is always the §5.3 machine-model prediction applied to
the measured counters — the same constant-factor translation the authors
fitted to their Piz Daint runs — so parallel algorithms and sequential
baselines are comparable on one axis.
"""

from __future__ import annotations

from pathlib import Path

from repro.bsp.machine import MachineModel
from repro.cache.model import CacheParams
from repro.cache.traced import MemoryTracker
from repro.harness.report import format_table, write_experiment_record

#: One machine model shared by all benchmarks (Piz Daint-flavoured).
MODEL = MachineModel()

#: Scaled-down LLC for the cache studies: big enough to hold hot arrays of
#: small inputs, small enough that the sweep's larger inputs overflow it
#: (the paper's 45 MiB LLC plays the same role at 10^6-vertex scale).
STUDY_CACHE = CacheParams(M=1 << 15, B=8)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def sequential_time(mem: MemoryTracker, model: MachineModel = MODEL) -> float:
    """Predicted seconds of an instrumented sequential run."""
    return mem.op_count * model.op_s + mem.miss_count * model.miss_s


def report_experiment(exp_id, description, headers, rows, notes=""):
    """Print the paper-style series and persist them under results/."""
    table = format_table(f"[{exp_id}] {description}", headers, rows)
    print("\n" + table)
    if notes:
        print(f"  note: {notes}")
    write_experiment_record(
        exp_id, description=description, headers=headers, rows=rows,
        notes=notes, results_dir=RESULTS_DIR,
    )


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulated runs take seconds; statistical repetition comes from the
    medians-over-seeds methodology inside each experiment, not from
    re-running the whole sweep.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
