"""Dynamic-graph benchmark: incremental maintenance against full recompute.

``repro.dynamic`` exists so that a churning graph does not pay a full
BSP connected-components dispatch per update batch.  This benchmark
prices both paths on the same deterministic churn workload
(:func:`repro.dynamic.update_stream`) and writes
``results/BENCH_dynamic.json``:

* ``incremental`` — a :class:`~repro.dynamic.DynamicGraph` absorbing
  every batch (O(alpha) bookkeeping + bounded reconnection) and
  answering ``query_components()`` after each epoch: sustained
  updates/s plus per-epoch query latency percentiles;
* ``full`` — the no-subsystem alternative: re-running
  :func:`~repro.core.connected_components` from scratch on the same
  epoch snapshot (same seed discipline as the incremental fallback, so
  the canonicalized labels must agree bit for bit);
* ``serve`` — the same stream through a live daemon session (sim
  backend, unix socket): warm ``dyn_components`` latency at bounded
  staleness (every answer certifies the epoch it describes).

Acceptance bars (gated in :mod:`benchmarks.perf_gate`):

* ``speedup_ok`` — incremental per-epoch update+query must run at least
  :data:`DYNAMIC_SPEEDUP_FLOOR` x faster than the full recompute;
* ``results_match`` — incremental labels equal the canonicalized full
  recompute at **every** epoch, and the final exact/approx cut values
  agree with a fresh from-scratch replay.

Wall-clock seconds are environment-dependent; the gate checks the flags
and the deterministic fields (final label sha, component count, cut
values, sparsifier sha), never raw seconds.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_dynamic
    PYTHONPATH=src python -m benchmarks.bench_dynamic --scale 2.0
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Acceptance bar: full-recompute latency over incremental update+query.
DYNAMIC_SPEEDUP_FLOOR = 3.0


def _labels_sha(labels) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype=np.int64).tobytes()).hexdigest()


def _percentiles(samples: list[float]) -> dict:
    xs = np.sort(np.asarray(samples))
    return {
        "n": len(xs),
        "p50_s": float(np.percentile(xs, 50)),
        "p99_s": float(np.percentile(xs, 99)),
        "mean_s": float(xs.mean()),
    }


def churn_workload(scale: float = 1.0, seed: int = 0):
    """The benchmark's fixed (graph, update stream) churn workload."""
    from repro.dynamic import update_stream
    from repro.graph import erdos_renyi
    from repro.rng import philox_stream

    n = max(200, int(600 * scale))
    g = erdos_renyi(n, 4 * n, philox_stream(seed + 23), weighted=True)
    batches = max(6, int(12 * scale))
    stream = update_stream(g, seed=seed + 1, batches=batches,
                           batch_size=max(8, int(32 * scale)))
    return g, stream


def incremental_vs_full(scale: float = 1.0, seed: int = 0, p: int = 4) -> dict:
    """Per-epoch incremental maintenance vs from-scratch recompute.

    The full leg runs :func:`~repro.core.connected_components` on the
    identical epoch snapshot with the seed the incremental structure's
    own fallback would use, then canonicalizes — so agreement is
    required bit for bit, not just up to relabeling.
    """
    from repro.core import connected_components
    from repro.dynamic import DynamicGraph, canonical_roots
    from repro.dynamic.graph import _CC_SALT

    g, stream = churn_workload(scale=scale, seed=seed)
    dyn = DynamicGraph(g, p=p, seed=seed, backend="sim")

    update_s = 0.0
    total_ops = 0
    inc_lat, full_lat = [], []
    match = True
    for ops in stream:
        t0 = time.perf_counter()
        dyn.update_edges(ops)
        t1 = time.perf_counter()
        cc = dyn.query_components()
        t2 = time.perf_counter()
        update_s += t1 - t0
        total_ops += len(ops)
        inc_lat.append(t2 - t0)

        fallback_seed = dyn._streams.spawn(_CC_SALT + dyn.epoch).seed
        t0 = time.perf_counter()
        # From-scratch pays the canonical array rebuild AND the BSP
        # dispatch every epoch; the incremental query touches neither.
        snap = dyn.snapshot()
        full = connected_components(snap, p, seed=fallback_seed,
                                    backend="sim")
        roots = canonical_roots(np.asarray(full.labels))
        _, full_labels = np.unique(roots, return_inverse=True)
        full_lat.append(time.perf_counter() - t0)
        match &= bool(np.array_equal(cc.labels, full_labels))
    final = dyn.query_components()
    speedup = float(np.median(full_lat) / max(np.median(inc_lat), 1e-9))
    return {
        "n": g.n, "m": g.m, "p": p, "epochs": dyn.epoch,
        "total_update_ops": total_ops,
        "updates_per_s": total_ops / max(update_s, 1e-9),
        "incremental": _percentiles(inc_lat),
        "full": _percentiles(full_lat),
        "speedup": speedup,
        "speedup_ok": speedup >= DYNAMIC_SPEEDUP_FLOOR,
        "labels_match_every_epoch": bool(match),
        "final_n_components": int(final.n_components),
        "final_labels_sha256": _labels_sha(final.labels),
        "counters": dict(dyn.counters),
    }


def cut_determinism(scale: float = 1.0, seed: int = 0, p: int = 4) -> dict:
    """Warm cut queries after the churn, re-proved by a cold replay.

    Streams the workload once (querying as it goes, the warm path),
    then replays it into a fresh :class:`~repro.dynamic.DynamicGraph`
    with the **same query schedule** — approx answers are replay-
    deterministic (sparsifier rebuilds are query-triggered, which is
    why the serve session logs them), so the replay must report
    identical exact values and identical sparsifier bytes.
    """
    from repro.dynamic import DynamicGraph, update_stream
    from repro.graph import erdos_renyi
    from repro.rng import philox_stream

    # Its own small workload: the exact 2-out pipeline prices per-trial
    # BSP dispatches, so this leg checks determinism, not throughput.
    g = erdos_renyi(150, 600, philox_stream(seed + 29), weighted=True)
    stream = list(update_stream(g, seed=seed + 2, batches=6, batch_size=12))
    knobs = dict(p=p, seed=seed, backend="sim", trial_scale=0.2)

    warm = DynamicGraph(g, **knobs)
    for ops in stream:
        warm.update_edges(ops)
        if warm.epoch % 3 == 0:
            warm.query_cut(mode="approx")   # exercises drift/rebuild
    w_exact = warm.query_cut(mode="exact")
    w_approx = warm.query_cut(mode="approx")

    cold = DynamicGraph(g, **knobs)
    for ops in stream:
        cold.update_edges(ops)
        if cold.epoch % 3 == 0:
            cold.query_cut(mode="approx")
    c_exact = cold.query_cut(mode="exact")
    c_approx = cold.query_cut(mode="approx")

    match = (w_exact.value == c_exact.value
             and w_approx.value == c_approx.value
             and (w_approx.certificate.get("sparsifier_sha256")
                  == c_approx.certificate.get("sparsifier_sha256")))
    return {
        "exact_value": float(w_exact.value),
        "approx_value": float(w_approx.value),
        "sparsifier_sha256": w_approx.certificate.get("sparsifier_sha256"),
        "resparsifications": warm.counters["resparsifications"],
        "replay_match": bool(match),
    }


def serve_latency(scale: float = 1.0, seed: int = 0, p: int = 4) -> dict:
    """The same churn through a live daemon's dynamic session."""
    from repro.graph import write_edgelist
    from repro.serve import Client, Daemon, ServeConfig, wait_server

    g, stream = churn_workload(scale=scale, seed=seed)
    tmp = tempfile.mkdtemp(prefix="bench_dynamic_")
    graph_path = os.path.join(tmp, "bench.edges")
    write_edgelist(g, graph_path)
    cfg = ServeConfig(bind=os.path.join(tmp, "serve.sock"),
                      state_dir=os.path.join(tmp, "state"),
                      backend="sim", p=p)
    update_lat, query_lat = [], []
    with Daemon(cfg) as daemon:
        wait_server(daemon.address)
        with Client(daemon.address, client="bench") as client:
            sid = client.dyn_open(graph_path, seed=seed, p=p)
            last = None
            for ops in stream:
                t0 = time.perf_counter()
                st = client.dyn_update(sid, ops)
                update_lat.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                last = client.dyn_components(sid)
                query_lat.append(time.perf_counter() - t0)
                assert last["epoch"] == st["epoch"]  # bounded staleness
            client.dyn_close(sid)
    return {
        "update": _percentiles(update_lat),
        "query": _percentiles(query_lat),
        "final_epoch": int(last["epoch"]),
        "final_n_components": int(last["n_components"]),
        "final_labels_sha256": last["labels_sha256"],
    }


def run_benchmarks(scale: float = 1.0, seed: int = 0, p: int = 4) -> dict:
    cc = incremental_vs_full(scale=scale, seed=seed, p=p)
    cut = cut_determinism(scale=scale, seed=seed, p=p)
    serve = serve_latency(scale=scale, seed=seed, p=p)
    # The daemon replays the identical stream, so its final answer must
    # equal the local incremental one bit for bit.
    served_match = (
        serve["final_epoch"] == cc["epochs"]
        and serve["final_n_components"] == cc["final_n_components"]
        and serve["final_labels_sha256"] == cc["final_labels_sha256"])
    return {
        "workload": {"n": cc["n"], "m": cc["m"], "p": p, "seed": seed,
                     "scale": scale, "epochs": cc["epochs"]},
        "cc": cc,
        "cut": cut,
        "serve": serve,
        "speedup": cc["speedup"],
        "speedup_ok": cc["speedup_ok"],
        "speedup_floor": DYNAMIC_SPEEDUP_FLOOR,
        "results_match": bool(cc["labels_match_every_epoch"]
                              and cut["replay_match"] and served_match),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--procs", "-p", type=int, default=4)
    ap.add_argument("--out", default=str(RESULTS_DIR / "BENCH_dynamic.json"))
    args = ap.parse_args(argv)
    record = run_benchmarks(scale=args.scale, seed=args.seed, p=args.procs)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True)
                              + "\n")
    cc = record["cc"]
    print(f"bench_dynamic: {cc['epochs']} epochs on n={cc['n']} m={cc['m']}, "
          f"{cc['updates_per_s']:.0f} updates/s, incremental p50 "
          f"{cc['incremental']['p50_s'] * 1e3:.2f}ms vs full recompute "
          f"{cc['full']['p50_s'] * 1e3:.2f}ms: {record['speedup']:.1f}x "
          f"(floor {DYNAMIC_SPEEDUP_FLOOR:g}x), "
          f"results_match={record['results_match']} -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
