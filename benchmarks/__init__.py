"""Benchmark harness package.

The per-figure benchmark scripts import their shared helpers with a flat
``from common import ...`` so they can be run directly from this directory
(``pytest benchmarks/bench_fig1...``).  Importing the package — e.g. for
``python -m benchmarks.perf_gate`` — puts this directory on ``sys.path`` so
the flat imports keep resolving either way.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
