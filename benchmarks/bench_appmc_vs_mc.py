"""§5.2 headline: AppMC approximates MC well at a fraction of the cost.

Paper claims: on the Figure 1 inputs AppMC is an order of magnitude faster
than MC on sparse graphs; across all inputs the observed approximation
ratio stayed below 11; AppMC uses "a fraction of cores in a fraction of
time".

Scaled reproduction: ER and two-clique graphs; compare total work
(bottleneck ops) and predicted time of AppMC vs MC at the same processor
count, and the estimate/exact ratio across seeds.
"""

import pytest

from repro.core import approx_minimum_cut, minimum_cut
from repro.graph import erdos_renyi, two_cliques_bridge
from repro.rng import philox_stream

from common import MODEL, once, report_experiment

SEED = 12


@pytest.fixture(scope="module")
def graphs():
    return {
        "er_sparse": erdos_renyi(384, 1_536, philox_stream(SEED), weighted=True),
        "cliques": two_cliques_bridge(24, bridge_weight=3.0),
    }


def test_appmc_fraction_of_time(benchmark, graphs):
    rows = []
    for name, g in graphs.items():
        mc = minimum_cut(g, p=8, seed=SEED)
        ap = approx_minimum_cut(g, p=8, seed=SEED)
        t_mc = MODEL.predict(mc.report).total_s
        t_ap = MODEL.predict(ap.report).total_s
        rows.append([
            name, g.n, g.m, mc.value, ap.estimate,
            mc.report.total_ops, ap.report.total_ops, t_mc, t_ap,
            t_mc / t_ap,
        ])
    report_experiment(
        "appmc_vs_mc",
        "AppMC vs exact MC: value, work and predicted time at p=8",
        ["graph", "n", "m", "mc_value", "appmc_est",
         "mc_ops", "appmc_ops", "mc_s", "appmc_s", "speedup"],
        rows,
        notes="paper §5.2: AppMC an order of magnitude faster on sparse "
              "inputs; approximation ratio below 11 on all inputs",
    )
    for row in rows:
        assert row[9] > 3, f"{row[0]}: AppMC must be several times faster"
    assert any(row[9] > 8 for row in rows), "order-of-magnitude case exists"
    once(benchmark, approx_minimum_cut, graphs["er_sparse"], p=8, seed=SEED)


def test_appmc_approximation_ratio(benchmark, graphs):
    """Artifact: ratio below 11 across every input and seed."""
    rows = []
    worst = 0.0
    for name, g in graphs.items():
        exact = minimum_cut(g, p=4, seed=SEED).value
        for s in range(8):
            est = approx_minimum_cut(g, p=4, seed=s).estimate
            ratio = max(est / exact, exact / est)
            worst = max(worst, ratio)
            rows.append([name, s, exact, est, ratio])
    report_experiment(
        "appmc_ratio",
        "AppMC approximation ratios over 8 seeds per input",
        ["graph", "seed", "exact", "estimate", "ratio"],
        rows,
        notes=f"worst observed ratio {worst:.2f} (artifact bar: < 11)",
    )
    assert worst < 11, f"approximation ratio {worst} out of the artifact bar"
    once(benchmark, approx_minimum_cut, graphs["cliques"], p=4, seed=0)
