"""Figure 8: instructions-per-miss rates of the cut and CC codes.

Paper setup: (8a) IPM of KS vs MC vs SW on Erdős–Rényi d = 32 with growing
n (setup of Fig 9) — KS sustains the highest IPM (it was designed for
sequential cache efficiency), MC is in between, SW collapses as n grows
because every phase streams the whole matrix; (8b) IPM of BGL vs CC vs
Galois (setup of Fig 4) — CC's IPM is significantly higher than BGL's,
which explains how it wins on time despite executing more instructions.

Scaled reproduction through the LRU simulator with a 2k-word cache.
"""

import pytest

from repro.baselines import bgl_cc, galois_cc, karger_stein, stoer_wagner
from repro.cache import LRUTracker
from repro.core import cc_sequential, minimum_cut_sequential
from repro.graph import erdos_renyi, rmat
from repro.rng import philox_stream

from common import once, report_experiment

SEED = 8
CACHE_M, CACHE_B = 2_048, 8


def tracker():
    return LRUTracker(M=CACHE_M, B=CACHE_B)


@pytest.fixture(scope="module")
def cut_sweep():
    rows = []
    for n in (64, 96, 128):
        g = erdos_renyi(n, 4 * n, philox_stream(SEED), weighted=True)
        mems = {}
        mem = tracker()
        karger_stein(g, seed=SEED, repetitions=2, mem=mem)
        mems["ks"] = mem
        mem = tracker()
        minimum_cut_sequential(g, seed=SEED, trials=2, mem=mem)
        mems["mc"] = mem
        mem = tracker()
        stoer_wagner(g, mem=mem)
        mems["sw"] = mem
        rows.append([n] + [mems[k].instructions_per_miss()
                           for k in ("ks", "mc", "sw")]
                    + [mems[k].miss_count for k in ("ks", "mc", "sw")])
    return rows


def test_fig8a_cut_ipm(benchmark, cut_sweep):
    rows = [r[:4] for r in cut_sweep]
    report_experiment(
        "fig8a_cut_ipm",
        "IPM of KS vs MC vs SW, ER d=8, growing n (LRU-traced)",
        ["n", "ks_ipm", "mc_ipm", "sw_ipm"],
        rows,
        notes="shape: SW's IPM is the lowest at the largest size (whole-"
              "matrix phases); KS and MC sustain higher rates",
    )
    last = rows[-1]
    assert last[3] < last[1], "SW IPM below KS at the largest size"
    assert last[3] < last[2], "SW IPM below MC at the largest size"
    g = erdos_renyi(64, 256, philox_stream(SEED), weighted=True)
    once(benchmark, stoer_wagner, g, mem=tracker())


def test_fig8b_cc_ipm(benchmark):
    rows = []
    for n in (2_048, 4_096):
        g = rmat(n, 64 * n, philox_stream(SEED + 1))
        ipms = []
        for fn in (
            lambda m: bgl_cc(g, mem=m),
            lambda m: cc_sequential(g, seed=SEED, mem=m),
            lambda m: galois_cc(g, mem=m),
        ):
            mem = tracker()
            fn(mem)
            ipms.append(mem.instructions_per_miss())
        rows.append([n] + ipms)
    report_experiment(
        "fig8b_cc_ipm",
        "IPM of BGL vs CC vs Galois, R-MAT d~128 (LRU-traced)",
        ["n", "bgl_ipm", "cc_ipm", "galois_ipm"],
        rows,
        notes="shape: CC's IPM exceeds BGL's at the largest size — the "
              "§5.1 explanation of how CC wins on time with ~more "
              "instructions",
    )
    last = rows[-1]
    assert last[2] > last[1], "CC IPM above BGL"
    assert last[3] > last[1], "Galois IPM above BGL"
    g = rmat(1_024, 64 * 1_024, philox_stream(SEED + 1))
    once(benchmark, cc_sequential, g, seed=SEED, mem=tracker())
