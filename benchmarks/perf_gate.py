"""Benchmark regression gate for the vectorized kernel layer.

Two kinds of baseline live in ``results/perf_baseline.json``:

* **Counter fingerprints** — BSP counter reports (ops, misses, volumes,
  supersteps) and result values of six fixed Fig-1/Fig-3-style workloads.
  These are *exact*: the cost model is analytic, so any drift means an
  algorithmic change (intended → re-bless, unintended → a bug).  This is
  the check that proves vectorization did not alter a single simulated
  trajectory.
* **Kernel timings** — wall-clock seconds and speedup ratios of the
  :mod:`benchmarks.bench_kernels` microbenchmarks.  Checked with slack
  (machine noise is real): a vectorized timing may not exceed
  ``slack x baseline`` (default 2.0, override with ``PERF_GATE_SLACK``),
  and each speedup ratio must stay above its floor — 10x for the
  contraction kernel (the acceptance bar), 1.2x elsewhere.
* **Transport fingerprints** — the mp backend's shared-memory segment
  allocation counts on the :mod:`benchmarks.bench_transport` workloads.
  Segment counts are deterministic (payload sizes are seed-fixed), so
  they are checked *exactly*, plus two floors: the pooled arena must
  allocate at least 2x fewer segments than the legacy codec, and both
  codecs must produce identical results.  Wall-clock is recorded by the
  benchmark but never gated.
* **Scheduler fingerprints** — the fault-tolerant trial scheduler's
  deterministic acceptance bars from :mod:`benchmarks.bench_faults`:
  the scheduled dispatch must match the legacy dispatch's cut value, a
  crash-recovery run must retry exactly once and reproduce the
  fault-free ledger fingerprint bit-for-bit, and the predicted
  (analytic-model) overhead with injection off must stay under 2%.
* **2-out fingerprints** — the random 2-out contraction preprocessing's
  deterministic headline numbers from :mod:`benchmarks.bench_two_out`:
  exact cut values and trial counts (contracted sizes, planned and
  dispatched trials against the default budget), the exactness flags,
  and the >= 3x dispatched-trial reduction floor on the dense workload.
* **Serve fingerprints** — the :mod:`repro.serve` daemon's acceptance
  bars from :mod:`benchmarks.bench_serve`: exact headline result values,
  the served-equals-direct ``results_match`` flag, and the >= 3x
  warm-repeat-over-cold-one-shot latency floor.  Raw seconds are
  recorded in ``results/BENCH_serve.json`` but never gated.
* **Graph-plane fingerprints** — the shared graph plane's deterministic
  input-shipping byte counts from :func:`bench_serve.plane_bytes_per_query`:
  exact bytes per warm repeat query with the plane off and on (pickle
  sizes are deterministic by construction), the bit-identical
  ``results_match`` flag, and the >= 5x off-over-on bytes-reduction
  floor at p=4.
* **Dynamic fingerprints** — the streaming-update subsystem's
  deterministic acceptance bars from :mod:`benchmarks.bench_dynamic`:
  final component count and canonical label sha after the churn
  workload, final exact/approx cut values and the sparsifier's content
  sha (all bit-exact by the replay-determinism contract), the
  every-epoch ``results_match`` flag, and the >= 3x
  incremental-over-full-recompute query floor.  Raw update/query
  latencies are recorded in ``results/BENCH_dynamic.json`` but never
  gated.
* **Fusion fingerprints** — superstep fusion and group-shrink headline
  numbers from :mod:`benchmarks.bench_fusion`: exact superstep and
  total-ops counts per configuration (the schedule is deterministic, so
  drift means the fusion/shrink decisions changed), the bit-identical
  ``values_match`` flags, the >= 1.3x predicted-time reduction floor on
  the dense approximate-min-cut workload (cluster machine profile) and
  the >= 1.2x total-work reduction floor from group-shrink on the
  multi-round CC workload.

Usage::

    PYTHONPATH=src python -m benchmarks.perf_gate --check     # gate
    PYTHONPATH=src python -m benchmarks.perf_gate --rebless   # new baseline

``--check`` exits 1 with a readable diff on any regression, 2 if no
baseline has been blessed yet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from bench_faults import OVERHEAD_CEILING_PCT
from bench_faults import run_benchmarks as run_fault_benchmarks
from bench_kernels import run_benchmarks
from bench_transport import ALLOC_REDUCTION_FLOOR
from bench_transport import run_benchmarks as run_transport_benchmarks
from bench_serve import BYTES_REDUCTION_FLOOR, WARM_SPEEDUP_FLOOR
from bench_serve import plane_bytes_per_query
from bench_serve import run_benchmarks as run_serve_benchmarks
from bench_two_out import REDUCTION_FLOOR
from bench_two_out import run_benchmarks as run_two_out_benchmarks
from bench_dynamic import DYNAMIC_SPEEDUP_FLOOR
from bench_dynamic import run_benchmarks as run_dynamic_benchmarks
from bench_fusion import OPS_REDUCTION_FLOOR as FUSION_OPS_FLOOR
from bench_fusion import REDUCTION_FLOOR as FUSION_REDUCTION_FLOOR
from bench_fusion import run_benchmarks as run_fusion_benchmarks

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BASELINE_PATH = RESULTS_DIR / "perf_baseline.json"

#: Wall-clock slack multiplier for timing checks (noise tolerance).
DEFAULT_SLACK = 2.0

#: Minimum vectorized-over-scalar speedup per microbenchmark.
SPEEDUP_FLOORS = {
    "contract": 10.0,
    "cc": 1.2,
    "prefix_select": 1.2,
    "payload_words": 1.2,
}


def counter_fingerprints() -> dict:
    """Exact BSP counter fingerprints of six fixed benchmark workloads."""
    from repro.baselines import galois_cc_parallel, pbgl_cc
    from repro.core import connected_components, minimum_cut
    from repro.graph import barabasi_albert, erdos_renyi
    from repro.rng import philox_stream

    def rep_dict(r):
        return {k: getattr(r, k) for k in
                ("p", "computation", "volume", "supersteps", "misses",
                 "wait", "total_ops", "total_volume")}

    out = {}
    g1 = erdos_renyi(256, 1024, philox_stream(1), weighted=True)
    r = minimum_cut(g1, p=4, seed=1, trials=8)
    out["mincut_sparse_p4"] = {"value": r.value, "report": rep_dict(r.report)}
    r = minimum_cut(g1, p=8, seed=2, trials=2)  # p > trials: grouped path
    out["mincut_parallel_p8"] = {"value": r.value, "report": rep_dict(r.report)}
    g2 = barabasi_albert(2048, 8, philox_stream(3))
    r = connected_components(g2, p=4, seed=3)
    out["cc_sparse_p4"] = {"count": int(r.n_components),
                           "labels_sum": int(r.labels.sum()),
                           "report": rep_dict(r.report)}
    labels, count, rep, _t = galois_cc_parallel(g2, p=4, seed=3)
    out["galois_p4"] = {"count": int(count), "labels_sum": int(labels.sum()),
                        "report": rep_dict(rep)}
    labels, count, rep, _t = pbgl_cc(g2, p=4, seed=3)
    out["pbgl_p4"] = {"count": int(count), "labels_sum": int(labels.sum()),
                      "report": rep_dict(rep)}
    r = connected_components(g2, p=4, seed=3, hybrid=True)
    out["cc_hybrid_p4"] = {"count": int(r.n_components),
                           "labels_sum": int(r.labels.sum()),
                           "report": rep_dict(r.report)}
    return out


def transport_fingerprints(scale: float = 1.0, seed: int = 0) -> dict:
    """Deterministic transport-gate fields per bench_transport workload."""
    results = run_transport_benchmarks(scale=scale, seed=seed, repeats=1)
    return {
        name: {
            "pooled_segments_created":
                r["pooled"]["stats"]["total"]["segments_created"],
            "legacy_segments_created":
                r["legacy"]["stats"]["total"]["segments_created"],
            "results_match": r["results_match"],
        }
        for name, r in results.items()
    }


def sched_fingerprints(scale: float = 1.0, seed: int = 0) -> dict:
    """Deterministic scheduler-gate fields from bench_faults."""
    r = run_fault_benchmarks(scale=scale, seed=seed, repeats=1)
    return {
        "legacy_value": r["legacy"]["value"],
        "scheduled_value": r["scheduled"]["value"],
        "ledger_fingerprint": r["scheduled"]["fingerprint"],
        "values_match": r["values_match"],
        "recovery_value_match": r["recovery_value_match"],
        "recovery_retried": r["recovery_retried"],
        "fingerprint_match": r["fingerprint_match"],
        "predicted_overhead_pct": r["predicted_overhead_pct"],
    }


def two_out_fingerprints(scale: float = 1.0, seed: int = 0) -> dict:
    """Deterministic 2-out-gate fields from bench_two_out."""
    r = run_two_out_benchmarks(scale=scale, seed=seed)
    d = r["dense"]
    return {
        "dense_value": d["value"],
        "contracted_n": d["contracted_n"],
        "planned_trials": d["planned_trials"],
        "dispatched_trials": d["dispatched_trials"],
        "default_trials": d["default_trials"],
        "reduction": d["reduction"],
        "values_match": r["values_match"],
        "small_truth_match": r["small_truth_match"],
        "degrade_honest": r["degrade_honest"],
        "zoo_values_match": r["zoo_values_match"],
        "reduction_ok": r["reduction_ok"],
    }


def serve_fingerprints(seed: int = 0) -> dict:
    """Deterministic serve-gate fields from bench_serve."""
    r = run_serve_benchmarks(repeats=3, seed=seed)
    return {
        "cc_value": r["cc_value"],
        "sq_value": r["sq_value"],
        "min_warm_speedup": r["min_warm_speedup"],
        "speedup_ok": r["speedup_ok"],
        "results_match": r["results_match"],
    }


def graph_plane_fingerprints(seed: int = 0) -> dict:
    """Deterministic shared-graph-plane gate fields from bench_serve.

    Input-shipping bytes per warm repeat query are exact (fixed-width
    segment names and slab tokens pin the pickle sizes), so both counts
    are checked for drift; the off/on ratio must clear
    :data:`~bench_serve.BYTES_REDUCTION_FLOOR` with bit-identical
    results.
    """
    r = plane_bytes_per_query(p=4, seed=seed)
    return {
        "repeat_input_bytes_off": r["repeat_input_bytes_off"],
        "repeat_input_bytes_on": r["repeat_input_bytes_on"],
        "reduction": r["reduction"],
        "reduction_ok": r["reduction_ok"],
        "results_match": r["results_match"],
    }


def dynamic_fingerprints(scale: float = 1.0, seed: int = 0) -> dict:
    """Deterministic dynamic-gate fields from bench_dynamic."""
    r = run_dynamic_benchmarks(scale=scale, seed=seed)
    return {
        "final_n_components": r["cc"]["final_n_components"],
        "final_labels_sha256": r["cc"]["final_labels_sha256"],
        "exact_value": r["cut"]["exact_value"],
        "approx_value": r["cut"]["approx_value"],
        "sparsifier_sha256": r["cut"]["sparsifier_sha256"],
        "resparsifications": r["cut"]["resparsifications"],
        "speedup": r["speedup"],
        "speedup_ok": r["speedup_ok"],
        "results_match": r["results_match"],
    }


def fusion_fingerprints(scale: float = 1.0, seed: int = 0) -> dict:
    """Deterministic fusion/shrink-gate fields from bench_fusion."""
    r = run_fusion_benchmarks(scale=scale, seed=seed)
    a, c = r["appmc_dense"], r["cc_multiround"]
    return {
        "appmc_supersteps_base": a["cluster"]["base"]["supersteps"],
        "appmc_supersteps_fused": a["cluster"]["fused_shrink"]["supersteps"],
        "appmc_reduction": a["reduction"],
        "appmc_default_reduction": a["default_reduction"],
        "appmc_values_match": a["values_match"],
        "cc_supersteps_base": c["default"]["base"]["supersteps"],
        "cc_supersteps_fused": c["default"]["fused"]["supersteps"],
        "cc_total_ops_base": c["default"]["base"]["total_ops"],
        "cc_total_ops_shrunk": c["default"]["fused_shrink"]["total_ops"],
        "cc_ops_reduction": c["ops_reduction"],
        "cc_shrink_fired": c["shrink_fired"],
        "cc_released_min_supersteps": c["released_min_supersteps"],
        "cc_max_supersteps": c["max_supersteps"],
        "cc_values_match": c["values_match"],
    }


def measure(scale: float = 1.0, seed: int = 0) -> dict:
    """Run all baseline sections and return the combined record."""
    return {
        "counters": counter_fingerprints(),
        "timings": run_benchmarks(scale=scale, seed=seed),
        "transport": transport_fingerprints(scale=scale, seed=seed),
        "sched": sched_fingerprints(scale=scale, seed=seed),
        "two_out": two_out_fingerprints(scale=scale, seed=seed),
        "serve": serve_fingerprints(seed=seed),
        "fusion": fusion_fingerprints(scale=scale, seed=seed),
        "graph_plane": graph_plane_fingerprints(seed=seed),
        "dynamic": dynamic_fingerprints(scale=scale, seed=seed),
        "meta": {"scale": scale, "seed": seed},
    }


def _diff_counters(base: dict, now: dict, lines: list[str]) -> bool:
    ok = True
    for wl in sorted(base):
        b, n = base[wl], now.get(wl)
        if n == b:
            continue
        ok = False
        if n is None:
            lines.append(f"  counters[{wl}]: missing from current run")
            continue
        for key in sorted(set(b) | set(n)):
            bv, nv = b.get(key), n.get(key)
            if bv == nv:
                continue
            if isinstance(bv, dict) and isinstance(nv, dict):
                for ck in sorted(set(bv) | set(nv)):
                    if bv.get(ck) != nv.get(ck):
                        lines.append(
                            f"  counters[{wl}].{key}.{ck}: "
                            f"baseline={bv.get(ck)!r} current={nv.get(ck)!r}")
            else:
                lines.append(f"  counters[{wl}].{key}: "
                             f"baseline={bv!r} current={nv!r}")
    return ok


def _check_timings(base: dict, now: dict, slack: float,
                   lines: list[str]) -> bool:
    ok = True
    for name in sorted(base):
        b, n = base[name], now.get(name)
        if n is None:
            ok = False
            lines.append(f"  timings[{name}]: missing from current run")
            continue
        limit = b["fast_s"] * slack
        if n["fast_s"] > limit:
            ok = False
            lines.append(
                f"  timings[{name}].fast_s: {n['fast_s']:.4f}s exceeds "
                f"{limit:.4f}s (= {slack:g} x blessed {b['fast_s']:.4f}s)")
        floor = SPEEDUP_FLOORS.get(name, 1.0)
        if n["speedup"] < floor:
            ok = False
            lines.append(
                f"  timings[{name}].speedup: {n['speedup']:.1f}x is under "
                f"the {floor:g}x floor (blessed: {b['speedup']:.1f}x)")
    return ok


def _check_transport(base: dict | None, now: dict, lines: list[str]) -> bool:
    if base is None:
        lines.append("  transport: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    for wl in sorted(base):
        b, n = base[wl], now.get(wl)
        if n is None:
            ok = False
            lines.append(f"  transport[{wl}]: missing from current run")
            continue
        for key in ("pooled_segments_created", "legacy_segments_created"):
            if b[key] != n[key]:
                ok = False
                lines.append(f"  transport[{wl}].{key}: "
                             f"baseline={b[key]} current={n[key]}")
        if not n["results_match"]:
            ok = False
            lines.append(f"  transport[{wl}]: pooled and legacy codecs "
                         f"produced different results")
        reduction = n["legacy_segments_created"] / max(
            n["pooled_segments_created"], 1)
        if reduction < ALLOC_REDUCTION_FLOOR:
            ok = False
            lines.append(
                f"  transport[{wl}]: allocation reduction {reduction:.1f}x "
                f"is under the {ALLOC_REDUCTION_FLOOR:g}x floor")
    return ok


def _check_sched(base: dict | None, now: dict, lines: list[str]) -> bool:
    if base is None:
        lines.append("  sched: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    # Exact drift checks: values and the fault-free ledger fingerprint
    # are analytic, so any change means the scheduled trial trajectories
    # moved.
    for key in ("legacy_value", "scheduled_value", "ledger_fingerprint"):
        if base[key] != now[key]:
            ok = False
            lines.append(f"  sched.{key}: baseline={base[key]!r} "
                         f"current={now[key]!r}")
    # Acceptance bars, re-proved on every run.
    for flag in ("values_match", "recovery_value_match",
                 "recovery_retried", "fingerprint_match"):
        if not now[flag]:
            ok = False
            lines.append(f"  sched.{flag}: False")
    if now["predicted_overhead_pct"] > OVERHEAD_CEILING_PCT:
        ok = False
        lines.append(
            f"  sched.predicted_overhead_pct: "
            f"{now['predicted_overhead_pct']:.3f}% exceeds the "
            f"{OVERHEAD_CEILING_PCT:g}% ceiling")
    return ok


def _check_two_out(base: dict | None, now: dict, lines: list[str]) -> bool:
    if base is None:
        lines.append("  two_out: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    # Exact drift checks: the preprocessing is replicated deterministic
    # compute, so contracted sizes and trial counts moving means the
    # contraction trajectories changed.
    for key in ("dense_value", "contracted_n", "planned_trials",
                "dispatched_trials", "default_trials"):
        if base[key] != now[key]:
            ok = False
            lines.append(f"  two_out.{key}: baseline={base[key]!r} "
                         f"current={now[key]!r}")
    # Acceptance bars, re-proved on every run.
    for flag in ("values_match", "small_truth_match", "degrade_honest",
                 "zoo_values_match"):
        if not now[flag]:
            ok = False
            lines.append(f"  two_out.{flag}: False")
    if now["reduction"] < REDUCTION_FLOOR:
        ok = False
        lines.append(
            f"  two_out.reduction: {now['reduction']:.1f}x is under the "
            f"{REDUCTION_FLOOR:g}x dispatched-trial floor")
    return ok


def _check_serve(base: dict | None, now: dict, lines: list[str]) -> bool:
    if base is None:
        lines.append("  serve: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    # Exact drift checks: every served answer is validated against the
    # direct call, so the headline result values moving means the served
    # algorithms changed.
    for key in ("cc_value", "sq_value"):
        if base[key] != now[key]:
            ok = False
            lines.append(f"  serve.{key}: baseline={base[key]!r} "
                         f"current={now[key]!r}")
    # Acceptance bars, re-proved on every run.
    if not now["results_match"]:
        ok = False
        lines.append("  serve.results_match: served answers differ from "
                     "direct run_algorithm results")
    if now["min_warm_speedup"] < WARM_SPEEDUP_FLOOR:
        ok = False
        lines.append(
            f"  serve.min_warm_speedup: {now['min_warm_speedup']:.1f}x is "
            f"under the {WARM_SPEEDUP_FLOOR:g}x warm-over-cold floor")
    return ok


def _check_fusion(base: dict | None, now: dict, lines: list[str]) -> bool:
    if base is None:
        lines.append("  fusion: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    # Exact drift checks: the fusion/shrink schedule is deterministic, so
    # superstep counts or total work moving means the merge decisions or
    # the shrink trigger changed.
    for key in ("appmc_supersteps_base", "appmc_supersteps_fused",
                "cc_supersteps_base", "cc_supersteps_fused",
                "cc_total_ops_base", "cc_total_ops_shrunk",
                "cc_released_min_supersteps", "cc_max_supersteps"):
        if base[key] != now[key]:
            ok = False
            lines.append(f"  fusion.{key}: baseline={base[key]!r} "
                         f"current={now[key]!r}")
    # Acceptance bars, re-proved on every run.
    for flag in ("appmc_values_match", "cc_values_match", "cc_shrink_fired"):
        if not now[flag]:
            ok = False
            lines.append(f"  fusion.{flag}: False")
    if now["appmc_reduction"] < FUSION_REDUCTION_FLOOR:
        ok = False
        lines.append(
            f"  fusion.appmc_reduction: {now['appmc_reduction']:.2f}x is "
            f"under the {FUSION_REDUCTION_FLOOR:g}x predicted-time floor")
    if now["cc_ops_reduction"] < FUSION_OPS_FLOOR:
        ok = False
        lines.append(
            f"  fusion.cc_ops_reduction: {now['cc_ops_reduction']:.2f}x is "
            f"under the {FUSION_OPS_FLOOR:g}x total-work floor")
    return ok


def _check_graph_plane(base: dict | None, now: dict,
                       lines: list[str]) -> bool:
    if base is None:
        lines.append("  graph_plane: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    # Exact drift checks: input pickle sizes are deterministic, so a
    # byte moving means the wire format (handles, specs, CMD_RUN tuple)
    # changed.
    for key in ("repeat_input_bytes_off", "repeat_input_bytes_on"):
        if base[key] != now[key]:
            ok = False
            lines.append(f"  graph_plane.{key}: baseline={base[key]!r} "
                         f"current={now[key]!r}")
    # Acceptance bars, re-proved on every run.
    if not now["results_match"]:
        ok = False
        lines.append("  graph_plane.results_match: plane-on and plane-off "
                     "runs produced different results")
    if now["reduction"] < BYTES_REDUCTION_FLOOR:
        ok = False
        lines.append(
            f"  graph_plane.reduction: {now['reduction']:.1f}x is under "
            f"the {BYTES_REDUCTION_FLOOR:g}x input-bytes floor")
    return ok


def _check_dynamic(base: dict | None, now: dict, lines: list[str]) -> bool:
    if base is None:
        lines.append("  dynamic: section missing from blessed baseline "
                     "(re-bless to record it)")
        return False
    ok = True
    # Exact drift checks: the final labels, cut values and sparsifier
    # bytes are pure functions of (workload, seed, p) by the replay-
    # determinism contract, so any movement means the incremental
    # maintenance or amortization policy changed.
    for key in ("final_n_components", "final_labels_sha256", "exact_value",
                "approx_value", "sparsifier_sha256", "resparsifications"):
        if base[key] != now[key]:
            ok = False
            lines.append(f"  dynamic.{key}: baseline={base[key]!r} "
                         f"current={now[key]!r}")
    # Acceptance bars, re-proved on every run.
    if not now["results_match"]:
        ok = False
        lines.append("  dynamic.results_match: incremental answers differ "
                     "from full recompute / replay / served answers")
    if now["speedup"] < DYNAMIC_SPEEDUP_FLOOR:
        ok = False
        lines.append(
            f"  dynamic.speedup: {now['speedup']:.1f}x is under the "
            f"{DYNAMIC_SPEEDUP_FLOOR:g}x incremental-over-full floor")
    return ok


def check(scale: float, seed: int, slack: float) -> int:
    if not BASELINE_PATH.exists():
        print(f"perf_gate: no baseline at {BASELINE_PATH}; "
              f"run with --rebless first", file=sys.stderr)
        return 2
    base = json.loads(BASELINE_PATH.read_text())
    now = measure(scale=scale, seed=seed)
    lines: list[str] = []
    counters_ok = _diff_counters(base["counters"], now["counters"], lines)
    timings_ok = _check_timings(base["timings"], now["timings"], slack, lines)
    transport_ok = _check_transport(base.get("transport"), now["transport"],
                                    lines)
    sched_ok = _check_sched(base.get("sched"), now["sched"], lines)
    two_out_ok = _check_two_out(base.get("two_out"), now["two_out"], lines)
    serve_ok = _check_serve(base.get("serve"), now["serve"], lines)
    fusion_ok = _check_fusion(base.get("fusion"), now["fusion"], lines)
    plane_ok = _check_graph_plane(base.get("graph_plane"),
                                  now["graph_plane"], lines)
    dynamic_ok = _check_dynamic(base.get("dynamic"), now["dynamic"], lines)
    if (counters_ok and timings_ok and transport_ok and sched_ok
            and two_out_ok and serve_ok and fusion_ok and plane_ok
            and dynamic_ok):
        speeds = ", ".join(f"{k}={v['speedup']:.1f}x"
                           for k, v in sorted(now["timings"].items()))
        segs = ", ".join(
            f"{k}={v['legacy_segments_created']}->"
            f"{v['pooled_segments_created']}"
            for k, v in sorted(now["transport"].items()))
        print(f"perf_gate: OK — counters exact, timings within "
              f"{slack:g}x slack ({speeds}), transport segments exact "
              f"({segs}), scheduler overhead "
              f"{now['sched']['predicted_overhead_pct']:+.3f}% with "
              f"bit-identical crash recovery, 2-out trial reduction "
              f"{now['two_out']['reduction']:.1f}x exact, serve warm "
              f"speedup {now['serve']['min_warm_speedup']:.1f}x with "
              f"matching served answers, fusion reduction "
              f"{now['fusion']['appmc_reduction']:.2f}x and shrink "
              f"total-work reduction "
              f"{now['fusion']['cc_ops_reduction']:.2f}x with bit-identical "
              f"results, graph-plane input bytes "
              f"{now['graph_plane']['repeat_input_bytes_off']}->"
              f"{now['graph_plane']['repeat_input_bytes_on']} "
              f"({now['graph_plane']['reduction']:.1f}x) exact, dynamic "
              f"incremental speedup {now['dynamic']['speedup']:.1f}x with "
              f"bit-identical replay")
        return 0
    print("perf_gate: REGRESSION", file=sys.stderr)
    if not counters_ok:
        print("  (counter drift means the simulated algorithm changed: fix "
              "the change, or re-bless if intended)", file=sys.stderr)
    for line in lines:
        print(line, file=sys.stderr)
    print(f"  re-bless (if this change is intended): "
          f"PYTHONPATH=src python -m benchmarks.perf_gate --rebless",
          file=sys.stderr)
    return 1


def rebless(scale: float, seed: int) -> int:
    record = measure(scale=scale, seed=seed)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    BASELINE_PATH.write_text(json.dumps(record, indent=1, sort_keys=True)
                             + "\n")
    speeds = ", ".join(f"{k}={v['speedup']:.1f}x"
                       for k, v in sorted(record["timings"].items()))
    print(f"perf_gate: blessed new baseline at {BASELINE_PATH} ({speeds})")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare against the blessed baseline")
    mode.add_argument("--rebless", action="store_true",
                      help="record the current machine as the new baseline")
    ap.add_argument("--scale", type=float, default=1.0,
                    help="microbenchmark size multiplier (default 1.0)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--slack", type=float,
                    default=float(os.environ.get("PERF_GATE_SLACK",
                                                 DEFAULT_SLACK)),
                    help="timing slack multiplier (env PERF_GATE_SLACK)")
    args = ap.parse_args(argv)
    if args.rebless:
        return rebless(args.scale, args.seed)
    return check(args.scale, args.seed, args.slack)


if __name__ == "__main__":
    raise SystemExit(main())
