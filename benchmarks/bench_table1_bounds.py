"""Table 1: measured MC cost counters vs the paper's asymptotic bounds.

The paper's bounds for the communication-avoiding minimum cut:

* supersteps   O(log(pm/n^2))        — constant in the replicated regime,
  growing only logarithmically once processor groups run parallel trials;
* computation  O(n^2 log^3 n / p)    — fits a ~n^2/p trend over n at fixed
  trial count, i.e. doubling n roughly quadruples the bottleneck work;
* volume       O(n^2 log^2 n log p / p) — dominated by the graph
  replication + per-trial collectives;
* space        O(min(m, n^2 log^2 n / p)).

The bench sweeps n at fixed p and p at fixed n, fits log-log slopes of the
measured counters, and checks them against the bound exponents.
"""

import numpy as np
from repro.core import minimum_cut
from repro.graph import erdos_renyi
from repro.rng import philox_stream

from common import once, report_experiment

SEED = 11
TRIALS = 6


def run(n, p):
    g = erdos_renyi(n, 4 * n, philox_stream(SEED), weighted=True)
    return minimum_cut(g, p=p, seed=SEED, trials=TRIALS).report


def test_table1_computation_scales_quadratically(benchmark):
    """Computation ~ n^2 (log factors absorbed in the tolerance)."""
    ns = (128, 256, 512)
    rows = []
    for n in ns:
        rep = run(n, p=4)
        rows.append([n, rep.computation, rep.volume, rep.supersteps])
    report_experiment(
        "table1_n_sweep",
        f"MC counters vs n at p=4, {TRIALS} trials, ER d=8",
        ["n", "computation", "volume", "supersteps"],
        rows,
        notes="bound: computation O(n^2 log^3 n / p); fitted exponent "
              "should be ~2 (+log slack)",
    )
    slope = np.polyfit(np.log([r[0] for r in rows]),
                       np.log([r[1] for r in rows]), 1)[0]
    assert 1.5 <= slope <= 3.0, f"computation exponent {slope:.2f} not ~2"
    # supersteps stay O(1) in the replicated regime (p <= trials)
    steps = [r[3] for r in rows]
    assert max(steps) - min(steps) <= 2
    once(benchmark, run, 256, 4)


def test_table1_computation_inverse_in_p(benchmark):
    """Computation ~ 1/p while p <= t (perfect trial parallelism)."""
    rows = []
    for p in (1, 2, 3, 6):
        rep = run(256, p)
        rows.append([p, rep.computation, rep.volume, rep.supersteps])
    report_experiment(
        "table1_p_sweep",
        f"MC counters vs p at n=256, {TRIALS} trials",
        ["p", "computation", "volume", "supersteps"],
        rows,
        notes="bound: computation O(n^2 log^3 n / p) — halving work as p "
              "doubles; supersteps O(log(pm/n^2)) — flat here",
    )
    slope = np.polyfit(np.log([r[0] for r in rows]),
                       np.log([r[1] for r in rows]), 1)[0]
    assert -1.2 <= slope <= -0.7, f"computation should fall ~1/p, got p^{slope:.2f}"
    once(benchmark, run, 256, 6)


def test_table1_supersteps_log_in_group_regime(benchmark):
    """With p > t the group trials add only logarithmically many steps."""
    rows = []
    for p in (8, 16, 32):
        rep = run(128, p)  # TRIALS=6 < p: processor-group regime
        rows.append([p, rep.supersteps, rep.volume])
    report_experiment(
        "table1_supersteps",
        f"MC supersteps vs p (p > t regime), n=128, {TRIALS} trials",
        ["p", "supersteps", "volume"],
        rows,
        notes="bound: O(log(pm/n^2)) supersteps — slow growth in p",
    )
    s8, s32 = rows[0][1], rows[-1][1]
    assert s32 <= 2.5 * s8, "supersteps must grow at most logarithmically"
    once(benchmark, run, 128, 16)


def test_table1_space_bound(benchmark):
    """The distributed representation never exceeds O(min(m, n^2/p))."""
    n = 256
    g = erdos_renyi(n, 4 * n, philox_stream(SEED), weighted=True)
    res = minimum_cut(g, p=4, seed=SEED, trials=TRIALS)
    # Communication volume per processor is a witness for the space the
    # processor materializes; it must stay within a log factor of m.
    logn3 = np.log2(n) ** 3
    assert res.report.volume <= g.m * logn3, "volume blow-up beyond bound"
    once(benchmark, run, 128, 4)
