"""Transport benchmark: pooled shared-memory arena vs legacy one-shot codec.

Runs three mp workloads at p=2 under both payload codecs
(``MpBackend(use_arena=True)`` — the pooled, size-classed slab arena —
and ``use_arena=False`` — one fresh segment per large array) and writes
``results/BENCH_transport.json``:

* ``cc``: connected components on a sparse random graph — shrinking
  gatherv/bcast payloads, the shape the arena's best-fit recycling is
  built for;
* ``eager_step``: ``minimum_cut(..., trials=1)`` — the paper's eager
  superstep: allgatherv of edges, alltoallv matrix distribution,
  gatherv of dense blocks;
* ``steady_state``: constant-size multi-column alltoallv+allgatherv
  rounds — the amortized-O(1) segment-syscall case.

Per workload the record holds both codecs' wall-clock (min over
repeats), per-kind transport stats, the segment-allocation reduction
ratio, and a result-parity flag.  The deterministic fields (segment
counts, parity) are gated by :mod:`benchmarks.perf_gate`; wall-clock is
recorded, not gated — IPC timing is machine noise territory.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_transport
    PYTHONPATH=src python -m benchmarks.bench_transport --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Acceptance bar: the arena must allocate at least this factor fewer
#: segments than the legacy codec on every workload.
ALLOC_REDUCTION_FLOOR = 2.0


def steady_state_program(ctx, n, rounds):
    """Constant-size multi-column collectives, ``rounds`` times over."""
    total = 0.0
    size = ctx.comm.size
    for _ in range(rounds):
        u = np.arange(n, dtype=np.int64) + ctx.rank
        w = np.ones(n)
        parcels = [(u[j::size], w[j::size]) for j in range(size)]
        ex = yield from ctx.comm.alltoallv(parcels)
        ag = yield from ctx.comm.allgatherv(u, w)
        total += float(ex[1].sum()) + float(ag[0].sum())
    return total


def _workloads(scale: float, seed: int):
    """name -> (shm_threshold, runner); runner(backend) -> fingerprint."""
    from repro.core.components import connected_components
    from repro.core.mincut import minimum_cut
    from repro.graph import erdos_renyi
    from repro.rng import philox_stream

    n_cc = max(1000, int(30_000 * scale))
    g_cc = erdos_renyi(n_cc, 4 * n_cc, philox_stream(seed + 7))
    n_mc = max(96, int(768 * scale))
    g_mc = erdos_renyi(n_mc, max(n_mc + 1, int(8000 * scale)),
                       philox_stream(seed + 11), weighted=True)

    def run_cc(backend):
        r = connected_components(g_cc, p=2, seed=seed + 3, backend=backend)
        return (int(r.n_components), int(r.labels.sum()))

    def run_eager(backend):
        r = minimum_cut(g_mc, p=2, seed=seed + 5, trials=1, backend=backend)
        return (float(r.value), int(r.side.sum()))

    def run_steady(backend):
        r = backend.run(steady_state_program, 2, seed=seed,
                        args=(max(2000, int(20_000 * scale)), 6))
        return tuple(r.values)

    return {
        "cc": (1 << 12, run_cc),
        "eager_step": (1 << 14, run_eager),
        "steady_state": (1 << 12, run_steady),
    }


def _measure(runner, threshold: int, use_arena: bool, repeats: int):
    from repro.runtime.mp import MpBackend

    walls, fingerprint, stats = [], None, None
    for _ in range(repeats):
        backend = MpBackend(timeout=180.0, shm_threshold=threshold,
                            use_arena=use_arena)
        t0 = time.perf_counter()
        fingerprint = runner(backend)
        walls.append(time.perf_counter() - t0)
        stats = backend.last_transport_stats
    return {"wall_s": min(walls), "stats": stats}, fingerprint


def run_benchmarks(scale: float = 1.0, seed: int = 0,
                   repeats: int = 3) -> dict:
    out = {}
    for name, (threshold, runner) in _workloads(scale, seed).items():
        pooled, fp_pooled = _measure(runner, threshold, True, repeats)
        legacy, fp_legacy = _measure(runner, threshold, False, repeats)
        created_p = pooled["stats"]["total"]["segments_created"]
        created_l = legacy["stats"]["total"]["segments_created"]
        out[name] = {
            "shm_threshold": threshold,
            "pooled": pooled,
            "legacy": legacy,
            "alloc_reduction": created_l / max(created_p, 1),
            "wall_ratio_legacy_over_pooled":
                legacy["wall_s"] / pooled["wall_s"],
            "results_match": fp_pooled == fp_legacy,
        }
        print(f"{name:>14}: segments {created_l} -> {created_p} "
              f"({out[name]['alloc_reduction']:.1f}x fewer), wall "
              f"{legacy['wall_s']:.3f}s -> {pooled['wall_s']:.3f}s "
              f"({out[name]['wall_ratio_legacy_over_pooled']:.2f}x), "
              f"parity={'ok' if out[name]['results_match'] else 'MISMATCH'}")
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="workload size multiplier (default 1.0)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=3,
                    help="wall-clock repeats; min is recorded (default 3)")
    ap.add_argument("--out", default=str(RESULTS_DIR / "BENCH_transport.json"))
    args = ap.parse_args(argv)

    results = run_benchmarks(scale=args.scale, seed=args.seed,
                             repeats=args.repeats)
    record = {
        "benchmark": "transport_arena_vs_legacy",
        "p": 2,
        "workloads": results,
        "meta": {"scale": args.scale, "seed": args.seed,
                 "repeats": args.repeats},
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    bad = [n for n, r in results.items() if not r["results_match"]]
    if bad:
        print(f"ERROR: codec results diverged: {bad}", file=sys.stderr)
        return 1
    under = [n for n, r in results.items()
             if r["alloc_reduction"] < ALLOC_REDUCTION_FLOOR]
    if under:
        print(f"ERROR: allocation reduction under "
              f"{ALLOC_REDUCTION_FLOOR:g}x: {under}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
