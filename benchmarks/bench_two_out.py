"""Random 2-out contraction benchmark: trial counts slashed on dense graphs.

Prices both exact-min-cut pipelines on a dense clustered graph (the
``n^2/m``-large regime where the default Theta((n^2/m) log^2 n) budget
explodes) and writes ``results/BENCH_two_out.json``:

* ``dense``: ``variant="2out"`` end to end — planned and dispatched trial
  counts against the default budget, the cut value against the planted
  minimum, and the predicted (analytic-model) time against a two-point
  extrapolation of the default pipeline (running the full default budget
  would take minutes; two probe runs pin down its per-trial cost
  exactly, since the analytic model is linear in the trial count);
* ``sparse``: a weighted cycle — the degrade path, where the minimum
  degree is under the GNT guard and the plan falls back to the default
  pipeline (reduction 1.0, honestly recorded);
* ``small_truth``: a small clustered graph where the full sequential
  reference is affordable — ``variant="2out"`` must match it exactly;
* ``zoo``: every verification-suite corner case — per-case value (checked
  against the known minimum cut, or the sequential reference when the
  suite has none), degrade flag, and planned trial reduction.

Headline numbers are deterministic (analytic times, fixed seeds), so the
trial counts and exactness flags gate in :mod:`benchmarks.perf_gate`.
Wall-clock seconds are recorded for context but never gated.

Acceptance bars:

* ``reduction_ok`` — dispatched-trial reduction >= 3x on the dense
  workload (:data:`REDUCTION_FLOOR`);
* ``values_match`` — the 2-out value equals the planted minimum cut;
* ``small_truth_match`` — exact agreement with the sequential reference;
* ``degrade_honest`` — the sparse workload degrades with reduction 1.0;
* ``zoo_values_match`` — exact values on every verification-suite case.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_two_out
    PYTHONPATH=src python -m benchmarks.bench_two_out --scale 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Acceptance bar: dispatched Karger–Stein trials, default over 2-out.
REDUCTION_FLOOR = 3.0

#: Trial counts for the two default-pipeline probe runs the per-trial
#: cost is fitted from.
PROBE_TRIALS = (2, 4)


def _dense_workload(scale: float, seed: int):
    from repro.graph import clustered_er
    from repro.rng import philox_stream

    n = max(256, int(1024 * scale))
    return clustered_er(n, 48, philox_stream(seed + 77)), 4.0


def run_benchmarks(scale: float = 1.0, seed: int = 0) -> dict:
    import numpy as np

    from repro.core import minimum_cut, minimum_cut_sequential, plan_two_out
    from repro.graph import clustered_er, verification_suite, weighted_cycle
    from repro.rng import philox_stream

    p = 4
    g, planted = _dense_workload(scale, seed)

    t0 = time.perf_counter()
    res = minimum_cut(g, p, seed=seed, variant="2out")
    wall_2out = time.perf_counter() - t0
    s = res.two_out
    dispatched = int(sum(s.replica_completed))

    # Default-pipeline predicted time, extrapolated: the analytic model is
    # linear in the trial count, so two probes recover slope + intercept.
    lo, hi = PROBE_TRIALS
    t_lo = minimum_cut(g, p, seed=seed, trials=lo).time.total_s
    t_hi = minimum_cut(g, p, seed=seed, trials=hi).time.total_s
    per_trial = (t_hi - t_lo) / (hi - lo)
    default_pred = t_lo + per_trial * (s.default_trials - lo)
    pred_2out = res.time.total_s

    sparse = plan_two_out(weighted_cycle(max(64, int(2048 * scale))), p,
                          seed=seed)

    g_small = clustered_er(128, 16, philox_stream(seed + 31), bridges=2)
    truth = minimum_cut_sequential(g_small, seed=seed)[0]
    small = minimum_cut(g_small, p, seed=seed, variant="2out")

    zoo = {}
    for case in verification_suite():
        zr = minimum_cut(case.graph, 2, seed=seed, variant="2out")
        want = (case.mincut if case.mincut is not None
                else minimum_cut_sequential(case.graph, seed=seed)[0])
        zoo[case.name] = {
            "value": zr.value,
            "expected": want,
            "match": zr.value == want,
            "degraded": zr.two_out.degraded,
            "planned_reduction": zr.two_out.reduction,
        }

    reduction = s.default_trials / max(dispatched, 1)
    return {
        "workload": {"n": g.n, "m": g.m, "p": p, "seed": seed,
                     "planted_cut": planted},
        "dense": {
            "value": res.value,
            "replicas": s.replicas,
            "contracted_n": list(s.contracted_n),
            "planned_trials": s.total_trials,
            "dispatched_trials": dispatched,
            "default_trials": s.default_trials,
            "reduction": reduction,
            "planned_reduction": s.reduction,
            "degraded": s.degraded,
            "achieved_success_prob": res.achieved_success_prob,
            "predicted_s": pred_2out,
            "default_predicted_s": default_pred,
            "predicted_speedup": default_pred / pred_2out,
            "wall_s": wall_2out,
        },
        "sparse": {
            "n": int(np.int64(max(64, int(2048 * scale)))),
            "degraded": sparse.degraded,
            "reduction": sparse.reduction,
        },
        "small_truth": {"value": small.value, "sequential": truth},
        "zoo": zoo,
        "values_match": res.value == planted,
        "small_truth_match": small.value == truth,
        "degrade_honest": sparse.degraded and sparse.reduction == 1.0,
        "reduction_ok": reduction >= REDUCTION_FLOOR,
        "zoo_values_match": all(c["match"] for c in zoo.values()),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    record = run_benchmarks(scale=args.scale, seed=args.seed)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "BENCH_two_out.json"
    out.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    d = record["dense"]
    print(f"dense      value {d['value']:g}  trials "
          f"{d['dispatched_trials']}/{d['default_trials']} "
          f"(reduction {d['reduction']:.1f}x)  predicted "
          f"{d['predicted_s']:.4f}s vs default {d['default_predicted_s']:.4f}s "
          f"(speedup {d['predicted_speedup']:.1f}x)")
    print(f"sparse     degraded {record['sparse']['degraded']}  "
          f"reduction {record['sparse']['reduction']:g}")
    print(f"small      value {record['small_truth']['value']:g}  "
          f"sequential {record['small_truth']['sequential']:g}")
    zoo_ok = sum(c["match"] for c in record["zoo"].values())
    print(f"zoo        {zoo_ok}/{len(record['zoo'])} exact values")
    print(f"wrote {out}")
    ok = (record["values_match"] and record["small_truth_match"]
          and record["degrade_honest"] and record["reduction_ok"]
          and record["zoo_values_match"])
    if not ok:
        print("bench_two_out: acceptance bars FAILED", file=sys.stderr)
        return 1
    print(f"bench_two_out: OK (>= {REDUCTION_FLOOR:g}x trial reduction, "
          f"exact values)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
