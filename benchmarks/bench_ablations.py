"""Ablations of the design choices DESIGN.md calls out.

1. Unweighted local-oversampling vs root-scheduled weighted sparsification
   inside CC — the paper: "an improvement that turned out to be crucial in
   practice" (§3.2).
2. Staged vs pipelined AppMC — the paper: "in practice, we found that it
   does not pay off to pipeline the outer loop" when the cut is small
   (§3.3).
3. Sparse vs dense bulk edge contraction — the representation switch at
   m ~ n^2/log n (§3, §4.1).
4. Eager Step on/off in MC — contracting to sqrt(m) first is what makes
   sparse trials affordable (§4: O(m log n) work per trial instead of
   O(n^2)).
"""

import math

import numpy as np
from repro.bsp import run_spmd
from repro.cache import AnalyticTracker
from repro.core import approx_minimum_cut, connected_components
from repro.core.contraction import dense_bulk_contract, row_block, sparse_bulk_contract
from repro.core.karger_stein import karger_stein_matrix
from repro.core.mincut import _edges_to_dense, sequential_trial
from repro.core.sparsify import sparsify_weighted
from repro.graph import AdjacencyMatrix, erdos_renyi, two_cliques_bridge
from repro.graph.contract import components_from_edges
from repro.rng import philox_stream
from repro.rng.streams import RngStreams

from common import MODEL, once, report_experiment

SEED = 13


# -- 1. unweighted vs weighted sparsification inside CC ---------------------

def cc_weighted_sampling_program(ctx, slices, n, eps):
    """CC variant using the root-scheduled *weighted* sparsifier."""
    import operator

    comm = ctx.comm
    g = slices[ctx.rank]
    u, v = g.u.copy(), g.v.copy()
    w = np.ones_like(u, dtype=np.float64)
    labels = np.arange(n, dtype=np.int64) if ctx.rank == 0 else None
    k = n
    for _ in range(60):
        m_total = yield from comm.allreduce(int(u.size), op=operator.add)
        if m_total == 0:
            break
        s = min(m_total, max(16, math.ceil(k ** (1 + eps))))
        sample = yield from sparsify_weighted(ctx, comm, u, v, w, s)
        if ctx.rank == 0:
            su, sv, _ = sample
            g_map, k_new = components_from_edges(k, su, sv)
            labels = g_map[labels]
            payload = (g_map, k_new)
        else:
            payload = None
        g_map, k_new = yield from comm.bcast(payload)
        u, v = g_map[u], g_map[v]
        keep = u != v
        u, v, w = u[keep], v[keep], w[keep]
        ctx.charge_scan(g.m, words_per_elem=2)
        k = k_new
    return (labels, k) if ctx.rank == 0 else (None, k)


def test_ablation_unweighted_sampling(benchmark):
    g = erdos_renyi(4_096, 32_768, philox_stream(SEED))
    rows = []
    for p in (4, 8):
        fast = connected_components(g, p=p, seed=SEED)
        slow = run_spmd(cc_weighted_sampling_program, p, seed=SEED,
                        args=(g.slices(p), g.n, 0.25))
        assert fast.n_components == slow.root_value[1]
        rows.append([
            p,
            MODEL.predict(fast.report).total_s,
            MODEL.predict(slow.report).total_s,
            fast.report.computation,
            slow.report.computation,
        ])
    report_experiment(
        "ablation_unweighted_sampling",
        "CC with unweighted local sampling vs root-scheduled weighted sampling",
        ["p", "unweighted_s", "weighted_s", "unweighted_ops", "weighted_ops"],
        rows,
        notes="paper §3.2: dropping the root round-trip and O(log n) draws "
              "was 'crucial in practice'",
    )
    for row in rows:
        assert row[1] < row[2], "unweighted variant must be faster"
    once(benchmark, connected_components, g, p=8, seed=SEED)


# -- 2. staged vs pipelined AppMC -------------------------------------------

def test_ablation_appmc_schedules(benchmark):
    small_cut = two_cliques_bridge(16, bridge_weight=1.0)
    big_cut = two_cliques_bridge(16, bridge_weight=48.0)
    rows = []
    for name, g in (("small_cut", small_cut), ("big_cut", big_cut)):
        staged = approx_minimum_cut(g, p=4, seed=SEED)
        piped = approx_minimum_cut(g, p=4, seed=SEED, pipelined=True)
        rows.append([
            name,
            staged.report.supersteps, piped.report.supersteps,
            staged.report.total_ops, piped.report.total_ops,
        ])
    report_experiment(
        "ablation_appmc_schedule",
        "AppMC staged vs pipelined schedule",
        ["graph", "staged_steps", "piped_steps", "staged_ops", "piped_ops"],
        rows,
        notes="paper §3.3: staged stops at the first disconnected level — "
              "cheaper when the cut is small; pipelined is one CC call "
              "(O(1) supersteps) regardless of the cut value",
    )
    small, big = rows[0], rows[1]
    # staged pays per level: the big cut costs it more supersteps …
    assert big[1] > small[1]
    # … while the small-cut instance does far less work staged than piped.
    assert small[3] < small[4]
    once(benchmark, approx_minimum_cut, small_cut, p=4, seed=SEED)


# -- 3. sparse vs dense bulk contraction crossover ---------------------------

def _run_sparse_contract(g, labels, n_new, p):
    slices = g.slices(p)

    def prog(ctx):
        sl = slices[ctx.rank]
        out = yield from sparse_bulk_contract(
            ctx, ctx.comm, sl.u, sl.v, sl.w, labels, n_new
        )
        return out

    return run_spmd(prog, p, seed=SEED)


def _run_dense_contract(g, labels, n_new, p):
    a = AdjacencyMatrix.from_edgelist(g).a

    def prog(ctx):
        lo, hi = row_block(ctx.rank, ctx.p, g.n)
        out = yield from dense_bulk_contract(
            ctx, ctx.comm, a[lo:hi].copy(), g.n, labels, n_new
        )
        return out

    return run_spmd(prog, p, seed=SEED)


def test_ablation_contraction_representations(benchmark):
    n, p = 512, 4
    rng = philox_stream(SEED)
    labels = rng.integers(0, n // 2, n).astype(np.int64)
    rows = []
    for m in (2_048, 16_384, 65_536, 120_000):
        g = erdos_renyi(n, m, philox_stream(SEED + m), weighted=True)
        sparse = _run_sparse_contract(g, labels, n // 2, p)
        dense = _run_dense_contract(g, labels, n // 2, p)
        rows.append([
            m,
            MODEL.predict(sparse.report).total_s,
            MODEL.predict(dense.report).total_s,
        ])
    report_experiment(
        "ablation_contraction",
        f"sparse vs dense bulk contraction, n={n}, p={p}, growing m",
        ["m", "sparse_s", "dense_s"],
        rows,
        notes="§3: edge arrays win while m << n^2/log n; the dense matrix "
              "path is flat in m and wins as the graph densifies",
    )
    assert rows[0][1] < rows[0][2], "sparse wins on the sparsest input"
    dense_times = [r[2] for r in rows]
    assert max(dense_times) < 3 * min(dense_times), "dense cost ~flat in m"
    sparse_times = [r[1] for r in rows]
    assert sparse_times[-1] > 3 * sparse_times[0], "sparse cost grows with m"
    g = erdos_renyi(n, 16_384, philox_stream(SEED + 16_384), weighted=True)
    once(benchmark, _run_sparse_contract, g, labels, n // 2, p)


# -- 4. eager step on/off -----------------------------------------------------

def test_ablation_eager_step(benchmark):
    g = erdos_renyi(512, 2_048, philox_stream(SEED), weighted=True)
    streams = RngStreams(SEED)

    with_eager = AnalyticTracker()
    val_eager, _ = sequential_trial(g.u, g.v, g.w, g.n, streams.aux(0),
                                    mem=with_eager)

    without = AnalyticTracker()
    a = _edges_to_dense(g.u, g.v, g.w, g.n)
    without.alloc("ks_matrix", g.n * g.n)
    without.scan("ks_matrix", 0, g.n * g.n)
    without.ops(g.n * g.n)
    val_plain, _ = karger_stein_matrix(a, streams.aux(1), without)

    rows = [[
        "with_eager", with_eager.op_count, with_eager.miss_count, val_eager,
    ], [
        "recursive_only", without.op_count, without.miss_count, val_plain,
    ]]
    report_experiment(
        "ablation_eager_step",
        f"one MC trial with vs without the Eager Step, ER n={g.n} m={g.m}",
        ["variant", "ops", "misses", "cut_found"],
        rows,
        notes="§4: contracting to sqrt(m) vertices first turns the "
              "per-trial cost from ~n^2 into ~m log n on sparse graphs",
    )
    assert with_eager.op_count * 3 < without.op_count, \
        "eager step must save several-fold work per trial"
    once(benchmark, sequential_trial, g.u, g.v, g.w, g.n, streams.aux(2))
