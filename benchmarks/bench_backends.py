"""Backend benchmark: the simulator vs real processes, end to end.

Runs the three artifact algorithms (``parallel_cc``, ``approx_cut``,
``square_root``) at p in {1, 2, 4, 8} under both execution backends and
emits a machine-readable record to ``results/BENCH_runtime.json``:

* per (algorithm, p): wall-clock seconds of each backend, the mp
  backend's measured app/MPI split, the sim backend's analytic estimate,
  the mp-over-sim wall-clock speedup, a result-parity flag, and the mp
  transport's per-collective-kind stats (messages, pickle bytes,
  shared-memory segments created vs reused, bytes copied, arena
  high-water mark);
* metadata: CPU count and affinity, multiprocessing start method, Python
  version — the context needed to interpret the speedups.  Real speedup
  > 1 requires real cores: on a single-CPU container the mp backend adds
  IPC overhead on top of serialized compute, and the record says so
  rather than pretending otherwise.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_backends
    PYTHONPATH=src python -m benchmarks.bench_backends \
        --edges 120000 --procs 1 2 4 8 --out results/BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.graph import erdos_renyi
from repro.harness import run_algorithm
from repro.rng import philox_stream
from repro.runtime import default_start_method

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Fixed trial budget for square_root: keeps the workload comparable
#: across p (p <= trials -> same trial set regardless of parallelism).
SQUARE_ROOT_TRIALS = 8

ALGORITHMS = ("parallel_cc", "approx_cut", "square_root")


def _result_key(algorithm: str, res):
    """The backend-independent scalar the parity flag compares."""
    if algorithm == "parallel_cc":
        return res.n_components
    if algorithm == "approx_cut":
        return res.estimate
    return res.value


def _run_timed(algorithm: str, g, p: int, seed: int, backend: str):
    """Returns (result, wall_s, transport_stats_or_None)."""
    from repro.runtime import MpBackend

    kwargs = {"trials": SQUARE_ROOT_TRIALS} if algorithm == "square_root" else {}
    # Instantiate the mp backend ourselves so its per-kind transport
    # stats survive the run and can be folded into the record.
    be = MpBackend() if backend == "mp" else backend
    t0 = time.perf_counter()
    res = run_algorithm(algorithm, g, p=p, seed=seed, backend=be, **kwargs)
    wall = time.perf_counter() - t0
    stats = be.last_transport_stats if isinstance(be, MpBackend) else None
    return res, wall, stats


def run_suite(g, procs, seed):
    rows = []
    for algorithm in ALGORITHMS:
        for p in procs:
            sim_res, sim_wall, _ = _run_timed(algorithm, g, p, seed, "sim")
            mp_res, mp_wall, mp_transport = _run_timed(
                algorithm, g, p, seed, "mp")
            row = {
                "algorithm": algorithm,
                "p": p,
                "sim_wall_s": sim_wall,
                "mp_wall_s": mp_wall,
                "sim_predicted_s": sim_res.time.total_s,
                "mp_app_s": mp_res.time.app_s,
                "mp_mpi_s": mp_res.time.mpi_s,
                "speedup_mp_over_sim": sim_wall / mp_wall if mp_wall else None,
                "result": _result_key(algorithm, mp_res),
                "results_match": _result_key(algorithm, sim_res)
                == _result_key(algorithm, mp_res),
                "counters_match": sim_res.report == mp_res.report,
                #: Per-collective-kind mp transport stats: messages,
                #: pickle bytes, segments created/reused, bytes copied,
                #: plus the arena high-water mark for this run.
                "mp_transport": mp_transport,
            }
            rows.append(row)
            print(
                f"{algorithm:>12} p={p}: sim {sim_wall:7.3f}s  "
                f"mp {mp_wall:7.3f}s  speedup {row['speedup_mp_over_sim']:.2f}x  "
                f"parity={'ok' if row['results_match'] else 'MISMATCH'}"
            )
    return rows


def summarize(rows):
    """Per-algorithm speedup curve: p -> mp-over-sim wall-clock ratio."""
    out = {}
    for row in rows:
        out.setdefault(row["algorithm"], {})[str(row["p"])] = round(
            row["speedup_mp_over_sim"], 4
        )
    return out


def input_plane_comparison(g, p, seed):
    """Input-shipping pickle bytes per query, graph plane off vs on.

    One extra mp run per algorithm per mode at the gate's p (4); the
    ``input`` transport-stats kind isolates exactly the bytes the shared
    graph plane removes (slice arrays out, O(1) segment handles in).
    """
    from repro.runtime import MpBackend

    out = {"p": p}
    for algorithm in ALGORITHMS:
        kwargs = ({"trials": SQUARE_ROOT_TRIALS}
                  if algorithm == "square_root" else {})
        entry = {}
        for label, plane in (("off", False), ("on", True)):
            be = MpBackend(graph_plane=plane)
            run_algorithm(algorithm, g, p=p, seed=seed, backend=be, **kwargs)
            entry[f"input_bytes_{label}"] = int(
                be.last_transport_stats["per_kind"]["input"]["pickle_bytes"])
        entry["reduction"] = round(
            entry["input_bytes_off"] / max(entry["input_bytes_on"], 1), 2)
        out[algorithm] = entry
        print(f"{algorithm:>12} p={p}: input bytes "
              f"{entry['input_bytes_off']} -> {entry['input_bytes_on']} "
              f"({entry['reduction']:.1f}x with the graph plane)")
    return out


def transport_totals(rows):
    """Per-kind transport stats summed over every mp run in the sweep."""
    kinds: dict[str, dict[str, int]] = {}
    high_water = 0
    for row in rows:
        stats = row.get("mp_transport")
        if not stats:
            continue
        for kind, bucket in stats["per_kind"].items():
            mine = kinds.setdefault(kind, dict.fromkeys(bucket, 0))
            for field, v in bucket.items():
                mine[field] += v
        high_water = max(high_water, stats["high_water_bytes"])
    return {"per_kind": dict(sorted(kinds.items())),
            "max_high_water_bytes": high_water}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--edges", type=int, default=120_000,
                    help="edge count of the benchmark graph (default 120000)")
    ap.add_argument("--vertices", type=int, default=None,
                    help="vertex count (default edges // 20)")
    ap.add_argument("--procs", type=int, nargs="+", default=[1, 2, 4, 8],
                    help="processor counts to sweep (default 1 2 4 8)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", default=str(RESULTS_DIR / "BENCH_runtime.json"))
    args = ap.parse_args(argv)

    n = args.vertices or max(64, args.edges // 20)
    g = erdos_renyi(n, args.edges, philox_stream(args.seed), weighted=True)
    print(f"benchmark graph: n={g.n} m={g.m} | procs={args.procs} | "
          f"cpus={os.cpu_count()}")

    rows = run_suite(g, args.procs, args.seed)
    plane = input_plane_comparison(g, min(4, max(args.procs)), args.seed)
    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = None
    record = {
        "benchmark": "backend_speedup",
        "graph": {"n": g.n, "m": g.m, "family": "erdos_renyi",
                  "weighted": True, "seed": args.seed},
        "square_root_trials": SQUARE_ROOT_TRIALS,
        "rows": rows,
        "speedup_mp_over_sim": summarize(rows),
        "transport_totals": transport_totals(rows),
        #: Input bytes per query, plane off vs on, at the gated p=4.
        "graph_plane": plane,
        "all_results_match": all(r["results_match"] for r in rows),
        "all_counters_match": all(r["counters_match"] for r in rows),
        "metadata": {
            "cpu_count": os.cpu_count(),
            "cpu_affinity": affinity,
            "start_method": default_start_method(),
            "python": platform.python_version(),
            "note": (
                "mp-over-sim speedup needs cpu_count > 1; with a single "
                "CPU the workers serialize and IPC overhead dominates"
            ),
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    if not record["all_results_match"]:
        print("ERROR: backend results diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
