"""Figure 7: MC weak scaling on sparse and dense graphs.

Paper setup: fixed vertices-per-node (Watts–Strogatz d = 32, 4'000
vertices/node; R-MAT d = 1'000, 2'000 vertices/node), growing n and p
together.  Since MC's execution time is ~n^2/p, fixing n/p makes the time
grow *linearly* in n — the straight trend lines of Figure 7.

Scaled reproduction: WS d = 8 with 64 vertices/processor and R-MAT d ~ 32
with 32 vertices/processor, p = 2..16.  The linearity check fits the
measured times against n and requires a good linear fit with positive
slope.
"""

import numpy as np
from repro.core import minimum_cut
from repro.graph import rmat, watts_strogatz
from repro.rng import philox_stream

from common import MODEL, once, report_experiment

SEED = 7


def weak_sweep(make_graph, verts_per_proc, trials_at_base):
    rows = []
    for p in (2, 4, 8, 16):
        n = verts_per_proc * p
        g = make_graph(n)
        # Keep work-per-trial-per-vertex comparable: the trial count of the
        # base size, held fixed so the sweep isolates the n^2/p growth.
        res = minimum_cut(g, p=p, seed=SEED, trials=trials_at_base)
        t = MODEL.predict(res.report)
        rows.append([p, n, g.m, t.total_s])
    return rows


def check_linear_growth(rows):
    """Fit time ~ a*n + b; demand positive slope and a decent fit."""
    n = np.array([r[1] for r in rows], dtype=float)
    t = np.array([r[3] for r in rows], dtype=float)
    a, b = np.polyfit(n, t, 1)
    predicted = a * n + b
    residual = np.abs(predicted - t) / t.max()
    assert a > 0, "time must grow with n at fixed n/p"
    assert residual.max() < 0.35, f"trend not linear: residuals {residual}"
    # And the growth is far from quadratic: 8x n costs well under 30x time.
    assert t[-1] / t[0] < 30


def test_fig7_weak_sparse(benchmark):
    rows = weak_sweep(
        lambda n: watts_strogatz(n, 8, philox_stream(SEED)),
        verts_per_proc=64,
        trials_at_base=12,
    )
    report_experiment(
        "fig7_mc_weak_sparse",
        "MC weak scaling, Watts-Strogatz d=8, 64 vertices/proc",
        ["cores", "n", "m", "time_s"],
        rows,
        notes="shape: execution time grows linearly in n at fixed n/p "
              "(time ~ n^2/p)",
    )
    check_linear_growth(rows)
    g = watts_strogatz(256, 8, philox_stream(SEED))
    once(benchmark, minimum_cut, g, p=4, seed=SEED, trials=12)


def test_fig7_weak_dense(benchmark):
    rows = weak_sweep(
        lambda n: rmat(n, 16 * n, philox_stream(SEED), simple=False),
        verts_per_proc=32,
        trials_at_base=8,
    )
    report_experiment(
        "fig7_mc_weak_dense",
        "MC weak scaling, R-MAT d~32, 32 vertices/proc",
        ["cores", "n", "m", "time_s"],
        rows,
        notes="shape: linear growth in n at fixed n/p on the dense family",
    )
    check_linear_growth(rows)
    g = rmat(128, 16 * 128, philox_stream(SEED), simple=False)
    once(benchmark, minimum_cut, g, p=4, seed=SEED, trials=8)
