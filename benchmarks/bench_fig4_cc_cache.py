"""Figure 4: CC cache efficiency, sequential comparison, IPM, 4d scaling.

Paper setup: (4a) LLC misses of sequential CC vs BGL vs Galois on R-MAT
d = 256 with growing n — the sampling CC and the union-find code incur
significantly fewer misses than the BFS traversal as inputs grow (~3x at
10^6 vertices); (4b) the corresponding execution times, where CC's higher
instruction count is offset by its cache behaviour; (4c) instructions per
LLC miss; (4d) strong scaling with the app/MPI split on a dense R-MAT.

Scaled reproduction: R-MAT d ~ 128 with n in {2k, 4k, 8k}, traced through
the LRU simulator with a 2k-word cache (so the vertex-indexed arrays cross
the cache boundary inside the sweep, as the paper's 10^6-vertex inputs do
against the 45 MiB LLC).  The miss gap is ~1.5x at our largest size — the
paper's 3x needs the full 10^6-vertex scale — but the ordering and the
growth of the gap reproduce.
"""

import pytest

from repro.baselines import bgl_cc, galois_cc, galois_cc_parallel, pbgl_cc
from repro.cache import LRUTracker
from repro.core import cc_sequential, connected_components
from repro.graph import rmat
from repro.rng import philox_stream

from common import MODEL, once, report_experiment, sequential_time

SEED = 4
NS = (2_048, 4_096, 8_192)
DEG = 128
CACHE_M, CACHE_B = 2_048, 8


def tracker():
    return LRUTracker(M=CACHE_M, B=CACHE_B)


@pytest.fixture(scope="module")
def size_sweep():
    rows = []
    for n in NS:
        g = rmat(n, n * DEG // 2, philox_stream(SEED))
        mems = {}
        for name, fn in [
            ("cc", lambda m: cc_sequential(g, seed=SEED, mem=m)),
            ("bgl", lambda m: bgl_cc(g, mem=m)),
            ("galois", lambda m: galois_cc(g, mem=m)),
        ]:
            mem = tracker()
            fn(mem)
            mems[name] = mem
        rows.append(
            [n, g.m]
            + [mems[k].miss_count for k in ("cc", "bgl", "galois")]
            + [sequential_time(mems[k]) for k in ("cc", "bgl", "galois")]
            + [mems[k].instructions_per_miss() for k in ("cc", "bgl", "galois")]
        )
    return rows


def test_fig4a_sequential_cache_misses(benchmark, size_sweep):
    rows = [[r[0], r[2], r[3], r[4]] for r in size_sweep]
    report_experiment(
        "fig4a_cc_llc_misses",
        f"sequential LLC misses (LRU-traced), R-MAT d~{DEG}, growing n",
        ["n", "cc_misses", "bgl_misses", "galois_misses"],
        rows,
        notes="shape: CC and Galois fall below the BFS traversal once the "
              "vertex arrays outgrow the cache; gap grows with n "
              "(paper: ~3x at 10^6 vertices; ~1.5x at this scale)",
    )
    last = rows[-1]
    assert last[1] < 0.8 * last[2], "CC clearly below BGL at the largest size"
    assert last[3] < last[2], "Galois below BGL"
    first = rows[0]
    assert last[2] / last[1] > first[2] / first[1], "gap grows with n"
    g = rmat(NS[0], NS[0] * DEG // 2, philox_stream(SEED))
    once(benchmark, cc_sequential, g, seed=SEED, mem=tracker())


def test_fig4b_sequential_time(benchmark, size_sweep):
    rows = [[r[0], r[5], r[6], r[7]] for r in size_sweep]
    report_experiment(
        "fig4b_cc_sequential_time",
        f"sequential execution time, R-MAT d~{DEG}, growing n",
        ["n", "cc_s", "bgl_s", "galois_s"],
        rows,
        notes="shape: CC executes fewer instructions per edge than the "
              "traversal and wins on time at the largest size",
    )
    last = rows[-1]
    assert last[1] < last[2], "sequential CC faster than BGL at scale (§5.1)"
    g = rmat(NS[0], NS[0] * DEG // 2, philox_stream(SEED))
    once(benchmark, bgl_cc, g, mem=tracker())


def test_fig4c_ipm(benchmark, size_sweep, dense_graph):
    # Traced sequential IPM (the Figure 8b companion panel)...
    rows = [[r[0], r[8], r[9], r[10]] for r in size_sweep]
    # ...plus the analytic parallel IPM trend of Figure 4c.
    parallel_rows = []
    for p in (1, 4, 16):
        rep_cc = connected_components(dense_graph, p=p, seed=SEED).report
        rep_gal = galois_cc_parallel(dense_graph, p=p, seed=SEED)[2]
        rep_pbgl = pbgl_cc(dense_graph, p=p, seed=SEED)[2]
        parallel_rows.append([
            p,
            rep_cc.instructions_per_miss(),
            rep_gal.instructions_per_miss(),
            rep_pbgl.instructions_per_miss(),
        ])
    report_experiment(
        "fig4c_cc_ipm",
        "instructions per LLC miss: traced sequential (top) and analytic "
        "parallel trend vs cores (bottom)",
        ["n_or_cores", "cc_ipm", "bgl_or_galois_ipm", "galois_or_pbgl_ipm"],
        rows + [["--"] * 4] + parallel_rows,
        notes="traced: CC sustains higher IPM than the BFS traversal at the "
              "largest size (paper Fig 8b); analytic: IPM declines as "
              "parallelism is exhausted (paper Fig 4c trend). The parallel "
              "IPM *ordering* is not reproducible from analytic counters — "
              "documented fidelity limit.",
    )
    last = rows[-1]
    assert last[1] > last[2], "CC IPM above BGL at the largest traced size"
    # parallelism exhausts IPM for every implementation
    for col in (1, 2, 3):
        assert parallel_rows[-1][col] <= parallel_rows[0][col]
    once(benchmark, galois_cc_parallel, dense_graph, p=8, seed=SEED)


@pytest.fixture(scope="module")
def dense_graph():
    return rmat(1_024, 131_072, philox_stream(SEED + 1))


@pytest.fixture(scope="module")
def parallel_sweep(dense_graph):
    rows = []
    for p in (1, 2, 4, 8, 16):
        rep_cc = connected_components(dense_graph, p=p, seed=SEED).report
        t = MODEL.predict(rep_cc)
        rows.append([p, t.total_s, t.app_s, t.mpi_s])
    return rows


def test_fig4d_strong_scaling(benchmark, parallel_sweep, dense_graph):
    rows = parallel_sweep
    report_experiment(
        "fig4d_cc_strong_scaling",
        f"CC strong scaling app/MPI split, R-MAT n={dense_graph.n} d~256",
        ["cores", "total_s", "app_s", "mpi_s"],
        rows,
        notes="paper §5.1: MPI share grows from ~3% to ~10% as cores double",
    )
    assert rows[-1][2] < rows[0][2] / 4, "application time scales with p"
    assert rows[-1][3] / rows[-1][1] > rows[0][3] / rows[0][1]
    once(benchmark, connected_components, dense_graph, p=16, seed=SEED)
