"""Serve-daemon benchmark: warm repeat queries against cold one-shot CLI.

The daemon's whole point is amortization: a one-shot CLI run pays
interpreter start-up, module imports, graph parsing and (on the mp
backend) worker-pool spawn on **every** query; the daemon pays them
once.  This benchmark prices both paths on the same workload and writes
``results/BENCH_serve.json``:

* ``cold`` — median wall-clock of ``python -m repro.cli <algorithm>``
  subprocess invocations (the artifact's execution model);
* ``warm`` — per-query latencies against a live in-process daemon (sim
  backend, unix socket): the first query (cache miss) separately from
  the steady-state repeats, with p50/p99 and queries/s.  The min-cut
  leg runs the 2-out variant, whose random contraction makes replicas
  tiny — so serving overhead (process start-up, imports, graph load,
  preprocessing) dominates the query and the daemon's graph and plan
  caches pay off on every repeat;
* ``concurrent`` — an open loop of several clients issuing interleaved
  queries at different priorities: aggregate throughput, per-client
  p50/p99, and a ``results_match`` flag proving every answer equals the
  direct :func:`~repro.harness.run_algorithm` result bit for bit.

Acceptance bars (gated in :mod:`benchmarks.perf_gate`):

* ``speedup_ok`` — warm steady-state latency at least
  :data:`WARM_SPEEDUP_FLOOR` x below the cold one-shot CLI;
* ``results_match`` — every served answer equals the direct call.

Wall-clock seconds are environment-dependent; the gate checks the flags
and the deterministic result fields, never raw seconds.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_serve
    PYTHONPATH=src python -m benchmarks.bench_serve --repeats 10
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Acceptance bar: cold one-shot latency over warm repeat-query latency.
WARM_SPEEDUP_FLOOR = 3.0

#: Acceptance bar: input-shipping pickle bytes per warm repeat query,
#: graph plane off over on, at p=4 (gated in benchmarks.perf_gate).
BYTES_REDUCTION_FLOOR = 5.0


def plane_bytes_per_query(p: int = 4, seed: int = 0) -> dict:
    """Warm repeat-query input bytes per dispatch, graph plane off vs on.

    Runs the same ``parallel_cc`` query twice against a fresh
    :class:`~repro.runtime.warm.WarmMpBackend` per mode and reads the
    repeat query's ``input``-kind transport stats: with the plane off the
    dispatch re-pickles every worker's graph slice; with it on the wire
    carries one O(1) segment handle.  Byte counts are deterministic
    (fixed-width segment names and slab tokens), so the perf gate checks
    them exactly and floors the off/on ratio at
    :data:`BYTES_REDUCTION_FLOOR`.
    """
    from repro.graph import erdos_renyi
    from repro.harness.experiment import run_algorithm
    from repro.rng import philox_stream
    from repro.runtime.warm import WarmMpBackend

    g = erdos_renyi(400, 4000, philox_stream(seed + 5), weighted=True)
    out = {"p": p, "n": g.n, "m": g.m, "algorithm": "parallel_cc"}
    values = {}
    for label, plane in (("off", False), ("on", True)):
        be = WarmMpBackend(graph_plane=plane)
        try:
            run_algorithm("parallel_cc", g, p=p, seed=seed, backend=be)
            res = run_algorithm("parallel_cc", g, p=p, seed=seed, backend=be)
            stats = be.last_transport_stats
            out[f"repeat_input_bytes_{label}"] = int(
                stats["per_kind"]["input"]["pickle_bytes"])
            values[label] = (int(res.n_components), int(res.labels.sum()),
                             res.report)
        finally:
            be.close()
    out["reduction"] = round(
        out["repeat_input_bytes_off"]
        / max(out["repeat_input_bytes_on"], 1), 2)
    out["reduction_ok"] = out["reduction"] >= BYTES_REDUCTION_FLOOR
    out["results_match"] = values["off"] == values["on"]
    return out

def _percentiles(samples: list[float]) -> dict:
    import numpy as np

    xs = np.sort(np.asarray(samples))
    return {
        "n": len(xs),
        "p50_s": float(np.percentile(xs, 50)),
        "p99_s": float(np.percentile(xs, 99)),
        "mean_s": float(xs.mean()),
    }


def _cold_runs(graph_path: str, seed: int, repeats: int) -> dict:
    """One-shot CLI subprocesses: the per-query cost without the daemon."""
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    out = {}
    for algorithm, extra in (("parallel_cc", []),
                             ("square_root", ["--variant", "2out"])):
        samples = []
        for _rep in range(repeats):
            t0 = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.cli", algorithm, graph_path,
                 "--seed", str(seed), *extra],
                check=True, capture_output=True, env=env)
            samples.append(time.perf_counter() - t0)
        out[algorithm] = _percentiles(samples)
    return out


def _warm_runs(client, graph_path: str, seed: int, repeats: int) -> dict:
    """Repeat queries against a live daemon over one connection."""
    out = {}
    for algorithm, extra in (("parallel_cc", {}),
                             ("square_root", {"variant": "2out"})):
        t0 = time.perf_counter()
        first = client.run(algorithm, graph_path, seed=seed, **extra)
        first_s = time.perf_counter() - t0
        samples = []
        for _rep in range(repeats):
            t0 = time.perf_counter()
            client.run(algorithm, graph_path, seed=seed, **extra)
            samples.append(time.perf_counter() - t0)
        out[algorithm] = {
            "first_query_s": first_s,     # pays the graph-cache miss
            **_percentiles(samples),
            "qps": len(samples) / max(sum(samples), 1e-9),
            "first_result": first,
        }
    return out


def _concurrent_runs(address: str, graph_path: str, seed: int,
                     clients: int, per_client: int) -> dict:
    """Open loop: several prioritized clients interleaving queries."""
    from repro.serve import Client

    latencies: dict[str, list[float]] = {}
    results: dict[str, list] = {}

    def worker(idx: int):
        name = f"bench{idx}"
        lat, res = [], []
        with Client(address, client=name,
                    priority=float(1 + idx % 2)) as c:
            for q in range(per_client):
                t0 = time.perf_counter()
                res.append(c.run("square_root", graph_path,
                                 seed=seed + idx * per_client + q,
                                 variant="2out"))
                lat.append(time.perf_counter() - t0)
        latencies[name] = lat
        results[name] = res

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    every = [x for lat in latencies.values() for x in lat]
    return {
        "clients": clients,
        "queries": clients * per_client,
        "wall_s": wall,
        "qps": clients * per_client / max(wall, 1e-9),
        **_percentiles(every),
        "per_client": {name: _percentiles(lat)
                       for name, lat in sorted(latencies.items())},
        "results": results,
    }


def run_benchmarks(repeats: int = 5, seed: int = 0,
                   clients: int = 3, per_client: int = 3,
                   plane: bool = False) -> dict:
    from repro.graph import erdos_renyi, write_edgelist
    from repro.harness.experiment import run_algorithm
    from repro.rng import philox_stream
    from repro.serve import Client, Daemon, ServeConfig, wait_server

    tmp = tempfile.mkdtemp(prefix="bench_serve_")
    g = erdos_renyi(120, 600, philox_stream(seed + 17), weighted=True)
    graph_path = os.path.join(tmp, "bench.edges")
    write_edgelist(g, graph_path)

    cold = _cold_runs(graph_path, seed, repeats)

    cfg = ServeConfig(bind=os.path.join(tmp, "serve.sock"),
                      state_dir=os.path.join(tmp, "state"),
                      backend="sim", p=4, wave_size=16)
    with Daemon(cfg) as daemon:
        wait_server(daemon.address)
        with Client(daemon.address, client="bench") as client:
            warm = _warm_runs(client, graph_path, seed, repeats)
        concurrent = _concurrent_runs(daemon.address, graph_path, seed,
                                      clients, per_client)

    # every served answer must equal the direct call, bit for bit
    match = True
    d_cc = run_algorithm("parallel_cc", g, p=4, seed=seed)
    cc_first = warm["parallel_cc"].pop("first_result")
    match &= cc_first["n_components"] == d_cc.n_components
    sq_first = warm["square_root"].pop("first_result")
    d_sq = run_algorithm("square_root", g, p=4, seed=seed, variant="2out")
    match &= sq_first["value"] == d_sq.value
    for idx in range(clients):
        rs = concurrent["results"][f"bench{idx}"]
        for q, r in enumerate(rs):
            solo = run_algorithm("square_root", g, p=4,
                                 seed=seed + idx * per_client + q,
                                 variant="2out")
            match &= r["value"] == solo.value
    concurrent.pop("results")

    speedups = {
        algorithm: cold[algorithm]["p50_s"] / max(
            warm[algorithm]["p50_s"], 1e-9)
        for algorithm in cold
    }
    record = {
        "workload": {"n": g.n, "m": g.m, "seed": seed,
                     "repeats": repeats},
        "cold": cold,
        "warm": warm,
        "concurrent": concurrent,
        "warm_speedup": speedups,
        "min_warm_speedup": min(speedups.values()),
        "speedup_ok": min(speedups.values()) >= WARM_SPEEDUP_FLOOR,
        "results_match": bool(match),
        "cc_value": int(d_cc.n_components),
        "sq_value": float(d_sq.value),
        "speedup_floor": WARM_SPEEDUP_FLOOR,
    }
    if plane:
        # Warm repeat-query input bytes, plane off vs on (the number the
        # shared graph plane exists to shrink).
        record["graph_plane"] = plane_bytes_per_query(p=4, seed=seed)
        record["graph_plane"]["bytes_reduction_floor"] = BYTES_REDUCTION_FLOOR
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--clients", type=int, default=3)
    ap.add_argument("--per-client", type=int, default=3)
    ap.add_argument("--out", default=str(RESULTS_DIR / "BENCH_serve.json"))
    args = ap.parse_args(argv)
    record = run_benchmarks(repeats=args.repeats, seed=args.seed,
                            clients=args.clients,
                            per_client=args.per_client, plane=True)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    Path(args.out).write_text(json.dumps(record, indent=1, sort_keys=True)
                              + "\n")
    print(f"bench_serve: cold cc p50 {record['cold']['parallel_cc']['p50_s']:.3f}s, "
          f"warm p50 {record['warm']['parallel_cc']['p50_s']:.3f}s; "
          f"min warm speedup {record['min_warm_speedup']:.1f}x "
          f"(floor {WARM_SPEEDUP_FLOOR:g}x), "
          f"concurrent {record['concurrent']['qps']:.1f} qps, "
          f"results_match={record['results_match']} -> {args.out}")
    gp = record.get("graph_plane")
    if gp:
        print(f"graph plane: warm repeat input bytes "
              f"{gp['repeat_input_bytes_off']} -> "
              f"{gp['repeat_input_bytes_on']} "
              f"({gp['reduction']:.1f}x, floor {BYTES_REDUCTION_FLOOR:g}x, "
              f"results_match={gp['results_match']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
