"""Artifact-style command-line interface.

The published artifact ships three executables — ``parallel_cc``,
``approx_cut`` and ``square_root`` (the exact minimum cut) — that read an
edge-list file and print a profiling CSV line per execution (Listing 1 of
the artifact appendix: input, seed, vertex/edge counts, execution and MPI
time, parallelism, algorithm tag, and the result).  This module mirrors
them as subcommands, plus a ``generate`` subcommand standing in for the
artifact's input generators.

``--backend`` selects the runtime: ``sim`` (default) executes on the
single-process BSP simulator with the analytic time model; ``mp`` executes
on ``--procs`` real OS processes over shared memory and reports measured
wall-clock times.  The algorithmic result and counters are identical
either way for a fixed seed.

Usage::

    python -m repro.cli generate --family er --n 1000 --degree 8 \
        --seed 1 --out g.txt
    python -m repro.cli parallel_cc g.txt --procs 8 --seed 1
    python -m repro.cli parallel_cc g.txt --procs 4 --backend mp
    python -m repro.cli approx_cut g.txt --procs 8 --seed 1
    python -m repro.cli square_root g.txt --procs 8 --seed 1 --trial-scale 0.1
    python -m repro.cli square_root g.txt --procs 8 --seed 1 --variant 2out
    python -m repro.cli square_root g.txt --procs 4 --backend mp \
        --max-retries 3 --checkpoint ledger.jsonl \
        --inject-faults crash:rank=1,step=1

The last form engages the fault-tolerant trial scheduler (``repro.sched``):
any of ``--max-retries``, ``--retry-backoff``, ``--checkpoint``,
``--resume`` or ``--inject-faults`` dispatches the Monte-Carlo trials
through the retrying, checkpointable dispatch loop and reports the
achieved success probability next to the profile line.

``serve`` / ``query`` run and talk to the persistent analytics daemon
(``repro.serve``): ``serve`` keeps worker processes, arena slabs and
loaded graphs warm across queries; ``query`` is the blocking client::

    python -m repro.cli serve --bind /tmp/repro.sock --state-dir state &
    python -m repro.cli query /tmp/repro.sock parallel_cc g.txt \
        --wait-server 10
    python -m repro.cli query /tmp/repro.sock square_root g.txt --seed 1
    python -m repro.cli query /tmp/repro.sock --shutdown

``dynamic`` streams a deterministic edge-update workload into a running
daemon's dynamic-graph session (``repro.dynamic``), interleaving warm
component/cut queries; ``--verify`` cross-checks every answer against a
local replay of the same stream::

    python -m repro.cli dynamic /tmp/repro.sock g.txt --batches 8 \
        --cut exact --verify

``--trace PATH`` records a per-superstep JSON-lines trace;
``analyze-trace`` replays one offline, ranking the heaviest supersteps
under the machine model and emitting a fusion plan (which adjacent
collectives ``--fuse`` would merge, and what that saves)::

    python -m repro.cli parallel_cc g.txt --procs 8 --trace t.jsonl \
        --fuse --shrink
    python -m repro.cli analyze-trace t.jsonl --top 5 --plan plan.json

``--variant 2out`` (``repro.core.two_out``) runs the random 2-out
contraction preprocessing first and dispatches the recomputed — usually
far smaller — trial budget on the contracted replicas, printing a
``two_out:`` summary line; it degrades to the default pipeline whenever
the preprocessing buys nothing.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core import approx_minimum_cut, connected_components, minimum_cut
from repro.core.mincut import VARIANTS
from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    read_edgelist,
    rmat,
    watts_strogatz,
    write_edgelist,
)
from repro.rng import philox_stream

__all__ = ["main", "build_parser"]

_BACKENDS = ("sim", "mp")


def _profile_line(path, seed, p, g, time, tag, result) -> str:
    """Artifact Listing-1-style CSV record."""
    return ",".join(
        str(x)
        for x in (
            path, seed, p, g.n, g.m,
            f"{time.total_s:.6f}", f"{time.mpi_s:.6f}", tag, result,
        )
    )


def _backend_spec(args):
    """The ``backend=`` value for the algorithm entry point: the plain
    name, or — under ``--trace``/``--fuse`` — a resolved backend carrying
    a fresh :class:`~repro.trace.tracer.RecordingTracer` and/or the
    superstep-fusion config."""
    trace = getattr(args, "trace", None)
    fuse = getattr(args, "fuse", False)
    if not trace and not fuse:
        return args.backend
    from repro.runtime.base import resolve_backend

    kw = {}
    if trace:
        from repro.trace import RecordingTracer

        kw["tracer"] = RecordingTracer()
    if fuse:
        kw["fuse"] = True
    return resolve_backend(args.backend, **kw)


def _emit_trace(args, trace) -> None:
    """Write the JSON-lines trace file and print the summary table."""
    if not getattr(args, "trace", None):
        return
    from repro.trace import format_summary, write_jsonl

    count = write_jsonl(trace, args.trace)
    print(f"trace: {count} events -> {args.trace}")
    print(format_summary(trace))


def _cmd_parallel_cc(args) -> int:
    g = read_edgelist(args.input)
    res = connected_components(g, p=args.procs, seed=args.seed,
                               shrink=args.shrink,
                               backend=_backend_spec(args))
    print(_profile_line(args.input, args.seed, args.procs, g,
                        res.time, "cc", res.n_components))
    _emit_trace(args, res.trace)
    return 0


def _cmd_approx_cut(args) -> int:
    g = read_edgelist(args.input)
    res = approx_minimum_cut(
        g, p=args.procs, seed=args.seed, pipelined=args.pipelined,
        shrink=args.shrink, backend=_backend_spec(args),
    )
    print(_profile_line(args.input, args.seed, args.procs, g,
                        res.time, "approx_cut", f"{res.estimate:g}"))
    _emit_trace(args, res.trace)
    return 0


def _scheduler_spec(args):
    """A :class:`~repro.sched.TrialScheduler` when any scheduling flag was
    given, else None (the legacy monolithic dispatch)."""
    engaged = (
        args.max_retries is not None or args.retry_backoff is not None
        or args.checkpoint or args.resume or args.inject_faults
    )
    if not engaged:
        return None
    from repro.sched import TrialScheduler

    plan = None
    if args.inject_faults:
        from repro.faults import parse_fault_plan

        plan = parse_fault_plan(args.inject_faults)
    return TrialScheduler(
        max_retries=2 if args.max_retries is None else args.max_retries,
        backoff_s=0.05 if args.retry_backoff is None else args.retry_backoff,
        checkpoint=args.checkpoint or None,
        fault_plan=plan,
    )


def _cmd_square_root(args) -> int:
    g = read_edgelist(args.input)
    scheduler = _scheduler_spec(args)
    res = minimum_cut(
        g, p=args.procs, seed=args.seed,
        success_prob=args.success_prob, trial_scale=args.trial_scale,
        trials=args.trials, backend=_backend_spec(args),
        scheduler=scheduler, resume=args.resume, variant=args.variant,
    )
    print(_profile_line(args.input, args.seed, args.procs, g,
                        res.time, "square_root", f"{res.value:g}"))
    if args.variant == "2out":
        s = res.two_out
        path = ("degraded to the default pipeline" if s.degraded else
                f"{s.total_trials} trials over {s.replicas} replicas")
        # The degraded fallback runs the default pipeline without a
        # per-trial ledger, so it reports no achieved success probability.
        achieved = ("n/a" if res.achieved_success_prob is None else
                    f"{res.achieved_success_prob:.6f}")
        print(
            f"two_out: {path}, default budget {s.default_trials}, "
            f"reduction {s.reduction:.2f}x, achieved success probability "
            f"{achieved} (requested {args.success_prob:g})"
        )
    if scheduler is not None and res.ledger is not None:
        ledger = res.ledger
        print(
            f"scheduler: {ledger.completed}/{res.trials} trials completed, "
            f"achieved success probability "
            f"{res.achieved_success_prob:.6f} "
            f"(requested {args.success_prob:g})"
        )
    _emit_trace(args, res.trace)
    return 0


def _cmd_serve(args) -> int:
    """Run the ``repro.serve`` daemon until interrupted or shut down."""
    import signal

    from repro.serve import Daemon, ServeConfig

    cfg = ServeConfig(
        bind=args.bind, state_dir=args.state_dir, backend=args.backend,
        p=args.procs, wave_size=args.wave_size, quantum=args.quantum,
        cache_edges=args.cache_edges,
    )
    daemon = Daemon(cfg)
    address = daemon.start()
    print(f"serving on {address} (backend={args.backend}, "
          f"state={args.state_dir})", flush=True)
    stop = lambda *_: daemon.stop()  # noqa: E731
    signal.signal(signal.SIGINT, stop)
    signal.signal(signal.SIGTERM, stop)
    daemon._stopping.wait()
    daemon.stop()
    return 0


def _cmd_query(args) -> int:
    """One client interaction with a running serve daemon."""
    import json

    from repro.serve import Client, ServeError, wait_server

    if args.wait_server:
        wait_server(args.address, timeout=args.wait_server)
    with Client(args.address, client=args.client,
                priority=args.priority) as client:
        if args.ping:
            print(json.dumps(client.ping(), sort_keys=True))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown()
            print("daemon shutting down")
            return 0
        kwargs = {}
        if args.variant != "default":
            kwargs["variant"] = args.variant
        if args.trials is not None:
            kwargs["trials"] = args.trials
        if args.trial_scale != 1.0:
            kwargs["trial_scale"] = args.trial_scale
        if args.success_prob != 0.9:
            kwargs["success_prob"] = args.success_prob
        try:
            job = client.submit(args.algorithm, os.path.abspath(args.input),
                                seed=args.seed, p=args.procs, **kwargs)
            if not args.wait:
                print(json.dumps({"job": job}, sort_keys=True))
                return 0
            result = client.result(job)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(result, sort_keys=True))
    return 0


def _cmd_dynamic(args) -> int:
    """Stream a deterministic update workload into a serve daemon.

    Opens a dynamic session on the input graph, replays a synthetic
    update stream (``repro.dynamic.update_stream``, keyed by --seed),
    and interleaves component/cut queries every --query-every batches.
    With --verify every answer is checked bit-for-bit against a local
    :class:`~repro.dynamic.DynamicGraph` replaying the same stream.
    """
    import json

    from repro.dynamic import DynamicGraph, update_stream
    from repro.serve import Client, ServeError, wait_server

    if args.wait_server:
        wait_server(args.address, timeout=args.wait_server)
    g = read_edgelist(args.input)
    stream = update_stream(g, seed=args.seed, batches=args.batches,
                           batch_size=args.batch_size)
    mirror = (DynamicGraph(g, p=args.procs, seed=args.seed, backend="sim")
              if args.verify else None)
    failures = 0
    with Client(args.address, client=args.client) as client:
        sid = client.dyn_open(os.path.abspath(args.input), seed=args.seed,
                              p=args.procs)
        try:
            for b, ops in enumerate(stream):
                st = client.dyn_update(sid, ops)
                if mirror is not None:
                    mirror.update_edges(ops)
                if (b + 1) % args.query_every and b + 1 != args.batches:
                    continue
                cc = client.dyn_components(sid)
                line = {"epoch": st["epoch"], "ops": len(ops),
                        "n_components": cc["n_components"],
                        "labels_sha256": cc["labels_sha256"], "via": cc["via"]}
                if args.cut:
                    cut = client.dyn_cut(sid, mode=args.cut)
                    line["cut"] = cut["value"]
                if mirror is not None:
                    ref = mirror.query_components()
                    match = (cc["n_components"] == ref.n_components
                             and cc["labels"] == [int(x) for x in ref.labels])
                    if args.cut:
                        match &= (line["cut"]
                                  == mirror.query_cut(mode=args.cut).value)
                    line["verified"] = bool(match)
                    failures += not match
                print(json.dumps(line, sort_keys=True), flush=True)
            staleness = client.dyn_staleness(sid)
            staleness.pop("ok", None)
            print(json.dumps({"staleness": staleness}, sort_keys=True))
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            client.dyn_close(sid)
    if failures:
        print(f"error: {failures} queries diverged from the local replay",
              file=sys.stderr)
        return 1
    return 0


def _cmd_analyze_trace(args) -> int:
    """Offline analyzer over a recorded JSON-lines trace."""
    import json

    from repro.bsp.fusion import FusionConfig
    from repro.trace import (
        format_analysis,
        fusion_plan,
        read_jsonl,
    )

    events = read_jsonl(args.trace_file)
    fuse = FusionConfig(max_words=args.max_words, max_chain=args.max_chain)
    if args.plan or args.json:
        plan = fusion_plan(events, fuse=fuse)
        if args.plan:
            with open(args.plan, "w") as fh:
                json.dump(plan, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"fusion plan -> {args.plan}")
        if args.json:
            print(json.dumps(plan, sort_keys=True))
    if not args.json:
        print(format_analysis(events, fuse=fuse, k=args.top))
    return 0


_FAMILIES = ("er", "ws", "ba", "rmat")


def _cmd_generate(args) -> int:
    rng = philox_stream(args.seed)
    n = args.n
    m = args.m if args.m is not None else n * args.degree // 2
    if args.family == "er":
        g = erdos_renyi(n, m, rng, weighted=args.weighted)
    elif args.family == "ws":
        k = args.degree if args.degree % 2 == 0 else args.degree + 1
        g = watts_strogatz(n, k, rng)
    elif args.family == "ba":
        g = barabasi_albert(n, max(1, args.degree // 2), rng)
    else:
        g = rmat(n, m, rng)
    write_edgelist(g, args.out)
    print(f"wrote {args.out}: n={g.n} m={g.m}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Argument parser with the four artifact-style subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("input", help="edge-list file (artifact format)")
        sp.add_argument("--procs", "-p", type=int, default=4,
                        help="processors (default 4)")
        sp.add_argument("--seed", type=int, default=0, help="root PRNG seed")
        sp.add_argument("--backend", choices=_BACKENDS, default="sim",
                        help="execution runtime: BSP simulator (sim, "
                             "default) or real OS processes (mp)")
        sp.add_argument("--trace", metavar="PATH", default=None,
                        help="record one trace event per collective per "
                             "group to this JSON-lines file and print a "
                             "per-superstep summary table")
        sp.add_argument("--fuse", action="store_true",
                        help="fuse adjacent compatible collectives into "
                             "one superstep (repro.bsp.fusion); results "
                             "are bit-identical, only latency drops")

    def shrinkable(sp):
        sp.add_argument("--shrink", action="store_true",
                        help="release processors whose edge slice has "
                             "contracted away (group-shrink); results are "
                             "bit-identical")

    sp = sub.add_parser("parallel_cc", help="connected components (§3.2)")
    common(sp)
    shrinkable(sp)
    sp.set_defaults(func=_cmd_parallel_cc)

    sp = sub.add_parser("approx_cut", help="approximate minimum cut (§3.3)")
    common(sp)
    shrinkable(sp)
    sp.add_argument("--pipelined", action="store_true",
                    help="single-CC pipelined schedule (O(1) supersteps)")
    sp.set_defaults(func=_cmd_approx_cut)

    sp = sub.add_parser("square_root", help="exact minimum cut (§4)")
    common(sp)
    sp.add_argument("--success-prob", type=float, default=0.9,
                    help="overall success probability (artifact: 0.9)")
    sp.add_argument("--trials", type=int, default=None,
                    help="override the trial count")
    sp.add_argument("--trial-scale", type=float, default=1.0,
                    help="scale the Theta((n^2/m) log^2 n) trial count")
    sp.add_argument("--variant", choices=VARIANTS, default="default",
                    help="trial pipeline: 'default' dispatches the full "
                         "budget on the input graph; '2out' preprocesses "
                         "with random 2-out contraction replicas and "
                         "recomputes the (much smaller) budget on the "
                         "contracted graphs")
    sp.add_argument("--max-retries", type=int, default=None,
                    help="fault-tolerant scheduler: retries per trial wave "
                         "(giving any scheduler flag engages the scheduler; "
                         "default 2 once engaged)")
    sp.add_argument("--retry-backoff", type=float, default=None,
                    help="scheduler: base retry backoff seconds, doubled "
                         "per attempt with deterministic jitter "
                         "(default 0.05 once engaged)")
    sp.add_argument("--checkpoint", metavar="PATH", default=None,
                    help="scheduler: write the trial ledger to this JSONL "
                         "file after every wave")
    sp.add_argument("--resume", action="store_true",
                    help="scheduler: resume from --checkpoint, re-running "
                         "only trials without a recorded result")
    sp.add_argument("--inject-faults", metavar="PLAN", default=None,
                    help="scheduler: deterministic fault plan — inline "
                         "'kind:rank=R,step=K[,...];...' spec, JSON, or a "
                         "JSON file path (see repro.faults)")
    sp.set_defaults(func=_cmd_square_root)

    sp = sub.add_parser(
        "serve",
        help="run the persistent analytics daemon (repro.serve)")
    sp.add_argument("--bind", required=True,
                    help="unix socket path (contains '/') or host:port "
                         "(':0' picks a free port)")
    sp.add_argument("--state-dir", default="serve-state",
                    help="durable job store directory (the daemon's "
                         "identity across restarts)")
    sp.add_argument("--backend", choices=("sim", "mp", "warm"),
                    default="warm",
                    help="execution runtime; 'warm' (default) keeps the "
                         "mp worker pool and arena slabs alive between "
                         "queries")
    sp.add_argument("--procs", "-p", type=int, default=4,
                    help="default processors per query (default 4)")
    sp.add_argument("--wave-size", type=int, default=8,
                    help="trials per scheduler wave: the interleaving "
                         "granularity between concurrent min-cut jobs")
    sp.add_argument("--quantum", type=float, default=8.0,
                    help="fair-queue round budget in trial units")
    sp.add_argument("--cache-edges", type=float, default=50_000_000,
                    help="graph cache capacity in total edges")
    sp.set_defaults(func=_cmd_serve)

    sp = sub.add_parser(
        "query", help="query a running serve daemon (blocking client)")
    sp.add_argument("address", help="daemon address (socket path or "
                                    "host:port)")
    sp.add_argument("algorithm", nargs="?", choices=(
        "parallel_cc", "approx_cut", "square_root"))
    sp.add_argument("input", nargs="?", help="edge-list file")
    sp.add_argument("--procs", "-p", type=int, default=4)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--client", default="cli", help="fair-queue identity")
    sp.add_argument("--priority", type=float, default=1.0,
                    help="fair-queue weight (higher drains faster; "
                         "never starves others)")
    sp.add_argument("--variant", choices=VARIANTS, default="default")
    sp.add_argument("--trials", type=int, default=None)
    sp.add_argument("--trial-scale", type=float, default=1.0)
    sp.add_argument("--success-prob", type=float, default=0.9)
    sp.add_argument("--no-wait", dest="wait", action="store_false",
                    help="print the job id instead of blocking on the "
                         "result")
    sp.add_argument("--wait-server", type=float, default=None,
                    metavar="SECONDS",
                    help="poll until the daemon answers ping first")
    sp.add_argument("--ping", action="store_true",
                    help="liveness probe only")
    sp.add_argument("--stats", action="store_true",
                    help="print daemon statistics only")
    sp.add_argument("--shutdown", action="store_true",
                    help="ask the daemon to stop gracefully")
    sp.set_defaults(func=_cmd_query)

    sp = sub.add_parser(
        "dynamic",
        help="stream edge updates into a serve daemon's dynamic session "
             "(repro.dynamic)")
    sp.add_argument("address", help="daemon address (socket path or "
                                    "host:port)")
    sp.add_argument("input", help="edge-list file (the epoch-0 graph)")
    sp.add_argument("--procs", "-p", type=int, default=4)
    sp.add_argument("--seed", type=int, default=0,
                    help="keys both the update stream and the session's "
                         "query RNG")
    sp.add_argument("--batches", type=int, default=8,
                    help="update batches to stream (default 8)")
    sp.add_argument("--batch-size", type=int, default=16,
                    help="edge updates per batch (default 16)")
    sp.add_argument("--query-every", type=int, default=1,
                    help="query components every N batches (default 1)")
    sp.add_argument("--cut", choices=("exact", "approx"), default=None,
                    help="also query the minimum cut at each query point")
    sp.add_argument("--verify", action="store_true",
                    help="check every answer bit-for-bit against a local "
                         "replay of the same update stream")
    sp.add_argument("--client", default="cli", help="fair-queue identity")
    sp.add_argument("--wait-server", type=float, default=None,
                    metavar="SECONDS",
                    help="poll until the daemon answers ping first")
    sp.set_defaults(func=_cmd_dynamic)

    sp = sub.add_parser(
        "analyze-trace",
        help="rank heavy supersteps and detect fusible sequences in a "
             "recorded trace (repro.trace.analyze)")
    sp.add_argument("trace_file", help="JSON-lines trace (from --trace)")
    sp.add_argument("--top", type=int, default=10,
                    help="how many heaviest supersteps to list (default 10)")
    sp.add_argument("--max-words", type=int, default=4096,
                    help="fusion config: combined payload cap in words")
    sp.add_argument("--max-chain", type=int, default=16,
                    help="fusion config: max collectives per fused "
                         "superstep")
    sp.add_argument("--json", action="store_true",
                    help="print the fusion plan as JSON instead of the "
                         "report")
    sp.add_argument("--plan", metavar="PATH", default=None,
                    help="also write the fusion plan JSON to this file")
    sp.set_defaults(func=_cmd_analyze_trace)

    sp = sub.add_parser("generate", help="generate a benchmark input graph")
    sp.add_argument("--family", choices=_FAMILIES, required=True)
    sp.add_argument("--n", type=int, required=True)
    sp.add_argument("--m", type=int, default=None, help="edge count")
    sp.add_argument("--degree", type=int, default=8,
                    help="average degree when --m is omitted")
    sp.add_argument("--weighted", action="store_true")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--out", required=True)
    sp.set_defaults(func=_cmd_generate)
    return parser


def _validate_args(parser: argparse.ArgumentParser, args) -> None:
    """Reject out-of-domain numeric options with a usage error (exit 2),
    before any input is read or any process is spawned."""
    procs = getattr(args, "procs", None)
    if procs is not None and procs < 1:
        parser.error(f"--procs must be >= 1, got {procs}")
    trial_scale = getattr(args, "trial_scale", None)
    if trial_scale is not None and not trial_scale > 0:
        parser.error(f"--trial-scale must be > 0, got {trial_scale}")
    success_prob = getattr(args, "success_prob", None)
    if success_prob is not None and not 0 < success_prob < 1:
        parser.error(f"--success-prob must be in (0, 1), got {success_prob}")
    trials = getattr(args, "trials", None)
    if trials is not None and trials < 1:
        parser.error(f"--trials must be >= 1, got {trials}")
    max_retries = getattr(args, "max_retries", None)
    if max_retries is not None and max_retries < 0:
        parser.error(f"--max-retries must be >= 0, got {max_retries}")
    retry_backoff = getattr(args, "retry_backoff", None)
    if retry_backoff is not None and retry_backoff < 0:
        parser.error(f"--retry-backoff must be >= 0, got {retry_backoff}")
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        parser.error("--resume requires --checkpoint")
    if getattr(args, "variant", None) == "2out":
        if trials is not None:
            parser.error("--variant 2out recomputes the trial budget from "
                         "the contracted graphs; --trials is not supported")
        if getattr(args, "checkpoint", None) or getattr(args, "resume", False):
            parser.error("--variant 2out does not support --checkpoint/"
                         "--resume: one trial ledger cannot span the "
                         "per-replica dispatches")
    inject = getattr(args, "inject_faults", None)
    if inject:
        from repro.faults import parse_fault_plan

        try:
            parse_fault_plan(inject)
        except ValueError as exc:
            parser.error(f"--inject-faults: {exc}")
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint:
        d = os.path.dirname(os.path.abspath(checkpoint))
        if not os.path.isdir(d):
            parser.error(f"--checkpoint directory does not exist: {d}")
    wave_size = getattr(args, "wave_size", None)
    if wave_size is not None and wave_size < 1:
        parser.error(f"--wave-size must be >= 1, got {wave_size}")
    quantum = getattr(args, "quantum", None)
    if quantum is not None and not quantum > 0:
        parser.error(f"--quantum must be > 0, got {quantum}")
    if getattr(args, "command", None) == "query":
        probe = args.ping or args.stats or args.shutdown
        if not probe and not (args.algorithm and args.input):
            parser.error("query needs an algorithm and an input file "
                         "(or one of --ping/--stats/--shutdown)")
    if getattr(args, "command", None) == "dynamic":
        if args.batches < 1:
            parser.error(f"--batches must be >= 1, got {args.batches}")
        if args.batch_size < 1:
            parser.error(f"--batch-size must be >= 1, got {args.batch_size}")
        if args.query_every < 1:
            parser.error(f"--query-every must be >= 1, got "
                         f"{args.query_every}")
    trace = getattr(args, "trace", None)
    if trace is not None:
        d = os.path.dirname(os.path.abspath(trace))
        if not os.path.isdir(d):
            parser.error(f"--trace directory does not exist: {d}")
        if not os.access(d, os.W_OK):
            parser.error(f"--trace directory is not writable: {d}")
    if getattr(args, "command", None) == "analyze-trace":
        if not os.path.isfile(args.trace_file):
            parser.error(f"trace file does not exist: {args.trace_file}")
        if args.top < 1:
            parser.error(f"--top must be >= 1, got {args.top}")
        if args.max_words < 1:
            parser.error(f"--max-words must be >= 1, got {args.max_words}")
        if args.max_chain < 2:
            parser.error(f"--max-chain must be >= 2, got {args.max_chain}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
