"""Incrementally maintained weighted cut sparsifier.

Hariharan–Panigrahi-style maintenance on top of the repo's existing
weighted sampling primitive (:func:`~repro.core.sparsify.
sparsify_weighted`, §3.1 of the paper):

* A **rebuild** draws ``s`` i.i.d. weighted edge samples from the epoch
  snapshot as a BSP program through the configured backend — the same
  O(1)-superstep gather/multinomial/scatter pipeline every other
  consumer uses — and assigns each sampled slot the importance weight
  ``W/s`` (an unbiased estimator of every cut).  Per-edge sampling
  rates are ``r_e = s·w_e/W``; they are recorded, not re-drawn, when
  weights move.
* Between rebuilds the sparsifier is maintained **lazily**: inserted
  edges ride in an exact overlay (sampling rate 1), deleted edges drop
  their sampled slots, and reweighted edges scale their slots by
  ``w_new/w_old`` (the lazy-rate update — the slot keeps its original
  inclusion probability, only its value moves).  Every change adds its
  absolute weight delta to a **drift** accumulator.
* Once drift crosses ``drift_threshold × W_rebuild`` the next
  materialization re-sparsifies from scratch through the same BSP path
  — periodic amortized rebuilds, never per-update and never per-query.

Every materialization returns ``(EdgeList, certificate)``; the
certificate carries enough (sample size, total weight, rates provenance,
drift, a sha256 of the materialized arrays) for a client to audit what
its approximate answer was computed on.  Determinism: the rebuild seed
is keyed by ``(dynamic seed, rebuild index)`` via the same
:meth:`~repro.rng.streams.RngStreams.spawn` discipline as trial
streams, so a replayed update stream re-sparsifies identically on
either backend.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.core.sparsify import sparsify_weighted
from repro.graph.edgelist import EdgeList
from repro.graph.shm import plane_slices
from repro.runtime.base import resolve_backend

__all__ = ["CutSparsifier", "sparsify_program"]

#: Salt separating re-sparsification seeds from trial/update/CC streams.
_SPARSIFY_SALT = 5 << 16


def sparsify_program(ctx, slices, s):
    """SPMD program: one weighted sample of size ``s`` gathered at root."""
    g = slices[ctx.rank]
    sample = yield from sparsify_weighted(ctx, ctx.comm, g.u, g.v, g.w, s)
    return sample


class CutSparsifier:
    """Lazy-rate cut sparsifier state (module docstring).

    Owned by a :class:`~repro.dynamic.graph.DynamicGraph`; all
    bookkeeping here is O(1) per update, and the only non-trivial work
    (the BSP sampling dispatch) happens inside :meth:`materialize` when
    there is no base yet or drift crossed the threshold.
    """

    def __init__(self, *, eps: float = 0.2, drift_threshold: float = 0.25,
                 sample_scale: float = 1.0):
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        self.eps = float(eps)
        self.drift_threshold = float(drift_threshold)
        self.sample_scale = float(sample_scale)

        self.rebuilds = 0
        self.rebuild_epoch: int | None = None
        self.rebuild_fingerprint: str | None = None
        self._base_u = self._base_v = None      # sampled slots (int64)
        self._base_w = None                     # slot weights at rebuild
        self._base_keys: list[tuple[int, int]] = []
        self._base_key_set: set[tuple[int, int]] = set()
        self._base_orig: dict[tuple[int, int], float] = {}  # w_e at rebuild
        self.W_rebuild = 0.0
        self.s = 0
        self.drift = 0.0
        self._inserted: dict[tuple[int, int], float] = {}
        self._removed: set[tuple[int, int]] = set()
        self._rescaled: dict[tuple[int, int], float] = {}   # key -> w_new

    # -- lazy per-update bookkeeping (called by DynamicGraph) ----------------

    def note_insert(self, key, w: float) -> None:
        self._inserted[key] = self._inserted.get(key, 0.0) + float(w)
        self.drift += float(w)

    def note_delete(self, key, w_old: float) -> None:
        if key in self._inserted:
            del self._inserted[key]
        elif key in self._base_key_set:
            self._removed.add(key)
            self._rescaled.pop(key, None)
        self.drift += float(w_old)

    def note_reweight(self, key, w_new: float, delta: float) -> None:
        if key in self._inserted:
            self._inserted[key] = float(w_new)
        elif key in self._base_key_set and key not in self._removed:
            self._rescaled[key] = float(w_new)
        # edges that existed at rebuild but drew no slot have rate ~0;
        # their weight motion is pure drift.
        self.drift += abs(float(delta))

    # -- rebuild policy ------------------------------------------------------

    def sample_size(self, n: int, m: int) -> int:
        """Target sample size ``~ 2 n ln n / eps^2``, clamped to [1, 3m].

        The upper clamp is 3m rather than m: the sample is i.i.d. *with
        replacement*, so allowing a few slots per edge on small graphs
        keeps the sparsifier connected w.h.p. (at ``s = m`` roughly a
        1/e fraction of edges would draw no slot at all); the estimator
        stays unbiased because every slot carries ``W/s``.  On large
        graphs the ``n log n`` target is the binding bound and the
        sample is genuinely sparse.
        """
        if m == 0:
            return 0
        s = math.ceil(self.sample_scale * 2.0 * n
                      * math.log(max(n, 2)) / (self.eps * self.eps))
        return max(1, min(3 * m, s))

    @property
    def needs_rebuild(self) -> bool:
        if self.rebuild_epoch is None:
            return True
        if self.W_rebuild <= 0:
            return self.drift > 0
        return self.drift > self.drift_threshold * self.W_rebuild

    def sampling_rate(self, key, w: float) -> float:
        """The lazy per-edge rate ``min(1, s·w/W)`` (1.0 for overlay edges)."""
        if key in self._inserted:
            return 1.0
        if self.W_rebuild <= 0:
            return 0.0
        return min(1.0, self.s * float(w) / self.W_rebuild)

    # -- rebuild + materialization -------------------------------------------

    def rebuild(self, dyn, snap: EdgeList, fp: str) -> None:
        """Re-sparsify from scratch through the BSP sampling pipeline."""
        seed = dyn._streams.spawn(_SPARSIFY_SALT + self.rebuilds).seed
        s = self.sample_size(snap.n, snap.m)
        if s == 0:
            su = sv = np.zeros(0, dtype=np.int64)
            sw = np.zeros(0, dtype=np.float64)
        else:
            runtime = resolve_backend(dyn.backend)
            result = runtime.run(
                sparsify_program, dyn.p, seed=seed,
                args=(plane_slices(snap, dyn.p), int(s)))
            su, sv, sw = result.root_value
        self._base_u = np.asarray(su, dtype=np.int64)
        self._base_v = np.asarray(sv, dtype=np.int64)
        self._base_w = np.asarray(sw, dtype=np.float64)
        self._base_keys = list(zip(self._base_u.tolist(),
                                   self._base_v.tolist()))
        self._base_key_set = set(self._base_keys)
        self._base_orig = {k: w for k, w in zip(self._base_keys,
                                                self._base_w.tolist())}
        self.W_rebuild = snap.total_weight()
        self.s = int(s)
        self.drift = 0.0
        self._inserted.clear()
        self._removed.clear()
        self._rescaled.clear()
        self.rebuilds += 1
        self.rebuild_epoch = dyn.epoch
        self.rebuild_fingerprint = fp
        dyn.counters["resparsifications"] += 1
        # Rebuilds are query-triggered, so the sparsifier base depends
        # on *when* approx queries happened — owners that replay state
        # (the serve session's write-ahead log) hook this to record the
        # event and re-trigger it on resume, keeping replayed approx
        # answers bit-identical.
        hook = getattr(dyn, "on_resparsify", None)
        if hook is not None:
            hook(dyn.epoch)

    def materialize(self, dyn, snap: EdgeList, fp: str):
        """``(sparsifier graph, certificate)`` for the current epoch.

        Rebuilds first when there is no base yet or drift crossed the
        amortization threshold; otherwise assembles base slots (minus
        removed, times lazy rescales) plus the exact overlay — O(s)
        numpy work, no dispatch.
        """
        if self.needs_rebuild:
            self.rebuild(dyn, snap, fp)
        if self.s > 0:
            keep = np.fromiter(
                (k not in self._removed for k in self._base_keys),
                dtype=bool, count=len(self._base_keys))
            bu = self._base_u[keep]
            bv = self._base_v[keep]
            slot = np.full(int(keep.sum()), self.W_rebuild / self.s,
                           dtype=np.float64)
            if self._rescaled:
                scale = np.fromiter(
                    ((self._rescaled[k] / self._base_orig[k]
                      if k in self._rescaled else 1.0)
                     for k, live in zip(self._base_keys, keep.tolist())
                     if live),
                    dtype=np.float64, count=int(keep.sum()))
                slot = slot * scale
        else:
            bu = bv = np.zeros(0, dtype=np.int64)
            slot = np.zeros(0, dtype=np.float64)
        overlay = sorted(self._inserted.items())
        ou = np.fromiter((k[0] for k, _w in overlay), dtype=np.int64,
                         count=len(overlay))
        ov = np.fromiter((k[1] for k, _w in overlay), dtype=np.int64,
                         count=len(overlay))
        ow = np.fromiter((w for _k, w in overlay), dtype=np.float64,
                         count=len(overlay))
        u = np.concatenate([bu, ou])
        v = np.concatenate([bv, ov])
        w = np.concatenate([slot, ow])
        sg = EdgeList(snap.n, u, v, w, canonical=False, validate=False)
        sha = hashlib.sha256()
        for arr in (u, v, w):
            sha.update(np.ascontiguousarray(arr).tobytes())
        certificate = {
            "s": int(self.s),
            "W_rebuild": float(self.W_rebuild),
            "eps": self.eps,
            "rebuild_epoch": self.rebuild_epoch,
            "rebuild_fingerprint": self.rebuild_fingerprint,
            "rebuilds": self.rebuilds,
            "epoch": dyn.epoch,
            "drift": float(self.drift),
            "drift_threshold": self.drift_threshold,
            "base_slots_live": int(bu.size),
            "overlay_edges": int(ou.size),
            "sparsifier_sha256": sha.hexdigest(),
        }
        return sg, certificate

    # -- staleness -----------------------------------------------------------

    def staleness(self) -> dict:
        return {
            "rebuilds": self.rebuilds,
            "rebuild_epoch": self.rebuild_epoch,
            "rebuild_fingerprint": self.rebuild_fingerprint,
            "s": int(self.s),
            "W_rebuild": float(self.W_rebuild),
            "drift": float(self.drift),
            "drift_threshold": self.drift_threshold,
            "drift_ratio": (float(self.drift / self.W_rebuild)
                            if self.W_rebuild > 0 else None),
            "resparsify_pending": bool(self.needs_rebuild),
            "overlay_edges": len(self._inserted),
            "removed_base_edges": len(self._removed),
            "rescaled_base_edges": len(self._rescaled),
        }
