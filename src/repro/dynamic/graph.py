"""Dynamic graphs: batched edge updates with warm CC and cut queries.

A :class:`DynamicGraph` owns an evolving weighted graph on a fixed
vertex set.  Updates arrive in **batches** (:meth:`update_edges`); each
batch closes an *epoch*, the unit of identity for every cache in the
repo: the epoch's canonical snapshot (edges in sorted ``(u, v)`` order,
arrays frozen) has a content fingerprint, and graph-plane segments,
2-out plans and result caches key off that fingerprint — they
invalidate exactly when an epoch closes, never mid-batch and never on a
query.

Two query families stay warm across epochs:

* :meth:`query_components` — an incremental spanning forest plus a
  union-by-minimum union-find.  Inserts union in O(α); deleting a
  non-tree edge is free; deleting a tree edge triggers a **bounded
  reconnection search** (flood the smaller-looking tree side, scan its
  incident edges for a replacement).  When the search exceeds its
  budget the epoch is marked dirty and the next query falls back to the
  existing :func:`~repro.core.components.cc_kernel` pipeline through
  the configured backend, rebuilding the forest from the result.
  Labels are always returned in the canonical
  :func:`~repro.kernels.cc_labels` form (component root = minimum
  vertex, dense first-appearance ids), so every answer — incremental,
  forest-rebuilt, or fallback, under sim or mp — is **bit-identical**
  to ``cc_labels`` on the epoch snapshot.
* :meth:`query_cut` — ``mode="exact"`` runs the 2-out minimum-cut
  pipeline on the epoch snapshot with the preprocessing plan cached per
  (epoch fingerprint, seed, p); ``mode="approx"`` runs the approximate
  cut on the incrementally maintained :class:`~repro.dynamic.sparsifier.
  CutSparsifier` (lazy per-edge rates, drift-triggered BSP
  re-sparsification through ``sparsify_weighted``) and certifies the
  answer with the sparsifier's certificate.

Determinism: every answer is a pure function of ``(initial graph,
update stream, seed, p)`` — replaying the same stream into a fresh
``DynamicGraph`` (the serve daemon does exactly this on restart)
reproduces every epoch's answers bit for bit, on either backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamic.sparsifier import CutSparsifier
from repro.graph.edgelist import EdgeList
from repro.graph.fingerprint import cached_fingerprint
from repro.graph.shm import bump_epoch, eligible, release_pins
from repro.kernels import cc_roots, earliest_forest, flatten_parents
from repro.rng.streams import RngStreams

__all__ = [
    "DynamicGraph",
    "DynamicCCResult",
    "DynamicCutResult",
    "canonical_roots",
    "UPDATE_OPS",
]

#: The three update verbs a batch may carry.
UPDATE_OPS = ("insert", "delete", "reweight")

#: Salt separating the CC-fallback seed space from trial/update streams.
_CC_SALT = 3 << 16

#: Salt for exact-cut query seeds (per epoch, stable across repeats).
_CUT_SALT = 4 << 16


def canonical_roots(labels: np.ndarray) -> np.ndarray:
    """Map any dense labelling to its canonical min-vertex root array.

    The backend CC pipelines return exact partitions whose label *ids*
    are trajectory-dependent; this projects them onto the canonical form
    shared with :func:`~repro.kernels.cc_labels` (root = minimum member
    vertex), which is what makes incremental and fallback answers
    byte-comparable.
    """
    labels = np.asarray(labels, dtype=np.int64)
    order = np.argsort(labels, kind="stable")  # vertices ascend per class
    lab_sorted = labels[order]
    starts = np.flatnonzero(np.r_[True, lab_sorted[1:] != lab_sorted[:-1]])
    # labels are dense 0..k-1, so sorted-unique label == label value and
    # order[starts[L]] is class L's minimum vertex.
    mins = np.empty(starts.size, dtype=np.int64)
    mins[lab_sorted[starts]] = order[starts]
    return mins[labels]


@dataclass(frozen=True)
class DynamicCCResult:
    """One components answer, tagged with the epoch it certifies."""

    labels: np.ndarray        # canonical cc_labels form
    n_components: int
    epoch: int
    #: Epoch content fingerprint when the snapshot was materialized at
    #: answer time (cut queries always materialize it), else None.
    fingerprint: str | None
    #: Which path produced it: "incremental" | "forest" | "cc_kernel".
    via: str


@dataclass(frozen=True)
class DynamicCutResult:
    """One cut answer (approx or exact), tagged with its epoch."""

    value: float              # exact value / sparsifier estimate
    mode: str                 # "exact" | "approx"
    epoch: int
    fingerprint: str
    #: Exact value of the witness side on the epoch snapshot (approx
    #: mode; equals ``value`` in exact mode).
    witness_value: float | None = None
    side: np.ndarray | None = None
    #: Sparsifier certificate (approx mode) / plan provenance (exact).
    certificate: dict | None = None


class DynamicGraph:
    """Evolving graph with warm component and cut queries (module doc).

    Parameters
    ----------
    g:
        Initial graph (epoch 0); copied, never aliased.
    p, seed, backend:
        Execution parameters for every backend dispatch (CC fallback,
        re-sparsification, cut queries).  All answers are deterministic
        in ``(g, updates, seed, p)`` and backend-independent.
    reconnect_budget:
        Max vertices+edges a tree-edge deletion may scan before the
        epoch falls back to the full CC pipeline.
    drift_threshold:
        Fraction of the sparsifier's rebuild-time total weight that
        accumulated update drift may reach before the next approx query
        re-sparsifies through ``sparsify_weighted``.
    success_prob, trial_scale:
        Exact-cut trial budget knobs, forwarded to the 2-out pipeline
        (and part of the plan-cache key).
    plane:
        Publish each queried epoch's snapshot into the shared graph
        plane, advancing the pinned segment via
        :func:`~repro.graph.shm.bump_epoch` when the epoch closes.
    plan_cache:
        Optional external 2-out plan cache with the
        :class:`~repro.serve.cache.GraphCache` ``plan_key``/``get_plan``/
        ``put_plan`` API (the serve daemon shares its own); defaults to
        a small internal dict.
    """

    def __init__(self, g: EdgeList, *, p: int = 4, seed: int = 0,
                 backend=None, eps: float = 0.2,
                 reconnect_budget: int = 256,
                 drift_threshold: float = 0.25,
                 sample_scale: float = 1.0,
                 success_prob: float = 0.9, trial_scale: float = 1.0,
                 plane: bool = False, plan_cache=None):
        self.n = int(g.n)
        self.p = int(p)
        self.seed = int(seed)
        self.backend = backend
        self.plane = bool(plane)
        self.reconnect_budget = int(reconnect_budget)
        self.success_prob = float(success_prob)
        self.trial_scale = float(trial_scale)
        self._streams = RngStreams(self.seed)

        # -- edge state: canonical key (min, max) -> weight ------------------
        self._edges: dict[tuple[int, int], float] = {}
        self._adj: dict[int, set[int]] = {}
        for a, b, w in zip(g.u.tolist(), g.v.tolist(), g.w.tolist()):
            key = (a, b) if a < b else (b, a)
            self._edges[key] = self._edges.get(key, 0.0) + float(w)
            self._adj.setdefault(key[0], set()).add(key[1])
            self._adj.setdefault(key[1], set()).add(key[0])

        self.epoch = 0
        self.updates_total = 0
        self._snapshot: EdgeList | None = None
        self._snapshot_epoch = -1
        self._labels_cache: DynamicCCResult | None = None
        self._published_fp: str | None = None
        self._plan_cache = plan_cache
        self._plans: dict[tuple, object] = {}

        # -- incremental CC state -------------------------------------------
        self._parent = np.arange(self.n, dtype=np.int64)
        self._tree: set[tuple[int, int]] = set()
        self._tree_adj: dict[int, set[int]] = {}
        self._uf_stale = False    # forest exact, parent needs rebuild
        self._cc_dirty = False    # forest unknown, needs cc_kernel fallback
        self.counters = {
            "inserts": 0, "deletes": 0, "reweights": 0,
            "unions": 0, "tree_deletes": 0, "reconnects": 0,
            "splits": 0, "cc_fallbacks": 0, "uf_rebuilds": 0,
            "resparsifications": 0, "epoch_bumps": 0,
        }
        self._build_initial_forest()

        # -- sparsifier ------------------------------------------------------
        self.sparsifier = CutSparsifier(
            eps=eps, drift_threshold=drift_threshold,
            sample_scale=sample_scale)

    # -- construction helpers ------------------------------------------------

    def _build_initial_forest(self) -> None:
        snap = self.snapshot()
        fu, fv = earliest_forest(self.n, snap.u, snap.v)
        self._set_forest(fu, fv)
        self._parent = cc_roots(self.n, fu, fv)

    def _set_forest(self, fu: np.ndarray, fv: np.ndarray) -> None:
        self._tree = set()
        self._tree_adj = {}
        for a, b in zip(fu.tolist(), fv.tolist()):
            key = (a, b) if a < b else (b, a)
            self._tree.add(key)
            self._tree_adj.setdefault(key[0], set()).add(key[1])
            self._tree_adj.setdefault(key[1], set()).add(key[0])

    # -- union-find (union by minimum root) ----------------------------------

    def _find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:  # full path compression
            parent[x], x = root, int(parent[x])
        return root

    # -- snapshots and epochs ------------------------------------------------

    def snapshot(self) -> EdgeList:
        """The epoch's canonical graph: edges sorted by ``(u, v)``, frozen.

        Canonical order makes the snapshot — and therefore its content
        fingerprint and every downstream RNG trajectory — a pure
        function of the edge *set*, independent of the order updates
        arrived in.
        """
        if self._snapshot is None or self._snapshot_epoch != self.epoch:
            keys = sorted(self._edges)
            u = np.fromiter((k[0] for k in keys), dtype=np.int64,
                            count=len(keys))
            v = np.fromiter((k[1] for k in keys), dtype=np.int64,
                            count=len(keys))
            w = np.fromiter((self._edges[k] for k in keys),
                            dtype=np.float64, count=len(keys))
            snap = EdgeList(self.n, u, v, w, canonical=False, validate=False)
            cached_fingerprint(snap, freeze=True)
            self._snapshot = snap
            self._snapshot_epoch = self.epoch
        return self._snapshot

    def fingerprint(self) -> str:
        return cached_fingerprint(self.snapshot())

    def publish_epoch(self):
        """Publish the epoch snapshot into the graph plane (lazy).

        Called by query paths when ``plane=True``: the first query of an
        epoch pays one :func:`~repro.graph.shm.bump_epoch` (unpinning
        the previous epoch's ``rgpl*`` segment); repeats are free.
        Returns the handle, or ``None`` when the plane is off or the
        snapshot is below the plane's size floor.
        """
        if not self.plane:
            return None
        snap = self.snapshot()
        if not eligible(snap):
            return None
        fp = self.fingerprint()
        if fp == self._published_fp:
            return None
        handle = bump_epoch(self._published_fp, snap, fingerprint=fp)
        self._published_fp = fp
        self.counters["epoch_bumps"] += 1
        return handle

    def close(self) -> None:
        """Drop the plane pin held for the current epoch (idempotent)."""
        if self._published_fp is not None:
            release_pins((self._published_fp,))
            self._published_fp = None

    def __enter__(self) -> "DynamicGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- updates -------------------------------------------------------------

    def update_edges(self, ops) -> dict:
        """Apply one batch of updates; closes an epoch; returns staleness.

        ``ops`` is an iterable of ``("insert", u, v, w)``,
        ``("delete", u, v)`` and ``("reweight", u, v, w)`` tuples (or
        JSON-decoded lists).  Inserting an existing edge combines the
        weights (multigraph semantics, matching
        :func:`~repro.graph.contract.combine_parallel_edges`); deleting
        or reweighting a missing edge raises.  No backend work happens
        here — expensive maintenance (CC fallback, re-sparsification)
        is deferred to the next query, so sustained update throughput is
        bounded by the O(α) bookkeeping alone.
        """
        ops = list(ops)
        for op in ops:
            verb = op[0]
            if verb == "insert":
                self._insert(int(op[1]), int(op[2]), float(op[3]))
            elif verb == "delete":
                self._delete(int(op[1]), int(op[2]))
            elif verb == "reweight":
                self._reweight(int(op[1]), int(op[2]), float(op[3]))
            else:
                raise ValueError(
                    f"unknown update op {verb!r}; expected one of "
                    f"{UPDATE_OPS}")
        self.updates_total += len(ops)
        self.epoch += 1
        self._snapshot = None
        self._labels_cache = None
        return self.staleness()

    def _key(self, a: int, b: int) -> tuple[int, int]:
        if a == b:
            raise ValueError("self-loops are not allowed")
        if not (0 <= a < self.n and 0 <= b < self.n):
            raise ValueError(f"vertex out of range: ({a}, {b})")
        return (a, b) if a < b else (b, a)

    def _insert(self, a: int, b: int, w: float) -> None:
        if w <= 0:
            raise ValueError("edge weights must be positive")
        key = self._key(a, b)
        self.counters["inserts"] += 1
        if key in self._edges:
            self._edges[key] += w
            self.sparsifier.note_reweight(key, self._edges[key], delta=w)
            return
        self._edges[key] = w
        self._adj.setdefault(key[0], set()).add(key[1])
        self._adj.setdefault(key[1], set()).add(key[0])
        self.sparsifier.note_insert(key, w)
        if self._cc_dirty:
            return
        if self._uf_stale:
            self._rebuild_parent_from_forest()
        ra, rb = self._find(key[0]), self._find(key[1])
        if ra != rb:
            # union by minimum: the canonical root survives
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            self._parent[hi] = lo
            self._tree.add(key)
            self._tree_adj.setdefault(key[0], set()).add(key[1])
            self._tree_adj.setdefault(key[1], set()).add(key[0])
            self.counters["unions"] += 1

    def _delete(self, a: int, b: int) -> None:
        key = self._key(a, b)
        if key not in self._edges:
            raise KeyError(f"edge {key} not present")
        w_old = self._edges.pop(key)
        self._adj[key[0]].discard(key[1])
        self._adj[key[1]].discard(key[0])
        self.counters["deletes"] += 1
        self.sparsifier.note_delete(key, w_old)
        if self._cc_dirty or key not in self._tree:
            return  # non-tree edge: partition provably unchanged
        self.counters["tree_deletes"] += 1
        self._tree.discard(key)
        self._tree_adj[key[0]].discard(key[1])
        self._tree_adj[key[1]].discard(key[0])
        self._reconnect(key)

    def _reweight(self, a: int, b: int, w: float) -> None:
        if w <= 0:
            raise ValueError("edge weights must be positive")
        key = self._key(a, b)
        if key not in self._edges:
            raise KeyError(f"edge {key} not present")
        old = self._edges[key]
        self._edges[key] = w
        self.counters["reweights"] += 1
        self.sparsifier.note_reweight(key, w, delta=w - old)

    # -- bounded reconnection search -----------------------------------------

    def _reconnect(self, removed: tuple[int, int]) -> None:
        """Repair the forest after deleting tree edge ``removed``.

        Floods the two tree sides of the deleted edge **in lockstep**
        (one scan step each, alternating), so the cost is bounded by
        the *smaller* side — the standard trick that keeps tree-edge
        deletions cheap even when one side is almost the whole graph.
        The first side to complete is then scanned for a replacement
        crossing edge.  Finding one keeps the partition; exhausting the
        side proves a split; blowing ``reconnect_budget`` (total scan
        steps across both phases) marks the epoch dirty for the
        cc_kernel fallback.  Deterministic: floods and scans walk
        sorted adjacency, so the replacement edge is a pure function of
        the graph state.
        """
        budget = self.reconnect_budget
        scanned = 0
        # lockstep flood: sides[i] grows one vertex expansion per turn
        sides = [{removed[0]}, {removed[1]}]
        queues = [[removed[0]], [removed[1]]]
        done = None
        while done is None:
            for i in (0, 1):
                if not queues[i]:
                    done = i
                    break
                x = queues[i].pop()
                for y in sorted(self._tree_adj.get(x, ())):
                    scanned += 1
                    if scanned > budget:
                        self._cc_dirty = True
                        return
                    if y not in sides[i]:
                        sides[i].add(y)
                        queues[i].append(y)
        side = sides[done]
        # scan the completed side's incident edges for a crossing edge
        for x in sorted(side):
            for y in sorted(self._adj.get(x, ())):
                scanned += 1
                if scanned > budget:
                    self._cc_dirty = True
                    return
                if y not in side:
                    key = (x, y) if x < y else (y, x)
                    self._tree.add(key)
                    self._tree_adj.setdefault(x, set()).add(y)
                    self._tree_adj.setdefault(y, set()).add(x)
                    self.counters["reconnects"] += 1
                    return
        # no crossing edge: the component genuinely split.  The forest
        # is exact again; the parent array (which cannot un-union) is
        # rebuilt from it lazily.
        self.counters["splits"] += 1
        self._uf_stale = True

    def _rebuild_parent_from_forest(self) -> None:
        tu = np.fromiter((k[0] for k in self._tree), dtype=np.int64,
                         count=len(self._tree))
        tv = np.fromiter((k[1] for k in self._tree), dtype=np.int64,
                         count=len(self._tree))
        self._parent = cc_roots(self.n, tu, tv)
        self._uf_stale = False
        self.counters["uf_rebuilds"] += 1

    # -- queries -------------------------------------------------------------

    def query_components(self) -> DynamicCCResult:
        """Canonical component labels of the current epoch (module doc).

        The answer certifies its graph by **epoch**; the content
        fingerprint rides along only when the epoch snapshot is already
        materialized (cut queries always materialize it) — computing it
        here would cost an O(m) canonical rebuild per query and erase
        the point of incremental maintenance.
        """
        if (self._labels_cache is not None
                and self._labels_cache.epoch == self.epoch):
            return self._labels_cache
        if self._cc_dirty:
            roots, via = self._cc_fallback(), "cc_kernel"
        elif self._uf_stale:
            self._rebuild_parent_from_forest()
            roots, via = self._parent.copy(), "forest"
        else:
            self._parent = flatten_parents(self._parent)
            roots, via = self._parent.copy(), "incremental"
        uniq, labels = np.unique(roots, return_inverse=True)
        fresh = (self._snapshot is not None
                 and self._snapshot_epoch == self.epoch)
        result = DynamicCCResult(
            labels=labels.astype(np.int64), n_components=int(uniq.size),
            epoch=self.epoch,
            fingerprint=self.fingerprint() if fresh else None, via=via)
        self._labels_cache = result
        return result

    def _cc_fallback(self) -> np.ndarray:
        """Full recompute through the existing cc_kernel pipeline.

        Runs :func:`~repro.core.components.connected_components` on the
        epoch snapshot via the configured backend (the same dispatch a
        from-scratch caller would make), canonicalizes the labels, and
        rebuilds the forest and union-find from the snapshot so
        subsequent updates are incremental again.
        """
        from repro.core.components import connected_components

        snap = self.snapshot()
        self.publish_epoch()
        seed = self._streams.spawn(_CC_SALT + self.epoch).seed
        res = connected_components(snap, self.p, seed=seed,
                                   backend=self.backend)
        roots = canonical_roots(res.labels)
        fu, fv = earliest_forest(self.n, snap.u, snap.v)
        self._set_forest(fu, fv)
        self._parent = roots.copy()
        self._cc_dirty = self._uf_stale = False
        self.counters["cc_fallbacks"] += 1
        return roots

    def connected(self, a: int, b: int) -> bool:
        """O(α) connectivity query (resolves any pending maintenance)."""
        if self._cc_dirty:
            self.query_components()
        elif self._uf_stale:
            self._rebuild_parent_from_forest()
        return self._find(int(a)) == self._find(int(b))

    def component_of(self, x: int) -> int:
        """O(α) canonical component root of vertex ``x``."""
        if self._cc_dirty:
            self.query_components()
        elif self._uf_stale:
            self._rebuild_parent_from_forest()
        return self._find(int(x))

    def query_cut(self, mode: str = "exact") -> DynamicCutResult:
        """Minimum cut of the current epoch's graph (module docstring).

        ``mode="exact"``: the 2-out pipeline on the epoch snapshot, its
        preprocessing plan cached per (epoch fingerprint, seed, p) so
        repeat queries at one epoch skip preprocessing entirely.
        ``mode="approx"``: the O(log n)-approximate cut on the certified
        sparsifier, with the witness side re-evaluated exactly on the
        snapshot.  Disconnected epochs answer 0.0 with a canonical
        witness (component 0) in either mode.
        """
        if mode not in ("exact", "approx"):
            raise ValueError(f"mode must be 'exact' or 'approx', got {mode!r}")
        cc = self.query_components()
        fp = self.fingerprint()
        if cc.n_components > 1:
            side = cc.labels == 0
            return DynamicCutResult(
                value=0.0, mode=mode, epoch=self.epoch, fingerprint=fp,
                witness_value=0.0, side=side,
                certificate={"disconnected": True,
                             "n_components": cc.n_components})
        self.publish_epoch()
        if mode == "exact":
            return self._exact_cut(fp)
        return self._approx_cut(fp)

    def _exact_cut(self, fp: str) -> DynamicCutResult:
        from repro.core.two_out import (
            DEFAULT_ROUNDS,
            plan_two_out,
            two_out_minimum_cut,
        )

        snap = self.snapshot()
        seed = self._streams.spawn(_CUT_SALT).seed
        cache = self._plan_cache
        if cache is not None:
            key = cache.plan_key(fp, seed=seed, p=self.p,
                                 success_prob=self.success_prob,
                                 trial_scale=self.trial_scale,
                                 rounds=DEFAULT_ROUNDS, replicas=None)
            plan = cache.get_plan(key)
        else:
            key = (fp, seed, self.p, self.success_prob, self.trial_scale)
            plan = self._plans.get(key)
        plan_hit = plan is not None
        if plan is None:
            plan = plan_two_out(snap, self.p, seed=seed,
                                success_prob=self.success_prob,
                                trial_scale=self.trial_scale,
                                backend=self.backend)
            if cache is not None:
                cache.put_plan(key, plan)
            else:
                if len(self._plans) >= 8:
                    self._plans.pop(next(iter(self._plans)))
                self._plans[key] = plan
        res = two_out_minimum_cut(snap, self.p, seed=seed,
                                  success_prob=self.success_prob,
                                  trial_scale=self.trial_scale,
                                  backend=self.backend, plan=plan)
        return DynamicCutResult(
            value=float(res.value), mode="exact", epoch=self.epoch,
            fingerprint=fp, witness_value=float(res.value), side=res.side,
            certificate={"variant": "2out", "seed": int(seed),
                         "p": self.p, "plan_cached": bool(plan_hit),
                         "trials": int(res.trials)})

    def _approx_cut(self, fp: str) -> DynamicCutResult:
        from repro.core.approx_mincut import approx_minimum_cut

        snap = self.snapshot()
        sg, certificate = self.sparsifier.materialize(
            self, snap, fp)
        seed = self._streams.spawn(_CUT_SALT + 1 + self.epoch).seed
        res = approx_minimum_cut(sg, self.p, seed=seed,
                                 backend=self.backend)
        side = res.witness_side
        witness = None
        if side is not None:
            side = np.asarray(side, dtype=bool)
            k = int(side.sum())
            if 0 < k < self.n:
                witness = snap.cut_value(side)  # exact, on the true graph
        certificate = dict(certificate, query_seed=int(seed))
        return DynamicCutResult(
            value=float(res.estimate), mode="approx", epoch=self.epoch,
            fingerprint=fp, witness_value=witness, side=side,
            certificate=certificate)

    # -- staleness -----------------------------------------------------------

    def staleness(self) -> dict:
        """JSON-ready report of how far warm state lags the epoch.

        ``fingerprint`` is reported only once a query has materialized
        the epoch snapshot (``null`` before that): computing it eagerly
        would cost an O(m) canonical rebuild per update batch, defeating
        the cheap-updates contract.  :meth:`fingerprint` forces it.
        """
        fresh = (self._snapshot is not None
                 and self._snapshot_epoch == self.epoch)
        return {
            "epoch": self.epoch,
            "fingerprint": self.fingerprint() if fresh else None,
            "n": self.n,
            "m": len(self._edges),
            "updates_total": self.updates_total,
            "cc_dirty": bool(self._cc_dirty),
            "uf_stale": bool(self._uf_stale),
            "sparsifier": self.sparsifier.staleness(),
            "counters": dict(self.counters),
        }
