"""Deterministic update streams for churn workloads.

Benchmarks, CI smokes and the differential fuzz tests all need the same
thing: a reproducible stream of valid ``insert``/``delete``/``reweight``
batches against an evolving edge set.  :func:`update_stream` provides it
with the trial-stream RNG discipline: batch ``b`` draws from
``RngStreams(seed).spawn(_UPDATE_SALT + b)`` — a salt-separated child
family exactly like the per-trial streams in the minimum-cut scheduler —
so the stream is a pure function of ``(initial graph, seed)``: identical
under sim and mp, across processes, and across a serve-daemon restart
replaying it.

The generator mirrors the edge set (keys in sorted order) so every
emitted op is valid by construction: deletes and reweights pick an
existing edge by index, inserts draw fresh endpoint pairs (falling back
to a reweight after bounded rejection when the graph is near-complete).
"""

from __future__ import annotations

import bisect

from repro.graph.edgelist import EdgeList
from repro.rng.streams import RngStreams

__all__ = ["update_stream", "apply_stream"]

#: Salt separating update-stream children from trial/CC/sparsify streams.
_UPDATE_SALT = 6 << 16

#: Bounded rejection draws for a fresh endpoint pair before degrading
#: the op to a reweight (keeps generation deterministic and total).
_INSERT_TRIES = 32


def update_stream(g: EdgeList, *, seed: int, batches: int,
                  batch_size: int, insert_frac: float = 0.5,
                  delete_frac: float = 0.3, w_lo: float = 0.5,
                  w_hi: float = 2.0):
    """Yield ``batches`` lists of update ops against ``g``'s edge set.

    Op mix: ``insert_frac`` inserts, ``delete_frac`` deletes, the rest
    reweights (an empty mirror forces inserts).  Ops are emitted as
    JSON-safe lists ``["insert", u, v, w]`` / ``["delete", u, v]`` /
    ``["reweight", u, v, w]``, directly acceptable to
    :meth:`~repro.dynamic.graph.DynamicGraph.update_edges` and the serve
    ``dyn_update`` verb.
    """
    if not 0 <= insert_frac <= 1 or not 0 <= delete_frac <= 1 \
            or insert_frac + delete_frac > 1:
        raise ValueError("op fractions must be in [0, 1] and sum to <= 1")
    n = g.n
    streams = RngStreams(int(seed))
    present = sorted(
        {(a, b) if a < b else (b, a)
         for a, b in zip(g.u.tolist(), g.v.tolist())})
    for b in range(int(batches)):
        rng = streams.spawn(_UPDATE_SALT + b).aux(0)
        ops = []
        for _ in range(int(batch_size)):
            r = float(rng.uniform())
            if present and r >= insert_frac:
                idx = int(rng.integers(0, len(present)))
                key = present[idx]
                if r < insert_frac + delete_frac:
                    del present[idx]
                    ops.append(["delete", key[0], key[1]])
                else:
                    w = float(rng.uniform(w_lo, w_hi))
                    ops.append(["reweight", key[0], key[1], w])
                continue
            # insert: bounded rejection for a fresh pair
            placed = False
            for _try in range(_INSERT_TRIES):
                a = int(rng.integers(0, n))
                c = int(rng.integers(0, n))
                if a == c:
                    continue
                key = (a, c) if a < c else (c, a)
                pos = bisect.bisect_left(present, key)
                if pos < len(present) and present[pos] == key:
                    continue
                present.insert(pos, key)
                w = float(rng.uniform(w_lo, w_hi))
                ops.append(["insert", key[0], key[1], w])
                placed = True
                break
            if not placed and present:  # near-complete graph: degrade
                idx = int(rng.integers(0, len(present)))
                key = present[idx]
                w = float(rng.uniform(w_lo, w_hi))
                ops.append(["reweight", key[0], key[1], w])
        yield ops


def apply_stream(dyn, stream) -> list[dict]:
    """Apply every batch of ``stream`` to ``dyn``; returns staleness docs."""
    return [dyn.update_edges(ops) for ops in stream]
