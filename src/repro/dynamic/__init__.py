"""repro.dynamic — streaming edge updates with warm CC and cut queries.

Batched inserts/deletes/reweights close *epochs*; each epoch has a
canonical frozen snapshot and content fingerprint that every cache
(graph plane, 2-out plans, serve layer) keys off.  Components stay warm
through an incremental spanning forest + union-find with a bounded
reconnection search (cc_kernel fallback); cuts stay warm through an
incrementally maintained certified sparsifier with drift-triggered
BSP re-sparsification.  See ``docs/dynamic.md``.
"""

from repro.dynamic.graph import (
    UPDATE_OPS,
    DynamicCCResult,
    DynamicCutResult,
    DynamicGraph,
    canonical_roots,
)
from repro.dynamic.sparsifier import CutSparsifier, sparsify_program
from repro.dynamic.stream import apply_stream, update_stream

__all__ = [
    "UPDATE_OPS",
    "CutSparsifier",
    "DynamicCCResult",
    "DynamicCutResult",
    "DynamicGraph",
    "apply_stream",
    "canonical_roots",
    "sparsify_program",
    "update_stream",
]
