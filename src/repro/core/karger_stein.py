"""Sequential Karger–Stein recursive contraction on adjacency matrices.

This is the role played in the paper by the cache-oblivious Karger–Stein
implementation of Geissmann & Gianinazzi [13]: the sequential "KS" baseline
of §5.3 *and* the leaf of the parallel Recursive Step (a single processor is
left with a full copy of the contracted matrix, §4.3).

Random contraction to ``t`` vertices is performed by Iterated Sampling on
the matrix: sample a batch of entries proportionally to weight, contract the
longest prefix that leaves at least ``t`` components (union-find), repeat.
Matrix contraction streams rows and columns, giving the O(n^2 log^3 n / B)
cache behaviour of [13] rather than the pointer-chasing of edge-by-edge
contraction.

All routines optionally record their memory behaviour into a
:class:`~repro.cache.traced.MemoryTracker` for the sequential cache studies
(Figs 8a, 9).
"""

from __future__ import annotations

import math

import numpy as np

from repro.cache.traced import MemoryTracker, NullTracker
from repro.core.contraction import prefix_select
from repro.graph.contract import components_from_edges

__all__ = [
    "brute_force_matrix",
    "brute_force_matrix_all",
    "random_contract_matrix",
    "karger_stein_matrix",
    "karger_stein_matrix_all",
    "canonical_cut_key",
    "KS_BASE_SIZE",
]


def canonical_cut_key(side: np.ndarray) -> bytes:
    """Canonical hashable key of a cut: a side and its complement are the
    same cut, so normalize to the side *not* containing vertex 0."""
    side = np.asarray(side, dtype=bool)
    if side[0]:
        side = ~side
    return np.packbits(side).tobytes()

#: Below this size the recursion bottoms out in exhaustive enumeration.
#: The recursion has Theta(n^2) leaves, so the base case is vectorized: one
#: matmul evaluates all 2^(base-1) cuts at once.
KS_BASE_SIZE = 8

#: Batch-size exponent of the matrix iterated sampling: s = k^(1+sigma).
_MATRIX_SIGMA = 0.3

#: Cached enumeration tables: n -> (2^(n-1)-1, n) float matrix of cut sides
#: (vertex 0 fixed outside the cut, empty cut excluded).
_SIDE_TABLES: dict[int, np.ndarray] = {}


def _side_table(n: int) -> np.ndarray:
    table = _SIDE_TABLES.get(n)
    if table is None:
        masks = np.arange(1, 1 << (n - 1), dtype=np.uint32)
        bits = (masks[:, None] >> np.arange(n - 1, dtype=np.uint32)) & 1
        table = np.concatenate(
            [np.zeros((masks.size, 1)), bits.astype(np.float64)], axis=1
        )
        _SIDE_TABLES[n] = table
    return table


def brute_force_matrix(a: np.ndarray) -> tuple[float, np.ndarray]:
    """Exact minimum cut of a small matrix graph by enumeration.

    Returns ``(value, side)``; vertex 0 is fixed outside the cut so each cut
    is enumerated once.  All 2^(n-1) - 1 cut values are evaluated with one
    matrix product (the recursion calls this Theta(n^2) times).
    """
    n = a.shape[0]
    if n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    if n > 24:
        raise ValueError(f"brute force limited to n <= 24, got {n}")
    sides = _side_table(n)
    values = np.einsum("ki,ij,kj->k", sides, a, 1.0 - sides)
    best = int(np.argmin(values))
    return float(values[best]), sides[best].astype(bool)


def brute_force_matrix_all(a: np.ndarray) -> tuple[float, list[np.ndarray]]:
    """All minimum cuts of a small matrix graph; ``(value, [sides])``.

    Needed by the find-*all*-minimum-cuts mode (Lemma 4.3): the single-cut
    base case breaks ties deterministically and would hide tied optima.
    """
    n = a.shape[0]
    if n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    if n > 24:
        raise ValueError(f"brute force limited to n <= 24, got {n}")
    sides = _side_table(n)
    values = np.einsum("ki,ij,kj->k", sides, a, 1.0 - sides)
    best = values.min()
    hits = np.flatnonzero(values <= best + 1e-12)
    return float(best), [sides[i].astype(bool) for i in hits]


def _contract_matrix(a: np.ndarray, labels: np.ndarray, n_new: int,
                     mem: MemoryTracker) -> np.ndarray:
    """Row/column combine by label, zero diagonal (streaming passes)."""
    n = a.shape[0]
    rows = np.zeros((n_new, n), dtype=np.float64)
    np.add.at(rows, labels, a)
    out = np.zeros((n_new, n_new), dtype=np.float64)
    np.add.at(out.T, labels, rows.T)
    np.fill_diagonal(out, 0.0)
    mem.alloc("ks_matrix", n * n)
    mem.scan("ks_matrix", 0, n * n)
    mem.ops(2 * n * n)
    return out


def random_contract_matrix(
    a: np.ndarray,
    t: int,
    rng: np.random.Generator,
    mem: MemoryTracker | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Iterated-sampling random contraction of ``a`` down to ``t`` vertices.

    Returns ``(contracted_matrix, labels, n_new)``; ``labels`` maps the
    vertices of ``a`` to ``0..n_new-1``.  If the graph disconnects the
    process (no edges remain while more than ``t`` components exist), the
    returned ``n_new`` exceeds ``t`` — callers detect the zero-weight matrix.
    """
    mem = mem or NullTracker()
    n = a.shape[0]
    if t < 2:
        raise ValueError(f"contraction target must be >= 2, got {t}")
    k = n
    cur = a
    total_labels = np.arange(n, dtype=np.int64)
    while k > t:
        flat = cur.ravel()
        total = flat.sum()
        if total <= 0:
            break  # disconnected remainder
        s = min(max(32, math.ceil(k ** (1.0 + _MATRIX_SIGMA))), 4 * k * k)
        # Sample matrix entries proportionally to weight (each edge appears
        # twice with equal weight: proportionality is preserved).
        cdf = np.cumsum(flat)
        picks = np.searchsorted(cdf, rng.random(s) * cdf[-1], side="right")
        su = picks // k
        sv = picks % k
        mem.alloc("ks_matrix", k * k)
        mem.scan("ks_matrix", 0, k * k)
        mem.touch("ks_matrix", picks)
        mem.ops(k * k + s * max(1, int(math.log2(max(k, 2)))))
        labels, k_new = prefix_select(k, su, sv, t)
        mem.ops(3 * s)
        if k_new == k:
            continue  # sample produced no contraction; redraw
        cur = _contract_matrix(cur, labels, k_new, mem)
        total_labels = labels[total_labels]
        k = k_new
    return cur, total_labels, k


def karger_stein_matrix(
    a: np.ndarray,
    rng: np.random.Generator,
    mem: MemoryTracker | None = None,
) -> tuple[float, np.ndarray]:
    """Recursive contraction minimum cut of a matrix graph.

    Returns ``(value, side)`` where ``side`` is a boolean partition of the
    matrix's vertices achieving ``value``.  One invocation succeeds with
    probability Omega(1/log n) (Lemma 2.2); drivers repeat it.
    """
    mem = mem or NullTracker()
    n = a.shape[0]
    if n <= KS_BASE_SIZE:
        val, side = brute_force_matrix(a)
        mem.alloc("ks_matrix", n * n)
        mem.scan("ks_matrix", 0, n * n)
        mem.ops((1 << n) * n)
        return val, side

    if a.sum() <= 0:  # edgeless: any side is a zero cut
        side = np.zeros(n, dtype=bool)
        side[0] = True
        return 0.0, side

    t = math.ceil(1 + n / math.sqrt(2))
    best_val = math.inf
    best_side = None
    for _rep in range(2):
        cur, labels, k = random_contract_matrix(a, t, rng, mem)
        if k > t and cur.sum() <= 0:
            # Disconnected: exact zero cut along a current component.
            iu, iv = np.nonzero(cur)
            comp, _ = components_from_edges(k, iu, iv)
            side = (comp == comp[0])[labels]
            return 0.0, side
        val, side_k = karger_stein_matrix(cur, rng, mem)
        side = side_k[labels]
        if val < best_val:
            best_val = val
            best_side = side
    return best_val, best_side


def karger_stein_matrix_all(
    a: np.ndarray,
    rng: np.random.Generator,
    mem: MemoryTracker | None = None,
) -> tuple[float, dict[bytes, np.ndarray]]:
    """Recursive contraction collecting *all* tied minimum cuts it sees.

    Returns ``(value, {canonical_key: side})``.  One invocation preserves a
    given minimum cut with the Lemma 2.2 probability, so repeated calls
    accumulate the full set of minimum cuts w.h.p. (Lemma 4.3).
    """
    mem = mem or NullTracker()
    n = a.shape[0]
    if n <= KS_BASE_SIZE:
        val, sides = brute_force_matrix_all(a)
        mem.ops((1 << n) * n)
        return val, {canonical_cut_key(s): s for s in sides}

    if a.sum() <= 0:  # edgeless: every single vertex forms a zero cut
        cuts = {}
        for x in range(n):
            side = np.zeros(n, dtype=bool)
            side[x] = True
            cuts[canonical_cut_key(side)] = side
        return 0.0, cuts

    t = math.ceil(1 + n / math.sqrt(2))
    best_val = math.inf
    best_cuts: dict[bytes, np.ndarray] = {}
    for _rep in range(2):
        cur, labels, k = random_contract_matrix(a, t, rng, mem)
        if k > t and cur.sum() <= 0:
            iu, iv = np.nonzero(cur)
            comp, ncomp = components_from_edges(k, iu, iv)
            comp_lifted = comp[labels]
            cuts = {}
            for c in range(ncomp):
                side = comp_lifted == c
                cuts[canonical_cut_key(side)] = side
            return 0.0, cuts
        val, sub_cuts = karger_stein_matrix_all(cur, rng, mem)
        if val > best_val:
            continue
        lifted = {}
        for side_k in sub_cuts.values():
            side = side_k[labels]
            lifted[canonical_cut_key(side)] = side
        if val < best_val:
            best_val = val
            best_cuts = lifted
        else:
            best_cuts.update(lifted)
    return best_val, best_cuts
