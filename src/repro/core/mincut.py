"""Exact global minimum cut (§4): Eager Step + Recursive Step trials.

The algorithm performs ``t = Theta((n^2/m) log^2 n)`` independent trials and
returns the best cut found.  Each trial:

1. **Eager Step** — randomly contract the graph to ``ceil(sqrt(m)) + 1``
   vertices with Iterated Sampling over the distributed edge array
   (weighted Sparsification + Prefix Selection + sparse Bulk Edge
   Contraction, §4.2);
2. **Recursive Step** — run Recursive Contraction on the now-dense graph,
   stored as a distributed adjacency matrix.  Each recursion level contracts
   two independent copies to ``ceil(1 + n/sqrt(2))`` vertices (dense
   Iterated Sampling + dense Bulk Edge Contraction) and hands one copy to
   each half of the processor group; a group of one finishes with the
   sequential cache-oblivious Karger–Stein code (§4.3).

Trial scheduling follows §4: with ``p <= t`` the graph is replicated and
trials are distributed round-robin over processors (no communication inside
a trial); with ``p > t`` the processors split into ``t`` groups, each
running one trial in parallel.

All results carry a *witness*: a boolean vertex partition of the original
graph achieving the reported value (recomputing its value on the input is
the library's end-to-end self-check, mirroring the artifact's verification
methodology).
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.bsp.counters import CountersReport
from repro.bsp.engine import Engine
from repro.bsp.machine import TimeEstimate
from repro.cache.traced import AnalyticTracker, MemoryTracker, NullTracker
from repro.core.contraction import (
    dense_bulk_contract,
    prefix_select,
    row_block,
    sparse_bulk_contract,
)
from repro.core.karger_stein import (
    KS_BASE_SIZE,
    brute_force_matrix,
    canonical_cut_key,
    karger_stein_matrix,
    karger_stein_matrix_all,
)
from repro.core.sparsify import sparsify_weighted
from repro.core.trials import num_trials
from repro.graph.edgelist import EdgeList
from repro.graph.shm import plane_slices
from repro.kernels import bulk_contract_edges
from repro.rng.sampling import CumulativeWeightSampler
from repro.runtime.base import Backend, resolve_backend
from repro.rng.streams import RngStreams

__all__ = [
    "VARIANTS",
    "minimum_cut",
    "minimum_cuts",
    "minimum_cut_sequential",
    "mincut_program",
    "MinCutResult",
    "MinCutsResult",
]

#: Sampling exponent of the sparse Eager Step: sample size k^(1+sigma).
_EAGER_SIGMA = 0.3

#: Safety bound on Iterated Sampling rounds (O(1) needed w.h.p.).
_MAX_ROUNDS = 80


def _eager_target(n: int, m: int) -> int:
    """Eager Step contraction target: ceil(sqrt(m)) + 1, at least 2."""
    return max(2, min(n, math.ceil(math.sqrt(max(m, 1))) + 1))


def _relabel_combine(u, v, w, labels, n_new):
    """Relabel endpoints, drop loops, combine parallel edges (sequential)."""
    return bulk_contract_edges(u, v, w, labels, n_new)


# ---------------------------------------------------------------------------
# Sequential trial (the p <= t fast path and the minimum_cut_sequential code)
# ---------------------------------------------------------------------------

def sequential_eager_step(
    u, v, w, n, target, rng,
    mem: MemoryTracker | None = None,
    first_sampler: CumulativeWeightSampler | None = None,
):
    """Iterated Sampling contraction of edge arrays down to ``target``.

    Returns ``(u, v, w, labels, k)``; ``labels`` maps ``0..n-1`` onto the
    ``k`` remaining vertices.  ``first_sampler`` lets callers reuse the
    first round's cumulative-weight table across trials on the same graph.
    """
    mem = mem or NullTracker()
    k = n
    labels_total = np.arange(n, dtype=np.int64)
    mem.alloc("edges", u.size, words_per_elem=3)
    mem.alloc("labels", n)
    for round_idx in range(_MAX_ROUNDS):
        m = u.size
        if k <= target or m == 0:
            break
        s = min(max(32, math.ceil(k ** (1.0 + _EAGER_SIGMA))), 4 * m)
        sampler = first_sampler if (round_idx == 0 and first_sampler is not None) \
            else CumulativeWeightSampler(w)
        idx = sampler.sample(rng, s)
        su, sv = u[idx], v[idx]
        mem.scan("edges", 0, m)
        mem.touch("edges", idx)
        mem.ops(m + s * max(1, int(math.log2(max(m, 2)))))
        labels, k_new = prefix_select(k, su, sv, target)
        mem.touch("labels", su)
        mem.ops(3 * s)
        u, v, w = _relabel_combine(u, v, w, labels, k_new)
        mem.scan("edges", 0, m)
        mem.ops(m * max(1, int(math.log2(max(m, 2)))))
        labels_total = labels[labels_total]
        mem.scan("labels")
        mem.ops(n)
        k = k_new
    else:
        raise RuntimeError("eager step did not converge; sampling bug")
    return u, v, w, labels_total, k


def _edges_to_dense(u, v, w, k):
    """Accumulate combined edge arrays into a symmetric k x k matrix."""
    a = np.zeros((k, k), dtype=np.float64)
    np.add.at(a, (u, v), w)
    np.add.at(a, (v, u), w)
    return a


def sequential_trial(
    u, v, w, n, rng,
    mem: MemoryTracker | None = None,
    first_sampler: CumulativeWeightSampler | None = None,
):
    """One full trial (Eager + Recursive Step) on local edge arrays.

    Returns ``(value, side)`` with ``side`` a boolean partition of the
    original ``n`` vertices.
    """
    mem = mem or NullTracker()
    target = _eager_target(n, u.size)
    u2, v2, w2, labels, k = sequential_eager_step(
        u, v, w, n, target, rng, mem=mem, first_sampler=first_sampler
    )
    a = _edges_to_dense(u2, v2, w2, k)
    mem.alloc("ks_matrix", k * k)
    mem.scan("ks_matrix", 0, k * k)
    mem.ops(k * k)
    val, side_k = karger_stein_matrix(a, rng, mem)
    return val, side_k[labels]


def _pick_min(a, b):
    """Deterministic fold: keep the smaller cut value (left wins ties)."""
    return a if a[0] <= b[0] else b


def sequential_trial_all(
    u, v, w, n, rng,
    mem: MemoryTracker | None = None,
    first_sampler: CumulativeWeightSampler | None = None,
):
    """One trial collecting all tied minimum cuts it encounters.

    Returns ``(value, {canonical_key: side})`` over the original vertices.
    """
    mem = mem or NullTracker()
    target = _eager_target(n, u.size)
    u2, v2, w2, labels, k = sequential_eager_step(
        u, v, w, n, target, rng, mem=mem, first_sampler=first_sampler
    )
    a = _edges_to_dense(u2, v2, w2, k)
    mem.ops(k * k)
    val, cuts_k = karger_stein_matrix_all(a, rng, mem)
    cuts = {}
    for side_k in cuts_k.values():
        side = side_k[labels]
        cuts[canonical_cut_key(side)] = side
    return val, cuts


def _merge_cut_sets(a, b):
    """Fold for collect-all runs: ``(value, {key: side})`` pairs."""
    va, cuts_a = a
    vb, cuts_b = b
    if va < vb:
        return a
    if vb < va:
        return b
    merged = dict(cuts_a)
    merged.update(cuts_b)
    return va, merged


# ---------------------------------------------------------------------------
# Parallel trial: distributed Eager Step + distributed Recursive Step
# ---------------------------------------------------------------------------

def parallel_eager_step(ctx, comm, u, v, w, n, target, *, sigma=_EAGER_SIGMA):
    """Generator: distributed Iterated Sampling down to ``target`` vertices.

    ``u, v, w`` is this processor's slice.  Returns
    ``(u, v, w, labels, k)`` where ``labels`` (known at every member) maps
    the original ``n`` vertices onto the ``k`` remaining ones.
    """
    root = 0
    k = n
    labels_total = np.arange(n, dtype=np.int64)
    for _round in range(_MAX_ROUNDS):
        m_total = yield from comm.allreduce(int(u.size), op=operator.add)
        if k <= target or m_total == 0:
            break
        s = min(max(32, math.ceil(k ** (1.0 + sigma))), 4 * m_total)
        sample = yield from sparsify_weighted(ctx, comm, u, v, w, s, root=root)
        if comm.rank == root:
            su, sv, _sw = sample
            g_map, k_new = prefix_select(k, su, sv, target)
            ctx.charge(ops=3.0 * s, misses=ctx.cache.random_access(s, k))
            payload = (g_map, k_new)
        else:
            payload = None
        g_map, k_new = yield from comm.bcast(payload, root=root)
        if k_new == k:
            continue
        u, v, w = yield from sparse_bulk_contract(ctx, comm, u, v, w, g_map, k_new)
        labels_total = g_map[labels_total]
        ctx.charge_scan(n)
        k = k_new
    else:
        raise RuntimeError("parallel eager step did not converge; sampling bug")
    return u, v, w, labels_total, k


def edges_to_distributed_matrix(ctx, comm, u, v, w, k):
    """Generator: route combined edges into row blocks of a dense matrix.

    Returns this processor's contiguous row block of the symmetric ``k x k``
    weight matrix (distribution per :func:`row_block`).
    """
    q = comm.size
    bounds = np.array([row_block(j, q, k)[0] for j in range(q)] + [k],
                      dtype=np.int64)

    def owner(rows):
        return (np.searchsorted(bounds, rows, side="right") - 1).astype(np.int64)

    parcels = []
    ou = owner(u)
    ov = owner(v)
    for j in range(q):
        sel_u = ou == j
        sel_v = ov == j
        rows = np.concatenate([u[sel_u], v[sel_v]])
        cols = np.concatenate([v[sel_u], u[sel_v]])
        ws = np.concatenate([w[sel_u], w[sel_v]])
        parcels.append((rows, cols, ws))
    ctx.charge_scan(u.size, words_per_elem=3)
    received = yield from comm.alltoallv(parcels)
    lo, hi = row_block(comm.rank, q, k)
    block = np.zeros((hi - lo, k), dtype=np.float64)
    # One unbuffered scatter-add over the senders' concatenated triples:
    # np.add.at applies updates in element order, so this accumulates the
    # same floats in the same order as a per-sender loop did.
    rows, cols, ws = received
    np.add.at(block, (rows - lo, cols), ws)
    ctx.charge(ops=float(hi - lo) * k, misses=ctx.cache.matrix_scan(hi - lo, k))
    return block


def dense_iterated_sampling(ctx, comm, rows, n, target, *, sigma=_EAGER_SIGMA):
    """Generator: contract a distributed matrix graph down to ``target``.

    Returns ``(rows, labels, k, disconnected)``; ``labels`` (length ``n``,
    known everywhere) maps onto the ``k`` remaining vertices.
    ``disconnected`` is set when the matrix ran out of edges early.
    """
    root = 0
    k = n
    labels_total = np.arange(n, dtype=np.int64)
    disconnected = False
    for _round in range(_MAX_ROUNDS):
        if k <= target:
            break
        local_w = float(rows.sum())
        total_w = yield from comm.allreduce(local_w, op=operator.add)
        if total_w <= 0:
            disconnected = True
            break
        lo, _hi = row_block(comm.rank, comm.size, k)
        iu, iv = np.nonzero(rows)
        eu = iu.astype(np.int64) + lo
        ev = iv.astype(np.int64)
        ew = rows[iu, iv]
        ctx.charge(ops=rows.size, misses=ctx.cache.matrix_scan(*rows.shape))
        s = min(max(32, math.ceil(k ** (1.0 + sigma))), 4 * k * k)
        sample = yield from sparsify_weighted(ctx, comm, eu, ev, ew, s, root=root)
        if comm.rank == root:
            su, sv, _sw = sample
            g_map, k_new = prefix_select(k, su, sv, target)
            ctx.charge(ops=3.0 * s, misses=ctx.cache.random_access(s, k))
            payload = (g_map, k_new)
        else:
            payload = None
        g_map, k_new = yield from comm.bcast(payload, root=root)
        if k_new == k:
            continue
        rows = yield from dense_bulk_contract(ctx, comm, rows, k, g_map, k_new)
        labels_total = g_map[labels_total]
        k = k_new
    else:
        raise RuntimeError("dense iterated sampling did not converge; sampling bug")
    return rows, labels_total, k, disconnected


def _gather_matrix(ctx, comm, rows, n):
    """Generator: assemble the distributed matrix at local rank 0."""
    blocks = yield from comm.gatherv(rows, root=0)
    if comm.rank == 0:
        return blocks[0]  # axis-0 concat of 2-D row blocks == vstack
    return None


def recursive_step(ctx, comm, rows, n):
    """Generator: distributed Recursive Contraction (§4.3).

    ``rows`` is this processor's row block of the current matrix.  Returns
    ``(value, side)`` — known at *every* member of ``comm`` — where ``side``
    partitions the matrix's ``n`` vertices.
    """
    q = comm.size
    if q == 1:
        tracker = AnalyticTracker(ctx.cache)
        val, side = karger_stein_matrix(rows, ctx.rng, tracker)
        ctx.charge(ops=tracker.op_count, misses=tracker.miss_count)
        return val, side

    total_w = yield from comm.allreduce(float(rows.sum()), op=operator.add)
    if total_w <= 0:
        side = np.zeros(n, dtype=bool)
        side[0] = True
        return 0.0, side

    if n <= max(KS_BASE_SIZE, q):
        full = yield from _gather_matrix(ctx, comm, rows, n)
        if comm.rank == 0:
            val, side = brute_force_matrix(full)
            ctx.charge(ops=float(1 << n) * n)
            payload = (val, side)
        else:
            payload = None
        val, side = yield from comm.bcast(payload, root=0)
        return val, side

    t = max(2, math.ceil(1 + n / math.sqrt(2)))
    half = q // 2
    color = 0 if comm.rank < half else 1

    copies = []
    for _c in (0, 1):
        crows, clabels, ck, disc = yield from dense_iterated_sampling(
            ctx, comm, rows, n, t
        )
        copies.append((crows, clabels, ck, disc))
    for crows, clabels, ck, disc in copies:
        if disc:
            # A copy ran out of edges above its target: the graph (hence the
            # input) is disconnected — an exact zero cut along a component.
            side = (clabels == clabels[0])
            if side.all():
                side = ~side
                side[0] = True
            return 0.0, side

    # Redistribute: copy 0's rows to the first `half` processors, copy 1's
    # to the rest, in one alltoall over the parent group.
    group_sizes = (half, q - half)
    parcels = []
    for j in range(q):
        c = 0 if j < half else 1
        crows, _clabels, ck, _ = copies[c]
        jr = j if c == 0 else j - half
        tlo, thi = row_block(jr, group_sizes[c], ck)
        mylo, myhi = row_block(comm.rank, q, ck)
        lo, hi = max(tlo, mylo), min(thi, myhi)
        if hi > lo:
            parcels.append((lo, crows[lo - mylo:hi - mylo]))
        else:
            parcels.append(None)
    received = yield from comm.alltoall(parcels)

    my_rows_c, my_labels, my_k, _ = copies[color]
    sub = yield from comm.split(color)
    tlo, thi = row_block(sub.rank, group_sizes[color], my_k)
    block = np.zeros((thi - tlo, my_k), dtype=np.float64)
    for part in received:
        if part is None:
            continue
        lo, chunk = part
        block[lo - tlo:lo - tlo + chunk.shape[0]] = chunk
    ctx.charge(ops=float(max(thi - tlo, 0)) * my_k,
               misses=ctx.cache.matrix_scan(max(thi - tlo, 0), my_k))

    val, side_sub = yield from recursive_step(ctx, sub, block, my_k)
    side_n = side_sub[my_labels]
    best = yield from comm.allreduce((val, side_n), op=_pick_min)
    return best


def parallel_trial(ctx, comm, u, v, w, n):
    """Generator: one fully parallel trial over the group ``comm``.

    Returns ``(value, side)`` known at every group member; ``side``
    partitions the original ``n`` vertices.
    """
    m_total = yield from comm.allreduce(int(u.size), op=operator.add)
    target = _eager_target(n, m_total)
    u2, v2, w2, labels, k = yield from parallel_eager_step(
        ctx, comm, u, v, w, n, target
    )
    m_left = yield from comm.allreduce(int(u2.size), op=operator.add)
    if m_left == 0 and k > 1:
        side = labels == labels[0]
        if side.all():  # single remaining vertex: connected input fully merged
            side = ~side
            side[0] = True
        return 0.0, side
    rows = yield from edges_to_distributed_matrix(ctx, comm, u2, v2, w2, k)
    val, side_k = yield from recursive_step(ctx, comm, rows, k)
    return val, side_k[labels]


# ---------------------------------------------------------------------------
# Driver program and public API
# ---------------------------------------------------------------------------

def mincut_program(ctx, slices, n, trials, trial_seed, collect_all=False):
    """SPMD program: replicate the graph, run the trials, fold the minimum.

    Returns ``(value, side)`` at every rank — or, with ``collect_all``,
    ``(value, {canonical_key: side})`` carrying every distinct minimum cut
    discovered across the trials (Lemma 4.3: the trial budget finds *all*
    minimum cuts w.h.p.).
    """
    comm = ctx.comm
    p = ctx.p
    g = slices[ctx.rank]

    def pack(val, side):
        if collect_all:
            cuts = {} if side is None else {canonical_cut_key(side): side}
            return val, cuts
        return val, side

    fold = _merge_cut_sets if collect_all else _pick_min

    # Replicate the distributed edge array (the paper broadcasts the graph
    # when p <= t and each group needs a full copy when p > t).
    parts = yield from comm.allgatherv(g.u, g.v, g.w)
    fu, fv, fw = parts
    ctx.charge_scan(fu.size, words_per_elem=3)
    if fu.size == 0:
        side = np.zeros(n, dtype=bool)
        side[0] = True
        return pack(0.0, side)

    if p <= trials:
        # Trials round-robin over processors; no communication inside.
        streams = RngStreams(trial_seed)
        tracker = AnalyticTracker(ctx.cache)
        first_sampler = CumulativeWeightSampler(fw)
        tracker.alloc("edges", fu.size, words_per_elem=3)
        tracker.alloc("labels", n)
        best = pack(math.inf, None)
        for ti in range(ctx.rank, trials, p):
            # Per-trial streams keyed by the trial index: the set of trials
            # (hence the result) is identical for every processor count.
            rng_t = streams.aux(ti)
            if collect_all:
                val, cuts = sequential_trial_all(
                    fu, fv, fw, n, rng_t,
                    mem=tracker, first_sampler=first_sampler,
                )
                best = fold(best, (val, cuts))
            else:
                val, side = sequential_trial(
                    fu, fv, fw, n, rng_t,
                    mem=tracker, first_sampler=first_sampler,
                )
                best = fold(best, pack(val, side))
        ctx.charge(ops=tracker.op_count, misses=tracker.miss_count)
        best = yield from comm.allreduce(best, op=fold)
        return best

    # p > trials: processor groups, one parallel trial per group.
    color = ctx.rank * trials // p
    sub = yield from comm.split(color)
    local = EdgeList(n, fu, fv, fw, canonical=False, validate=False)
    my_slice = local.slices(sub.size)[sub.rank]
    val, side = yield from parallel_trial(
        ctx, sub, my_slice.u, my_slice.v, my_slice.w, n
    )
    contribution = pack(val, side) if sub.rank == 0 else pack(math.inf, None)
    best = yield from comm.allreduce(contribution, op=fold)
    return best


@dataclass(frozen=True)
class MinCutResult:
    """Result of an exact minimum-cut run."""

    value: float
    side: np.ndarray         # boolean witness partition of the input vertices
    trials: int
    report: CountersReport
    time: TimeEstimate
    #: Per-superstep TraceEvents when the backend traced, else None.
    trace: list | None = None
    #: Scheduled runs: success probability actually achieved by the
    #: trials that completed (>= the requested probability when the full
    #: planned budget finished); None for unscheduled runs.
    achieved_success_prob: float | None = None
    #: Scheduled runs: the per-trial ledger
    #: (:class:`~repro.sched.ledger.TrialLedger`); None otherwise.
    ledger: Any = None
    #: Which trial pipeline produced the result: ``"default"`` or
    #: ``"2out"`` (the GNT random 2-out contraction preprocessing).
    variant: str = "default"
    #: 2-out runs: the preprocessing/budget summary
    #: (:class:`~repro.core.two_out.TwoOutSummary`); None otherwise.
    two_out: Any = None


VARIANTS = ("default", "2out")


def minimum_cut(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    success_prob: float = 0.9,
    trials: int | None = None,
    trial_scale: float = 1.0,
    preprocess: bool = False,
    variant: str = "default",
    fuse=None,
    engine: Engine | None = None,
    backend: str | Backend | None = None,
    scheduler: "Any | None" = None,
    resume: bool = False,
) -> MinCutResult:
    """Exact (w.p. >= ``success_prob``) global minimum cut of ``g``.

    ``trials`` overrides the §4 trial count Theta((n^2/m) log^2 n);
    ``trial_scale`` shrinks it proportionally for scaled-down benchmark
    runs.  ``preprocess`` applies the §2.3 heavy-edge contraction first
    (exactness-preserving; shrinks graphs with a wide weight spread).
    Deterministic given ``seed`` (and, for ``p <= trials``, independent of
    ``p``).  ``backend`` selects the runtime (``"sim"``/``"mp"``/
    instance); results are backend-independent for a fixed ``seed``.

    ``variant="2out"`` runs the GNT random 2-out contraction
    preprocessing first (:mod:`repro.core.two_out`) and dispatches the
    much smaller recomputed trial budgets of the contracted replicas —
    same exactness guarantee, with automatic degradation to the default
    pipeline when the preprocessing buys nothing.  It recomputes budgets
    itself, so it rejects a ``trials`` override, ``resume`` and
    checkpointing schedulers.

    ``scheduler`` — a :class:`~repro.sched.scheduler.TrialScheduler` —
    routes the trials through the fault-tolerant dispatch loop instead of
    the monolithic program: retries, checkpoint/resume (``resume=True``
    reloads the scheduler's checkpoint), fault injection, and an
    ``achieved_success_prob``/``ledger`` on the result.  The cut value is
    bit-identical to the unscheduled path for the same ``seed``.

    ``fuse`` (bool or :class:`~repro.bsp.fusion.FusionConfig`) enables
    automatic superstep fusion on a freshly constructed backend; results
    stay bit-identical.  There is deliberately *no* ``shrink=`` here: the
    exact pipeline cannot release idle ranks without changing results —
    the eager contraction's sort splitters span ``comm.size`` (a smaller
    group redraws the root's multinomial refill), and the recursion's
    group halving decides which Philox stream runs each Karger–Stein
    leaf.  Group-shrink lives in the CC kernel and the approximate cut,
    where bit-parity holds (see ``docs/fusion.md``).
    """
    if g.n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}: expected one of "
                         f"{VARIANTS}")
    if resume and scheduler is None:
        raise ValueError("resume=True requires a scheduler")
    if variant == "2out":
        if trials is not None:
            raise ValueError(
                "variant='2out' recomputes the trial budget from the "
                "contracted replicas; a trials override would be ignored")
        if resume:
            raise ValueError(
                "variant='2out' does not support resume: one checkpoint "
                "cannot span the per-replica dispatches")
    runtime = resolve_backend(backend, engine=engine, fuse=fuse)
    lift = None
    if preprocess:
        from repro.core.preprocess import contract_heavy_edges

        h, lift = contract_heavy_edges(g)
        if h.n < 2:
            lift = None
        else:
            g = h
    if variant == "2out":
        from dataclasses import replace

        from repro.core.two_out import two_out_minimum_cut

        res = two_out_minimum_cut(
            g, p, seed=seed, success_prob=success_prob,
            trial_scale=trial_scale, scheduler=scheduler, backend=runtime,
        )
        if lift is not None and res.side is not None:
            res = replace(res, side=res.side[lift])
        return res
    if scheduler is not None:
        sres = scheduler.run(
            g, p, backend=runtime, seed=seed, success_prob=success_prob,
            trials=trials, trial_scale=trial_scale, resume=resume,
        )
        side = sres.side
        if lift is not None and side is not None:
            side = side[lift]
        return MinCutResult(
            value=sres.value, side=side, trials=sres.trials,
            report=sres.report, time=sres.time, trace=sres.trace,
            achieved_success_prob=sres.achieved_success_prob,
            ledger=sres.ledger,
        )
    if trials is None:
        trials = num_trials(g.n, max(g.m, 1), success_prob=success_prob,
                            scale=trial_scale)
    slices = plane_slices(g, p)  # shared-graph-plane marker
    result = runtime.run(
        mincut_program, p, seed=seed,
        args=(slices, g.n, trials, seed),
    )
    value, side = result.root_value
    if lift is not None and side is not None:
        side = side[lift]
    return MinCutResult(
        value=value, side=side, trials=trials,
        report=result.report, time=result.time, trace=result.trace,
    )


@dataclass(frozen=True)
class MinCutsResult:
    """All distinct minimum cuts discovered across the trials."""

    value: float
    sides: list[np.ndarray]   # one boolean witness per distinct cut
    trials: int
    report: CountersReport
    time: TimeEstimate
    #: Per-superstep TraceEvents when the backend traced, else None.
    trace: list | None = None
    #: Scheduled runs: achieved success probability / trial ledger, as
    #: in :class:`MinCutResult`; None for unscheduled runs.
    achieved_success_prob: float | None = None
    ledger: Any = None


def minimum_cuts(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    success_prob: float = 0.9,
    trials: int | None = None,
    trial_scale: float = 1.0,
    fuse=None,
    engine: Engine | None = None,
    backend: str | Backend | None = None,
    scheduler: "Any | None" = None,
    resume: bool = False,
) -> MinCutsResult:
    """All global minimum cuts of ``g`` (w.h.p. given enough trials).

    Lemma 4.3: the §4 trial budget preserves and finds *every* minimum cut
    with high probability; this driver collects the distinct witnesses
    discovered across trials (a side and its complement count once).
    ``backend`` selects the runtime and ``scheduler`` routes the trials
    through the fault-tolerant dispatch loop, and ``fuse`` enables
    automatic superstep fusion, as in :func:`minimum_cut`.
    """
    if g.n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    if resume and scheduler is None:
        raise ValueError("resume=True requires a scheduler")
    runtime = resolve_backend(backend, engine=engine, fuse=fuse)
    if scheduler is not None:
        sres = scheduler.run(
            g, p, backend=runtime, seed=seed, success_prob=success_prob,
            trials=trials, trial_scale=trial_scale, resume=resume,
            collect_all=True,
        )
        return MinCutsResult(
            value=sres.value, sides=sres.sides, trials=sres.trials,
            report=sres.report, time=sres.time, trace=sres.trace,
            achieved_success_prob=sres.achieved_success_prob,
            ledger=sres.ledger,
        )
    if trials is None:
        trials = num_trials(g.n, max(g.m, 1), success_prob=success_prob,
                            scale=trial_scale)
    slices = plane_slices(g, p)  # shared-graph-plane marker
    result = runtime.run(
        mincut_program, p, seed=seed,
        args=(slices, g.n, trials, seed),
        kwargs={"collect_all": True},
    )
    value, cuts = result.root_value
    sides = [cuts[k] for k in sorted(cuts)]
    return MinCutsResult(
        value=value, sides=sides, trials=trials,
        report=result.report, time=result.time, trace=result.trace,
    )


def minimum_cut_sequential(
    g: EdgeList,
    *,
    seed: int = 0,
    success_prob: float = 0.9,
    trials: int | None = None,
    trial_scale: float = 1.0,
    mem: MemoryTracker | None = None,
) -> tuple[float, np.ndarray]:
    """Sequential execution of the trial loop, instrumentable with ``mem``.

    This is the engine-free p = 1 code path used by the sequential cache
    studies (Figs 8a, 9: "MC" vs KS vs SW).
    """
    if g.n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    if g.m == 0:
        side = np.zeros(g.n, dtype=bool)
        side[0] = True
        return 0.0, side
    mem = mem or NullTracker()
    if trials is None:
        trials = num_trials(g.n, g.m, success_prob=success_prob, scale=trial_scale)
    streams = RngStreams(seed)
    first_sampler = CumulativeWeightSampler(g.w)
    best = (math.inf, None)
    for ti in range(trials):
        val, side = sequential_trial(
            g.u, g.v, g.w, g.n, streams.aux(ti),
            mem=mem, first_sampler=first_sampler,
        )
        best = _pick_min(best, (val, side))
    return best
