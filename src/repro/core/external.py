"""Semi-external connected components (§3.2's semi-external setting).

Theorem 3.3's cache claim is stated for the *semi-external* regime: the
vertex-indexed arrays fit in fast memory while the edges do not.  This
module realizes that regime literally: the edge array lives in a file on
disk and is only ever streamed in bounded chunks, while the O(n) component
labels stay resident.  One pass unions every streamed edge; subsequent
passes are needed only when the caller asks for the iterated-sampling
variant (subsampling chunks to bound per-pass work).

This is the reproduction's answer to the paper's "m >= pBn^(1+eps) incurs
the optimal O(m/pB) cache misses" claim: the streaming pass touches each
edge once and the resident labels absorb all random accesses.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cache.traced import MemoryTracker, NullTracker
from repro.graph.contract import compress_labels
from repro.graph.io import stream_edge_chunks
from repro.kernels import flatten_parents

__all__ = ["cc_semi_external"]


def cc_semi_external(
    path: str | Path,
    n: int,
    *,
    chunk_edges: int = 1 << 16,
    mem: MemoryTracker | None = None,
) -> tuple[np.ndarray, int]:
    """Connected components of an on-disk edge file; ``(labels, count)``.

    ``path`` is an artifact-format file (see
    :func:`repro.graph.io.write_edgelist`); ``n`` its vertex count.  Only
    O(n + chunk_edges) memory is held at any time.

    ``mem`` records the access behaviour: one streaming scan of the edge
    file plus union-find touches into the resident parent array.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    mem = mem or NullTracker()
    mem.alloc("parent", max(n, 1))
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        hops = 0
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
            hops += 1
        mem.ops(2 * hops + 1)
        return x

    streamed = 0
    for u, v, _w in stream_edge_chunks(path, chunk_edges):
        if u.size and (u.min() < 0 or max(int(u.max()), int(v.max())) >= n):
            raise ValueError("edge endpoint out of range for given n")
        mem.scan("parent", 0, 0)  # no-op marker; chunk arrives from disk
        mem.ops(u.size)
        streamed += int(u.size)
        for a, b in zip(u.tolist(), v.tolist()):
            ra, rb = find(a), find(b)
            if ra == rb:
                continue
            if ra > rb:
                ra, rb = rb, ra
            parent[rb] = ra
            mem.touch("parent", rb)
            mem.ops(1)
    # Flatten so every vertex names its root.
    parent = flatten_parents(parent)
    mem.scan("parent")
    mem.ops(2 * n)
    return compress_labels(parent)
