"""Communication-avoiding sparsification (§3.1, §3.2).

Weighted variant (§3.1, the primitive under Iterated Sampling):

1. every processor computes the total weight ``W_i`` of its edge slice;
   the values are gathered at the root;
2. the root draws, for each of the ``s`` sample slots, the providing
   processor with probability ``W_i / sum_z W_z`` (jointly a multinomial)
   and scatters the per-processor counts;
3. every processor samples that many of its edges, each with probability
   ``w_i(e)/W_i``, and the samples are gathered at the root;
4. the root randomly permutes the gathered sample (the order matters for
   the correctness of Prefix Selection — Lemma 3.1's proof relies on it).

This takes O(1) supersteps, O(s + p) communication volume,
O(s log n + m/p) time and O(s log n + m/(pB)) cache misses (Lemma 3.2).

Unweighted variant (§3.2 refinement, used by connected components): the
root round-trip is skipped — each processor oversamples ``(1+delta) mu_i``
edges locally (Chernoff bound), or contributes *all* its edges when its
expected count is below ``9 ln(n) / delta^2``.  Since component finding does
not need a random order, no permutation is applied, and uniform sampling
costs O(1) per edge.
"""

from __future__ import annotations

import math
import operator
import weakref

import numpy as np

from repro.rng.sampling import CumulativeWeightSampler, multinomial_split

__all__ = ["cached_sampler", "sparsify_weighted", "sparsify_unweighted"]

#: Per-slice sampler cache: ``id(w) -> (weakref(w), sampler)``.  Iterated
#: sampling calls :func:`sparsify_weighted` repeatedly on the *same* weight
#: slice; rebuilding the sampler repeats a full prefix-sum scan each round.
#: Identity is the version key: received payloads are read-only by the BSP
#: contract, and contraction replaces the slice arrays outright, so a cached
#: entry is valid exactly while its weakref still points at the same object
#: (a dead ref also catches ``id`` reuse after the old slice is collected).
_SAMPLER_CACHE: dict[int, tuple] = {}
_SAMPLER_CACHE_MAX = 64


def cached_sampler(w: np.ndarray) -> CumulativeWeightSampler:
    """Memoized :class:`CumulativeWeightSampler` over the array ``w``.

    Shared by weighted sparsification and the 2-out preprocessing (which
    resamples the same incidence-weight array once per replica and
    round); both hit the same identity-keyed cache.
    """
    key = id(w)
    entry = _SAMPLER_CACHE.get(key)
    if entry is not None and entry[0]() is w:
        return entry[1]
    sampler = CumulativeWeightSampler(w)
    if len(_SAMPLER_CACHE) >= _SAMPLER_CACHE_MAX:
        # Drop the oldest entry (insertion order); bounds memory on runs
        # that sparsify many distinct slices.
        _SAMPLER_CACHE.pop(next(iter(_SAMPLER_CACHE)))
    _SAMPLER_CACHE[key] = (weakref.ref(w), sampler)
    return sampler


#: Backward-compatible private alias (pre-2-out callers).
_cached_sampler = cached_sampler


def sparsify_weighted(ctx, comm, u, v, w, s, *, root=0):
    """Generator: weighted edge sample of size ``s``, gathered at ``root``.

    ``u, v, w`` are this processor's slice of the distributed edge array.
    Returns ``(su, sv, sw)`` at the root — a randomly permuted sample where
    each entry is an i.i.d. edge drawn proportionally to weight (Lemma 3.1)
    — and ``None`` elsewhere.
    """
    if s < 0:
        raise ValueError(f"sample size must be non-negative, got {s}")
    m_local = u.size
    w_local = float(w.sum()) if m_local else 0.0
    ctx.charge_scan(m_local, words_per_elem=3)

    # (1) gather slice weights; (2) root schedules the sample slots.
    weights = yield from comm.gather(w_local, root=root)
    if comm.rank == root:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.sum() <= 0:
            raise ValueError("cannot sparsify a graph with zero total weight")
        counts = multinomial_split(ctx.rng, s, weights)
        ctx.charge(ops=s + comm.size)
        counts = np.asarray(counts, dtype=np.int64)
        ones = np.ones(comm.size, dtype=np.int64)
    else:
        counts = ones = None
    my_count = yield from comm.scatterv(counts, ones, root=root)
    my_count = int(my_count[0][0])

    # (3) local weighted sampling: linear preprocessing, log-time draws.
    if my_count > 0:
        if m_local == 0:
            raise AssertionError(
                "root scheduled samples from an empty slice (weight bookkeeping bug)"
            )
        sampler = _cached_sampler(w)
        idx = sampler.sample(ctx.rng, int(my_count))
        part = (u[idx], v[idx], w[idx])
        ctx.charge_random(my_count * max(1.0, math.log2(max(m_local, 2))),
                          working_set=m_local)
    else:
        part = (u[:0], v[:0], w[:0])
    parts = yield from comm.gatherv(*part, root=root)

    # (4) root permutes the sample uniformly at random.
    if comm.rank == root:
        su, sv, sw = parts
        perm = ctx.rng.permutation(su.size)
        ctx.charge(
            ops=su.size * max(1.0, math.log2(max(su.size, 2))),
            misses=ctx.cache.permute(3 * su.size),
        )
        return su[perm], sv[perm], sw[perm]
    return None


def sparsify_unweighted(ctx, comm, u, v, s, *, n, delta=0.5, root=0):
    """Generator: unweighted edge sample of ~``s`` edges, gathered at ``root``.

    Local oversampling variant: no root scheduling round-trip, no final
    permutation, O(1) work per drawn edge.  Processors whose expected count
    ``mu_i = s * m_i / m`` is below the Chernoff threshold contribute their
    whole slice.  Returns ``(su, sv)`` at the root, ``None`` elsewhere.
    """
    if s < 0:
        raise ValueError(f"sample size must be non-negative, got {s}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    m_local = int(u.size)
    # operator.add (not a lambda): reduce ops must pickle for the mp backend.
    m_total = yield from comm.allreduce(m_local, op=operator.add)

    if m_total == 0:
        part = (u[:0], v[:0])
    else:
        mu = s * m_local / m_total
        threshold = 9.0 * math.log(max(n, 2)) / (delta * delta)
        if mu >= threshold:
            k = min(m_local, math.ceil((1.0 + delta) * mu))
            idx = ctx.rng.integers(0, m_local, size=k)
            part = (u[idx], v[idx])
            ctx.charge_random(k, working_set=m_local)
        else:
            part = (u, v)  # include every local edge
            ctx.charge_scan(m_local, words_per_elem=2)
    parts = yield from comm.gatherv(*part, root=root)

    if comm.rank == root:
        su, sv = parts
        ctx.charge_scan(su.size, words_per_elem=2)
        return su, sv
    return None
