"""Connected components via Iterated Sampling (§3.2).

The algorithm is Iterated Sampling *without* Bulk Edge Contraction: the root
maintains a vertex-indexed component array ``C``; each round a sparse edge
sample is gathered at the root (unweighted local-oversampling variant), the
root computes the components ``g`` of the sampled subgraph in the current
label space, broadcasts ``g``, and every processor relabels its edge slice
and drops the loops.  The loop ends when no edge is left; w.h.p. O(1) rounds
suffice, hence O(1) supersteps, O(n^(1+eps)) communication volume and
O(m/p + n^(1+eps)) computation (Theorem 3.3).

Public entry points:

* :func:`connected_components` — the BSP driver,
* :func:`cc_sequential` — the p = 1 execution path, instrumented for the
  cache-miss studies of Figures 4, 8b and the sequential comparison of §5.1.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass

import numpy as np

from repro.bsp.counters import CountersReport
from repro.bsp.engine import Engine
from repro.bsp.machine import TimeEstimate
from repro.cache.traced import MemoryTracker, NullTracker
from repro.core.sparsify import sparsify_unweighted
from repro.graph.contract import components_from_edges
from repro.graph.edgelist import EdgeList
from repro.graph.shm import plane_slices
from repro.kernels import flatten_parents
from repro.runtime.base import Backend, resolve_backend

__all__ = [
    "connected_components",
    "cc_program",
    "cc_kernel",
    "cc_sequential",
    "CCResult",
]

#: Hard cap on sampling rounds; the algorithm needs O(1) w.h.p., so hitting
#: this indicates a bug rather than bad luck.
_MAX_ROUNDS = 60


def _sample_size(k: int, eps: float) -> int:
    """Per-round sample size: ceil(k^(1+eps)), at least a small constant."""
    return max(16, math.ceil(k ** (1.0 + eps)))


def cc_kernel(ctx, comm, u, v, n, *, eps=0.25, delta=0.5, root=0,
              shrink=False):
    """Generator: components of the distributed edge arrays ``(u, v)``.

    The reusable core of §3.2, also invoked by the approximate minimum cut
    (§3.3) on its union-of-subgraphs instance.  Returns ``(labels, count)``
    at ``root`` and ``(None, count)`` elsewhere, where ``labels[x]`` is the
    dense component id of vertex ``x``.

    ``shrink=True`` enables group-shrink: once any processor's slice
    contracts to nothing, the group splits to the still-active ranks
    (``comm.split``, its superstep charged honestly) and the idle ranks
    wait at a single closing broadcast instead of paying a barrier wait
    per remaining round.  Results are bit-identical with shrink on or
    off: an empty slice contributes nothing to the unweighted sampler
    and consumes no randomness (the Chernoff floor skips its draw), so
    dropping it from the group changes no rank's Philox stream and no
    sampled edge — this kernel is the honest boundary of bit-parity
    shrink (contrast the exact min-cut recursion, whose group membership
    *feeds* stream assignment; see ``docs/fusion.md``).
    """
    m_input = int(u.size)
    u = u.copy()
    v = v.copy()
    labels_orig = np.arange(n, dtype=np.int64) if comm.rank == root else None
    k = n  # size of the current (contracted) label space
    orig_comm, orig_root = comm, root
    did_split = False  # group-shrink fires at most once per kernel call

    for _round in range(_MAX_ROUNDS):
        m_total = yield from comm.allreduce(int(u.size), op=operator.add)
        if m_total == 0:
            break
        if shrink and not did_split:
            active = 1 if (u.size > 0 or comm.rank == root) else 0
            flags = yield from comm.allgather(active)
            if 0 in flags:
                sub = yield from comm.split(active, key=comm.rank)
                did_split = True
                if not active:
                    break
                # The root stays active by construction; its local rank in
                # the shrunk group is the number of active ranks before it.
                root = sum(flags[:root])
                comm = sub
        s = min(m_total, _sample_size(k, eps))
        sample = yield from sparsify_unweighted(
            ctx, comm, u, v, s, n=k, delta=delta, root=root
        )
        if comm.rank == root:
            su, sv = sample
            g_map, k_new = components_from_edges(k, su, sv)
            labels_orig = g_map[labels_orig]
            # Root work: union-find style component pass over the sample
            # plus the relabeling of C (n words, streaming if g fits cache).
            ctx.charge_scan(su.size, words_per_elem=2)
            ctx.charge_random(su.size, working_set=k)
            ctx.charge_scan(n)
            payload = (g_map, k_new)
        else:
            payload = None
        g_map, k_new = yield from comm.bcast(payload, root=root)
        # Local relabeling: one streaming pass over the slice with random
        # lookups into g (O(m/(pB)) misses when g fits in cache, §3.2).
        u = g_map[u]
        v = g_map[v]
        keep = u != v
        u = u[keep]
        v = v[keep]
        ctx.charge_scan(m_input, words_per_elem=2)
        ctx.charge_random(m_input, working_set=k)
        k = k_new
    else:
        raise RuntimeError(
            f"connected components did not converge in {_MAX_ROUNDS} rounds; "
            "this indicates a sampling bug, not bad luck"
        )

    if did_split:
        # Re-join once on the original communicator: released ranks have
        # been waiting here since the split, and receive the final count.
        payload = k if orig_comm.rank == orig_root else None
        k = yield from orig_comm.bcast(payload, root=orig_root)

    if comm.rank == root:
        return labels_orig, k
    return None, k


def cc_program(ctx, slices, n, *, eps=0.25, delta=0.5, shrink=False):
    """SPMD program: each processor contributes ``slices[ctx.rank]``."""
    g = slices[ctx.rank]
    result = yield from cc_kernel(
        ctx, ctx.comm, g.u, g.v, n, eps=eps, delta=delta, shrink=shrink
    )
    return result


def cc_hybrid_program(ctx, slices, n, *, eps=0.25, delta=0.5, rounds=2):
    """Hybrid CC (§3.2 remark): sparsification as a *preconditioner*.

    The paper notes that "by replacing the sequential connected components
    computation at the root with a parallel algorithm, Sparsification could
    be used to speed up other connected components algorithms".  This
    variant demonstrates it: a few sparsified rounds collapse the label
    space in O(1) supersteps, then the remaining (much smaller) instance is
    finished by the PBGL-style hooking + pointer-jumping algorithm running
    on all processors — whose O(log n') rounds now operate on n' << n
    labels.

    Returns ``(labels, count)`` at rank 0.
    """
    import operator

    from repro.baselines.cc_bsp import pbgl_cc_program
    from repro.core.sparsify import sparsify_unweighted

    comm = ctx.comm
    g = slices[ctx.rank]
    u = g.u.copy()
    v = g.v.copy()
    root = 0
    labels_orig = np.arange(n, dtype=np.int64) if ctx.rank == root else None
    k = n

    for _round in range(rounds):
        m_total = yield from comm.allreduce(int(u.size), op=operator.add)
        if m_total == 0:
            break
        s = min(m_total, _sample_size(k, eps))
        sample = yield from sparsify_unweighted(
            ctx, comm, u, v, s, n=k, delta=delta, root=root
        )
        if ctx.rank == root:
            su, sv = sample
            g_map, k_new = components_from_edges(k, su, sv)
            labels_orig = g_map[labels_orig]
            ctx.charge_scan(su.size, words_per_elem=2)
            ctx.charge_random(su.size, working_set=k)
            payload = (g_map, k_new)
        else:
            payload = None
        g_map, k_new = yield from comm.bcast(payload, root=root)
        u = g_map[u]
        v = g_map[v]
        keep = u != v
        u, v = u[keep], v[keep]
        ctx.charge_scan(g.m, words_per_elem=2)
        k = k_new

    # Finish the contracted instance with the parallel hooking algorithm.
    rest = EdgeList(k, u, v, canonical=False, validate=False) if u.size else \
        EdgeList.empty(k)
    rest_slices = yield from _redistribute_slices(ctx, comm, rest)
    sub_labels, count = yield from pbgl_cc_program(ctx, rest_slices, k)
    if ctx.rank == root:
        return sub_labels[labels_orig], count
    return None, count


def _redistribute_slices(ctx, comm, local):
    """Generator: rebalance per-processor edge lists into even slices.

    The hooking algorithm wants each processor to hold ~m/p edges; after
    sparsified rounds the leftovers can be skewed, so exchange them once.
    Returns a list indexable by rank (each processor's own slice filled in).
    """
    p = comm.size
    parts = local.slices(p)
    parcels = [(s.u, s.v) for s in parts]
    received = yield from comm.alltoallv(parcels)
    u, v = received
    mine = EdgeList(local.n, u, v, canonical=False, validate=False)
    ctx.charge_scan(u.size, words_per_elem=2)
    # pbgl_cc_program indexes slices[ctx.rank]; a lazy view suffices.
    return _SliceView(mine, ctx.rank)


class _SliceView:
    """List-like view exposing only this processor's slice."""

    def __init__(self, mine, rank):
        self._mine = mine
        self._rank = rank

    def __getitem__(self, idx):
        if idx != self._rank:
            raise IndexError("only the local slice is materialized")
        return self._mine


@dataclass(frozen=True)
class CCResult:
    """Result of a connected-components run."""

    labels: np.ndarray       # dense component id per vertex
    n_components: int
    report: CountersReport   # BSP cost counters (max over processors)
    time: TimeEstimate       # machine-model predicted times
    #: Per-superstep TraceEvents when the backend traced, else None.
    trace: list | None = None

    def __post_init__(self):
        assert self.labels.max(initial=-1) < self.n_components


def connected_components(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    eps: float = 0.25,
    delta: float = 0.5,
    hybrid: bool = False,
    shrink: bool = False,
    fuse=None,
    engine: Engine | None = None,
    backend: str | Backend | None = None,
) -> CCResult:
    """Find the connected components of ``g`` on ``p`` virtual processors.

    Parameters mirror §3.2: ``eps`` controls the per-round sample size
    ``n^(1+eps)``; ``delta`` the oversampling slack of the unweighted
    sampler.  ``hybrid=True`` uses sparsification as a preconditioner for
    the parallel hooking algorithm instead of iterating to convergence
    (the §3.2 remark).  Deterministic given ``seed``.

    ``shrink=True`` lets the sampling loop release processors whose edge
    slice has contracted away (see :func:`cc_kernel`); results are
    bit-identical either way.  ``fuse`` (bool or
    :class:`~repro.bsp.fusion.FusionConfig`) enables automatic superstep
    fusion on a freshly constructed backend.

    ``backend`` selects the runtime: ``"sim"`` (default, the BSP
    simulator on ``p`` virtual processors), ``"mp"`` (``p`` real OS
    processes), or a ready :class:`~repro.runtime.base.Backend`.
    Algorithmic results are backend-independent; only ``time`` differs
    (analytic vs measured).
    """
    if hybrid and shrink:
        raise ValueError(
            "shrink= applies to the iterated-sampling kernel only; the "
            "hybrid finish redistributes edges across the full group"
        )
    runtime = resolve_backend(backend, engine=engine, fuse=fuse)
    # Lazy marker: the simulator resolves it to g.slices(p) locally; a
    # plane-enabled mp backend ships an O(1) handle instead of p copies.
    slices = plane_slices(g, p)
    program = cc_hybrid_program if hybrid else cc_program
    kwargs = {"eps": eps, "delta": delta}
    if not hybrid:
        kwargs["shrink"] = shrink
    result = runtime.run(
        program, p, seed=seed, args=(slices, g.n), kwargs=kwargs,
    )
    labels, count = result.root_value
    return CCResult(
        labels=labels, n_components=count,
        report=result.report, time=result.time, trace=result.trace,
    )


def _traced_union_find(n, u, v, mem):
    """Union-find whose exact parent-array access pattern is replayed into
    the tracker (the root concentration that makes repeated finds cache-hit
    is precisely what the LRU study must see)."""
    parent = np.arange(n, dtype=np.int64)

    def find(x):
        path = []
        while parent[x] != x:
            path.append(x)
            x = parent[x]
        mem.touch("parent", np.array(path + [x], dtype=np.int64))
        mem.ops(2 * len(path) + 1)
        for y in path:  # full compression, as scipy's traversal achieves
            parent[y] = x
        return x

    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
            mem.touch("parent", max(ra, rb))
            mem.ops(1)
    parent = flatten_parents(parent)
    mem.scan("parent")
    mem.ops(2 * n)
    uniq, labels = np.unique(parent, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def cc_sequential(
    g: EdgeList,
    *,
    seed: int = 0,
    eps: float = 0.25,
    mem: MemoryTracker | None = None,
) -> tuple[np.ndarray, int]:
    """Sequential execution of the iterated-sampling CC algorithm.

    This is the p = 1 code path with explicit memory instrumentation, used
    by the sequential cache studies (the paper's Figure 4: CC vs a BFS
    traversal).  With a tracing tracker (``mem.is_tracing``) the exact
    access sequence is replayed: union-find over the *sampled* edges (only
    n^(1+eps) of them — the random-access pass the sampling bounds), then
    one streaming relabel pass whose map lookups land in the collapsed,
    cache-resident label space.
    """
    mem = mem or NullTracker()
    rng = np.random.default_rng(seed)
    n = g.n
    mem.alloc("edges", g.m, words_per_elem=2)
    mem.alloc("labels", n)
    mem.alloc("parent", n)
    mem.alloc("gmap", n)
    tracing = mem.is_tracing

    u = g.u.copy()
    v = g.v.copy()
    labels = np.arange(n, dtype=np.int64)
    k = n
    for _round in range(_MAX_ROUNDS):
        m = u.size
        if m == 0:
            break
        s = _sample_size(k, eps)
        if m > s:
            idx = np.sort(rng.integers(0, m, size=s))
            su, sv = u[idx], v[idx]
            mem.touch("edges", idx)
            mem.ops(s)
        else:
            su, sv = u, v
            mem.scan("edges", 0, m)
            mem.ops(m)
        if tracing:
            g_map, k_new = _traced_union_find(k, su, sv, mem)
        else:
            g_map, k_new = components_from_edges(k, su, sv)
            mem.touch("parent", su % max(k, 1))
            mem.touch("parent", sv % max(k, 1))
            mem.ops(3 * su.size)
        labels = g_map[labels]
        mem.scan("labels")
        mem.ops(n)
        # Relabel + loop removal: one streaming pass over the edge array
        # with per-edge lookups into g_map (size k — after the first round
        # the label space has collapsed and the map stays cache-resident).
        if tracing and m:
            seq = np.empty(3 * m, dtype=np.int64)
            seq[0::3] = mem.address("edges", np.arange(m))
            seq[1::3] = mem.address("gmap", u)
            seq[2::3] = mem.address("gmap", v)
            mem.access_sequence(seq)
        else:
            mem.scan("edges", 0, m)
            mem.touch("gmap", u % max(k, 1))
            mem.touch("gmap", v % max(k, 1))
        mem.ops(4 * m)
        u = g_map[u]
        v = g_map[v]
        keep = u != v
        u, v = u[keep], v[keep]
        k = k_new
    else:
        raise RuntimeError("sequential CC did not converge; sampling bug")
    return labels, k
