"""Approximate minimum cut via connectivity of random subgraphs (§3.3).

The connectivity of a random subgraph tracks the minimum cut value: keeping
each edge ``e`` with probability ``1 - (1 - 2^-i)^w(e)`` (i.e. keeping the
edge iff at least one of its ``w(e)`` unit copies survives a coin with
success 2^-i), the sampled subgraph first becomes disconnected around
``2^i ~ mincut``.  The algorithm runs ``ceil(ln W)`` sparsity levels with
``Theta(log n)`` independent trials each and outputs ``2^j`` for the
smallest level ``j`` with a disconnected trial — an O(log n)-approximation
w.h.p. (Theorem 3.4).

Two execution schedules, as in the paper:

* ``pipelined=True``: all levels and trials are merged into one big labeled
  union graph and answered by a *single* connected-components computation —
  O(1) supersteps.
* ``pipelined=False`` (default, the variant the authors found faster in
  practice): levels run one after the other, stopping at the first
  disconnected one — O(log mu) supersteps and a log-factor less space.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass

import numpy as np

from repro.bsp.counters import CountersReport
from repro.bsp.engine import Engine
from repro.bsp.machine import TimeEstimate
from repro.core.components import cc_kernel
from repro.graph.edgelist import EdgeList
from repro.graph.shm import plane_slices
from repro.runtime.base import Backend, resolve_backend

__all__ = ["approx_minimum_cut", "appmc_program", "ApproxMinCutResult"]


def _keep_probability(w: np.ndarray, level: int) -> np.ndarray:
    """P[edge of weight w survives level i] = 1 - (1 - 2^-i)^w, stably."""
    # log1p(-2^-i) is exact for large i; exponentiate in log space.
    return -np.expm1(w * math.log1p(-(2.0 ** (-level))))


def _sample_level_union(ctx, u, v, w, n, levels_trials):
    """Sample one subgraph per (level, trial) pair, with offset vertex ids.

    Returns concatenated local edge arrays of the union graph whose vertex
    space is ``n * len(levels_trials)``; block ``b`` holds the subgraph of
    ``levels_trials[b]``.
    """
    us, vs = [], []
    for block, (level, _trial) in enumerate(levels_trials):
        keep = ctx.rng.random(u.size) < _keep_probability(w, level)
        off = np.int64(block) * n
        us.append(u[keep] + off)
        vs.append(v[keep] + off)
        ctx.charge_scan(u.size, words_per_elem=3)
    if not us:
        return u[:0], v[:0]
    return np.concatenate(us), np.concatenate(vs)


def _blocks_disconnected(labels, n, n_blocks):
    """Per-block connectivity of the union graph's component labels."""
    out = np.zeros(n_blocks, dtype=bool)
    for b in range(n_blocks):
        block = labels[b * n:(b + 1) * n]
        out[b] = np.unique(block).size > 1
    return out


def appmc_program(
    ctx, slices, n, *,
    trials_per_level: int | None = None,
    pipelined: bool = False,
    eps: float = 0.25,
    delta: float = 0.5,
    shrink: bool = False,
):
    """SPMD program for the approximate minimum cut.

    Returns ``(estimate, witness_value, witness_side)`` at rank 0 (witness
    entries are ``None`` when no disconnection was found within the level
    range); ``(estimate, None, None)`` elsewhere.  ``shrink=True`` is
    forwarded to every :func:`~repro.core.components.cc_kernel` call (each
    shrunk group rejoins the full communicator before the kernel returns,
    so the surrounding protocol is unchanged).
    """
    comm = ctx.comm
    root = 0
    g = slices[ctx.rank]
    u, v, w = g.u, g.v, g.w

    # (1) Total weight -> number of levels; trial count Theta(log n).
    total_w = yield from comm.allreduce(float(w.sum()), op=operator.add)
    if total_w <= 0:
        raise ValueError("approximate minimum cut needs positive edge weight")
    n_levels = max(1, math.ceil(math.log(total_w)))
    trials = trials_per_level or max(2, math.ceil(math.log2(max(n, 2))))

    # (2) Connectivity precheck: a disconnected input has cut value 0.
    labels, count = yield from cc_kernel(
        ctx, comm, u, v, n, eps=eps, delta=delta, root=root, shrink=shrink
    )
    count = yield from comm.bcast(count if ctx.rank == root else None, root=root)
    if count > 1:
        if ctx.rank == root:
            side = labels == labels[0]
            return 0.0, 0.0, side
        return 0.0, None, None

    def witness_from(labels_union, block):
        """Smallest component of a disconnected trial, as an original-vertex side."""
        block_labels = labels_union[block * n:(block + 1) * n]
        vals, counts = np.unique(block_labels, return_counts=True)
        smallest = vals[np.argmin(counts)]
        return block_labels == smallest

    def witnesses_from(labels_union, blocks):
        """Candidate sides from every disconnected trial (dedup by key)."""
        seen = {}
        for b in blocks:
            side = witness_from(labels_union, b)
            if 0 < side.sum() < n:
                seen[np.packbits(side).tobytes()] = side
        return list(seen.values())

    if pipelined:
        # One union over all (level, trial) pairs; a single CC call.
        pairs = [(i, t) for i in range(1, n_levels + 1) for t in range(trials)]
        uu, vv = _sample_level_union(ctx, u, v, w, n, pairs)
        labels_union, _ = yield from cc_kernel(
            ctx, comm, uu, vv, n * len(pairs), eps=eps, delta=delta,
            root=root, shrink=shrink,
        )
        if ctx.rank == root:
            disc = _blocks_disconnected(labels_union, n, len(pairs))
            estimate = None
            candidates = []
            for b, (level, _t) in enumerate(pairs):
                if disc[b]:
                    if estimate is None:
                        estimate = float(2 ** level)
                        first_level = level
                    if pairs[b][0] == first_level:
                        candidates.append(b)
            if candidates:
                candidates = witnesses_from(labels_union, candidates)
            payload = estimate
        else:
            candidates = []
            payload = None
        estimate = yield from comm.bcast(payload, root=root)
    else:
        # Staged: levels in order, stop at the first disconnected one.
        estimate = None
        candidates = []
        for level in range(1, n_levels + 1):
            pairs = [(level, t) for t in range(trials)]
            uu, vv = _sample_level_union(ctx, u, v, w, n, pairs)
            labels_union, _ = yield from cc_kernel(
                ctx, comm, uu, vv, n * trials, eps=eps, delta=delta,
                root=root, shrink=shrink,
            )
            if ctx.rank == root:
                disc = _blocks_disconnected(labels_union, n, trials)
                hits = np.flatnonzero(disc)
                if hits.size:
                    candidates = witnesses_from(labels_union, hits.tolist())
                payload = float(2 ** level) if hits.size else None
            else:
                payload = None
            found = yield from comm.bcast(payload, root=root)
            if found is not None:
                estimate = found
                break
        if estimate is None:
            # Never disconnected: the cut is at least ~W; report the top level.
            estimate = float(2 ** n_levels)

    # (3) Evaluate every candidate witness's true value (one pass, one
    #     reduce) and keep the cheapest — every disconnected trial at the
    #     stopping level proposes a cut; the best is the useful upper bound.
    sides = yield from comm.bcast(candidates if ctx.rank == root else None,
                                  root=root)
    if sides:
        crossing = np.array(
            [float(w[s[u] != s[v]].sum()) for s in sides]
        )
        ctx.charge_scan(len(sides) * u.size, words_per_elem=3)
        totals = yield from comm.reduce(crossing, op=operator.add, root=root)
    else:
        totals = None

    if ctx.rank == root:
        if totals is not None and len(sides):
            best = int(np.argmin(totals))
            return estimate, float(totals[best]), sides[best]
        return estimate, None, None
    return estimate, None, None


@dataclass(frozen=True)
class ApproxMinCutResult:
    """Result of an approximate minimum-cut run."""

    estimate: float            # the 2^j connectivity estimate
    witness_value: float | None  # true cut value of the witness partition
    witness_side: np.ndarray | None
    report: CountersReport
    time: TimeEstimate
    #: Per-superstep TraceEvents when the backend traced, else None.
    trace: list | None = None


def approx_minimum_cut(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    trials_per_level: int | None = None,
    pipelined: bool = False,
    eps: float = 0.25,
    delta: float = 0.5,
    shrink: bool = False,
    fuse=None,
    engine: Engine | None = None,
    backend: str | Backend | None = None,
) -> ApproxMinCutResult:
    """O(log n)-approximate global minimum cut on ``p`` virtual processors.

    Returns the ``2^j`` estimate plus a witness cut (the smallest component
    of the first disconnected trial) and its exact value on ``g``.
    ``backend`` selects the runtime (``"sim"``/``"mp"``/instance); results
    are backend-independent for a fixed ``seed``.  ``shrink=True`` enables
    group-shrink inside the CC subcalls and ``fuse`` automatic superstep
    fusion on a freshly constructed backend — both leave results
    bit-identical.
    """
    if g.n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    runtime = resolve_backend(backend, engine=engine, fuse=fuse)
    slices = plane_slices(g, p)  # shared-graph-plane marker
    result = runtime.run(
        appmc_program, p, seed=seed,
        args=(slices, g.n),
        kwargs={
            "trials_per_level": trials_per_level,
            "pipelined": pipelined,
            "eps": eps,
            "delta": delta,
            "shrink": shrink,
        },
    )
    estimate, witness_value, side = result.root_value
    return ApproxMinCutResult(
        estimate=estimate, witness_value=witness_value, witness_side=side,
        report=result.report, time=result.time, trace=result.trace,
    )
