"""Random 2-out contraction preprocessing for the exact minimum cut.

Ghaffari–Nowicki–Thorup (GNT, "Faster algorithms for edge connectivity via
random 2-out contractions"; PAPERS.md): if every vertex of a graph with
minimum degree ``delta`` samples two incident edges and the components of
the sampled subgraph are contracted, the graph shrinks to ``O(n/delta)``
vertices while any fixed **non-singleton** minimum cut survives with
constant probability.  Singleton cuts (one vertex against the rest) need
not survive — but they are checked exactly, for free, as the minimum
weighted degree (:func:`singleton_cut`).  Weighted graphs sample
proportionally to edge weight; the survival argument carries over because
the weight crossing the cut is at most the minimum weighted degree.

One refinement over the naive "contract every sampled component": on
graphs whose only sparse cuts are singletons (e.g. uniform Erdős–Rényi),
the 2-out subgraph is connected w.h.p. and full contraction collapses the
graph to a single vertex — wasting the replica entirely.  We instead
union a random prefix of the sampled edges that stops before the
component count drops below two (the existing deterministic
:func:`~repro.kernels.prefix_select_labels` kernel with target 2).  When
the sample has ``c >= 2`` components this produces *exactly* GNT's
contraction — no prefix of the sample can merge below ``c`` — and when
the sample is connected it leaves two blobs instead of one.  The
contracted edge set is always a subset of the 2-out sample, so every cut
GNT preserve is still preserved, and no replica ever contracts below two
vertices, so every replica keeps a (tiny) usable trial budget.

The preservation bound only carries weight when the minimum cut is
non-singleton, in which case its weight is at most the minimum weighted
degree and GNT's argument applies; when the true minimum cut is a
singleton, :func:`singleton_cut` finds it exactly and the replicas'
trials are merely a (cheap) upper-bound search.

The payoff is the §4 trial budget: Karger–Stein needs
``Theta((n^2/m) log^2 n)`` trials on the input but only the (much smaller)
Lemma 2.1 x 2.2 budget of the contracted graph.  Because one
preprocessing preserves the cut only with constant probability
``p0`` (:data:`PRESERVATION_PROB`), we run ``R`` independent contraction
*replicas* (:func:`replica_count`, ``R = O(log 1/eps)``), give each a
trial budget targeting conditional success :data:`REPLICA_TRIAL_PROB`,
and take the best cut over the singleton check and all replicas.  The
overall failure probability is then at most
``prod_r (1 - p0 * x_r) <= (1 - p0 * x)^R <= 1 - success_prob``.

When the planned 2-out trial total is not actually smaller than the
default budget — sparse or tiny graphs, or a minimum degree under
:data:`MIN_DEGREE_GUARD` where GNT's shrinkage argument gives nothing —
the variant *degrades*: it dispatches the unmodified default pipeline, so
``variant="2out"`` is never worse than the default by more than the
(cheap, O(1)-superstep) preprocessing probe.

Determinism: the preprocessing runs as replicated SPMD compute after one
``allgatherv`` — the RNG is keyed by ``(seed, replica, round)`` through
dedicated Philox stream ids (:data:`_STREAM_BASE`, disjoint from every
rank and per-trial stream), and each round's 2n-draw batch assigns slots
``2x, 2x+1`` to vertex ``x`` — so the contracted graphs are bit-identical
for every processor count and backend, exactly like the trial streams.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.bsp.counters import CountersReport
from repro.bsp.machine import TimeEstimate
from repro.cache.traced import AnalyticTracker, MemoryTracker, NullTracker
from repro.core.sparsify import cached_sampler
from repro.core.trials import achieved_success_probability, num_trials
from repro.graph.edgelist import EdgeList
from repro.graph.shm import plane_slices
from repro.kernels import bulk_contract_edges, prefix_select_labels, \
    two_out_sample, vertex_incidence
from repro.rng.streams import RngStreams, philox_stream
from repro.runtime.base import Backend, resolve_backend

__all__ = [
    "DENSE_TRIAL_THRESHOLD",
    "MIN_DEGREE_GUARD",
    "PRESERVATION_PROB",
    "REPLICA_TRIAL_PROB",
    "TwoOutPlan",
    "TwoOutSummary",
    "plan_two_out",
    "replica_count",
    "singleton_cut",
    "two_out_contract",
    "two_out_minimum_cut",
    "two_out_program",
]

#: GNT's per-preprocessing cut-preservation probability Omega(1), taken at
#: a deliberately conservative constant (their analysis gives >= 1/2 for
#: one round on simple graphs; empirical rates sit far above this).
PRESERVATION_PROB = 0.25

#: Conditional success probability targeted by each replica's trial
#: budget.  The replica count solves the product bound for these two
#: constants; raising either shrinks budgets but needs more replicas.
REPLICA_TRIAL_PROB = 0.75

#: GNT's minimum-degree requirement: below this the O(n/delta) shrinkage
#: buys nothing (and degree-0 vertices mean a trivial zero cut), so a
#: contraction round refuses to run.
MIN_DEGREE_GUARD = 3

#: Contraction rounds stop once this few vertices remain: trials on
#: graphs this small are already nearly free, so another round would
#: spend preservation probability without buying budget.
TARGET_FLOOR = 16

#: Default number of contraction rounds ("a constant number of rounds").
DEFAULT_ROUNDS = 2

#: Contracted replicas at or under this many vertices dispatch their
#: trials through the dense bulk-contraction path (``dense=True`` on
#: :func:`~repro.sched.programs.mincut_trials_program`): the n' x n'
#: matrix is a few KB, densified once per wave, and skipping the sparse
#: eager step saves its per-trial sampling.  Replicas land at
#: ~:data:`TARGET_FLOOR` vertices, far under this.
DENSE_TRIAL_THRESHOLD = 64

#: Philox stream ids for preprocessing draws:
#: ``_STREAM_BASE + replica * _ROUND_STRIDE + round``.  Rank streams live
#: below 2**20 and per-trial aux streams at ``2**20 + trial_id``
#: (:class:`~repro.rng.streams.RngStreams`), so ids from ``2**21`` up are
#: disjoint from both for any realistic trial budget.
_STREAM_BASE = 1 << 21
_ROUND_STRIDE = 64

#: Seed salt for the per-replica trial dispatches, so replica trial
#: streams never coincide with the preprocessing's or each other's.
_REPLICA_SEED_SALT = 0x20072007

#: Per-graph incidence cache: ``id(u) -> (weakref(u), k, arrays)``.  The
#: R replicas all resample the *same* round-0 edge arrays, so the
#: incidence build (argsort) and the weight gather amortize across them;
#: identity-keying with a weakref guard mirrors the sampler cache in
#: :mod:`repro.core.sparsify`.
_INCIDENCE_CACHE: dict[int, tuple] = {}
_INCIDENCE_CACHE_MAX = 8


def _cached_incidence(k: int, u, v, w):
    key = id(u)
    entry = _INCIDENCE_CACHE.get(key)
    if entry is not None and entry[0]() is u and entry[1] == k:
        return entry[2]
    edge_idx, starts = vertex_incidence(k, u, v)
    w_inc = np.asarray(w, dtype=np.float64)[edge_idx]
    if len(_INCIDENCE_CACHE) >= _INCIDENCE_CACHE_MAX:
        _INCIDENCE_CACHE.pop(next(iter(_INCIDENCE_CACHE)))
    _INCIDENCE_CACHE[key] = (weakref.ref(u), k, (edge_idx, starts, w_inc))
    return edge_idx, starts, w_inc


def replica_count(success_prob: float) -> int:
    """Independent contraction replicas for overall ``success_prob``.

    Solves ``(1 - p0 * x)^R <= 1 - success_prob`` with
    ``p0 =`` :data:`PRESERVATION_PROB` and ``x =``
    :data:`REPLICA_TRIAL_PROB`: ``R = O(log 1/eps)`` — the paper-style
    boosting that turns a constant-probability preprocessing into the
    requested guarantee.
    """
    if not 0 < success_prob < 1:
        raise ValueError(
            f"success_prob must be strictly between 0 and 1, "
            f"got {success_prob!r}")
    per = -math.log1p(-PRESERVATION_PROB * REPLICA_TRIAL_PROB)
    return max(1, math.ceil(math.log(1.0 / (1.0 - success_prob)) / per))


def singleton_cut(g: EdgeList) -> tuple[float, np.ndarray]:
    """The best single-vertex cut, computed exactly.

    Returns ``(value, side)`` where ``value`` is the minimum weighted
    degree and ``side`` isolates its (lowest-index) argmin vertex.  2-out
    contraction only guarantees survival of non-singleton cuts; this
    exact check covers the singleton ones, as GNT require.
    """
    if g.n < 2:
        raise ValueError("singleton cut needs at least 2 vertices")
    deg = g.weighted_degrees()
    pivot = int(np.argmin(deg))
    side = np.zeros(g.n, dtype=bool)
    side[pivot] = True
    return float(deg[pivot]), side


def two_out_contract(
    u, v, w, n: int, seed: int, replica: int,
    *,
    rounds: int = DEFAULT_ROUNDS,
    mem: MemoryTracker | None = None,
):
    """One replica's 2-out contraction of the edge arrays.

    Runs up to ``rounds`` rounds; each samples two incident edges per
    vertex (:func:`~repro.kernels.two_out_sample`), contracts the sampled
    components through a random-prefix union clamped at two vertices
    (:func:`~repro.kernels.prefix_select_labels` — see the module
    docstring for why the clamp is sound) and rebuilds the edge
    arrays through the packed-key kernel.  A round refuses to run
    when the minimum degree falls under :data:`MIN_DEGREE_GUARD` or only
    :data:`TARGET_FLOOR` vertices remain.  Returns
    ``(u, v, w, labels, k)``; ``labels`` maps the original ``n`` vertices
    onto the ``k`` contracted ones.

    Deterministic compute keyed by ``(seed, replica, round)`` only —
    callers at every rank produce byte-identical results.
    """
    if not 0 <= rounds < _ROUND_STRIDE:
        raise ValueError(f"rounds must be in [0, {_ROUND_STRIDE}), got {rounds}")
    mem = mem or NullTracker()
    labels_total = np.arange(n, dtype=np.int64)
    k = n
    for rnd in range(rounds):
        m = int(u.size)
        if k <= TARGET_FLOOR or m == 0:
            break
        deg = np.bincount(np.concatenate([u, v]), minlength=k)
        mem.scan("edges", 0, m)
        mem.ops(2 * m + k)
        delta = int(deg.min())
        if delta < MIN_DEGREE_GUARD:
            break
        edge_idx, starts, w_inc = _cached_incidence(k, u, v, w)
        rng = philox_stream(seed, _STREAM_BASE + replica * _ROUND_STRIDE + rnd)
        e1, e2 = two_out_sample(
            k, u, v, w, rng,
            incidence=(edge_idx, starts), sampler=cached_sampler(w_inc),
        )
        chosen = np.concatenate([e1, e2])
        chosen = chosen[chosen >= 0]
        chosen = chosen[rng.permutation(chosen.size)]
        mem.touch("edges", chosen)
        mem.ops(2.0 * k * max(1.0, math.log2(max(m, 2))))
        labels, k_new = prefix_select_labels(k, u[chosen], v[chosen], 2)
        mem.ops(2 * chosen.size + k)
        if k_new >= k:
            break  # sampled subgraph merged nothing: stop, don't loop
        u, v, w = bulk_contract_edges(u, v, w, labels, k_new)
        mem.scan("edges", 0, m)
        mem.ops(m * max(1.0, math.log2(max(m, 2))))
        labels_total = labels[labels_total]
        mem.scan("labels")
        mem.ops(n)
        k = k_new
    return u, v, w, labels_total, k


def two_out_program(ctx, slices, n, seed, replicas, rounds):
    """SPMD program: replicate the edge array, compute all replicas.

    One ``allgatherv`` is the only communication; the ``replicas``
    contractions are replicated deterministic compute (RNG keyed by
    ``(seed, replica, round)``, never by rank), so every rank returns the
    same list of ``(u, v, w, labels, k)`` tuples bit for bit — invariant
    to the processor count and the execution backend.
    """
    comm = ctx.comm
    g = slices[ctx.rank]
    parts = yield from comm.allgatherv(g.u, g.v, g.w)
    fu, fv, fw = parts
    ctx.charge_scan(fu.size, words_per_elem=3)
    tracker = AnalyticTracker(ctx.cache)
    tracker.alloc("edges", fu.size, words_per_elem=3)
    tracker.alloc("labels", n)
    out = []
    for r in range(replicas):
        out.append(two_out_contract(
            fu, fv, fw, n, seed, r, rounds=rounds, mem=tracker))
    ctx.charge(ops=tracker.op_count, misses=tracker.miss_count)
    return out


@dataclass(frozen=True)
class TwoOutPlan:
    """Preprocessing outcome plus the recomputed trial budgets."""

    replicas: int
    rounds: int
    #: Per replica: the contracted ``(u, v, w, labels, k)``.
    contractions: list
    contracted_n: tuple[int, ...]
    contracted_m: tuple[int, ...]
    #: Lemma 2.1 x 2.2 budget of each contracted graph at
    #: :data:`REPLICA_TRIAL_PROB` (0 for replicas contracted below 2
    #: vertices — nothing left to cut).
    trials_per_replica: tuple[int, ...]
    total_trials: int
    #: The default variant's budget on the *input* graph, same scale.
    default_trials: int
    #: ``default_trials / total_trials`` — the planned dispatched-trial
    #: reduction (1.0 when degraded).
    reduction: float
    #: True when 2-out buys nothing and the default pipeline should run.
    degraded: bool
    singleton_value: float
    report: CountersReport
    time: TimeEstimate
    trace: list | None


def plan_two_out(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    success_prob: float = 0.9,
    trial_scale: float = 1.0,
    rounds: int = DEFAULT_ROUNDS,
    replicas: int | None = None,
    backend: "str | Backend | None" = None,
) -> TwoOutPlan:
    """Run the preprocessing dispatch and price both trial pipelines.

    This is the analytic half of ``variant="2out"`` — everything except
    dispatching the Karger–Stein trials — shared by the entry point, the
    benchmark and the perf gate (which gates these numbers exactly).
    """
    if g.n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    runtime = resolve_backend(backend)
    R = replica_count(success_prob) if replicas is None else int(replicas)
    if R < 1:
        raise ValueError(f"need at least one replica, got {R}")
    sing_val, _ = singleton_cut(g)
    rr = runtime.run(
        two_out_program, p, seed=seed,
        args=(plane_slices(g, p), g.n, seed, R, rounds),
    )
    contractions = rr.root_value
    budgets = tuple(
        0 if k < 2 else num_trials(k, max(int(cu.size), 1),
                                   success_prob=REPLICA_TRIAL_PROB,
                                   scale=trial_scale)
        for (cu, _cv, _cw, _labels, k) in contractions
    )
    total = int(sum(budgets))
    default_trials = num_trials(g.n, max(g.m, 1), success_prob=success_prob,
                                scale=trial_scale)
    degraded = total == 0 or total >= default_trials
    return TwoOutPlan(
        replicas=R, rounds=rounds, contractions=contractions,
        contracted_n=tuple(int(k) for (*_a, k) in contractions),
        contracted_m=tuple(int(cu.size) for (cu, *_a) in contractions),
        trials_per_replica=budgets, total_trials=total,
        default_trials=default_trials,
        reduction=1.0 if degraded else default_trials / total,
        degraded=degraded, singleton_value=sing_val,
        report=rr.report, time=rr.time, trace=rr.trace,
    )


@dataclass(frozen=True)
class TwoOutSummary:
    """What the 2-out pipeline did, attached to the MinCutResult."""

    replicas: int
    rounds: int
    contracted_n: tuple[int, ...]
    contracted_m: tuple[int, ...]
    trials_per_replica: tuple[int, ...]
    total_trials: int
    default_trials: int
    reduction: float
    degraded: bool
    singleton_value: float
    #: Trials completed per replica (None on the degraded path).
    replica_completed: tuple[int, ...] | None = None


def _summary_from_plan(plan: TwoOutPlan, completed=None) -> TwoOutSummary:
    return TwoOutSummary(
        replicas=plan.replicas, rounds=plan.rounds,
        contracted_n=plan.contracted_n, contracted_m=plan.contracted_m,
        trials_per_replica=plan.trials_per_replica,
        total_trials=plan.total_trials, default_trials=plan.default_trials,
        reduction=plan.reduction, degraded=plan.degraded,
        singleton_value=plan.singleton_value,
        replica_completed=completed,
    )


def _combine_times(*times) -> TimeEstimate:
    return TimeEstimate(app_s=sum(t.app_s for t in times),
                        mpi_s=sum(t.mpi_s for t in times))


def two_out_minimum_cut(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    success_prob: float = 0.9,
    trial_scale: float = 1.0,
    rounds: int = DEFAULT_ROUNDS,
    replicas: int | None = None,
    scheduler=None,
    backend: "str | Backend | None" = None,
    force: bool = False,
    dense_threshold: int = DENSE_TRIAL_THRESHOLD,
    plan: TwoOutPlan | None = None,
):
    """The ``variant="2out"`` pipeline behind :func:`minimum_cut`.

    Preprocess (:func:`plan_two_out`), then either dispatch each
    replica's recomputed trial budget through a
    :class:`~repro.sched.scheduler.TrialScheduler` and fold the minimum
    over the singleton check and all replica results, or — when the plan
    is degraded — fall back to the unmodified default pipeline (the
    result is then bit-identical to ``variant="default"``).

    Replicas contracted to at most ``dense_threshold`` vertices dispatch
    their trials through the dense bulk-contraction path (pass 0 to
    force every replica through the sparse path).  ``force=True`` skips
    the degrade decision and runs the replica path regardless
    (benchmark/test hook for exercising the genuine pipeline on graphs
    where the default budget would still be cheaper).
    ``replicas``/``rounds`` override the derived defaults the same way.
    ``plan`` supplies a precomputed :class:`TwoOutPlan` (the serve
    layer's derivative cache replays one plan across many queries; it
    must have been produced by :func:`plan_two_out` with the same
    ``g``/``seed``/``success_prob``/``trial_scale``/``rounds``/
    ``replicas`` or the results will not match an uncached run).
    Returns a :class:`~repro.core.mincut.MinCutResult` with ``variant``
    and ``two_out`` filled in.
    """
    from repro.core.mincut import MinCutResult, _pick_min, minimum_cut
    from repro.sched.scheduler import TrialScheduler, merge_reports

    if scheduler is not None and scheduler.checkpoint:
        raise ValueError(
            "variant='2out' does not support scheduler checkpoints: one "
            "ledger cannot span the per-replica dispatches")
    runtime = resolve_backend(backend)
    if plan is None:
        plan = plan_two_out(
            g, p, seed=seed, success_prob=success_prob,
            trial_scale=trial_scale, rounds=rounds, replicas=replicas,
            backend=runtime,
        )

    if plan.degraded and not force:
        base = minimum_cut(
            g, p, seed=seed, success_prob=success_prob,
            trial_scale=trial_scale, backend=runtime, scheduler=scheduler,
        )
        trace = None
        if plan.trace is not None or base.trace is not None:
            trace = list(plan.trace or []) + list(base.trace or [])
        return MinCutResult(
            value=base.value, side=base.side, trials=base.trials,
            report=merge_reports([plan.report, base.report]),
            time=_combine_times(plan.time, base.time), trace=trace,
            achieved_success_prob=base.achieved_success_prob,
            ledger=base.ledger, variant="2out",
            two_out=_summary_from_plan(plan),
        )

    sched = scheduler if scheduler is not None else TrialScheduler()
    sing_val, sing_side = singleton_cut(g)
    best = (sing_val, sing_side)
    reports = [plan.report]
    times = [plan.time]
    traces = [plan.trace] if plan.trace is not None else []
    completed = [0] * plan.replicas
    failure = 1.0  # running prod_r (1 - p0 * x_r)
    replica_streams = RngStreams(seed ^ _REPLICA_SEED_SALT)
    for r, (cu, cv, cw, labels, k) in enumerate(plan.contractions):
        budget = plan.trials_per_replica[r]
        if budget == 0:
            continue
        g_r = EdgeList(int(k), cu, cv, cw, canonical=False, validate=False)
        sres = sched.run(
            g_r, p, backend=runtime, seed=replica_streams.spawn(r).seed,
            success_prob=REPLICA_TRIAL_PROB, trials=budget,
            dense=int(k) <= dense_threshold,
        )
        side = sres.side[labels] if sres.side is not None else None
        best = _pick_min(best, (sres.value, side))
        completed[r] = sres.completed
        x_r = achieved_success_probability(
            int(k), max(int(cu.size), 1), sres.completed)
        failure *= 1.0 - PRESERVATION_PROB * min(1.0, x_r)
        reports.append(sres.report)
        times.append(sres.time)
        if sres.trace is not None:
            traces.append(sres.trace)
    value, side = best
    trace = [ev for t in traces for ev in t] if traces else None
    return MinCutResult(
        value=value, side=side, trials=plan.total_trials,
        report=merge_reports(reports), time=_combine_times(*times),
        trace=trace, achieved_success_prob=1.0 - failure, ledger=None,
        variant="2out", two_out=_summary_from_plan(plan, tuple(completed)),
    )
