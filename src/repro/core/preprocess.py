"""Weight preprocessing (§2.3 remark; Karger–Stein §7.1).

The analysis assumes edge weights bounded by the minimum cut value times a
polynomial in n; the paper notes this "can be removed by a preprocessing
step without increasing the presented bounds".  The exactness-preserving
half of that step is implemented here: *heavy-edge contraction*.

Let ``k_hat`` be the minimum weighted degree — an upper bound on the
minimum cut (a single vertex is a cut).  An edge of weight strictly above
``k_hat`` cannot cross any minimum cut (a cut it crosses has value at least
its weight), so it can be contracted without changing the set of minimum
cuts.  Iterating until no heavy edge remains both shrinks the graph and
bounds the weight spread relative to the minimum cut.
"""

from __future__ import annotations

import numpy as np

from repro.graph.contract import combine_parallel_edges, components_from_edges, relabel_edges
from repro.graph.edgelist import EdgeList

__all__ = ["contract_heavy_edges", "min_weighted_degree"]

#: Iteration guard; each round strictly shrinks the vertex count.
_MAX_ROUNDS = 64


def min_weighted_degree(g: EdgeList) -> float:
    """Minimum weighted degree: a trivial upper bound on the minimum cut."""
    if g.n < 1:
        raise ValueError("graph needs at least one vertex")
    return float(g.weighted_degrees().min())


def contract_heavy_edges(g: EdgeList) -> tuple[EdgeList, np.ndarray]:
    """Contract every edge that provably crosses no minimum cut.

    Returns ``(h, labels)`` where ``h`` is the contracted graph (parallel
    edges combined) and ``labels`` maps the original vertices onto ``h``'s;
    any minimum cut of ``h`` lifts to a minimum cut of ``g`` of equal value
    via ``side[labels]``, and all minimum cuts of ``g`` survive.

    Degenerate inputs (isolated vertices present) are returned unchanged:
    their minimum cut is the trivial 0 and nothing is safe to contract.
    """
    cur = combine_parallel_edges(g)
    labels_total = np.arange(g.n, dtype=np.int64)
    for _ in range(_MAX_ROUNDS):
        if cur.m == 0 or cur.n < 3:
            break
        k_hat = min_weighted_degree(cur)
        if k_hat <= 0:
            break  # disconnected: the zero cut is minimum, contract nothing
        heavy = np.flatnonzero(cur.w > k_hat)
        if heavy.size == 0:
            break
        step, k_new = components_from_edges(
            cur.n, cur.u[heavy], cur.v[heavy]
        )
        if k_new < 2:
            # Contracting everything would erase the graph; keep at least
            # two sides by refusing the degenerate step (cannot happen for
            # valid inputs, guarded for safety).
            break
        cur = combine_parallel_edges(relabel_edges(cur, step, k_new))
        labels_total = step[labels_total]
    else:
        raise RuntimeError("heavy-edge contraction failed to converge")
    return cur, labels_total
