"""Trial-count calculation for the exact minimum cut algorithm (§4).

A trial = Eager Step (random contraction to ceil(sqrt(m)) + 1 vertices) +
Recursive Step (Recursive Contraction).  A *specific* minimum cut survives
random contraction from n to t vertices with probability at least
t(t-1) / (n(n-1)) (Lemma 2.1), and Recursive Contraction finds a surviving
minimum cut with probability at least 1/Omega(log n) (Lemma 2.2).  The
number of independent trials needed for overall success probability P is
ceil(ln(1/(1-P)) / q) with q the per-trial success bound — which is the
paper's Theta((n^2/m) log^2 n) for constant P boosted to w.h.p.

The artifact runs all experiments at minimum success probability 0.9; we
default to the same.
"""

from __future__ import annotations

import math

__all__ = ["eager_survival_probability", "recursive_success_probability", "num_trials"]


def eager_survival_probability(n: int, t: int) -> float:
    """Lemma 2.1: P[a given minimum cut survives contraction n -> t]."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if t < 2:
        raise ValueError(f"need t >= 2, got {t}")
    if t >= n:
        return 1.0
    return (t * (t - 1)) / (n * (n - 1))


def recursive_success_probability(n: int) -> float:
    """Lemma 2.2 bound: Recursive Contraction succeeds w.p. >= 1/O(log n)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return min(1.0, 1.0 / max(1.0, math.log2(n)))


def num_trials(
    n: int,
    m: int,
    *,
    success_prob: float = 0.9,
    scale: float = 1.0,
) -> int:
    """Number of independent trials for overall success ``success_prob``.

    ``scale`` < 1 shrinks the count for scaled-down benchmark runs (the
    reproduction's stand-in for the paper's full-size configurations); the
    success guarantee then degrades proportionally and is reported as such.
    """
    if not 0 < success_prob < 1:
        raise ValueError(f"success_prob must be in (0, 1), got {success_prob}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if m < 1:
        raise ValueError(f"need at least one edge, got m={m}")
    t_eager = min(n, math.ceil(math.sqrt(m)) + 1)
    q = eager_survival_probability(n, max(2, t_eager))
    q *= recursive_success_probability(max(2, t_eager))
    raw = math.log(1.0 / (1.0 - success_prob)) / q
    return max(1, math.ceil(raw * scale))
