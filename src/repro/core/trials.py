"""Trial-count calculation for the exact minimum cut algorithm (§4).

A trial = Eager Step (random contraction to ceil(sqrt(m)) + 1 vertices) +
Recursive Step (Recursive Contraction).  A *specific* minimum cut survives
random contraction from n to t vertices with probability at least
t(t-1) / (n(n-1)) (Lemma 2.1), and Recursive Contraction finds a surviving
minimum cut with probability at least 1/Omega(log n) (Lemma 2.2).  The
number of independent trials needed for overall success probability P is
ceil(ln(1/(1-P)) / q) with q the per-trial success bound — which is the
paper's Theta((n^2/m) log^2 n) for constant P boosted to w.h.p.

The artifact runs all experiments at minimum success probability 0.9; we
default to the same.

The same bound prices the ``variant="2out"`` pipeline
(:mod:`repro.core.two_out`): each 2-out contraction replica calls
:func:`num_trials` with its *contracted* ``n'``, ``m'`` at the
conditional per-replica target, which is where the dense-graph trial
reduction comes from — the bound is quadratic in ``n``.
"""

from __future__ import annotations

import math

__all__ = [
    "eager_survival_probability",
    "recursive_success_probability",
    "num_trials",
    "achieved_success_probability",
]


def eager_survival_probability(n: int, t: int) -> float:
    """Lemma 2.1: P[a given minimum cut survives contraction n -> t]."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    if t < 2:
        raise ValueError(f"need t >= 2, got {t}")
    if t >= n:
        return 1.0
    return (t * (t - 1)) / (n * (n - 1))


def recursive_success_probability(n: int) -> float:
    """Lemma 2.2 bound: Recursive Contraction succeeds w.p. >= 1/O(log n)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return min(1.0, 1.0 / max(1.0, math.log2(n)))


def _per_trial_q(n: int, m: int) -> float:
    """The per-trial success lower bound q (Lemmas 2.1 + 2.2).

    One independent trial finds a given minimum cut with probability at
    least ``q``; ``t`` trials therefore succeed with probability at least
    ``1 - (1-q)^t >= 1 - exp(-q t)``.  Shared by :func:`num_trials` (which
    inverts the bound for a requested probability) and
    :func:`achieved_success_probability` (which evaluates it forward for a
    completed-trial count), so requested and achieved probabilities are
    exact inverses of each other.
    """
    if m < 1:
        raise ValueError(f"need at least one edge, got m={m}")
    t_eager = min(n, math.ceil(math.sqrt(m)) + 1)
    q = eager_survival_probability(n, max(2, t_eager))
    q *= recursive_success_probability(max(2, t_eager))
    return q


def num_trials(
    n: int,
    m: int,
    *,
    success_prob: float = 0.9,
    scale: float = 1.0,
) -> int:
    """Number of independent trials for overall success ``success_prob``.

    ``success_prob`` must lie strictly inside ``(0, 1)``: certainty
    (``>= 1``) needs infinitely many Monte-Carlo trials and ``<= 0``
    requests no guarantee at all, so both are rejected rather than
    silently clamped.  ``scale`` < 1 shrinks the count for scaled-down
    benchmark runs (the reproduction's stand-in for the paper's full-size
    configurations); the success guarantee then degrades proportionally
    and is reported as such.
    """
    if not 0 < success_prob < 1:  # also rejects NaN: all comparisons fail
        raise ValueError(
            f"success_prob must be strictly between 0 and 1 (exclusive), "
            f"got {success_prob!r}: probability 1.0 needs infinitely many "
            "Monte-Carlo trials and probability <= 0 requests no guarantee"
        )
    if not (scale > 0 and math.isfinite(scale)):
        raise ValueError(f"scale must be positive and finite, got {scale!r}")
    q = _per_trial_q(n, m)
    raw = math.log(1.0 / (1.0 - success_prob)) / q
    return max(1, math.ceil(raw * scale))


def achieved_success_probability(n: int, m: int, completed: int) -> float:
    """Success probability *achieved* by ``completed`` finished trials.

    The forward evaluation of the bound :func:`num_trials` inverts:
    ``1 - exp(-q * completed)`` with the same per-trial ``q``.  Because
    ``num_trials`` rounds the trial count *up*, completing the full
    planned count always achieves at least the requested probability;
    fewer completed trials (a partial, fault-degraded run) yield a
    correspondingly smaller guarantee — which is the honest number a
    fault-tolerant scheduler must report.
    """
    if completed < 0:
        raise ValueError(f"completed trial count must be >= 0, got {completed}")
    if completed == 0:
        return 0.0
    q = _per_trial_q(n, m)
    # -expm1(-x) = 1 - exp(-x) without cancellation for small q*completed.
    return -math.expm1(-q * completed)
