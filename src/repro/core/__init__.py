"""The paper's contribution: communication-avoiding sparsification and the
algorithms built on it (connected components, approximate and exact global
minimum cuts).

High-level drivers (build an engine, slice the graph, run the SPMD program):

* :func:`repro.core.components.connected_components`
* :func:`repro.core.approx_mincut.approx_minimum_cut`
* :func:`repro.core.mincut.minimum_cut`
* :func:`repro.core.mincut.minimum_cut_sequential`
"""

from repro.core.components import connected_components, CCResult, cc_sequential
from repro.core.approx_mincut import approx_minimum_cut, ApproxMinCutResult
from repro.core.mincut import (
    minimum_cut,
    minimum_cuts,
    minimum_cut_sequential,
    MinCutResult,
    MinCutsResult,
)
from repro.core.trials import num_trials, eager_survival_probability
from repro.core.two_out import (
    TwoOutPlan,
    TwoOutSummary,
    plan_two_out,
    replica_count,
    singleton_cut,
    two_out_minimum_cut,
)
from repro.core.sparsify import sparsify_weighted, sparsify_unweighted
from repro.core.preprocess import contract_heavy_edges, min_weighted_degree
from repro.core.spanning_forest import minimum_spanning_forest, MSFResult
from repro.core.external import cc_semi_external
from repro.core.clustering import (
    mincut_clustering,
    relative_cut_criterion,
    ClusteringResult,
)

__all__ = [
    "connected_components",
    "cc_sequential",
    "CCResult",
    "approx_minimum_cut",
    "ApproxMinCutResult",
    "minimum_cut",
    "minimum_cuts",
    "minimum_cut_sequential",
    "MinCutResult",
    "MinCutsResult",
    "num_trials",
    "eager_survival_probability",
    "TwoOutPlan",
    "TwoOutSummary",
    "plan_two_out",
    "replica_count",
    "singleton_cut",
    "two_out_minimum_cut",
    "sparsify_weighted",
    "sparsify_unweighted",
    "contract_heavy_edges",
    "min_weighted_degree",
    "minimum_spanning_forest",
    "MSFResult",
    "mincut_clustering",
    "relative_cut_criterion",
    "ClusteringResult",
    "cc_semi_external",
]
