"""Prefix Selection and Bulk Edge Contraction (§2.4 step 2-3, §4.1).

*Prefix Selection* finds the longest prefix of a randomly permuted edge
sample whose contraction leaves at least ``t`` connected components
(incremental union-find at the root, exactly where the paper computes it).
Besides the Eager Step, the same kernel clamps the random 2-out
contraction (:mod:`repro.core.two_out`): unioning the 2-out sample with
``t = 2`` contracts exactly its components without ever collapsing a
replica to a single vertex.

*Sparse bulk edge contraction* (distributed edge array): relabel locally,
globally sort edges by endpoints, combine parallel edges locally, then fix
the processor boundaries with one all-gather — the paper's observation is
that after the sort every parallel class lies in one processor or adjacent
ones, so one first-edge exchange suffices (Lemma 4.2: O(1) supersteps,
O(m/p) volume).

*Dense bulk edge contraction* (distributed adjacency matrix): combine the
columns locally, transpose the distributed matrix (one alltoall), combine
again, zero the diagonal (Lemma 4.1: O(1) supersteps, O(n^2/p) volume).

The per-edge computation bottoms out in the vectorized kernels of
:mod:`repro.kernels`; ``prefix_select(..., slow=True)`` runs the scalar
reference loop instead (byte-identical output, used by differential tests).
"""

from __future__ import annotations

import numpy as np

from repro.bsp.combine import combine_by_key
from repro.kernels import (
    combine_sorted_run,
    pack_edge_keys,
    prefix_select_labels,
    relabel_edge_arrays,
    scalar_prefix_select,
    unpack_edge_keys,
)

__all__ = [
    "prefix_select",
    "combine_sorted_run",
    "sparse_bulk_contract",
    "row_block",
    "dense_bulk_contract",
]


def prefix_select(
    n: int, su: np.ndarray, sv: np.ndarray, t: int, *, slow: bool = False
) -> tuple[np.ndarray, int]:
    """Contract the longest prefix leaving at least ``t`` components.

    ``su, sv`` is the randomly permuted edge sample in the current label
    space ``0..n-1``.  Returns ``(labels, n_new)`` with dense labels for the
    resulting contraction; ``n_new >= t`` always, with equality whenever the
    sample suffices to reach ``t``.

    The semantics are those of an incremental union-find (path halving +
    union by size) stopping as soon as the component count would drop below
    ``t``; the default path computes the same result vectorized
    (:func:`repro.kernels.prefix_select_labels`), while ``slow=True`` runs
    the original per-edge reference loop.  Both return byte-identical labels.
    """
    if slow:
        return scalar_prefix_select(n, su, sv, t)
    return prefix_select_labels(n, su, sv, t)


def sparse_bulk_contract(ctx, comm, u, v, w, g_map, n_new):
    """Generator: sparse bulk edge contraction of a distributed edge array.

    ``u, v, w`` is this processor's slice; ``g_map`` maps the current label
    space onto ``0..n_new-1``.  Returns the processor's slice ``(u, v, w)``
    of the contracted graph with all parallel edges combined.
    """
    # (1) Local rename + loop removal; encode endpoint pairs as one key.
    m = u.size
    u, v, w = relabel_edge_arrays(u, v, w, g_map)
    keys = pack_edge_keys(u, v, n_new)
    ctx.charge_scan(m, words_per_elem=3)
    ctx.charge_random(m, working_set=len(g_map))

    # (2-5) Global sort + local combine + boundary fix-up: this is exactly
    # the generic combine-by-key with weight addition (§4.1 remark).
    keys, w = yield from combine_by_key(ctx, comm, keys, w)

    u, v = unpack_edge_keys(keys, n_new)
    return u, v, w


def row_block(rank: int, size: int, n: int) -> tuple[int, int]:
    """Contiguous row range ``[lo, hi)`` owned by ``rank`` of ``size`` procs."""
    lo = rank * n // size
    hi = (rank + 1) * n // size
    return lo, hi


def dense_bulk_contract(ctx, comm, rows, n_old, g_map, n_new):
    """Generator: dense bulk edge contraction of a distributed matrix.

    ``rows`` is this processor's contiguous row block of the symmetric
    ``n_old x n_old`` weight matrix (block given by :func:`row_block`).
    Returns the processor's row block of the contracted ``n_new x n_new``
    matrix with a zero diagonal.
    """
    p = comm.size
    my_rows = rows.shape[0]

    # (1) Combine columns locally: rows x n_old -> rows x n_new.
    half = np.zeros((my_rows, n_new), dtype=np.float64)
    np.add.at(half.T, g_map, rows.T)
    ctx.charge(ops=float(my_rows) * n_old,
               misses=ctx.cache.matrix_scan(my_rows, n_old))

    # (2) Distributed transpose of `half` (n_old x n_new, row blocks) into
    #     (n_new x n_old, row blocks): one alltoall of sub-blocks.
    parcels = []
    for j in range(p):
        jlo, jhi = row_block(j, p, n_new)
        parcels.append(np.ascontiguousarray(half[:, jlo:jhi].T))
    received = yield from comm.alltoall(parcels)
    lo, hi = row_block(comm.rank, p, n_new)
    transposed = np.zeros((hi - lo, n_old), dtype=np.float64)
    col = 0
    for j in range(p):
        block = received[j]
        transposed[:, col:col + block.shape[1]] = block
        col += block.shape[1]
    assert col == n_old
    ctx.charge(ops=float(hi - lo) * n_old,
               misses=ctx.cache.transpose(max(hi - lo, n_old)))

    # (3) Combine the second dimension and zero the diagonal.
    out = np.zeros((hi - lo, n_new), dtype=np.float64)
    np.add.at(out.T, g_map, transposed.T)
    out[np.arange(hi - lo), np.arange(lo, hi)] = 0.0
    ctx.charge(ops=float(hi - lo) * n_old,
               misses=ctx.cache.matrix_scan(hi - lo, n_old))
    return out
