"""Prefix Selection and Bulk Edge Contraction (§2.4 step 2-3, §4.1).

*Prefix Selection* finds the longest prefix of a randomly permuted edge
sample whose contraction leaves at least ``t`` connected components
(incremental union-find at the root, exactly where the paper computes it).

*Sparse bulk edge contraction* (distributed edge array): relabel locally,
globally sort edges by endpoints, combine parallel edges locally, then fix
the processor boundaries with one all-gather — the paper's observation is
that after the sort every parallel class lies in one processor or adjacent
ones, so one first-edge exchange suffices (Lemma 4.2: O(1) supersteps,
O(m/p) volume).

*Dense bulk edge contraction* (distributed adjacency matrix): combine the
columns locally, transpose the distributed matrix (one alltoall), combine
again, zero the diagonal (Lemma 4.1: O(1) supersteps, O(n^2/p) volume).
"""

from __future__ import annotations

import numpy as np

from repro.bsp.combine import combine_by_key

__all__ = [
    "prefix_select",
    "combine_sorted_run",
    "sparse_bulk_contract",
    "row_block",
    "dense_bulk_contract",
]


def prefix_select(
    n: int, su: np.ndarray, sv: np.ndarray, t: int
) -> tuple[np.ndarray, int]:
    """Contract the longest prefix leaving at least ``t`` components.

    ``su, sv`` is the randomly permuted edge sample in the current label
    space ``0..n-1``.  Returns ``(labels, n_new)`` with dense labels for the
    resulting contraction; ``n_new >= t`` always, with equality whenever the
    sample suffices to reach ``t``.

    Incremental union-find (path halving + union by size), stopping as soon
    as the component count would drop below ``t``.
    """
    if t < 1:
        raise ValueError(f"target component count must be >= 1, got {t}")
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    count = n

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(su.tolist(), sv.tolist()):
        if count <= t:
            break
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]
        count -= 1

    roots = np.array([find(x) for x in range(n)], dtype=np.int64)
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def combine_sorted_run(
    keys: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Combine equal consecutive keys of a sorted run, summing weights."""
    if keys.size == 0:
        return keys, w
    starts = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
    return keys[starts], np.add.reduceat(w, starts)


def sparse_bulk_contract(ctx, comm, u, v, w, g_map, n_new):
    """Generator: sparse bulk edge contraction of a distributed edge array.

    ``u, v, w`` is this processor's slice; ``g_map`` maps the current label
    space onto ``0..n_new-1``.  Returns the processor's slice ``(u, v, w)``
    of the contracted graph with all parallel edges combined.
    """
    # (1) Local rename + loop removal; encode endpoint pairs as one key.
    u = g_map[u]
    v = g_map[v]
    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = lo * np.int64(n_new) + hi
    ctx.charge_scan(keep.size, words_per_elem=3)
    ctx.charge_random(keep.size, working_set=len(g_map))

    # (2-5) Global sort + local combine + boundary fix-up: this is exactly
    # the generic combine-by-key with weight addition (§4.1 remark).
    keys, w = yield from combine_by_key(ctx, comm, keys, w)

    u = keys // np.int64(n_new)
    v = keys % np.int64(n_new)
    return u.astype(np.int64), v.astype(np.int64), w


def row_block(rank: int, size: int, n: int) -> tuple[int, int]:
    """Contiguous row range ``[lo, hi)`` owned by ``rank`` of ``size`` procs."""
    lo = rank * n // size
    hi = (rank + 1) * n // size
    return lo, hi


def dense_bulk_contract(ctx, comm, rows, n_old, g_map, n_new):
    """Generator: dense bulk edge contraction of a distributed matrix.

    ``rows`` is this processor's contiguous row block of the symmetric
    ``n_old x n_old`` weight matrix (block given by :func:`row_block`).
    Returns the processor's row block of the contracted ``n_new x n_new``
    matrix with a zero diagonal.
    """
    p = comm.size
    my_rows = rows.shape[0]

    # (1) Combine columns locally: rows x n_old -> rows x n_new.
    half = np.zeros((my_rows, n_new), dtype=np.float64)
    np.add.at(half.T, g_map, rows.T)
    ctx.charge(ops=float(my_rows) * n_old,
               misses=ctx.cache.matrix_scan(my_rows, n_old))

    # (2) Distributed transpose of `half` (n_old x n_new, row blocks) into
    #     (n_new x n_old, row blocks): one alltoall of sub-blocks.
    parcels = []
    for j in range(p):
        jlo, jhi = row_block(j, p, n_new)
        parcels.append(np.ascontiguousarray(half[:, jlo:jhi].T))
    received = yield from comm.alltoall(parcels)
    lo, hi = row_block(comm.rank, p, n_new)
    transposed = np.zeros((hi - lo, n_old), dtype=np.float64)
    col = 0
    for j in range(p):
        block = received[j]
        transposed[:, col:col + block.shape[1]] = block
        col += block.shape[1]
    assert col == n_old
    ctx.charge(ops=float(hi - lo) * n_old,
               misses=ctx.cache.transpose(max(hi - lo, n_old)))

    # (3) Combine the second dimension and zero the diagonal.
    out = np.zeros((hi - lo, n_new), dtype=np.float64)
    np.add.at(out.T, g_map, transposed.T)
    for r in range(lo, hi):
        out[r - lo, r] = 0.0
    ctx.charge(ops=float(hi - lo) * n_old,
               misses=ctx.cache.matrix_scan(hi - lo, n_old))
    return out
