"""Minimum-cut graph clustering (the §1 application [39, 40]).

The CLICK-style kernel the paper cites for gene-expression analysis and
large-scale graph clustering: recursively split the similarity graph along
its global minimum cut until a stopping criterion declares the cluster
coherent.  The library version of ``examples/graph_clustering.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bsp.engine import Engine
from repro.core.mincut import minimum_cut
from repro.graph.edgelist import EdgeList

__all__ = ["mincut_clustering", "relative_cut_criterion", "ClusteringResult"]


def relative_cut_criterion(threshold: float = 0.7) -> Callable[[EdgeList, float], bool]:
    """Stop splitting when the cut costs at least ``threshold`` of the
    cluster's average incident weight (2W/n) — i.e. the cluster has no
    cheap separator relative to its density."""

    def accept(sub: EdgeList, cut_value: float) -> bool:
        if sub.n <= 1:
            return True
        density = 2.0 * sub.total_weight() / sub.n
        return cut_value >= threshold * density

    return accept


@dataclass(frozen=True)
class ClusteringResult:
    """Result of a recursive min-cut clustering."""

    labels: np.ndarray        # dense cluster id per vertex
    n_clusters: int
    cut_values: list[float]   # value of every accepted split, in order

    def clusters(self) -> list[np.ndarray]:
        """Vertex arrays per cluster, ordered by cluster id."""
        return [np.flatnonzero(self.labels == c) for c in range(self.n_clusters)]


def mincut_clustering(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    accept: Callable[[EdgeList, float], bool] | None = None,
    min_cluster: int = 1,
    max_clusters: int | None = None,
    trial_scale: float = 1.0,
    engine: Engine | None = None,
) -> ClusteringResult:
    """Recursively split ``g`` along global minimum cuts.

    ``accept(subgraph, cut_value)`` decides whether a cluster is kept whole
    (default: :func:`relative_cut_criterion`).  Disconnected clusters are
    always split (their minimum cut is 0).  ``min_cluster`` stops recursion
    below a size; ``max_clusters`` caps the cluster count.
    """
    if accept is None:
        accept = relative_cut_criterion()
    engine = engine or Engine()
    labels = np.zeros(g.n, dtype=np.int64)
    cut_values: list[float] = []
    # Worklist of (vertex array, depth); depth seeds distinct randomness.
    work: list[tuple[np.ndarray, int]] = [(np.arange(g.n, dtype=np.int64), 0)]
    final: list[np.ndarray] = []

    while work:
        vertices, depth = work.pop()
        if vertices.size <= max(min_cluster, 1) or vertices.size < 2:
            final.append(vertices)
            continue
        if max_clusters is not None and \
                len(final) + len(work) + 1 >= max_clusters:
            final.append(vertices)
            continue
        sub, mapping = g.induced(vertices)
        if sub.m == 0:
            # Fully disconnected cluster: every vertex is its own cluster.
            final.extend(np.array([x]) for x in vertices)
            continue
        res = minimum_cut(
            sub, p=p, seed=seed + depth, trial_scale=trial_scale,
            engine=engine,
        )
        if res.value > 0 and accept(sub, res.value):
            final.append(vertices)
            continue
        cut_values.append(res.value)
        work.append((mapping[res.side], depth + 1))
        work.append((mapping[~res.side], depth + 1))

    for cid, vertices in enumerate(final):
        labels[vertices] = cid
    return ClusteringResult(
        labels=labels, n_clusters=len(final), cut_values=cut_values
    )
