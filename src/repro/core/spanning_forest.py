"""Communication-avoiding minimum spanning forest (Borůvka over BSP).

The BSP comparator the paper cites for connected components (Adler et
al. [2]) is actually a minimum-spanning-tree algorithm — components are
its by-product.  This module closes the circle: a Borůvka-style MSF in the
same root-centric, communication-avoiding style as the §3.2 CC algorithm.

Each round: every processor selects, per current component, the lightest
incident edge of its slice (vectorized, with a deterministic edge-id tie
break so the chosen forest is unique and cycle-free); the at most ``k``
candidates per processor are gathered at the root, which merges them,
contracts the chosen pseudo-forest, and broadcasts the relabeling.
Components at least halve per round, so O(log n) rounds, each with O(1)
supersteps and O(kp) volume.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from repro.bsp.counters import CountersReport
from repro.bsp.engine import Engine
from repro.bsp.machine import TimeEstimate
from repro.graph.contract import components_from_edges
from repro.graph.edgelist import EdgeList

__all__ = ["minimum_spanning_forest", "msf_program", "MSFResult"]

_MAX_ROUNDS = 80


def _local_candidates(comp_u, comp_v, w, edge_ids):
    """Lightest incident edge per component among this slice's edges.

    Returns ``(components, weights, ids)``; ties break toward the smallest
    edge id, making the global choice deterministic and cycle-safe.
    """
    live = comp_u != comp_v
    cu, cv, w, ids = comp_u[live], comp_v[live], w[live], edge_ids[live]
    comps = np.concatenate([cu, cv])
    ws = np.concatenate([w, w])
    eids = np.concatenate([ids, ids])
    if comps.size == 0:
        return comps, ws, eids
    order = np.lexsort((eids, ws, comps))
    comps, ws, eids = comps[order], ws[order], eids[order]
    first = np.flatnonzero(np.r_[True, comps[1:] != comps[:-1]])
    return comps[first], ws[first], eids[first]


def msf_program(ctx, slices, n):
    """SPMD program; returns ``(forest_edge_ids, labels, count)`` at rank 0.

    ``forest_edge_ids`` index the *global* edge array (concatenation of the
    slices in rank order).
    """
    comm = ctx.comm
    g = slices[ctx.rank]
    # Global ids of this slice's edges (offset by the sizes before it).
    sizes = [s.m for s in slices]
    offset = sum(sizes[:ctx.rank])
    edge_ids = np.arange(offset, offset + g.m, dtype=np.int64)

    u = g.u.copy()
    v = g.v.copy()
    k = n
    labels_total = np.arange(n, dtype=np.int64) if ctx.rank == 0 else None
    chosen: list[int] = []

    for _round in range(_MAX_ROUNDS):
        live_local = int((u != v).sum())
        live = yield from comm.allreduce(live_local, op=operator.add)
        if live == 0:
            break
        comps, ws, eids = _local_candidates(u, v, g.w, edge_ids)
        ctx.charge_scan(g.m, words_per_elem=3)
        ctx.charge_sort(comps.size)
        cands = yield from comm.gatherv(comps, ws, eids, root=0)
        if ctx.rank == 0:
            ac, aw, ae = cands
            order = np.lexsort((ae, aw, ac))
            ac, aw, ae = ac[order], aw[order], ae[order]
            first = np.flatnonzero(np.r_[True, ac[1:] != ac[:-1]])
            winners = np.unique(ae[first])
            chosen.extend(winners.tolist())
            ctx.charge_sort(ac.size, words_per_elem=3)
            payload = winners
        else:
            payload = None
        winners = yield from comm.bcast(payload, root=0)
        # Contract the chosen pseudo-forest: each winner edge merges its
        # endpoints' components.  Every processor owns some of the winner
        # edges; collect their endpoint pairs at the root.
        mine = np.isin(edge_ids, winners)
        pairs = (u[mine], v[mine])
        ctx.charge_scan(g.m)
        all_pairs = yield from comm.gatherv(*pairs, root=0)
        if ctx.rank == 0:
            pu, pv = all_pairs
            g_map, k_new = components_from_edges(k, pu, pv)
            labels_total = g_map[labels_total]
            ctx.charge_scan(pu.size, words_per_elem=2)
            payload = (g_map, k_new)
        else:
            payload = None
        g_map, k_new = yield from comm.bcast(payload, root=0)
        u = g_map[u]
        v = g_map[v]
        ctx.charge_scan(g.m, words_per_elem=2)
        ctx.charge_random(2 * g.m, working_set=k)
        k = k_new
    else:
        raise RuntimeError("Boruvka did not converge; candidate-selection bug")

    if ctx.rank == 0:
        return np.array(sorted(chosen), dtype=np.int64), labels_total, k
    return None, None, k


@dataclass(frozen=True)
class MSFResult:
    """Result of a minimum-spanning-forest run."""

    forest: EdgeList          # the chosen edges (one tree per component)
    labels: np.ndarray        # component id per vertex
    n_components: int
    total_weight: float
    report: CountersReport
    time: TimeEstimate


def minimum_spanning_forest(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    engine: Engine | None = None,
) -> MSFResult:
    """Minimum spanning forest of ``g`` on ``p`` virtual processors.

    Deterministic (Borůvka with an edge-id tie break): the forest is unique
    for a given edge order even with repeated weights.
    """
    engine = engine or Engine()
    slices = g.slices(p)
    result = engine.run(msf_program, p, seed=seed, args=(slices, g.n))
    ids, labels, count = result.root_value
    forest = g.select(ids)
    expected_edges = g.n - count
    if forest.m != expected_edges:
        raise AssertionError(
            f"forest has {forest.m} edges, expected n - components = "
            f"{expected_edges}; Boruvka invariant violated"
        )
    return MSFResult(
        forest=forest, labels=labels, n_components=count,
        total_weight=forest.total_weight(),
        report=result.report, time=result.time,
    )
