"""Paper-style reporting: aligned tables and experiment records.

Every benchmark prints the series of the figure/table it regenerates and
appends a machine-readable record under ``results/`` so EXPERIMENTS.md can
cite the exact numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = ["Series", "format_table", "write_experiment_record"]


@dataclass
class Series:
    """One plotted line: a name plus (x, y) points."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def as_rows(self) -> list[tuple[float, float]]:
        """Points as (x, y) tuples (table-friendly)."""
        return list(zip(self.x, self.y))


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width aligned table (what the benches print to stdout)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(x: object) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e5 or abs(x) < 1e-3:
            return f"{x:.3e}"
        return f"{x:.4g}"
    return str(x)


def write_experiment_record(
    exp_id: str,
    *,
    description: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
    results_dir: str | Path = "results",
) -> Path:
    """Persist a benchmark's regenerated series as JSON under ``results/``."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{exp_id}.json"
    payload = {
        "experiment": exp_id,
        "description": description,
        "headers": list(headers),
        "rows": [list(map(_json_safe, row)) for row in rows],
        "notes": notes,
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def _json_safe(x: object):
    if hasattr(x, "item"):
        return x.item()
    return x
