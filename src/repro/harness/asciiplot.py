"""Dependency-free ASCII charts for the regenerated experiment series.

The artifact post-processes its CSVs with R/ggplot; offline we render the
same series as terminal charts so scaling shapes are visible directly in
benchmark output and in EXPERIMENTS.md (fenced code blocks).

Only scatter/line charts are needed: x is the sweep axis (cores, n, m),
one glyph per series, optional log-log scaling for the scaling plots.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_chart"]

_GLYPHS = "ox*+#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log scale requires positive values")
        return math.log10(value)
    return value


def ascii_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render ``series`` (name -> y values over the shared ``x``) as text.

    Returns a multi-line string: title, plot canvas with y-axis bounds, an
    x-axis line with its bounds, and a glyph legend.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    xs = [float(v) for v in x]
    if len(xs) < 2:
        raise ValueError("need at least two x positions")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} does not align with x")

    tx = [_transform(v, logx) for v in xs]
    ty = {
        name: [_transform(float(v), logy) for v in ys]
        for name, ys in series.items()
    }
    x_lo, x_hi = min(tx), max(tx)
    all_y = [v for ys in ty.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for xv, yv in zip(tx, ty[name]):
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            canvas[height - 1 - row][col] = glyph

    def fmt(v: float, log: bool) -> str:
        raw = 10 ** v if log else v
        if raw != 0 and (abs(raw) >= 1e4 or abs(raw) < 1e-3):
            return f"{raw:.2e}"
        return f"{raw:.4g}"

    lines = []
    if title:
        lines.append(title)
    y_top = fmt(y_hi, logy)
    y_bot = fmt(y_lo, logy)
    margin = max(len(y_top), len(y_bot))
    for i, row in enumerate(canvas):
        label = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    x_left = fmt(x_lo, logx)
    x_right = fmt(x_hi, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (margin + 2) + x_left + " " * max(pad, 1) + x_right)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    scale = []
    if logx:
        scale.append("log x")
    if logy:
        scale.append("log y")
    suffix = f"   [{', '.join(scale)}]" if scale else ""
    lines.append(legend + suffix)
    return "\n".join(lines)
