"""Experiment harness: repetition/median/CI methodology and reporting.

Mirrors the artifact's measurement discipline (§5 "Methodology"): every
datapoint is the median of several executions with fresh seeds, validated
by a nonparametric 95% confidence interval on the median; each execution's
metric is the maximum over participating processors (which is what the BSP
counters already report).
"""

from repro.harness.experiment import measure, median_ci, Datapoint, run_algorithm
from repro.harness.report import Series, format_table, write_experiment_record
from repro.harness.asciiplot import ascii_chart

__all__ = [
    "measure",
    "median_ci",
    "Datapoint",
    "run_algorithm",
    "Series",
    "format_table",
    "write_experiment_record",
    "ascii_chart",
]
