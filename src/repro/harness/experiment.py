"""Measurement methodology: repeated runs, medians, nonparametric CIs.

The artifact collects measurements "until the 95% confidence interval for
the median was within 5% of the reported values" and uses a different fixed
PRNG seed per execution.  :func:`measure` reproduces this: it calls a
metric function with consecutive derived seeds, reports the median, and
keeps adding repetitions (up to a cap) until the order-statistic CI of the
median meets the tolerance.

:func:`run_algorithm` is the backend-aware dispatcher the experiment
scripts and the backend benchmark share: one ``(algorithm, graph, p,
seed, backend)`` tuple in, the algorithm's result object out — under the
simulator or on real processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.stats import binom

__all__ = ["median_ci", "measure", "Datapoint", "run_algorithm"]


def run_algorithm(algorithm: str, g, *, p: int = 4, seed: int = 0,
                  backend=None, tracer=None, scheduler=None, **kwargs):
    """Run one of the artifact algorithms on a chosen execution backend.

    ``algorithm`` is an artifact executable tag: ``"parallel_cc"``,
    ``"approx_cut"`` or ``"square_root"``.  ``backend`` is ``"sim"``
    (default), ``"mp"``, or a :class:`~repro.runtime.base.Backend`
    instance; extra ``kwargs`` flow to the algorithm's entry point —
    e.g. ``variant="2out"`` routes ``"square_root"`` through the random
    2-out contraction preprocessing (:mod:`repro.core.two_out`), and
    ``trial_scale=`` rescales its Monte-Carlo budget.
    ``tracer`` attaches a :class:`~repro.trace.tracer.Tracer` (e.g. a
    ``RecordingTracer``) to a fresh backend of the requested kind; the
    result object then carries the run's per-superstep trace.
    ``scheduler`` — a :class:`~repro.sched.scheduler.TrialScheduler` —
    engages the fault-tolerant trial dispatch loop; it applies to the
    Monte-Carlo ``"square_root"`` algorithm only (the others have no
    trial structure to schedule) and is rejected for the rest.  Returns
    the entry point's result object (``CCResult`` / ``ApproxMinCutResult``
    / ``MinCutResult``), whose ``time`` is analytic under ``sim`` and
    measured wall-clock under ``mp``.
    """
    # Imported here: repro.core pulls in scipy-heavy modules at load time.
    from repro.core import (
        approx_minimum_cut,
        connected_components,
        minimum_cut,
    )

    dispatch = {
        "parallel_cc": connected_components,
        "approx_cut": approx_minimum_cut,
        "square_root": minimum_cut,
    }
    try:
        fn = dispatch[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(dispatch)}"
        ) from None
    if scheduler is not None:
        if algorithm != "square_root":
            raise ValueError(
                f"scheduler= applies to the trial-based 'square_root' "
                f"algorithm only, not {algorithm!r}"
            )
        kwargs["scheduler"] = scheduler
    if tracer is not None:
        from repro.runtime.base import resolve_backend

        backend = resolve_backend(backend, tracer=tracer)
    return fn(g, p=p, seed=seed, backend=backend, **kwargs)

def median_ci(values: list[float], confidence: float = 0.95) -> tuple[float, float]:
    """Nonparametric CI for the median from order statistics.

    Uses the binomial distribution of the number of observations below the
    median (Le Boudec, *Performance Evaluation*, §2 — the reference the
    artifact cites for this guarantee).
    """
    xs = sorted(values)
    n = len(xs)
    if n == 0:
        raise ValueError("need at least one observation")
    if n == 1:
        return xs[0], xs[0]
    alpha = 1.0 - confidence
    lo_idx = int(binom.ppf(alpha / 2, n, 0.5))
    hi_idx = int(binom.ppf(1 - alpha / 2, n, 0.5))
    lo_idx = max(0, min(lo_idx, n - 1))
    hi_idx = max(0, min(hi_idx, n - 1))
    return xs[lo_idx], xs[hi_idx]

@dataclass
class Datapoint:
    """One reported datapoint: the median of repeated executions."""

    median: float
    ci_low: float
    ci_high: float
    repetitions: int
    samples: list[float] = field(repr=False, default_factory=list)

    @property
    def ci_ok(self) -> bool:
        """Whether the 95% CI is within 5% of the median (artifact bar)."""
        if self.median == 0:
            return self.ci_low == self.ci_high == 0
        return (
            abs(self.ci_high - self.median) <= 0.05 * abs(self.median)
            and abs(self.median - self.ci_low) <= 0.05 * abs(self.median)
        )

def measure(
    metric: Callable[[int], float],
    *,
    seed_base: int = 0,
    min_repetitions: int = 5,
    max_repetitions: int = 31,
    tolerance: float = 0.05,
    confidence: float = 0.95,
) -> Datapoint:
    """Run ``metric(seed)`` repeatedly and report the median datapoint.

    Stops once the ``confidence`` CI of the median is within ``tolerance``
    of it, or at ``max_repetitions``.  Seeds are ``seed_base, seed_base+1,
    ...`` so every execution uses fresh, reproducible randomness.
    """
    if min_repetitions < 1 or max_repetitions < min_repetitions:
        raise ValueError("invalid repetition bounds")
    samples: list[float] = []
    rep = 0
    while rep < max_repetitions:
        samples.append(float(metric(seed_base + rep)))
        rep += 1
        if rep >= min_repetitions:
            med = float(np.median(samples))
            lo, hi = median_ci(samples, confidence)
            spread_ok = (
                med != 0
                and abs(hi - med) <= tolerance * abs(med)
                and abs(med - lo) <= tolerance * abs(med)
            ) or (med == 0 and lo == hi == 0)
            if spread_ok:
                break
    med = float(np.median(samples))
    lo, hi = median_ci(samples, confidence)
    return Datapoint(median=med, ci_low=lo, ci_high=hi,
                     repetitions=len(samples), samples=samples)
