"""repro — Communication-Avoiding Parallel Minimum Cuts and Connected Components.

A complete Python reproduction of Gianinazzi, Kalvoda, De Palma, Besta,
Hoefler (PPoPP 2018): the sparsification-based connected-components,
approximate minimum-cut and exact minimum-cut algorithms, executed on a
deterministic BSP machine simulator with the paper's cost model, plus the
baselines and every benchmark of the evaluation section.

Quick start::

    from repro import erdos_renyi, connected_components, minimum_cut
    from repro.rng import philox_stream

    g = erdos_renyi(1000, 4000, philox_stream(0))
    cc = connected_components(g, p=8, seed=1)
    mc = minimum_cut(g, p=8, seed=1)
    print(cc.n_components, mc.value)
"""

from repro.graph import (
    EdgeList,
    AdjacencyMatrix,
    erdos_renyi,
    watts_strogatz,
    barabasi_albert,
    rmat,
)
from repro.core import (
    connected_components,
    approx_minimum_cut,
    minimum_cut,
    minimum_cut_sequential,
    cc_sequential,
    CCResult,
    ApproxMinCutResult,
    MinCutResult,
)
from repro.bsp import Engine, MachineModel, run_spmd
from repro.trace import (
    TraceEvent,
    RecordingTracer,
    aggregate_trace,
    read_jsonl,
    write_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "EdgeList",
    "AdjacencyMatrix",
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "rmat",
    "connected_components",
    "approx_minimum_cut",
    "minimum_cut",
    "minimum_cut_sequential",
    "cc_sequential",
    "CCResult",
    "ApproxMinCutResult",
    "MinCutResult",
    "Engine",
    "MachineModel",
    "run_spmd",
    "TraceEvent",
    "RecordingTracer",
    "aggregate_trace",
    "read_jsonl",
    "write_jsonl",
    "__version__",
]
