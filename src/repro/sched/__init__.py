"""Fault-tolerant trial scheduling for the Monte-Carlo minimum-cut runs.

The §4 algorithm is embarrassingly retryable: every trial is a pure
function of the replicated graph and its own RNG stream
(``RngStreams(seed).aux(trial_id)``), so a crashed batch of trials can be
re-dispatched — on the same or a different backend — and produce the
exact bits the lost run would have.  This package turns that property
into machinery:

* :mod:`repro.sched.ledger` — the durable record of every trial
  (status, result, witness), JSONL-checkpointable and resumable;
* :mod:`repro.sched.programs` — the wave-dispatch SPMD program whose
  per-trial results are independent of batching and processor count;
* :mod:`repro.sched.scheduler` — the retry/backoff dispatch loop with
  deterministic fault injection (:mod:`repro.faults`), straggler
  detection from trace wait deltas, and partial-result aggregation that
  reports the *achieved* success probability.
"""

from repro.sched.ledger import (
    LEDGER_MAGIC,
    TrialLedger,
    TrialRecord,
    decode_side,
    encode_side,
)
from repro.sched.programs import mincut_trials_program
from repro.sched.scheduler import (
    SCHED_DISPATCH,
    SCHED_RETRY,
    ScheduledMinCut,
    TrialRun,
    TrialScheduler,
    detect_stragglers,
    merge_reports,
    split_trace,
    wait_by_rank,
)

__all__ = [
    "LEDGER_MAGIC",
    "TrialLedger",
    "TrialRecord",
    "encode_side",
    "decode_side",
    "mincut_trials_program",
    "TrialScheduler",
    "TrialRun",
    "ScheduledMinCut",
    "SCHED_DISPATCH",
    "SCHED_RETRY",
    "merge_reports",
    "split_trace",
    "wait_by_rank",
    "detect_stragglers",
]
