"""The fault-tolerant dispatch loop over the trial ledger.

:class:`TrialScheduler` owns *policy* — wave sizing, retry budget,
exponential backoff with deterministic jitter, checkpointing cadence and
the fault plan under test — while the execution backends own *mechanism*.
One :meth:`TrialScheduler.run` call:

1. plans the trial budget (:func:`~repro.core.trials.num_trials`) or
   resumes a :class:`~repro.sched.ledger.TrialLedger` checkpoint;
2. splits the pending trial ids into waves and dispatches each wave as
   one ``backend.run`` of
   :func:`~repro.sched.programs.mincut_trials_program`;
3. on a :class:`~repro.runtime.errors.WorkerFailure` stamps the in-flight
   trial ids onto the error, sleeps the backoff, and re-dispatches the
   wave — the retry recomputes the exact bits the lost run would have
   produced, because each trial's RNG stream is keyed by its global id;
4. records per-trial results in the ledger (checkpointed after every
   wave) and finally folds the minimum in trial-id order, reporting the
   *achieved* success probability
   (:func:`~repro.core.trials.achieved_success_probability`) computed
   from the trials that actually completed.

Scheduler activity is surfaced as trace events (kinds
:data:`SCHED_DISPATCH` / :data:`SCHED_RETRY`) with **no participants and
zero deltas**, so they are invisible to
:func:`~repro.trace.report.aggregate_trace` — each dispatch's slice of
the combined trace still reconciles bit-exactly against that dispatch's
counters (:func:`split_trace` recovers the slices).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bsp.counters import CountersReport, ProcCounters
from repro.bsp.machine import TimeEstimate
from repro.core.trials import achieved_success_probability, num_trials
from repro.faults import FaultPlan
from repro.graph.fingerprint import cached_fingerprint
from repro.graph.shm import eligible, pin, plane_slices, publish, release_pins
from repro.rng.streams import RngStreams
from repro.runtime.base import Backend, resolve_backend
from repro.runtime.errors import WorkerFailure
from repro.sched.ledger import TrialLedger
from repro.sched.programs import mincut_trials_program
from repro.trace.events import TraceEvent

__all__ = [
    "SCHED_DISPATCH",
    "SCHED_RETRY",
    "ScheduledMinCut",
    "TrialRun",
    "TrialScheduler",
    "merge_reports",
    "split_trace",
    "wait_by_rank",
    "detect_stragglers",
]

logger = logging.getLogger(__name__)

#: Trace-event kind marking the start of one wave dispatch (gid = wave
#: index, gseq = attempt number, words = number of trial ids dispatched).
SCHED_DISPATCH = "sched:dispatch"

#: Trace-event kind marking a failed attempt about to be retried.
SCHED_RETRY = "sched:retry"


def _sched_event(kind: str, wave: int, attempt: int, count: int) -> TraceEvent:
    """A scheduler marker event: no participants, zero deltas — a no-op
    for trace aggregation, a wave/attempt boundary for readers."""
    return TraceEvent(kind=kind, gid=wave, participants=(), words=count,
                      gseq=attempt)


def split_trace(events: Sequence[TraceEvent]) -> list[list[TraceEvent]]:
    """Split a scheduled run's combined trace at dispatch boundaries.

    Returns one event list per *successful* dispatch, with the scheduler
    marker events removed; each slice individually satisfies
    ``aggregate_trace(slice) == that dispatch's CountersReport`` (the
    slices cannot be aggregated together: per-rank superstep indices
    restart at every dispatch).
    """
    pieces: list[list[TraceEvent]] = []
    current: list[TraceEvent] | None = None
    for ev in events:
        if ev.kind == SCHED_DISPATCH:
            current = []
            pieces.append(current)
        elif ev.kind == SCHED_RETRY:
            continue
        elif current is not None:
            current.append(ev)
    return [piece for piece in pieces if piece]


def wait_by_rank(events: Sequence[TraceEvent]) -> dict[int, float]:
    """Total imbalance wait accrued per rank over a trace (op units)."""
    waits: dict[int, float] = {}
    for ev in events:
        for i, r in enumerate(ev.participants):
            waits[r] = waits.get(r, 0.0) + ev.d_wait[i]
    return waits


def detect_stragglers(
    events: Sequence[TraceEvent],
    *,
    factor: float = 4.0,
    min_deficit_ops: float = 1000.0,
) -> list[int]:
    """Ranks the others spent disproportionate time waiting for.

    The wait delta of a superstep's *slowest* rank is zero — everyone
    else's measures how long they idled for it — so a straggler shows up
    as a rank whose **total wait is far below** its peers'.  A rank is
    flagged when the maximum total wait exceeds both ``factor`` times its
    own and ``min_deficit_ops`` more than its own (the absolute floor
    keeps balanced runs with tiny waits from producing noise flags).
    Deterministic on ops-based wait counters: an injected ``work`` fault
    is flagged identically on the simulator and the mp backend.
    """
    waits = wait_by_rank(events)
    if len(waits) < 2:
        return []
    top = max(waits.values())
    return sorted(
        r for r, w in waits.items()
        if w * factor < top and top - w >= min_deficit_ops
    )


def merge_reports(reports: list[CountersReport]) -> CountersReport:
    """Sequential composition of per-dispatch reports (field-wise sums).

    Per-dispatch maxima are summed, which upper-bounds the true max of
    the summed per-rank totals; ``p`` is the maximum over dispatches
    (waves may in principle run at different widths).  Public because the
    2-out pipeline composes its preprocessing dispatch with the
    per-replica trial dispatches the same way.
    """
    return CountersReport(
        p=max(r.p for r in reports),
        computation=sum(r.computation for r in reports),
        volume=sum(r.volume for r in reports),
        supersteps=sum(r.supersteps for r in reports),
        misses=sum(r.misses for r in reports),
        wait=sum(r.wait for r in reports),
        total_ops=sum(r.total_ops for r in reports),
        total_volume=sum(r.total_volume for r in reports),
    )


@dataclass(frozen=True)
class ScheduledMinCut:
    """Result of a scheduled (fault-tolerant) minimum-cut run."""

    value: float
    side: np.ndarray | None
    trials: int                      # planned trial budget
    completed: int                   # trials with a recorded result
    requested_success_prob: float
    achieved_success_prob: float     # recomputed from `completed`
    ledger: TrialLedger
    report: CountersReport
    time: TimeEstimate
    dispatches: int                  # successful wave dispatches
    retries: int                     # failed attempts that were retried
    #: Combined trace (scheduler markers + per-dispatch events) when the
    #: backend traced, else None.  Use :func:`split_trace` to recover the
    #: per-dispatch slices for aggregation.
    trace: list | None = None
    #: wave index -> ranks flagged by :func:`detect_stragglers` (traced
    #: runs only; empty dict otherwise).
    stragglers: dict[int, list[int]] | None = None
    #: Collect-all runs: every distinct minimum-cut witness discovered,
    #: in canonical order; ``None`` for single-witness runs.
    sides: list[np.ndarray] | None = None


@dataclass
class TrialRun:
    """Open state of one scheduled run between ``begin`` and ``finish``.

    Produced by :meth:`TrialScheduler.begin`; advanced one wave at a time
    by :meth:`TrialScheduler.run_wave`; folded by
    :meth:`TrialScheduler.finish`.  Multi-tenant callers (the serve
    daemon) hold many of these open at once and interleave their waves
    through a single shared backend.
    """

    scheduler: "TrialScheduler"
    runtime: Backend
    p: int
    seed: int
    n: int
    m: int
    success_prob: float
    trials: int
    collect_all: bool
    dense: bool
    checkpoint: str | None
    ledger: TrialLedger
    slices: object  # PlaneSlices marker; backends stage or localize it
    waves: list[list[int]]
    jitter_rng: np.random.Generator
    # -- accumulators, advanced by run_wave ----------------------------------
    reports: list[CountersReport] = None
    app_s: float = 0.0
    mpi_s: float = 0.0
    events: list[TraceEvent] = None
    traced_any: bool = False
    stragglers: dict[int, list[int]] = None
    dispatches: int = 0
    retries: int = 0
    next_wave: int = 0
    #: Plan-scoped graph-plane pin: set by ``begin`` on plane-enabled
    #: backends so the published graph survives *between* waves (each
    #: wave's own publish/pin is a registry hit, not a copy).  Dropped by
    #: ``release`` — called from ``finish`` and every abandon path.
    plane_fp: str | None = None

    def __post_init__(self):
        if self.reports is None:
            self.reports = []
        if self.events is None:
            self.events = []
        if self.stragglers is None:
            self.stragglers = {}

    @property
    def done(self) -> bool:
        """Whether every wave has been dispatched."""
        return self.next_wave >= len(self.waves)

    def step(self) -> bool:
        """Dispatch the next wave; returns False once all waves ran."""
        if self.done:
            return False
        self.scheduler.run_wave(self, self.next_wave)
        self.next_wave += 1
        return True

    def release(self) -> None:
        """Drop the plan-scoped graph-plane pin (idempotent).

        Called by ``finish``; multi-tenant callers must also call it on
        every abandon path (cancel, error, shutdown) so an unfinished
        run never strands a ``/dev/shm`` segment.
        """
        fp, self.plane_fp = self.plane_fp, None
        if fp is not None:
            release_pins((fp,))


class TrialScheduler:
    """Dispatch policy for fault-tolerant Monte-Carlo trial runs.

    Parameters
    ----------
    max_retries:
        Failed attempts a wave may accumulate before the scheduler gives
        up on it (0 disables retry).
    backoff_s / backoff_factor / backoff_jitter:
        Sleep before attempt ``k``'s retry is
        ``backoff_s * backoff_factor**k`` scaled by a deterministic
        jitter draw in ``[1, 1 + backoff_jitter]`` (Philox stream derived
        from the master seed, so even sleep schedules replay).
    wave_size:
        Trials per dispatch.  ``None`` (default) dispatches all pending
        trials as a single wave — the zero-overhead shape: one extra
        ``gather`` versus the legacy monolithic program.  Smaller waves
        trade throughput for finer checkpoint/retry granularity.
    checkpoint:
        Ledger JSONL path, written atomically after every wave (and on a
        wave's terminal failure).  Required for ``resume=True``.
    fault_plan:
        :class:`~repro.faults.FaultPlan` narrowed per ``(wave, attempt)``
        and handed to the backend — the deterministic failure testbed.
    on_failure:
        ``"raise"`` (default): re-raise a wave's error once retries are
        exhausted.  ``"continue"``: mark the wave's trials failed and
        keep going; the final result then reports the honest (smaller)
        achieved success probability over the trials that completed.
    sleep:
        Injectable sleep (tests pass a recorder to assert the backoff
        schedule without waiting it out).
    """

    def __init__(
        self,
        *,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.1,
        wave_size: int | None = None,
        checkpoint: str | None = None,
        fault_plan: FaultPlan | None = None,
        on_failure: str = "raise",
        straggler_factor: float = 4.0,
        straggler_min_deficit_ops: float = 1000.0,
        sleep=time.sleep,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s < 0 or backoff_factor < 1.0 or backoff_jitter < 0:
            raise ValueError(
                "need backoff_s >= 0, backoff_factor >= 1, "
                f"backoff_jitter >= 0; got {backoff_s}, {backoff_factor}, "
                f"{backoff_jitter}"
            )
        if wave_size is not None and wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        if on_failure not in ("raise", "continue"):
            raise ValueError(
                f"on_failure must be 'raise' or 'continue', got {on_failure!r}"
            )
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_jitter = float(backoff_jitter)
        self.wave_size = wave_size
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        self.on_failure = on_failure
        self.straggler_factor = float(straggler_factor)
        self.straggler_min_deficit_ops = float(straggler_min_deficit_ops)
        self.sleep = sleep

    # -- helpers -------------------------------------------------------------

    def backoff_delay(self, attempt: int, jitter_draw: float) -> float:
        """Sleep before re-dispatching after failed attempt ``attempt``."""
        base = self.backoff_s * (self.backoff_factor ** attempt)
        return base * (1.0 + self.backoff_jitter * jitter_draw)

    def _ledger_for(self, *, trials: int, n: int, m: int, seed: int,
                    resume: bool, checkpoint: str | None = None,
                    graph_fp: str | None = None) -> TrialLedger:
        checkpoint = checkpoint if checkpoint is not None else self.checkpoint
        if resume:
            if not checkpoint:
                raise ValueError(
                    "resume=True needs a checkpoint path on the scheduler"
                )
            ledger = TrialLedger.load(checkpoint)
            if not ledger.matches(trials=trials, n=n, m=m, seed=seed,
                                  graph_fp=graph_fp):
                raise ValueError(
                    f"checkpoint {checkpoint!r} belongs to a different "
                    f"run: it has (seed={ledger.seed}, trials="
                    f"{ledger.trials}, n={ledger.n}, m={ledger.m}, "
                    f"graph_fp={ledger.graph_fp!r}), this run "
                    f"is (seed={seed}, trials={trials}, n={n}, m={m}, "
                    f"graph_fp={graph_fp!r})"
                )
            if ledger.graph_fp is None:
                ledger.graph_fp = graph_fp
            return ledger
        return TrialLedger(trials, n, m, seed, graph_fp=graph_fp)

    # -- steppable run -------------------------------------------------------
    #
    # ``run`` is ``begin`` + one ``run_wave`` per wave + ``finish``.  The
    # split exists for multi-tenant callers (the serve-layer daemon): they
    # hold many open :class:`TrialRun` states and interleave single waves
    # from different jobs through one backend.  Because every trial's RNG
    # stream is keyed by its global id, interleaving does not change any
    # result bit — it only reorders which dispatch computes which trial.

    def begin(
        self,
        g,
        p: int = 4,
        *,
        backend: "str | Backend | None" = None,
        seed: int = 0,
        success_prob: float = 0.9,
        trials: int | None = None,
        trial_scale: float = 1.0,
        resume: bool = False,
        collect_all: bool = False,
        dense: bool = False,
        checkpoint: str | None = None,
    ) -> "TrialRun":
        """Plan a scheduled run and return its open :class:`TrialRun` state.

        ``checkpoint`` overrides the scheduler-level checkpoint path for
        this run only (multi-tenant callers give every job its own ledger
        file while sharing one scheduler's policy knobs).
        """
        if g.n < 2:
            raise ValueError("minimum cut needs at least 2 vertices")
        runtime = resolve_backend(backend)
        n, m = g.n, max(g.m, 1)
        if trials is None:
            trials = num_trials(n, m, success_prob=success_prob,
                                scale=trial_scale)
        checkpoint = checkpoint if checkpoint is not None else self.checkpoint
        graph_fp = cached_fingerprint(g)
        ledger = self._ledger_for(trials=trials, n=n, m=m, seed=seed,
                                  resume=resume, checkpoint=checkpoint,
                                  graph_fp=graph_fp)
        slices = plane_slices(g, p)
        # Plan-scoped pin: publish once per *plan*, not once per wave —
        # each wave's stage_plane is then a registry hit, and the
        # segment stays mapped across the whole retry/backoff schedule.
        plane_fp = None
        if getattr(runtime, "graph_plane", False) and eligible(g):
            publish(g, fingerprint=graph_fp)
            pin(graph_fp)
            plane_fp = graph_fp
        pending = ledger.pending_ids()
        size = self.wave_size or max(1, len(pending))
        waves = [pending[i:i + size] for i in range(0, len(pending), size)]
        # Jitter draws come from a seed-derived Philox stream disjoint
        # from every trial stream, so retry schedules replay exactly.
        jitter_rng = RngStreams(seed ^ 0x5EEDBACC).aux(0)
        return TrialRun(
            scheduler=self, runtime=runtime, p=p, seed=seed, n=n, m=m,
            success_prob=success_prob, trials=trials,
            collect_all=collect_all, dense=dense, checkpoint=checkpoint,
            ledger=ledger, slices=slices, waves=waves,
            jitter_rng=jitter_rng, plane_fp=plane_fp,
        )

    def run_wave(self, run: "TrialRun", wave: int) -> None:
        """Dispatch wave ``wave`` of ``run`` (with retries) and record it."""
        ledger, ids = run.ledger, run.waves[wave]
        attempt = 0
        while True:
            specs = (self.fault_plan.for_dispatch(wave, attempt)
                     if self.fault_plan else ())
            ledger.mark_running(ids, wave=wave)
            if run.checkpoint:
                ledger.save(run.checkpoint)
            run.events.append(
                _sched_event(SCHED_DISPATCH, wave, attempt, len(ids)))
            kwargs = {}
            if run.collect_all:
                kwargs["collect_all"] = True
            if run.dense:
                kwargs["dense"] = True
            try:
                rr = run.runtime.run(
                    mincut_trials_program, run.p, seed=run.seed,
                    args=(run.slices, run.n, tuple(ids), run.seed),
                    kwargs=kwargs or None,
                    faults=specs or None,
                )
            except WorkerFailure as exc:
                exc.attach_trials(ids)
                ledger.mark_pending(ids)
                run.events.pop()  # failed dispatch: drop its marker
                if attempt >= self.max_retries:
                    ledger.mark_failed(ids)
                    if run.checkpoint:
                        ledger.save(run.checkpoint)
                    if self.on_failure == "raise":
                        raise
                    logger.warning(
                        "wave %d failed after %d attempt(s); continuing "
                        "without trials %s: %s",
                        wave, attempt + 1, list(ids), exc,
                    )
                    break
                run.events.append(
                    _sched_event(SCHED_RETRY, wave, attempt, len(ids)))
                delay = self.backoff_delay(
                    attempt, float(run.jitter_rng.random()))
                logger.info(
                    "wave %d attempt %d failed (%s); retrying in %.3fs",
                    wave, attempt, exc, delay,
                )
                if delay > 0:
                    self.sleep(delay)
                attempt += 1
                run.retries += 1
                continue
            break
        if ledger.records[ids[0]].status == "failed":
            return  # on_failure="continue" path: wave abandoned

        for ti, value, payload in rr.root_value:
            if run.collect_all:
                cuts = payload
                witness = cuts[min(cuts)] if cuts else None
                ledger.record_done(ti, value, witness,
                                   sides=list(cuts.values()))
            else:
                ledger.record_done(ti, value, payload)
        if run.checkpoint:
            ledger.save(run.checkpoint)
        run.dispatches += 1
        run.reports.append(rr.report)
        run.app_s += rr.time.app_s
        run.mpi_s += rr.time.mpi_s
        if rr.trace is not None:
            run.traced_any = True
            run.events.extend(rr.trace)
            found = detect_stragglers(
                rr.trace,
                factor=self.straggler_factor,
                min_deficit_ops=self.straggler_min_deficit_ops,
            )
            if found:
                run.stragglers[wave] = found
                logger.warning(
                    "wave %d straggler rank(s) %s: peers idled waiting "
                    "on them (trace wait deltas)", wave, found,
                )

    def finish(self, run: "TrialRun") -> ScheduledMinCut:
        """Fold ``run``'s ledger into the final :class:`ScheduledMinCut`."""
        run.release()
        ledger = run.ledger
        value, side = ledger.best()
        completed = ledger.completed
        if completed == 0:
            raise RuntimeError(
                "no trial completed: every wave failed and on_failure="
                "'continue' swallowed the errors"
            )
        report = (merge_reports(run.reports) if run.reports
                  else CountersReport.from_procs(
                      [ProcCounters() for _ in range(run.p)]))
        return ScheduledMinCut(
            value=value, side=side, trials=run.trials, completed=completed,
            requested_success_prob=run.success_prob,
            achieved_success_prob=achieved_success_probability(
                run.n, run.m, completed),
            ledger=ledger, report=report,
            time=TimeEstimate(app_s=run.app_s, mpi_s=run.mpi_s),
            dispatches=run.dispatches, retries=run.retries,
            trace=run.events if run.traced_any else None,
            stragglers=run.stragglers if run.traced_any else None,
            sides=ledger.min_cut_sides() if run.collect_all else None,
        )

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        g,
        p: int = 4,
        *,
        backend: "str | Backend | None" = None,
        seed: int = 0,
        success_prob: float = 0.9,
        trials: int | None = None,
        trial_scale: float = 1.0,
        resume: bool = False,
        collect_all: bool = False,
        dense: bool = False,
    ) -> ScheduledMinCut:
        """Scheduled minimum cut of ``g``: plan, dispatch, retry, fold.

        Bit-identical to :func:`~repro.core.mincut.minimum_cut` in value
        for the same ``seed`` (the witness may differ only between
        exactly tied minimum cuts, where both are correct), and
        bit-identical to *itself* across fault-free, faulted-and-retried
        and checkpoint/resumed executions.
        """
        run = self.begin(
            g, p, backend=backend, seed=seed, success_prob=success_prob,
            trials=trials, trial_scale=trial_scale, resume=resume,
            collect_all=collect_all, dense=dense,
        )
        try:
            while run.step():
                pass
            return self.finish(run)
        finally:
            run.release()
