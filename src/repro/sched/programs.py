"""The wave-dispatch SPMD program behind the trial scheduler.

:func:`mincut_trials_program` runs an *explicit set* of trial ids — one
scheduler wave — and returns each trial's result individually, where the
legacy :func:`~repro.core.mincut.mincut_program` runs ``range(trials)``
and folds the minimum internally.  Returning per-trial results is what
makes retry, checkpointing and partial aggregation possible: the ledger
records every trial, and the fold happens *outside* the backend, in
deterministic trial-id order.

Determinism contract: trial ``ti``'s RNG is ``RngStreams(seed).aux(ti)``,
keyed by the **global** trial id — exactly the stream the legacy program
and :func:`~repro.core.mincut.minimum_cut_sequential` use.  A trial's
``(value, side)`` is therefore a pure function of ``(graph, seed, ti)``,
independent of which wave dispatched it, which attempt succeeded, how
many processors ran it, or how the ids were batched.
"""

from __future__ import annotations

import numpy as np

from repro.cache.traced import AnalyticTracker
from repro.core.karger_stein import karger_stein_matrix, karger_stein_matrix_all
from repro.core.mincut import (
    _edges_to_dense,
    sequential_trial,
    sequential_trial_all,
)
from repro.rng.sampling import CumulativeWeightSampler
from repro.rng.streams import RngStreams

__all__ = ["mincut_trials_program"]


def mincut_trials_program(ctx, slices, n, trial_ids, trial_seed,
                          collect_all=False, dense=False):
    """SPMD program: run the given trials, gather per-trial results to root.

    Trials are owned round-robin by position — position ``j`` belongs to
    rank ``j % p`` — so any ``p`` covers the wave and per-trial results
    are identical regardless.  Rank 0 returns the wave's results as a
    list of ``(trial_id, value, side)`` sorted by trial id — or, with
    ``collect_all``, ``(trial_id, value, {canonical_key: side})``
    carrying every tied minimum-cut witness the trial found (Lemma 4.3);
    other ranks return ``None``.

    ``dense`` runs each trial directly through the dense bulk-contraction
    recursion (:func:`~repro.core.karger_stein.karger_stein_matrix`) on
    an adjacency matrix densified **once per wave**, skipping the sparse
    eager step entirely.  That is the right shape for tiny graphs — the
    2-out pipeline's ~16-vertex contracted replicas — where the n x n
    matrix is a few KB and the eager step's per-trial sampling dominates.
    Dense trials consume different RNG trajectories than sparse ones, so
    the per-trial (value, side) bits differ; each trial still finds the
    minimum cut with at least the Lemma 2.2 probability the budget was
    priced for (a direct recursion from n preserves a min cut at least
    as well as eager-contraction to ~sqrt(m) followed by the recursion).

    Two collectives: the graph-replication ``allgatherv`` and the result
    ``gather`` — so fault ``step=0`` fires before any trial work and
    ``step=1`` fires after a rank finished its trials but before the
    results reach the coordinator (the "work lost at the last moment"
    scenario recovery tests want).
    """
    comm = ctx.comm
    p = ctx.p
    g = slices[ctx.rank]

    # Replicate the distributed edge array, exactly as the legacy
    # program's p <= t path does (§4: broadcast when trials dominate).
    parts = yield from comm.allgatherv(g.u, g.v, g.w)
    fu, fv, fw = parts
    ctx.charge_scan(fu.size, words_per_elem=3)

    mine = []
    if fu.size == 0:
        side = np.zeros(n, dtype=bool)
        side[0] = True
        for j, ti in enumerate(trial_ids):
            if j % p == ctx.rank:
                payload = {b"": side} if collect_all else side
                mine.append((int(ti), 0.0, payload))
    elif dense:
        streams = RngStreams(trial_seed)
        tracker = AnalyticTracker(ctx.cache)
        a0 = _edges_to_dense(fu, fv, fw, n)
        tracker.alloc("edges", fu.size, words_per_elem=3)
        tracker.alloc("ks_matrix", n * n)
        tracker.scan("edges", 0, fu.size)
        dense_fn = karger_stein_matrix_all if collect_all \
            else karger_stein_matrix
        for j, ti in enumerate(trial_ids):
            if j % p != ctx.rank:
                continue
            tracker.scan("ks_matrix", 0, n * n)
            tracker.ops(n * n)
            val, payload = dense_fn(a0.copy(), streams.aux(int(ti)), tracker)
            mine.append((int(ti), float(val), payload))
        ctx.charge(ops=tracker.op_count, misses=tracker.miss_count)
    else:
        streams = RngStreams(trial_seed)
        tracker = AnalyticTracker(ctx.cache)
        first_sampler = CumulativeWeightSampler(fw)
        tracker.alloc("edges", fu.size, words_per_elem=3)
        tracker.alloc("labels", n)
        trial_fn = sequential_trial_all if collect_all else sequential_trial
        for j, ti in enumerate(trial_ids):
            if j % p != ctx.rank:
                continue
            val, payload = trial_fn(
                fu, fv, fw, n, streams.aux(int(ti)),
                mem=tracker, first_sampler=first_sampler,
            )
            mine.append((int(ti), float(val), payload))
        ctx.charge(ops=tracker.op_count, misses=tracker.miss_count)

    gathered = yield from comm.gather(mine, root=0)
    if ctx.rank != 0:
        return None
    results = [item for part in gathered for item in part]
    results.sort(key=lambda item: item[0])
    return results
