"""The trial ledger: one durable record per Monte-Carlo trial.

The ledger is the scheduler's source of truth.  Each planned trial id
maps to a :class:`TrialRecord` carrying its lifecycle status, the trial's
result (cut value + witness partition, hex-packed), how many dispatch
attempts it took and which scheduler wave last owned it.  Because a
trial's result is a pure function of ``(graph, master seed, trial id)``,
the ledger composes freely: records produced by different dispatches,
backends or resumed runs are interchangeable bit-for-bit.

Checkpoint format (JSONL, one object per line)::

    {"kind": "repro-trial-ledger", "version": 1, "seed": ..., "trials": T,
     "n": ..., "m": ...}
    {"trial": 0, "status": "done", "value": 2.0, "side": "ab03...",
     "attempts": 1, "wave": 0}
    ...

The header pins the run identity (master seed, planned trial count,
graph shape); resuming against a mismatched checkpoint is an error, not
a silent wrong answer.  Witness sides are ``np.packbits`` hex strings —
8 vertices per byte — decoded against the header's ``n``.

The :meth:`TrialLedger.fingerprint` hash covers only the *deterministic*
fields (trial id, status, value, witness).  Attempt counts and wave
assignments depend on which faults fired and where a resume cut the run,
so they are excluded: a fault-free run, a crash-and-retry run and a
checkpoint/resume run of the same seed all fingerprint identically —
the bit-identical-ledger guarantee the determinism tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LEDGER_MAGIC",
    "TrialRecord",
    "TrialLedger",
    "encode_side",
    "decode_side",
]

#: Header ``kind`` tag of a ledger checkpoint file.
LEDGER_MAGIC = "repro-trial-ledger"

#: Checkpoint schema version.
LEDGER_VERSION = 1

#: Legal record statuses, in lifecycle order.
STATUSES = ("pending", "running", "done", "failed")


def encode_side(side: np.ndarray) -> str:
    """Pack a boolean witness partition into a hex string (8 verts/byte)."""
    return np.packbits(np.asarray(side, dtype=bool)).tobytes().hex()


def _canonical(side: np.ndarray) -> np.ndarray:
    """Normalize a cut to the side not containing vertex 0 (the
    orientation :func:`~repro.core.karger_stein.canonical_cut_key` keys
    by), so hex-encoded sides deduplicate side/complement pairs."""
    side = np.asarray(side, dtype=bool)
    return ~side if side[0] else side


def decode_side(hexstr: str, n: int) -> np.ndarray:
    """Inverse of :func:`encode_side` for an ``n``-vertex partition."""
    raw = np.frombuffer(bytes.fromhex(hexstr), dtype=np.uint8)
    return np.unpackbits(raw, count=n).astype(bool)


@dataclass
class TrialRecord:
    """Lifecycle + result of one trial."""

    trial: int
    status: str = "pending"
    value: float | None = None
    side_hex: str | None = None
    attempts: int = 0
    wave: int | None = None
    #: Collect-all runs: every tied minimum-cut witness this trial found
    #: (hex-packed, sorted); ``None`` for single-witness runs.
    sides_hex: list[str] | None = None

    def to_doc(self) -> dict:
        doc = {
            "trial": self.trial, "status": self.status, "value": self.value,
            "side": self.side_hex, "attempts": self.attempts,
            "wave": self.wave,
        }
        if self.sides_hex is not None:
            doc["sides"] = self.sides_hex
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "TrialRecord":
        if doc.get("status") not in STATUSES:
            raise ValueError(f"bad trial record status {doc.get('status')!r}")
        return cls(
            trial=int(doc["trial"]), status=doc["status"],
            value=doc.get("value"), side_hex=doc.get("side"),
            attempts=int(doc.get("attempts", 0)),
            wave=doc.get("wave"),
            sides_hex=doc.get("sides"),
        )


class TrialLedger:
    """All planned trials of one scheduled run, checkpointable as JSONL."""

    def __init__(self, trials: int, n: int, m: int, seed: int,
                 records: dict[int, TrialRecord] | None = None,
                 graph_fp: str | None = None):
        if trials < 1:
            raise ValueError(f"need at least one trial, got {trials}")
        self.trials = int(trials)
        self.n = int(n)
        self.m = int(m)
        self.seed = int(seed)
        #: Optional content fingerprint of the graph this run belongs to
        #: (:func:`repro.graph.content_fingerprint`).  Strictly stronger
        #: identity than the ``(n, m)`` shape check; checkpoints written
        #: before it existed simply omit it and stay loadable.
        self.graph_fp = graph_fp
        if records is None:
            records = {ti: TrialRecord(ti) for ti in range(trials)}
        self.records = records

    # -- queries -------------------------------------------------------------

    def pending_ids(self) -> list[int]:
        """Trials still owed a result, in id order.

        ``running`` and ``failed`` records count as pending: a ``running``
        record in a loaded checkpoint means the writer died mid-dispatch,
        and a resume gives ``failed`` trials a fresh retry budget.
        """
        return [ti for ti in sorted(self.records)
                if self.records[ti].status != "done"]

    @property
    def completed(self) -> int:
        """Number of trials with a recorded result."""
        return sum(1 for r in self.records.values() if r.status == "done")

    def side_of(self, trial: int) -> np.ndarray | None:
        rec = self.records[trial]
        return None if rec.side_hex is None else decode_side(rec.side_hex, self.n)

    def best(self) -> tuple[float, np.ndarray | None]:
        """Minimum over completed trials, folded in trial-id order.

        Ties keep the lowest trial id — one canonical winner regardless
        of wave sizes, processor counts, retries or resume points.
        """
        best_val, best_ti = math.inf, None
        for ti in sorted(self.records):
            rec = self.records[ti]
            if rec.status == "done" and rec.value < best_val:
                best_val, best_ti = rec.value, ti
        if best_ti is None:
            return math.inf, None
        return best_val, self.side_of(best_ti)

    # -- transitions ---------------------------------------------------------

    def mark_running(self, trial_ids, wave: int) -> None:
        for ti in trial_ids:
            rec = self.records[ti]
            rec.status = "running"
            rec.wave = wave
            rec.attempts += 1

    def mark_pending(self, trial_ids) -> None:
        """Return trials to the queue after a failed dispatch."""
        for ti in trial_ids:
            self.records[ti].status = "pending"

    def mark_failed(self, trial_ids) -> None:
        for ti in trial_ids:
            self.records[ti].status = "failed"

    def record_done(self, trial: int, value: float, side: np.ndarray,
                    sides=None) -> None:
        rec = self.records[trial]
        rec.status = "done"
        rec.value = float(value)
        rec.side_hex = None if side is None else encode_side(side)
        if sides is not None:
            rec.sides_hex = sorted(encode_side(_canonical(s)) for s in sides)

    def min_cut_sides(self) -> list[np.ndarray]:
        """All distinct minimum-cut witnesses across completed trials.

        Collect-all analogue of :meth:`best`: the union of every tied
        witness recorded by trials achieving the global minimum, ordered
        by their hex encoding (deterministic across wave sizes, retries
        and resumes).  Falls back to single witnesses for records
        without a collect-all side list.
        """
        best_val = math.inf
        for rec in self.records.values():
            if rec.status == "done" and rec.value < best_val:
                best_val = rec.value
        if not math.isfinite(best_val):
            return []
        keys: set[str] = set()
        for ti in sorted(self.records):
            rec = self.records[ti]
            if rec.status != "done" or rec.value != best_val:
                continue
            if rec.sides_hex is not None:
                keys.update(rec.sides_hex)
            elif rec.side_hex is not None:
                keys.add(rec.side_hex)
        return [decode_side(k, self.n) for k in sorted(keys)]

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """sha256 over the deterministic fields only (see module docstring)."""
        h = hashlib.sha256()
        h.update(f"{self.seed}|{self.trials}|{self.n}|{self.m}\n".encode())
        for ti in sorted(self.records):
            rec = self.records[ti]
            h.update(
                f"{rec.trial}|{rec.status}|{rec.value!r}|{rec.side_hex}|"
                f"{rec.sides_hex}\n".encode()
            )
        return h.hexdigest()

    # -- checkpoint ----------------------------------------------------------

    def header(self) -> dict:
        doc = {
            "kind": LEDGER_MAGIC, "version": LEDGER_VERSION,
            "seed": self.seed, "trials": self.trials,
            "n": self.n, "m": self.m,
        }
        if self.graph_fp is not None:
            doc["graph_fp"] = self.graph_fp
        return doc

    def save(self, path: str) -> None:
        """Atomically write the full ledger as JSONL (tmp + rename)."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for ti in sorted(self.records):
                fh.write(json.dumps(self.records[ti].to_doc(),
                                    sort_keys=True) + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "TrialLedger":
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            raise ValueError(f"empty ledger checkpoint {path!r}")
        header = json.loads(lines[0])
        if header.get("kind") != LEDGER_MAGIC:
            raise ValueError(
                f"{path!r} is not a trial-ledger checkpoint "
                f"(kind={header.get('kind')!r})"
            )
        if header.get("version") != LEDGER_VERSION:
            raise ValueError(
                f"ledger checkpoint version {header.get('version')!r} not "
                f"supported (expected {LEDGER_VERSION})"
            )
        records = {}
        for line in lines[1:]:
            rec = TrialRecord.from_doc(json.loads(line))
            records[rec.trial] = rec
        ledger = cls(header["trials"], header["n"], header["m"],
                     header["seed"], records=records,
                     graph_fp=header.get("graph_fp"))
        missing = set(range(ledger.trials)) - set(records)
        if missing:
            raise ValueError(
                f"ledger checkpoint {path!r} is missing trial record(s) "
                f"{sorted(missing)[:10]}"
            )
        return ledger

    def matches(self, *, trials: int, n: int, m: int, seed: int,
                graph_fp: str | None = None) -> bool:
        """Whether this ledger belongs to the given run identity.

        The graph content fingerprint is compared only when both sides
        carry one, so pre-fingerprint checkpoints keep resuming on the
        weaker ``(n, m)`` shape identity.
        """
        if (graph_fp is not None and self.graph_fp is not None
                and self.graph_fp != graph_fp):
            return False
        return (self.trials == trials and self.n == n
                and self.m == m and self.seed == seed)
