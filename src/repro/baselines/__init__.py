"""Baseline algorithms the paper compares against (§5, §6).

* ``bgl_cc`` — sequential linear-time BFS traversal (stands in for the Boost
  Graph Library's ``connected_components``);
* ``galois_cc`` / ``galois_cc_parallel`` — asynchronous shared-memory
  union-find CC (stands in for the Galois framework's implementation);
* ``pbgl_cc`` — BSP Shiloach–Vishkin hooking + pointer jumping, O(log n)
  supersteps and O((n+m) log n) work (stands in for the Parallel BGL);
* ``stoer_wagner`` — the deterministic O(nm + n^2 log n) minimum cut;
* ``karger_stein`` — the sequential cache-oblivious Karger–Stein baseline
  (repeated recursive contraction).

Each substitution is documented in DESIGN.md §2; the reimplementations have
the same asymptotics and memory-access structure as the binaries used in
the paper, which is what the figures compare.
"""

from repro.baselines.cc_bfs import bgl_cc
from repro.baselines.cc_async import galois_cc, galois_cc_parallel
from repro.baselines.cc_bsp import pbgl_cc, pbgl_cc_program
from repro.baselines.stoer_wagner import stoer_wagner
from repro.baselines.karger_stein import karger_stein

__all__ = [
    "bgl_cc",
    "galois_cc",
    "galois_cc_parallel",
    "pbgl_cc",
    "pbgl_cc_program",
    "stoer_wagner",
    "karger_stein",
]
