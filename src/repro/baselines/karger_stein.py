"""Sequential cache-oblivious Karger–Stein baseline ("KS", [13]).

Repeated recursive contraction on the dense weight matrix.  A single
recursive contraction finds a given minimum cut with probability
1/Omega(log n) (Lemma 2.2), so ``ceil(ln(1/(1-P)) * log2 n)`` repetitions
give success probability P — the same 0.9 default as the artifact.

The matrix recursion itself is shared with the exact minimum cut's
Recursive Step leaf (:mod:`repro.core.karger_stein`); this module adds the
EdgeList-facing driver and the repetition loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cache.traced import MemoryTracker, NullTracker
from repro.core.karger_stein import karger_stein_matrix
from repro.graph.edgelist import EdgeList
from repro.graph.matrix import AdjacencyMatrix
from repro.rng.streams import RngStreams

__all__ = ["karger_stein", "ks_repetitions"]


def ks_repetitions(n: int, success_prob: float = 0.9) -> int:
    """Repetition count for overall success probability ``success_prob``."""
    if not 0 < success_prob < 1:
        raise ValueError(f"success_prob must be in (0, 1), got {success_prob}")
    return max(1, math.ceil(math.log(1 / (1 - success_prob))
                            * max(1.0, math.log2(max(n, 2)))))


def karger_stein(
    g: EdgeList | AdjacencyMatrix,
    *,
    seed: int = 0,
    success_prob: float = 0.9,
    repetitions: int | None = None,
    mem: MemoryTracker | None = None,
) -> tuple[float, np.ndarray]:
    """Minimum cut by repeated recursive contraction; ``(value, side)``."""
    mem = mem or NullTracker()
    if isinstance(g, EdgeList):
        a = AdjacencyMatrix.from_edgelist(g).a
    else:
        a = g.a
    n = a.shape[0]
    if n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    reps = repetitions if repetitions is not None else ks_repetitions(n, success_prob)
    streams = RngStreams(seed)
    best_val = math.inf
    best_side = None
    mem.alloc("ks_matrix", n * n)
    for rep in range(reps):
        val, side = karger_stein_matrix(a, streams.aux(rep), mem)
        if val < best_val:
            best_val = val
            best_side = side
        if best_val == 0.0:
            break  # disconnected: exact already
    return best_val, best_side
