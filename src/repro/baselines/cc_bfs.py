"""Sequential BFS connected components ("BGL" baseline).

The Boost Graph Library computes components with a linear-time graph
traversal over adjacency lists.  We reproduce that access pattern: a CSR
adjacency structure, a visit queue, and frontier-order neighbour access —
the pointer-chasing behaviour whose cache misses Figure 4 contrasts with
the streaming passes of the sampling-based CC.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.traced import MemoryTracker, NullTracker
from repro.graph.edgelist import EdgeList

__all__ = ["bgl_cc", "build_csr"]


def build_csr(g: EdgeList) -> tuple[np.ndarray, np.ndarray]:
    """Compressed sparse row adjacency: ``(xadj, adj)`` with both directions."""
    deg = np.zeros(g.n + 1, dtype=np.int64)
    np.add.at(deg, g.u + 1, 1)
    np.add.at(deg, g.v + 1, 1)
    xadj = np.cumsum(deg)
    # Vectorized fill: group endpoints by source (stable sort keeps the
    # per-vertex neighbour order deterministic); offsets match the cumsum.
    src = np.concatenate([g.u, g.v])
    dst = np.concatenate([g.v, g.u])
    order = np.argsort(src, kind="stable")
    adj = dst[order]
    return xadj, adj


def bgl_cc(
    g: EdgeList,
    mem: MemoryTracker | None = None,
) -> tuple[np.ndarray, int]:
    """BFS components; returns ``(labels, count)`` with dense labels.

    ``mem`` records the traversal's memory behaviour (CSR pointer array,
    adjacency touches in frontier order, label writes).
    """
    mem = mem or NullTracker()
    xadj, adj = build_csr(g)
    n = g.n
    mem.alloc("xadj", n + 1)
    mem.alloc("adj", adj.size)
    mem.alloc("labels", n)
    mem.alloc("queue", max(n, 1))

    labels = np.full(n, -1, dtype=np.int64)
    count = 0
    queue: deque[int] = deque()
    pushes = 0
    pops = 0
    for start in range(n):
        mem.touch("labels", start)
        mem.ops(1)
        if labels[start] != -1:
            continue
        labels[start] = count
        queue.append(start)
        mem.touch("queue", pushes % n)
        pushes += 1
        while queue:
            x = queue.popleft()
            mem.touch("queue", pops % n)
            pops += 1
            lo, hi = xadj[x], xadj[x + 1]
            mem.touch("xadj", x)
            if hi > lo:
                mem.scan("adj", int(lo), int(hi - lo))
            neighbours = adj[lo:hi]
            mem.ops(int(hi - lo) + 1)
            for y in neighbours.tolist():
                mem.touch("labels", y)
                if labels[y] == -1:
                    labels[y] = count
                    queue.append(y)
                    mem.touch("queue", pushes % n)
                    pushes += 1
            mem.ops(2 * int(hi - lo))
        count += 1
    return labels, count
