"""Deterministic Stoer–Wagner minimum cut ("SW" baseline).

The O(nm + n^2 log n) algorithm the paper benchmarks through its BGL
implementation (§5.3).  Our implementation runs maximum-adjacency search on
a dense weight matrix with vectorized weight updates — the same
whole-matrix-per-phase traffic that makes SW dramatically more
cache-expensive than KS and MC in Figure 9.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cache.traced import MemoryTracker, NullTracker
from repro.graph.edgelist import EdgeList
from repro.graph.matrix import AdjacencyMatrix

__all__ = ["stoer_wagner"]


def stoer_wagner(
    g: EdgeList | AdjacencyMatrix,
    mem: MemoryTracker | None = None,
) -> tuple[float, np.ndarray]:
    """Exact minimum cut; ``(value, side)``.

    On a disconnected input the maximum-adjacency search jumps between
    components and some phase reports value 0, so the trivial zero cut is
    returned correctly.
    """
    mem = mem or NullTracker()
    if isinstance(g, EdgeList):
        a = AdjacencyMatrix.from_edgelist(g).a.copy()
    else:
        a = g.a.copy()
    n = a.shape[0]
    if n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    mem.alloc("sw_matrix", n * n)
    mem.alloc("sw_weights", n)

    active = list(range(n))
    # groups[x] = original vertices currently merged into matrix vertex x.
    groups: list[list[int]] = [[x] for x in range(n)]
    best_val = math.inf
    best_members: list[int] | None = None

    while len(active) > 1:
        # Maximum adjacency search over the active vertices.
        idx = np.array(active, dtype=np.int64)
        weights = np.zeros(idx.size, dtype=np.float64)
        in_a = np.zeros(idx.size, dtype=bool)
        # Start from the first active vertex.
        in_a[0] = True
        weights += a[np.ix_(idx[in_a], idx)].sum(axis=0)
        mem.scan("sw_matrix", 0, n)
        order = [0]
        for _step in range(idx.size - 1):
            w_masked = np.where(in_a, -np.inf, weights)
            nxt = int(np.argmax(w_masked))
            order.append(nxt)
            in_a[nxt] = True
            weights += a[idx[nxt], idx]
            mem.scan("sw_matrix", int(idx[nxt]) * n, n)
            mem.scan("sw_weights", 0, idx.size)
            mem.ops(3 * idx.size)
        s = idx[order[-2]]
        t = idx[order[-1]]
        cut_of_phase = float(a[t, idx].sum())
        if cut_of_phase < best_val:
            best_val = cut_of_phase
            best_members = list(groups[t])
        # Merge t into s.
        a[s, :] += a[t, :]
        a[:, s] += a[:, t]
        a[s, s] = 0.0
        a[t, :] = 0.0
        a[:, t] = 0.0
        mem.scan("sw_matrix", 0, 4 * n)
        mem.ops(4 * n)
        groups[s].extend(groups[t])
        groups[t] = []
        active.remove(int(t))

    if not math.isfinite(best_val):
        raise ValueError("Stoer-Wagner requires a connected graph")
    side = np.zeros(n, dtype=bool)
    side[best_members] = True
    if side.all() or not side.any():
        raise ValueError("Stoer-Wagner requires a connected graph")
    return best_val, side
