"""Asynchronous shared-memory connected components ("Galois" baseline).

Galois computes components with an asynchronous union-find over the edge
list (fine-grained atomic hooks, no barriers).  Sequentially that is a
single streaming pass over the edges with path-compressed finds into the
parent array — exactly the access pattern we reproduce and instrument.

The parallel variant models the shared-memory execution on our BSP
machine: every core runs union-find over its slice of the edge array (the
asynchronous phase: conflicts are rare and retried cheaply, so a slice-local
pass captures the work), then the per-core spanning forests — at most
``n - 1`` edges each — are merged at one core.  The merge is the serial
fraction that limits speedup on sparse graphs, which is the behaviour
Figure 3 shows for every framework.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.engine import Engine
from repro.cache.traced import MemoryTracker, NullTracker
from repro.graph.contract import compress_labels
from repro.graph.edgelist import EdgeList
from repro.kernels import cc_labels, cc_roots, earliest_forest, flatten_parents

__all__ = ["galois_cc", "galois_cc_parallel"]

def _union_find_pass(n, u, v, mem: MemoryTracker, parent=None):
    """Union-find over the edge stream; returns (parent, forest_edges)."""
    if parent is None:
        parent = np.arange(n, dtype=np.int64)
    forest_u = []
    forest_v = []

    def find(x: int) -> int:
        hops = 0
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
            hops += 1
        mem.touch("parent", x)
        mem.ops(2 * hops + 1)
        return x

    mem.scan("edges", 0, u.size)
    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if ra > rb:
            ra, rb = rb, ra
        parent[rb] = ra
        mem.touch("parent", rb)
        mem.ops(1)
        forest_u.append(a)
        forest_v.append(b)
    return parent, (np.array(forest_u, dtype=np.int64),
                    np.array(forest_v, dtype=np.int64))

def galois_cc(
    g: EdgeList,
    mem: MemoryTracker | None = None,
) -> tuple[np.ndarray, int]:
    """Sequential asynchronous-style union-find CC; ``(labels, count)``."""
    mem = mem or NullTracker()
    if isinstance(mem, NullTracker):
        # Nothing to instrument: the whole pass is the vectorized kernel
        # (min-wins roots, so the labels match the traced path exactly).
        return cc_labels(g.n, g.u, g.v)
    mem.alloc("edges", g.m, words_per_elem=2)
    mem.alloc("parent", g.n)
    parent, _ = _union_find_pass(g.n, g.u, g.v, mem)
    # Final flatten so every vertex points at its root.
    parent = flatten_parents(parent)
    mem.scan("parent")
    mem.ops(2 * g.n)
    return compress_labels(parent)

#: Modeled cost (in unit operations) of one atomic hook on the shared
#: parent array: a CAS plus fence is ~25-60 ns on a Broadwell socket even
#: uncontended, i.e. tens of cycles — the synchronization cost the paper's
#: introduction cites [7] as a motivation for avoiding fine-grained
#: shared-memory updates.  Charged once per processed edge.
_ATOMIC_COST_OPS = 25


def _galois_program(ctx, slices, n):
    """BSP model of the shared-memory execution: local UF + forest merge."""
    g = slices[ctx.rank]
    # Asynchronous phase: every core hooks its slice (charged analytically —
    # a streaming edge pass with random parent-array touches plus the
    # atomic-update cost of the lock-free hooks).  The forest a min-wins
    # union-find merges on is the arrival-order spanning forest, which the
    # vectorized kernel computes without the per-edge loop.
    fu, fv = earliest_forest(n, g.u, g.v)
    ctx.charge_scan(g.m, words_per_elem=2)
    ctx.charge_random(3 * g.m, working_set=n)
    ctx.charge(ops=_ATOMIC_COST_OPS * g.m)
    forests = yield from ctx.comm.gather((fu, fv), root=0)
    if ctx.rank == 0:
        mu = np.concatenate([f[0] for f in forests])
        mv = np.concatenate([f[1] for f in forests])
        parent = cc_roots(n, mu, mv)
        ctx.charge_scan(mu.size, words_per_elem=2)
        ctx.charge_random(3 * mu.size + 2 * n, working_set=n)
        labels, count = compress_labels(parent)
        return labels, count
    return None, 0

def galois_cc_parallel(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    engine: Engine | None = None,
):
    """Parallel Galois-style CC; returns ``(labels, count, report, time)``."""
    engine = engine or Engine()
    result = engine.run(_galois_program, p, seed=seed, args=(g.slices(p), g.n))
    labels, count = result.root_value
    return labels, count, result.report, result.time
