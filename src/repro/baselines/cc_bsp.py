"""BSP hooking + pointer-jumping connected components ("PBGL" baseline).

The Parallel Boost Graph Library's components algorithm is from the
Shiloach–Vishkin / Awerbuch–Shiloach family: a distributed parent array,
rounds of *conditional hooking* (roots hook onto smaller-labelled
neighbours' parents) and *pointer jumping*, until the forest stabilizes as
stars.  O(log n) supersteps and O((m + n) log n) work — the bounds §5.1
quotes for PBGL — with the characteristic per-round random remote lookups
that make it communication- and cache-hungry compared to the sampling CC.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.bsp.engine import Engine
from repro.graph.contract import compress_labels
from repro.graph.edgelist import EdgeList

__all__ = ["pbgl_cc", "pbgl_cc_program"]

#: Safety bound; Awerbuch–Shiloach needs O(log n) rounds.
_MAX_ROUNDS = 200


def _vertex_bounds(p: int, n: int) -> np.ndarray:
    """Block boundaries of the distributed parent array."""
    return np.array([i * n // p for i in range(p)] + [n], dtype=np.int64)


def _lookup(ctx, comm, queries: np.ndarray, par_local: np.ndarray,
            bounds: np.ndarray):
    """Generator: fetch ``parent[q]`` for every q (remote block owners)."""
    p = comm.size
    owner = (np.searchsorted(bounds, queries, side="right") - 1).astype(np.int64)
    order = np.argsort(owner, kind="stable")
    sorted_q = queries[order]
    counts = np.bincount(owner, minlength=p)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    requests = [sorted_q[offsets[j]:offsets[j + 1]] for j in range(p)]
    ctx.charge_sort(queries.size)
    incoming = yield from comm.alltoall(requests)
    lo = bounds[comm.rank]
    answers = [par_local[q - lo] for q in incoming]
    for q in incoming:
        ctx.charge_random(q.size, working_set=par_local.size)
    replies = yield from comm.alltoall(answers)
    flat = np.concatenate(replies) if replies else np.zeros(0, dtype=np.int64)
    out = np.empty(queries.size, dtype=np.int64)
    out[order] = flat
    ctx.charge_scan(queries.size)
    return out


def pbgl_cc_program(ctx, slices, n):
    """SPMD program; returns ``(labels, count)`` at rank 0."""
    comm = ctx.comm
    p = comm.size
    g = slices[ctx.rank]
    bounds = _vertex_bounds(p, n)
    lo, hi = int(bounds[ctx.rank]), int(bounds[ctx.rank + 1])
    par_local = np.arange(lo, hi, dtype=np.int64)

    for _round in range(_MAX_ROUNDS):
        # (1) Fetch the current parents of every local edge's endpoints.
        pu = yield from _lookup(ctx, comm, g.u, par_local, bounds)
        pv = yield from _lookup(ctx, comm, g.v, par_local, bounds)
        ctx.charge_scan(g.m, words_per_elem=2)

        # (2) Conditional hooking: propose min(pu, pv) as the new parent of
        #     max(pu, pv); the owner applies proposals to roots only.
        sel = pu != pv
        hi_side = np.maximum(pu[sel], pv[sel])
        lo_side = np.minimum(pu[sel], pv[sel])
        owner = (np.searchsorted(bounds, hi_side, side="right") - 1).astype(np.int64)
        order = np.argsort(owner, kind="stable")
        hs, ls = hi_side[order], lo_side[order]
        counts = np.bincount(owner, minlength=p)
        offs = np.concatenate([[0], np.cumsum(counts)])
        proposals = [
            (hs[offs[j]:offs[j + 1]], ls[offs[j]:offs[j + 1]]) for j in range(p)
        ]
        ctx.charge_sort(hi_side.size, words_per_elem=2)
        incoming = yield from comm.alltoall(proposals)
        changed_local = False
        for targets, values in incoming:
            if targets.size == 0:
                continue
            t_idx = targets - lo
            is_root = par_local[t_idx] == targets
            t_idx, values = t_idx[is_root], values[is_root]
            before = par_local[t_idx].copy()
            np.minimum.at(par_local, t_idx, values)
            if (par_local[t_idx] != before).any():
                changed_local = True
            ctx.charge_random(targets.size, working_set=par_local.size)

        # (3) One pointer-jumping shortcut: parent[x] <- parent[parent[x]].
        grand = yield from _lookup(ctx, comm, par_local, par_local, bounds)
        if (grand != par_local).any():
            changed_local = True
        par_local = grand
        ctx.charge_scan(par_local.size)

        changed = yield from comm.allreduce(changed_local, op=operator.or_)
        if not changed:
            break
    else:
        raise RuntimeError("hooking/pointer-jumping did not converge")

    blocks = yield from comm.gather(par_local, root=0)
    if ctx.rank == 0:
        parent = np.concatenate(blocks)
        labels, count = compress_labels(parent)
        ctx.charge_sort(n)
        return labels, count
    return None, 0


def pbgl_cc(
    g: EdgeList,
    p: int = 4,
    *,
    seed: int = 0,
    engine: Engine | None = None,
):
    """PBGL-style BSP CC; returns ``(labels, count, report, time)``."""
    engine = engine or Engine()
    result = engine.run(pbgl_cc_program, p, seed=seed, args=(g.slices(p), g.n))
    labels, count = result.root_value
    return labels, count, result.report, result.time
