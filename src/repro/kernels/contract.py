"""Vectorized bulk edge contraction over packed 64-bit endpoint keys.

Sparse Bulk Edge Contraction (§4.1) and its sequential counterpart both
reduce to: relabel endpoints under a vertex map (gather / ``np.take``), mask
self-loops, canonicalize each edge to ``(lo, hi)``, pack the pair into one
64-bit key ``lo * n_new + hi``, and aggregate parallel classes by key.

Two aggregation methods are provided:

* ``"reduceat"`` (default) — stable argsort + ``np.add.reduceat`` over equal
  runs.  This is byte-compatible with the pre-kernel implementations (the
  float sums accumulate in the same order), which the BSP counter baselines
  rely on.
* ``"bincount"`` — ``np.unique(..., return_inverse=True)`` +
  ``np.bincount(inverse, weights=w)``.  Same keys, weights equal only up to
  floating-point associativity (bincount accumulates in a different order),
  so it is offered for workloads that don't need bit-stable trajectories.

The kernels charge no costs; callers account for them analytically (see
``docs/kernels.md``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_edge_keys",
    "unpack_edge_keys",
    "combine_packed",
    "combine_sorted_run",
    "relabel_edge_arrays",
    "bulk_contract_edges",
    "stable_sort_with_order",
]


def pack_edge_keys(u: np.ndarray, v: np.ndarray, n: int) -> np.ndarray:
    """Pack canonicalized endpoint pairs into ``min*n + max`` int64 keys."""
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return lo * np.int64(n) + hi


def unpack_edge_keys(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_edge_keys`; returns ``(u, v)`` with ``u <= v``."""
    n = np.int64(n)
    return (keys // n).astype(np.int64), (keys % n).astype(np.int64)


def combine_sorted_run(
    keys: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Combine equal *consecutive* keys of a sorted run, summing weights."""
    if keys.size == 0:
        return keys, w
    starts = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
    return keys[starts], np.add.reduceat(w, starts)


def stable_sort_with_order(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted_keys, order)`` under a *stable* sort, fast for packed keys.

    numpy's ``kind="stable"`` argsort is mergesort for 64-bit ints; packing
    the arrival index into the low bits and running the default introsort on
    the composite is ~5x faster and yields the *identical* permutation
    (ties cannot exist, so stability is exact, not emulated).  Falls back to
    ``argsort(kind="stable")`` when the composite would overflow int64.
    """
    m = keys.size
    if m == 0:
        return keys, np.zeros(0, dtype=np.int64)
    bits = max(1, int(m - 1).bit_length())
    if keys.dtype == np.int64 and int(keys.min()) >= 0 \
            and int(keys.max()) < (1 << (63 - bits)):
        comp = np.sort((keys << np.int64(bits))
                       | np.arange(m, dtype=np.int64))
        return comp >> np.int64(bits), comp & np.int64((1 << bits) - 1)
    order = np.argsort(keys, kind="stable")
    return keys[order], order


def combine_packed(
    keys: np.ndarray, w: np.ndarray, method: str = "reduceat"
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate parallel classes: distinct sorted keys + summed weights."""
    if keys.size == 0:
        return keys, w
    if method == "reduceat":
        sorted_keys, order = stable_sort_with_order(keys)
        return combine_sorted_run(sorted_keys, w[order])
    if method == "bincount":
        uniq, inverse = np.unique(keys, return_inverse=True)
        return uniq, np.bincount(inverse, weights=w, minlength=uniq.size)
    raise ValueError(f"unknown combine method {method!r}")


def relabel_edge_arrays(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather new endpoint labels and drop the self-loops this creates."""
    u = labels[u]
    v = labels[v]
    keep = u != v
    return u[keep], v[keep], w[keep]


def bulk_contract_edges(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    labels: np.ndarray,
    n_new: int,
    method: str = "reduceat",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full sequential bulk contraction: relabel, drop loops, combine.

    Returns the contracted multigraph's combined edge arrays ``(u, v, w)``
    with ``u <= v``, ordered by packed key (i.e. lexicographically by
    endpoint pair).
    """
    u, v, w = relabel_edge_arrays(u, v, w, labels)
    if u.size == 0:
        return u, v, w
    keys = pack_edge_keys(u, v, n_new)
    keys, w = combine_packed(keys, w, method=method)
    out_u, out_v = unpack_edge_keys(keys, n_new)
    return out_u, out_v, w
