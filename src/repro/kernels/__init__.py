"""Vectorized hot-path kernels shared by the contraction algorithms.

Every contraction-style algorithm in this reproduction — Iterated Sampling
(§3.2), Prefix Selection and sparse/dense Bulk Edge Contraction (§4) — bottoms
out in a handful of label/contraction primitives.  This package provides them
as numpy-vectorized kernels with scalar reference implementations kept side by
side for differential testing:

* :mod:`repro.kernels.unionfind` — connected-component labels and roots
  (pointer-jumping label propagation / scipy traversal / scalar union-find),
  the earliest-arrival spanning forest, and the exact vectorized Prefix
  Selection kernel;
* :mod:`repro.kernels.contract` — bulk edge contraction over packed 64-bit
  endpoint keys (relabel via ``np.take``, self-loop mask, parallel-edge
  aggregation);
* :mod:`repro.kernels.twosample` — the per-vertex weighted two-out edge
  sampler of the GNT contraction preprocessing (one batched
  ``searchsorted`` over a shared incidence prefix-sum);
* :mod:`repro.kernels.reference` — the original pure-Python loops, preserved
  verbatim as ``slow=`` references.

**Bit-exactness contract.**  Each fast kernel returns byte-identical output to
its scalar reference (not merely the same partition): downstream sampling,
sample-sort splitters and communication volumes all depend on exact label
values, so anything weaker would silently change the simulated trajectories
and the recorded BSP counters of EXPERIMENTS.md.

**Cost-charging contract.**  Kernels never touch a BSP
:class:`~repro.bsp.engine.Context` or a cache tracker.  Callers charge costs
analytically (``ctx.charge_scan`` / ``charge_random`` / ``mem.ops``) from
input *sizes*, exactly as before, so vectorizing the Python loops cannot
change any counter.  See ``docs/kernels.md``.
"""

from repro.kernels.contract import (
    bulk_contract_edges,
    combine_packed,
    combine_sorted_run,
    pack_edge_keys,
    relabel_edge_arrays,
    stable_sort_with_order,
    unpack_edge_keys,
)
from repro.kernels.reference import (
    scalar_bulk_contract,
    scalar_cc_roots,
    scalar_prefix_select,
    scalar_two_out_sample,
)
from repro.kernels.twosample import two_out_sample, vertex_incidence
from repro.kernels.unionfind import (
    cc_labels,
    cc_roots,
    earliest_forest,
    flatten_parents,
    prefix_select_labels,
)

__all__ = [
    "bulk_contract_edges",
    "cc_labels",
    "cc_roots",
    "combine_packed",
    "combine_sorted_run",
    "earliest_forest",
    "flatten_parents",
    "pack_edge_keys",
    "prefix_select_labels",
    "relabel_edge_arrays",
    "scalar_bulk_contract",
    "scalar_cc_roots",
    "scalar_prefix_select",
    "scalar_two_out_sample",
    "stable_sort_with_order",
    "two_out_sample",
    "unpack_edge_keys",
    "vertex_incidence",
]
