"""Scalar reference implementations of the hot-path kernels.

These are the original pure-Python loops that the vectorized kernels in
:mod:`repro.kernels.unionfind` and :mod:`repro.kernels.contract` replaced.
They are kept (a) as the ``slow=`` escape hatch of the public entry points,
(b) as the ground truth of the differential property tests, and (c) as the
baseline the microbenchmarks and the perf gate measure speedups against.

Do not "optimize" these: their value is being obviously correct and
byte-for-byte equal to the pre-vectorization behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scalar_cc_roots",
    "scalar_prefix_select",
    "scalar_bulk_contract",
]


def _find(parent: np.ndarray, x: int) -> int:
    """Path-halving find (mutates ``parent`` along the way)."""
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = parent[x]
    return x


def scalar_cc_roots(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Union-find roots with the *min-wins* rule: root = min vertex of the
    component.  Deterministic representative, so the vectorized kernel can be
    compared for exact array equality, not just equal partitions.
    """
    parent = np.arange(n, dtype=np.int64)
    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = _find(parent, a), _find(parent, b)
        if ra == rb:
            continue
        if ra > rb:
            ra, rb = rb, ra
        parent[rb] = ra
    for x in range(n):
        parent[x] = _find(parent, x)
    return parent


def scalar_prefix_select(
    n: int, su: np.ndarray, sv: np.ndarray, t: int
) -> tuple[np.ndarray, int]:
    """The original Prefix Selection loop (union by size + path halving).

    Processes the permuted sample edge by edge, stopping as soon as the
    component count would drop below ``t``; labels are the dense renumbering
    of the final union-find roots in sorted-root order.  The vectorized
    kernel (:func:`repro.kernels.unionfind.prefix_select_labels`) reproduces
    this output byte for byte, including the size-based root choice.
    """
    if t < 1:
        raise ValueError(f"target component count must be >= 1, got {t}")
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    count = n

    for a, b in zip(su.tolist(), sv.tolist()):
        if count <= t:
            break
        ra, rb = _find(parent, a), _find(parent, b)
        if ra == rb:
            continue
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]
        count -= 1

    roots = np.array([_find(parent, x) for x in range(n)], dtype=np.int64)
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def scalar_bulk_contract(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, labels: np.ndarray, n_new: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pure-Python bulk edge contraction: relabel, drop loops, combine.

    One dictionary pass per edge — the per-element interpreter work the
    vectorized kernel (:func:`repro.kernels.contract.bulk_contract_edges`)
    exists to avoid.  Output matches the vectorized kernel exactly in the
    edge structure (distinct edges in ascending packed-key order); the
    summed weights agree only up to float associativity, because
    ``np.add.reduceat`` accumulates each run pairwise while this loop folds
    strictly left to right.
    """
    acc: dict[int, float] = {}
    nn = int(n_new)
    for a, b, wt in zip(u.tolist(), v.tolist(), w.tolist()):
        la, lb = int(labels[a]), int(labels[b])
        if la == lb:
            continue
        if la > lb:
            la, lb = lb, la
        key = la * nn + lb
        acc[key] = acc.get(key, 0.0) + wt
    keys = np.fromiter(sorted(acc), dtype=np.int64, count=len(acc))
    out_w = np.array([acc[k] for k in keys.tolist()], dtype=np.float64)
    out_u = keys // nn if keys.size else keys
    out_v = keys % nn if keys.size else keys
    return out_u.astype(np.int64), out_v.astype(np.int64), out_w
