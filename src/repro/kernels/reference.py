"""Scalar reference implementations of the hot-path kernels.

These are the original pure-Python loops that the vectorized kernels in
:mod:`repro.kernels.unionfind` and :mod:`repro.kernels.contract` replaced.
They are kept (a) as the ``slow=`` escape hatch of the public entry points,
(b) as the ground truth of the differential property tests, and (c) as the
baseline the microbenchmarks and the perf gate measure speedups against.

Do not "optimize" these: their value is being obviously correct and
byte-for-byte equal to the pre-vectorization behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scalar_cc_roots",
    "scalar_prefix_select",
    "scalar_bulk_contract",
    "scalar_two_out_sample",
]


def _find(parent: np.ndarray, x: int) -> int:
    """Path-halving find (mutates ``parent`` along the way)."""
    while parent[x] != x:
        parent[x] = parent[parent[x]]
        x = parent[x]
    return x


def scalar_cc_roots(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Union-find roots with the *min-wins* rule: root = min vertex of the
    component.  Deterministic representative, so the vectorized kernel can be
    compared for exact array equality, not just equal partitions.
    """
    parent = np.arange(n, dtype=np.int64)
    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = _find(parent, a), _find(parent, b)
        if ra == rb:
            continue
        if ra > rb:
            ra, rb = rb, ra
        parent[rb] = ra
    for x in range(n):
        parent[x] = _find(parent, x)
    return parent


def scalar_prefix_select(
    n: int, su: np.ndarray, sv: np.ndarray, t: int
) -> tuple[np.ndarray, int]:
    """The original Prefix Selection loop (union by size + path halving).

    Processes the permuted sample edge by edge, stopping as soon as the
    component count would drop below ``t``; labels are the dense renumbering
    of the final union-find roots in sorted-root order.  The vectorized
    kernel (:func:`repro.kernels.unionfind.prefix_select_labels`) reproduces
    this output byte for byte, including the size-based root choice.
    """
    if t < 1:
        raise ValueError(f"target component count must be >= 1, got {t}")
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    count = n

    for a, b in zip(su.tolist(), sv.tolist()):
        if count <= t:
            break
        ra, rb = _find(parent, a), _find(parent, b)
        if ra == rb:
            continue
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]
        count -= 1

    roots = np.array([_find(parent, x) for x in range(n)], dtype=np.int64)
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def scalar_bulk_contract(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, labels: np.ndarray, n_new: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pure-Python bulk edge contraction: relabel, drop loops, combine.

    One dictionary pass per edge — the per-element interpreter work the
    vectorized kernel (:func:`repro.kernels.contract.bulk_contract_edges`)
    exists to avoid.  Output matches the vectorized kernel exactly in the
    edge structure (distinct edges in ascending packed-key order); the
    summed weights agree only up to float associativity, because
    ``np.add.reduceat`` accumulates each run pairwise while this loop folds
    strictly left to right.
    """
    acc: dict[int, float] = {}
    nn = int(n_new)
    for a, b, wt in zip(u.tolist(), v.tolist(), w.tolist()):
        la, lb = int(labels[a]), int(labels[b])
        if la == lb:
            continue
        if la > lb:
            la, lb = lb, la
        key = la * nn + lb
        acc[key] = acc.get(key, 0.0) + wt
    keys = np.fromiter(sorted(acc), dtype=np.int64, count=len(acc))
    out_w = np.array([acc[k] for k in keys.tolist()], dtype=np.float64)
    out_u = keys // nn if keys.size else keys
    out_v = keys % nn if keys.size else keys
    return out_u.astype(np.int64), out_v.astype(np.int64), out_w


def scalar_two_out_sample(
    n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray, draws: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reference loop for :func:`repro.kernels.twosample.two_out_sample`.

    ``draws`` is the flat batch of ``2 n`` uniforms the fast path consumes
    (the caller draws it, so both paths share one RNG contract: slots
    ``2x`` and ``2x + 1`` belong to vertex ``x``).  For each vertex the
    incidence list is walked in the fast path's order — u-side entries in
    edge order, then v-side entries in edge order — a running prefix-sum
    over the incident weights is accumulated in that same order, and each
    draw is resolved by ``bisect_right`` over the prefix-sums, which is
    exactly ``np.searchsorted(..., side="right")``.  Every float operation
    mirrors the vectorized path one for one, so the outputs (and the
    round-off clamp) are byte-identical.
    """
    from bisect import bisect_right

    inc: list[list[int]] = [[] for _ in range(n)]
    for e, a in enumerate(u.tolist()):
        inc[a].append(e)
    for e, b in enumerate(v.tolist()):
        inc[b].append(e)

    # Global prefix-sum over the incidence-ordered weights, accumulated
    # left to right exactly like ``np.cumsum`` does.
    cum: list[float] = []
    starts = [0]
    total = 0.0
    for x in range(n):
        for e in inc[x]:
            total = total + float(w[e])
            cum.append(total)
        starts.append(len(cum))

    e1 = np.full(n, -1, dtype=np.int64)
    e2 = np.full(n, -1, dtype=np.int64)
    for x in range(n):
        lo, hi = starts[x], starts[x + 1]
        if lo == hi:
            continue  # isolated vertex: its two draws are discarded
        base = cum[lo - 1] if lo > 0 else 0.0
        top = cum[hi - 1]
        for slot, out in ((2 * x, e1), (2 * x + 1, e2)):
            target = base + float(draws[slot]) * (top - base)
            idx = bisect_right(cum, target)
            idx = min(max(idx, lo), hi - 1)
            out[x] = inc[x][idx - lo]
    return e1, e2
