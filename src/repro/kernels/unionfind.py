"""Vectorized connected-components / union-find kernels.

Three interchangeable backends compute component structure over edge arrays:

* ``"scipy"`` — compiled traversal via ``scipy.sparse.csgraph`` (fastest);
* ``"jumping"`` — pure-numpy hooking + pointer jumping (Shiloach–Vishkin
  style: hook the larger root onto the smaller, then jump ``parent`` to its
  fixpoint; O(log n) vectorized rounds);
* ``"scalar"`` — the original per-edge Python loop
  (:func:`repro.kernels.reference.scalar_cc_roots`).

All backends return *byte-identical* results: roots are always the minimum
vertex of each component (hence dense labels are in first-appearance order,
which is exactly what scipy's traversal produces).  The differential tests
assert exact array equality across backends.

:func:`prefix_select_labels` is the exact vectorized Prefix Selection
(§2.4 step 2): the edges the scalar union-find would merge are precisely the
minimum spanning forest of the sample under *arrival-index weights* (Kruskal
with weight = position), so the compiled MSF routine finds them, and a replay
of only those <= n-1 merges reproduces the size-based root choice — and thus
the exact label array — of the reference loop.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.contract import stable_sort_with_order
from repro.kernels.reference import _find, scalar_cc_roots, scalar_prefix_select

__all__ = [
    "cc_labels",
    "cc_roots",
    "earliest_forest",
    "flatten_parents",
    "prefix_select_labels",
]


def _scipy_csgraph():
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components, minimum_spanning_tree

    return coo_matrix, connected_components, minimum_spanning_tree


def _resolve_backend(backend: str) -> str:
    if backend == "auto":
        try:
            _scipy_csgraph()
        except ImportError:  # pragma: no cover - scipy is a hard dependency
            return "jumping"
        return "scipy"
    if backend not in ("scipy", "jumping", "scalar"):
        raise ValueError(f"unknown union-find backend {backend!r}")
    return backend


def flatten_parents(parent: np.ndarray) -> np.ndarray:
    """Pointer-jump ``parent`` to its fixpoint: every entry names its root.

    Vectorized full path compression: repeatedly ``parent <- parent[parent]``
    (each pass at least halves every path, so O(log depth) passes).  The
    result may alias the input when it is already flat.
    """
    parent = np.asarray(parent, dtype=np.int64)
    for _ in range(max(2, parent.size.bit_length() + 2)):
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand
    raise RuntimeError("parent array does not converge; cycle in forest?")


def _cc_roots_jumping(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Hooking + pointer jumping; returns the min vertex of each component."""
    parent = np.arange(n, dtype=np.int64)
    if u.size == 0:
        return parent
    keep = u != v
    u = u[keep]
    v = v[keep]
    for _ in range(max(2, 2 * n.bit_length() + 4)):
        if u.size == 0:
            return parent
        pu = parent[u]
        pv = parent[v]
        hi = np.maximum(pu, pv)
        lo = np.minimum(pu, pv)
        live = hi != lo
        if not live.any():
            return parent
        # Conditional hooking: every root named by an unresolved edge adopts
        # the smallest root proposed for it...
        np.minimum.at(parent, hi[live], lo[live])
        # ...then full pointer jumping makes all trees stars again.
        parent = flatten_parents(parent)
        alive = parent[u] != parent[v]
        u = u[alive]
        v = v[alive]
    raise RuntimeError("hooking/pointer-jumping did not converge; kernel bug")


def cc_roots(
    n: int, u: np.ndarray, v: np.ndarray, backend: str = "auto"
) -> np.ndarray:
    """Root (= minimum member vertex) of every vertex's component.

    Self-loops are ignored.  All backends agree exactly; see module docs.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    backend = _resolve_backend(backend)
    if backend == "scalar":
        return scalar_cc_roots(n, u, v)
    if backend == "jumping" or u.size == 0:
        return _cc_roots_jumping(n, u, v)
    labels, _k = _cc_labels_scipy(n, u, v)
    # scipy labels are in first-appearance order, so the first vertex holding
    # a label is the component minimum: map labels back to those vertices.
    _uniq, first = np.unique(labels, return_index=True)
    return first[labels].astype(np.int64)


def _cc_labels_scipy(n: int, u: np.ndarray, v: np.ndarray):
    coo_matrix, connected_components, _mst = _scipy_csgraph()
    adj = coo_matrix((np.ones(u.size, dtype=np.int8), (u, v)), shape=(n, n))
    count, labels = connected_components(adj, directed=False)
    return labels.astype(np.int64), int(count)


def cc_labels(
    n: int, u: np.ndarray, v: np.ndarray, backend: str = "auto"
) -> tuple[np.ndarray, int]:
    """Dense component labels ``0..k-1`` (first-appearance order) + count."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.size == 0:
        return np.arange(n, dtype=np.int64), n
    backend = _resolve_backend(backend)
    if backend == "scipy":
        return _cc_labels_scipy(n, u, v)
    roots = cc_roots(n, u, v, backend=backend)
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def earliest_forest(
    n: int, u: np.ndarray, v: np.ndarray, backend: str = "auto"
) -> tuple[np.ndarray, np.ndarray]:
    """The arrival-order spanning forest of the edge stream ``(u, v)``.

    Returns exactly the edges (original orientation, ascending position) that
    a union-find processing the stream front to back would merge on — the
    minimum spanning forest under weight = arrival index, computed by the
    compiled MSF routine instead of a per-edge Python loop.  Self-loops and
    repeated parallel edges never merge and are dropped.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    backend = _resolve_backend(backend)
    if backend in ("scalar", "jumping") or u.size == 0:
        return _earliest_forest_scalar(n, u, v)
    keep = u != v
    idx = np.flatnonzero(keep)
    if idx.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    # Only a pair's first arrival can merge: dedupe to the earliest position
    # of every unordered endpoint pair (stable sort keeps ascending index).
    key = lo * np.int64(n) + hi
    ks, order = stable_sort_with_order(key)
    starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
    sel = order[starts]
    coo_matrix, _cc, minimum_spanning_tree = _scipy_csgraph()
    g = coo_matrix(
        ((idx[sel] + 1).astype(np.float64), (lo[sel], hi[sel])), shape=(n, n)
    )
    tree = minimum_spanning_tree(g.tocsr()).tocoo()
    merge_at = np.sort(tree.data.astype(np.int64) - 1)
    return u[merge_at], v[merge_at]


def _earliest_forest_scalar(n, u, v):
    parent = np.arange(n, dtype=np.int64)
    fu, fv = [], []
    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = _find(parent, a), _find(parent, b)
        if ra == rb:
            continue
        parent[max(ra, rb)] = min(ra, rb)
        fu.append(a)
        fv.append(b)
    return np.array(fu, dtype=np.int64), np.array(fv, dtype=np.int64)


def prefix_select_labels(
    n: int, su: np.ndarray, sv: np.ndarray, t: int, backend: str = "auto"
) -> tuple[np.ndarray, int]:
    """Exact vectorized Prefix Selection: contract the longest prefix of the
    permuted sample ``(su, sv)`` leaving at least ``t`` components.

    Byte-identical to :func:`repro.kernels.reference.scalar_prefix_select`:
    the merge sequence is recovered vectorized (earliest-arrival forest), and
    only those ``<= min(n - t, n - 1)`` merges are replayed with the
    reference's union-by-size rule so the root *identities* — which order the
    dense labels through ``np.unique`` — come out the same.
    """
    if t < 1:
        raise ValueError(f"target component count must be >= 1, got {t}")
    su = np.asarray(su, dtype=np.int64)
    sv = np.asarray(sv, dtype=np.int64)
    if _resolve_backend(backend) == "scalar":
        return scalar_prefix_select(n, su, sv, t)
    budget = n - t
    parent = np.arange(n, dtype=np.int64)
    if budget > 0 and su.size:
        fu, fv = earliest_forest(n, su, sv, backend=backend)
        take = min(budget, fu.size)
        # Replay on plain Python lists: the loop runs only over the <= n-1
        # forest merges (never the full sample), and list indexing avoids
        # the per-access overhead of numpy scalar indexing.
        par = list(range(n))
        size = [1] * n
        for a, b in zip(fu[:take].tolist(), fv[:take].tolist()):
            while par[a] != a:
                par[a] = par[par[a]]
                a = par[a]
            while par[b] != b:
                par[b] = par[par[b]]
                b = par[b]
            if size[a] < size[b]:
                a, b = b, a
            par[b] = a
            size[a] += size[b]
        parent = flatten_parents(np.array(par, dtype=np.int64))
    uniq, labels = np.unique(parent, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)
