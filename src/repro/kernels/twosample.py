"""Per-vertex weighted two-out sampling (the GNT contraction step).

Random 2-out contraction (Ghaffari–Nowicki–Thorup; see PAPERS.md and
``docs/two_out.md``) has every vertex choose two incident edges
independently, each proportionally to edge weight; the chosen edges form a
sampled subgraph whose components are then bulk-contracted.  This module
provides the choice step as a vectorized kernel:

* :func:`vertex_incidence` — CSR-style incidence lists of the edge arrays
  (one stable argsort), amortizable across repeated samples on the same
  graph;
* :func:`two_out_sample` — all ``2 n`` weighted choices in one batch via
  :meth:`~repro.rng.sampling.CumulativeWeightSampler.sample_in_segments`
  (a single ``searchsorted`` over one shared prefix-sum).

**RNG contract.**  A call consumes exactly ``2 n`` uniforms from ``rng``
in one batch; draws ``2x`` and ``2x + 1`` belong to vertex ``x``.
Isolated vertices still own their two slots (drawn and discarded), so the
draw-to-vertex keying is a pure function of ``n`` — independent of the
edge set, the processor count and the execution backend.  That fixed
keying is what makes the 2-out preprocessing invariant to ``p`` and
backend, exactly like the per-trial streams of the minimum cut.

**Bit-exactness contract.**  ``slow=True`` runs the scalar reference
(:func:`repro.kernels.reference.scalar_two_out_sample`) on the same draw
batch; outputs are byte-identical because both paths accumulate the same
prefix-sums in the same order and resolve draws with the same
binary-search semantics (``bisect_right`` == ``searchsorted`` right) and
the same round-off clamp.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.reference import scalar_two_out_sample
from repro.rng.sampling import CumulativeWeightSampler

__all__ = ["vertex_incidence", "two_out_sample"]


def vertex_incidence(
    n: int, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style incidence lists of the edge arrays.

    Returns ``(edge_idx, starts)`` with
    ``edge_idx[starts[x]:starts[x + 1]]`` the indices (into ``u``/``v``)
    of the edges incident to vertex ``x`` — the u-side entries in edge
    order, then the v-side entries in edge order (every edge appears
    exactly twice overall).  The order is pinned by a *stable* argsort so
    the scalar reference can reproduce it with two sequential passes.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    m = int(u.size)
    owner = np.concatenate([u, v])
    slots = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
    order = np.argsort(owner, kind="stable")
    edge_idx = slots[order]
    counts = np.bincount(owner, minlength=n).astype(np.int64) if m else \
        np.zeros(n, dtype=np.int64)
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return edge_idx, starts


def two_out_sample(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    rng: np.random.Generator,
    *,
    incidence: tuple[np.ndarray, np.ndarray] | None = None,
    sampler: CumulativeWeightSampler | None = None,
    slow: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Two weighted incident-edge choices per vertex (the 2-out step).

    Returns ``(e1, e2)``: int64 arrays of length ``n`` holding each
    vertex's two chosen edge indices, ``-1`` for isolated vertices.  The
    choices are i.i.d. *with replacement* proportionally to edge weight
    within the vertex's incidence list (a degree-1 vertex picks its only
    edge twice — harmless for contraction).

    ``incidence`` (from :func:`vertex_incidence`) and ``sampler`` (a
    :class:`~repro.rng.sampling.CumulativeWeightSampler` built over
    ``w[edge_idx]``) let callers amortize the preprocessing across the
    contraction replicas and rounds that resample the same graph; both
    are rebuilt when omitted.  ``slow=True`` runs the scalar reference on
    the same uniform batch (byte-identical output, identical RNG
    consumption).
    """
    draws = rng.random(2 * n)
    if slow:
        return scalar_two_out_sample(n, u, v, w, draws)
    if incidence is None:
        incidence = vertex_incidence(n, u, v)
    edge_idx, starts = incidence
    e1 = np.full(n, -1, dtype=np.int64)
    e2 = np.full(n, -1, dtype=np.int64)
    if edge_idx.size == 0:
        return e1, e2
    if sampler is None:
        sampler = CumulativeWeightSampler(
            np.asarray(w, dtype=np.float64)[edge_idx])
    lo_all, hi_all = starts[:-1], starts[1:]
    live = hi_all > lo_all
    if not live.any():
        return e1, e2
    lo, hi = lo_all[live], hi_all[live]
    pairs = draws.reshape(n, 2)
    s1 = sampler.sample_in_segments(pairs[live, 0], lo, hi)
    s2 = sampler.sample_in_segments(pairs[live, 1], lo, hi)
    e1[live] = edge_idx[s1]
    e2[live] = edge_idx[s2]
    return e1, e2
