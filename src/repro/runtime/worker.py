"""Worker-process side of the multiprocess backend.

Each OS process runs the **same generator program** the simulator runs,
with a real :class:`~repro.bsp.engine.Context` (own Philox stream, own
:class:`~repro.bsp.counters.ProcCounters`, shared cache geometry).  The
driver loop below plays the engine's role locally: it advances the
generator until it yields a :class:`~repro.bsp.comm.CollectiveOp`, ships
the request to the coordinator over a pipe (bulk arrays via shared
memory), blocks for the result, and resumes the generator with it.

Counter parity with the simulator is bit-exact by construction: program
charges accumulate locally in exactly the simulator's order, and the
coordinator's reply carries the collective's charges (imbalance wait,
reduction ops, transfer words, transfer misses) which are applied in the
same field order the engine uses.  Wall-clock is split into *application*
time (generator running) and *MPI* time (blocked on a collective), the
measured analogue of the paper's T_app/T_MPI decomposition.

Must be spawn-safe: this module is imported fresh in spawned children, the
worker entry point is a top-level function, and everything a worker needs
arrives in a picklable :class:`WorkerSpec`.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, replace
from multiprocessing.reduction import ForkingPickler
from time import perf_counter
from typing import Any, Callable, Generator

from repro.bsp.comm import CollectiveOp, Communicator, Group
from repro.bsp.counters import ProcCounters
from repro.bsp.engine import Context
from repro.bsp.errors import CollectiveMismatchError
from repro.cache.model import CacheParams
from repro.faults import FaultInjector, FaultSpec
from repro.graph.shm import resolve_plane
from repro.rng.streams import RngStreams
from repro.runtime.transport import Transport, TransportStats, encode_payload

__all__ = ["WorkerSpec", "worker_main", "persistent_worker_main",
           "MSG_OP", "MSG_DONE", "MSG_ERROR",
           "REPLY_RESULT", "CMD_RUN", "CMD_EXIT"]

#: Wire tags: worker -> coordinator.
MSG_OP = "op"
MSG_DONE = "done"
MSG_ERROR = "error"

#: Wire tags: coordinator -> worker.
REPLY_RESULT = "result"

#: Wire tags: coordinator -> persistent worker (warm-pool command loop).
CMD_RUN = "run"
CMD_EXIT = "exit"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker needs, shipped picklable at process start."""

    rank: int
    p: int
    world_gid: int
    seed: int
    cache: CacheParams
    program: Callable[..., Generator]
    args: tuple
    kwargs: dict
    shm_threshold: int
    #: When True, every collective request additionally carries this
    #: rank's cumulative pre-request counter snapshot so the coordinator
    #: can emit per-superstep trace events.  Off by default: untraced
    #: requests carry only the op, the since-sync value, and the
    #: cleanliness flag that feeds the coordinator's fusion decision.
    trace: bool = False
    #: Pooled-arena transport (default); False selects the legacy
    #: one-segment-per-array codec, kept for differential benchmarking.
    use_arena: bool = True
    #: Deterministic faults to fire in this run (all ranks' specs; the
    #: worker filters by its own rank).  See :mod:`repro.faults`.
    faults: tuple[FaultSpec, ...] = ()
    #: Shared-memory slab name prefix for this rank's arena.  Set by the
    #: coordinator to a per-run deterministic value so that a killed
    #: worker's slabs can be swept by name prefix at pool shutdown.
    slab_prefix: str | None = None


def _drive(conn, spec: WorkerSpec, transport: Transport | None = None) -> None:
    """Run the program to completion, brokering collectives via ``conn``.

    ``transport`` hands in an externally owned transport (the warm pool's
    per-worker arena, kept open across runs); the default ``None`` creates
    a run-local one and closes it before the DONE report, exactly the
    one-shot worker lifecycle.  Either way the DONE message carries this
    run's stats only.
    """
    world = Group(spec.world_gid, tuple(range(spec.p)))
    counters = ProcCounters()
    ctx = Context(
        rank=spec.rank,
        p=spec.p,
        comm=Communicator(world, spec.rank),
        rng=RngStreams(spec.seed).for_rank(spec.rank),
        counters=counters,
        cache=spec.cache,
    )
    gen = gen_value = None
    app_s = mpi_s = 0.0
    inbox = None
    owns_transport = transport is None
    if owns_transport:
        transport = Transport(threshold=spec.shm_threshold,
                              use_arena=spec.use_arena,
                              slab_prefix=spec.slab_prefix)
    else:
        transport.stats = TransportStats()
    injector = FaultInjector(spec.faults, spec.rank)
    local_step = 0  # collectives this rank has completed
    #: (ops, misses) right after the previous reply was applied: the
    #: coordinator merges adjacent collectives into one superstep only
    #: when *every* member arrived with no local charges since its last
    #: one — the same cleanliness test the simulator applies (a `work`
    #: fault charges ops before this comparison, marking the rank dirty
    #: exactly as the simulator's fault wrapper does).
    post_sync = (counters.ops, counters.misses)

    # Graph-plane markers resolve here, once per run: attach the published
    # segment (cached across a warm worker's runs) and rebuild zero-copy
    # read-only views — the O(1)-pickle input path (repro.graph.shm).
    gen = spec.program(ctx, *resolve_plane(spec.args),
                       **resolve_plane(spec.kwargs))
    while True:
        t0 = perf_counter()
        try:
            op = gen.send(inbox)
        except StopIteration as stop:
            app_s += perf_counter() - t0
            gen_value = stop.value
            break
        app_s += perf_counter() - t0

        if not isinstance(op, CollectiveOp):
            raise TypeError(
                f"rank {spec.rank} yielded {type(op).__name__}; programs may "
                "only yield collective operations (use `yield from comm.<op>`)"
            )
        if op.sender != spec.rank:
            raise CollectiveMismatchError(
                f"rank {spec.rank} issued a collective through rank "
                f"{op.sender}'s communicator view"
            )

        # Deterministic fault injection point: after local compute, before
        # this rank's `local_step`-th collective request leaves the process
        # (the simulator wrapper injects at the same point — see
        # repro.faults).  `work` charges land before the since_sync
        # snapshot below, so the synthetic imbalance propagates into wait
        # counters exactly as real computation would.
        delay_s = 0.0
        dropped = False
        for fault in injector.at(local_step):
            if fault.kind == "crash":
                conn.close()  # abrupt: no error report, just a dead process
                os._exit(fault.exitcode)
            elif fault.kind == "work":
                counters.charge(ops=fault.ops)
            elif fault.kind == "stall":
                time.sleep(fault.seconds)
            elif fault.kind == "delay":
                delay_s += fault.seconds
            elif fault.kind == "drop":
                dropped = True

        # Snapshot the imbalance input *before* blocking: ops charged since
        # this rank's previous synchronization (the engine's `since_sync`).
        since_sync = counters.ops - counters.ops_at_last_sync
        clean = (counters.ops, counters.misses) == post_sync
        t1 = perf_counter()
        wire_payload, slabs = transport.encode(op.payload, op.kind)
        wire = replace(op, payload=wire_payload)
        if spec.trace:
            msg = (MSG_OP, spec.rank, wire, since_sync, clean,
                   counters.snapshot())
        else:
            msg = (MSG_OP, spec.rank, wire, since_sync, clean)
        buf = ForkingPickler.dumps(msg)
        transport.note_pickle(op.kind, len(buf))
        if dropped:
            # The request never reaches the coordinator: go silent until
            # the inactivity timeout tears the pool down.
            while True:
                time.sleep(3600.0)
        if delay_s:
            time.sleep(delay_s)
        conn.send_bytes(buf)
        msg = conn.recv()
        # The reply proves the coordinator decoded the request (it decodes
        # on receipt, before the collective runs): the slab is free again.
        transport.release(slabs)
        mpi_s += perf_counter() - t1

        if msg[0] != REPLY_RESULT:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected coordinator reply {msg[0]!r}")
        if len(msg) == 4:
            # Explicit batch: per-sub-op charge tuples, applied one by one
            # so cumulative floats accumulate in the simulator's exact
            # addition order (one batch = one superstep).
            _, payload, wait_delta, charges = msg
            counters.wait_ops += wait_delta
            counters.ops_at_last_sync = counters.ops
            counters.supersteps += 1
            for extra_ops, sent, recv, comm_misses in charges:
                counters.charge(ops=extra_ops)
                counters.charge_comm(sent, recv, misses=comm_misses)
        else:
            _, payload, wait_delta, extra_ops, sent, recv, comm_misses, \
                ss_inc = msg

            # Apply the collective's charges in the engine's order: sync
            # accounting first, then the handler's computation/transfer
            # costs.  A collective the coordinator fused into the previous
            # superstep (`ss_inc` False) arrives with a zero wait delta and
            # an unchanged ops total, so skipping the superstep increment
            # is the *only* state difference — exactly the simulator's
            # merge semantics.
            counters.wait_ops += wait_delta
            counters.ops_at_last_sync = counters.ops
            if ss_inc:
                counters.supersteps += 1
            counters.charge(ops=extra_ops)
            counters.charge_comm(sent, recv, misses=comm_misses)
        inbox = transport.decode(payload)
        post_sync = (counters.ops, counters.misses)
        local_step += 1

    # The DONE value rides legacy one-shot segments: this process (or, in
    # warm mode, this *run*) is past its arena sends when the coordinator
    # decodes, so arena slabs cannot carry it.
    done_value = encode_payload(gen_value, spec.shm_threshold)
    stats = transport.stats
    if owns_transport:
        transport.close()  # unlink own slabs *before* DONE: a clean exit
        #                    leaves nothing for the leak sweep to find
    conn.send((
        MSG_DONE, spec.rank, done_value,
        counters, app_s, mpi_s, stats,
    ))


def _reset_inherited_signals() -> None:
    """Fork-started workers inherit the parent's signal dispositions —
    including any custom SIGINT/SIGTERM handler a long-running CLI
    (``repro.cli serve``) installed, which must never run inside a
    worker.  Shutdown is the coordinator's concern: workers ignore
    Ctrl-C (the coordinator drains the pool and sends CMD_EXIT) and
    take the default action on SIGTERM."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass


def worker_main(conn, spec: WorkerSpec) -> None:
    """Process entry point: drive the program, report errors, never raise."""
    _reset_inherited_signals()
    try:
        _drive(conn, spec)
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        try:
            conn.send((
                MSG_ERROR, spec.rank, type(exc).__name__,
                traceback.format_exc(),
            ))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def persistent_worker_main(conn, spec: WorkerSpec) -> None:
    """Warm-pool process entry point: run many programs, one arena.

    Blocks on :data:`CMD_RUN` commands — each carries the per-run fields
    of the :class:`WorkerSpec` (program, args, seed, world gid, trace
    flag, fault specs; everything else is fixed at pool spawn) — and
    drives each through :func:`_drive` against a single long-lived
    :class:`~repro.runtime.transport.Transport`, so arena slabs stay
    mapped across runs.  Programs arrive pickled by *reference* (module
    + qualname) the **first** time a coordinator-assigned token appears;
    repeat runs ship only the token and the worker replays the cached
    callable — warm pools therefore require module-level program
    functions, true of every program in the tree.  :data:`CMD_EXIT` (or
    EOF from a departed coordinator) closes the arena and exits cleanly;
    any error is reported and ends the process, because a failed
    collective can leave peers blocked mid-protocol — the coordinator
    discards the whole pool on failure anyway.
    """
    _reset_inherited_signals()
    transport = Transport(threshold=spec.shm_threshold,
                          use_arena=spec.use_arena,
                          slab_prefix=spec.slab_prefix)
    programs: dict[int, Callable] = {}  # coordinator token -> callable
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # coordinator went away: clean exit
                break
            if msg[0] == CMD_EXIT:
                break
            if msg[0] != CMD_RUN:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown warm-pool command {msg[0]!r}")
            _, world_gid, seed, token, program, args, kwargs, trace, \
                faults = msg
            if program is None:
                program = programs[token]
            else:
                programs[token] = program
            _drive(conn, replace(
                spec, world_gid=world_gid, seed=seed, program=program,
                args=args, kwargs=kwargs, trace=trace, faults=faults,
            ), transport=transport)
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        try:
            conn.send((
                MSG_ERROR, spec.rank, type(exc).__name__,
                traceback.format_exc(),
            ))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        transport.close()
        conn.close()
