"""Differential harness: the simulator as oracle for real runtimes.

For a fixed root seed, every backend must return **byte-identical**
algorithmic results — component labellings, cut values, witness
partitions, per-rank BSP counters — because all randomness flows from the
seed through per-rank Philox streams and the collective semantics are
shared code.  Only the time estimate may differ (analytic vs measured).

:func:`compare_backends` runs one algorithm under two backends and
reports every mismatch; :func:`assert_backend_parity` raises
:class:`BackendParityError` on the first divergence.  The tier-1 test
suite drives this over all three §3–§4 algorithms, which is what lets the
multiprocess runtime evolve without ever silently drifting from the
paper's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsp.counters import CountersReport

__all__ = [
    "ALGORITHMS",
    "BackendParityError",
    "ParityReport",
    "compare_backends",
    "assert_backend_parity",
]

#: Algorithm tags accepted by the harness (artifact executable names).
ALGORITHMS = ("parallel_cc", "approx_cut", "square_root")


class BackendParityError(AssertionError):
    """Two backends disagreed on an algorithmic result or a counter."""


@dataclass(frozen=True)
class ParityReport:
    """Outcome of one differential run."""

    algorithm: str
    p: int
    seed: int
    backends: tuple[str, str]
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the two backends agreed on everything compared."""
        return not self.mismatches


def _run(algorithm: str, g, p: int, seed: int, backend, **kwargs):
    # Imported lazily: repro.core imports repro.runtime at module load.
    from repro.core import (
        approx_minimum_cut,
        connected_components,
        minimum_cut,
    )

    if algorithm == "parallel_cc":
        return connected_components(g, p=p, seed=seed, backend=backend,
                                    **kwargs)
    if algorithm == "approx_cut":
        return approx_minimum_cut(g, p=p, seed=seed, backend=backend,
                                  **kwargs)
    if algorithm == "square_root":
        return minimum_cut(g, p=p, seed=seed, backend=backend, **kwargs)
    raise ValueError(f"unknown algorithm {algorithm!r}; have {ALGORITHMS}")


def _cmp_scalar(out: list[str], name: str, a, b) -> None:
    if not (a == b or (a is None and b is None)):
        out.append(f"{name}: {a!r} != {b!r}")


def _cmp_array(out: list[str], name: str, a, b) -> None:
    if a is None and b is None:
        return
    if (a is None) != (b is None):
        out.append(f"{name}: one backend returned None ({a is None} vs {b is None})")
        return
    a, b = np.asarray(a), np.asarray(b)
    if a.dtype != b.dtype or a.shape != b.shape or not np.array_equal(a, b):
        out.append(
            f"{name}: arrays differ (dtype {a.dtype} vs {b.dtype}, "
            f"shape {a.shape} vs {b.shape}, "
            f"first diff at {_first_diff(a, b)})"
        )


def _first_diff(a: np.ndarray, b: np.ndarray):
    if a.shape != b.shape:
        return "n/a"
    diff = np.nonzero(a.ravel() != b.ravel())[0]
    return int(diff[0]) if diff.size else "none"


def _cmp_counters(out: list[str], a: CountersReport, b: CountersReport) -> None:
    for f in ("p", "computation", "volume", "supersteps", "misses", "wait",
              "total_ops", "total_volume"):
        va, vb = getattr(a, f), getattr(b, f)
        if va != vb:
            out.append(f"counters.{f}: {va!r} != {vb!r}")


def compare_backends(
    algorithm: str,
    g,
    *,
    p: int = 4,
    seed: int = 0,
    backends: tuple = ("sim", "mp"),
    **kwargs,
) -> ParityReport:
    """Run ``algorithm`` on ``g`` under two backends and diff the results.

    Compares the algorithmic outputs (labels / estimates / cut values /
    witness partitions, byte-wise for arrays) and every field of the
    aggregated counters report.  Time estimates are *not* compared: the
    simulator predicts, real backends measure.
    """
    if len(backends) != 2:
        raise ValueError("compare_backends expects exactly two backends")
    ra = _run(algorithm, g, p, seed, backends[0], **kwargs)
    rb = _run(algorithm, g, p, seed, backends[1], **kwargs)
    names = tuple(
        b if isinstance(b, str) else getattr(b, "name", type(b).__name__)
        for b in backends
    )
    out: list[str] = []

    if algorithm == "parallel_cc":
        _cmp_scalar(out, "n_components", ra.n_components, rb.n_components)
        _cmp_array(out, "labels", ra.labels, rb.labels)
    elif algorithm == "approx_cut":
        _cmp_scalar(out, "estimate", ra.estimate, rb.estimate)
        _cmp_scalar(out, "witness_value", ra.witness_value, rb.witness_value)
        _cmp_array(out, "witness_side", ra.witness_side, rb.witness_side)
    else:  # square_root
        _cmp_scalar(out, "value", ra.value, rb.value)
        _cmp_scalar(out, "trials", ra.trials, rb.trials)
        _cmp_array(out, "side", ra.side, rb.side)
    _cmp_counters(out, ra.report, rb.report)

    return ParityReport(algorithm=algorithm, p=p, seed=seed,
                        backends=names, mismatches=out)


def assert_backend_parity(
    algorithm: str,
    g,
    *,
    p: int = 4,
    seed: int = 0,
    backends: tuple = ("sim", "mp"),
    **kwargs,
) -> ParityReport:
    """:func:`compare_backends`, raising :class:`BackendParityError` on drift."""
    report = compare_backends(algorithm, g, p=p, seed=seed,
                              backends=backends, **kwargs)
    if not report.ok:
        detail = "\n  ".join(report.mismatches)
        raise BackendParityError(
            f"{algorithm} diverged between {report.backends[0]} and "
            f"{report.backends[1]} (p={p}, seed={seed}):\n  {detail}"
        )
    return report
