"""The simulator backend: the deterministic single-process BSP engine.

A thin :class:`Backend` adapter over :class:`repro.bsp.engine.Engine` —
semantics, counters and the analytic §5.3 time estimate are exactly the
engine's.  This is the default backend and the correctness/cost oracle
the differential harness holds the real runtimes against.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.bsp.engine import Engine, RunResult
from repro.bsp.machine import MachineModel
from repro.cache.model import CacheParams
from repro.runtime.base import Backend
from repro.trace.tracer import Tracer

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Run SPMD programs on the single-process BSP simulator."""

    name = "sim"

    def __init__(
        self,
        *,
        engine: Engine | None = None,
        cache: CacheParams | None = None,
        machine: MachineModel | None = None,
        trace: bool = False,
        tracer: Tracer | None = None,
    ):
        if engine is not None and (cache is not None or machine is not None
                                   or trace or tracer is not None):
            raise ValueError(
                "pass either a ready engine or cache/machine/trace/tracer, "
                "not both"
            )
        self.engine = engine or Engine(cache=cache, machine=machine,
                                       trace=trace, tracer=tracer)

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
    ) -> RunResult:
        """Delegate to :meth:`Engine.run` (analytic ``TimeEstimate``)."""
        return self.engine.run(program, p, seed=seed, args=args, kwargs=kwargs)
