"""The simulator backend: the deterministic single-process BSP engine.

A thin :class:`Backend` adapter over :class:`repro.bsp.engine.Engine` —
semantics, counters and the analytic §5.3 time estimate are exactly the
engine's.  This is the default backend and the correctness/cost oracle
the differential harness holds the real runtimes against.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.bsp.engine import Engine, RunResult
from repro.bsp.fusion import FusionConfig
from repro.bsp.machine import MachineModel
from repro.cache.model import CacheParams
from repro.faults import FaultInjector, FaultSpec
from repro.graph.shm import localize_plane
from repro.runtime.base import Backend
from repro.runtime.errors import WorkerCrashError, WorkerTimeoutError
from repro.trace.tracer import Tracer

__all__ = ["SimBackend"]


def _with_faults(program: Callable[..., Generator],
                 specs: Sequence[FaultSpec]) -> Callable[..., Generator]:
    """Wrap ``program`` so each rank fires its faults at the step seam.

    The wrapper relays collectives untouched; right before a rank's
    ``step``-th collective is issued it applies that rank's faults exactly
    where the mp worker driver does — so a ``work`` charge lands before
    the engine snapshots ``since_sync`` and the synthetic imbalance
    propagates into wait counters bit-identically to the mp backend.
    ``crash`` and ``drop`` raise the mp backend's typed errors directly
    (the simulator has no processes to kill or timeouts to wait out).
    """

    @functools.wraps(program)
    def wrapped(ctx, *args, **kwargs):
        gen = program(ctx, *args, **kwargs)
        injector = FaultInjector(specs, ctx.rank)
        if not injector.active:
            return (yield from gen)
        step = 0
        inbox = None
        while True:
            try:
                op = gen.send(inbox)
            except StopIteration as stop:
                return stop.value
            for fault in injector.at(step):
                if fault.kind == "crash":
                    raise WorkerCrashError(ctx.rank, fault.exitcode,
                                           superstep=step)
                elif fault.kind == "work":
                    ctx.counters.charge(ops=fault.ops)
                elif fault.kind in ("stall", "delay"):
                    time.sleep(fault.seconds)
                elif fault.kind == "drop":
                    raise WorkerTimeoutError(
                        0.0, [ctx.rank], supersteps={ctx.rank: step})
            inbox = yield op
            step += 1

    return wrapped


class SimBackend(Backend):
    """Run SPMD programs on the single-process BSP simulator."""

    name = "sim"

    def __init__(
        self,
        *,
        engine: Engine | None = None,
        cache: CacheParams | None = None,
        machine: MachineModel | None = None,
        trace: bool = False,
        tracer: Tracer | None = None,
        fuse: "bool | FusionConfig | None" = None,
    ):
        if engine is not None and (cache is not None or machine is not None
                                   or trace or tracer is not None
                                   or fuse is not None):
            raise ValueError(
                "pass either a ready engine or cache/machine/trace/tracer/"
                "fuse, not both"
            )
        self.engine = engine or Engine(cache=cache, machine=machine,
                                       trace=trace, tracer=tracer, fuse=fuse)

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
        faults: Sequence[FaultSpec] | None = None,
    ) -> RunResult:
        """Delegate to :meth:`Engine.run` (analytic ``TimeEstimate``).

        With ``faults``, the program is wrapped in a transparent fault
        injector (see :mod:`repro.faults`); without, the engine runs the
        program object untouched (zero-overhead fast path).
        """
        if faults:
            program = _with_faults(program, tuple(faults))
        # Graph-plane markers resolve locally: the simulator sees exactly
        # g.slices(p), so the plane is invisible to results and counters.
        args = localize_plane(tuple(args))
        kwargs = localize_plane(dict(kwargs or {}))
        return self.engine.run(program, p, seed=seed, args=args, kwargs=kwargs)
