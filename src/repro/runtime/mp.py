"""Real shared-memory multiprocess backend for SPMD programs.

Architecture
------------
``MpBackend.run`` starts ``p`` OS worker processes (``multiprocessing``,
spawn-safe; fork by default where available because it is much faster).
Each worker executes the unmodified generator program locally
(:mod:`repro.runtime.worker`) and brokers every collective through the
coordinator — this parent process — over a per-rank pipe, with bulk numpy
payloads travelling through POSIX shared memory
(:mod:`repro.runtime.transport`).

The coordinator mirrors the simulator's scheduling semantics exactly: a
collective executes once every member of its group has posted a matching
request, requests are validated the same way (kind and root agreement,
deadlock on terminated members), and the collective itself is computed by
the *same* ``Engine._exec_*`` handlers the simulator uses — value
semantics, sub-communicator construction in ``split``, and analytic
communication charges are shared code, which is what makes the two
backends byte-identical in results *and* counters for a fixed seed.

Fault handling: a worker that raises surfaces as
:class:`~repro.runtime.errors.WorkerProgramError` with the remote
traceback; one that dies abruptly as :class:`WorkerCrashError` (process
sentinels are part of the coordinator's wait set, so death is noticed
immediately); total silence beyond the configurable inactivity timeout as
:class:`WorkerTimeoutError`.  The worker pool is always torn down before
re-raising — a failed run never hangs and never leaks processes.
"""

from __future__ import annotations

import glob
import itertools
import logging
import multiprocessing
import operator as _operator
import os
import time
from multiprocessing.connection import wait as _conn_wait
from multiprocessing.reduction import ForkingPickler
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.bsp.comm import CollectiveOp, payload_words
from repro.bsp.counters import CountersReport, ProcCounters
from repro.bsp.engine import Engine, ROOTED_KINDS, RunResult
from repro.bsp.fusion import FUSABLE_KINDS, FusionConfig, as_fusion_config
from repro.bsp.errors import CollectiveMismatchError, DeadlockError
from repro.bsp.machine import TimeEstimate
from repro.cache.model import CacheParams
from repro.faults import FaultSpec
from repro.graph.shm import (
    default_plane_enabled,
    localize_plane,
    release_pins,
    stage_plane,
)
from repro.runtime.base import Backend
from repro.runtime.errors import (
    WorkerCrashError,
    WorkerProgramError,
    WorkerTimeoutError,
)
from repro.trace.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.runtime.transport import (
    DEFAULT_SHM_THRESHOLD,
    Transport,
    TransportStats,
    collect_shm_names,
    collect_slab_names,
    decode_payload,
    unlink_segments,
)
from repro.runtime.worker import (
    MSG_DONE,
    MSG_ERROR,
    MSG_OP,
    REPLY_RESULT,
    WorkerSpec,
    worker_main,
)

__all__ = ["MpBackend", "default_start_method"]

logger = logging.getLogger(__name__)

#: Default inactivity timeout (seconds): generous enough for real
#: benchmark-scale local compute phases, finite so nothing ever hangs.
DEFAULT_TIMEOUT_S = 300.0

#: Per-process sequence distinguishing concurrent runs' slab prefixes.
_RUN_SEQ = itertools.count()


def _run_slab_token() -> str:
    """A short, per-run-unique shared-memory name token.

    Combines the coordinator pid, a monotonic per-process sequence and a
    millisecond timestamp so worker arena slab names (``{token}r{rank}n``)
    never collide across coordinators or runs, while staying well under
    the POSIX shm name limit.  Fixed-width fields keep spec pickle sizes
    (the ``input`` transport stat) deterministic across runs.
    """
    return (f"rsh{os.getpid() & 0xFFFFFFFF:08x}g{next(_RUN_SEQ) & 0xFFFF:04x}"
            f"t{int(time.time() * 1000) & 0xFFFFFF:06x}")


def default_start_method() -> str:
    """Preferred ``multiprocessing`` start method on this platform.

    ``fork`` (where available) avoids re-importing the scientific stack in
    every worker; everything is nevertheless spawn-safe and ``spawn`` can
    be forced via ``MpBackend(start_method="spawn")``.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _Pool:
    """The worker processes plus the coordinator-side bookkeeping."""

    def __init__(self, ctx, p: int, spec_for: Callable[[int], WorkerSpec],
                 slab_token: str | None = None,
                 target: Callable = worker_main):
        self.conns = []
        self.procs = []
        #: Per-run worker slab name token; shutdown sweeps
        #: ``/dev/shm/{token}*`` so even never-shipped slabs of a killed
        #: worker (retained free-list slabs) are reclaimed.
        self.slab_token = slab_token
        #: Every worker-arena slab name the coordinator has seen on the
        #: wire; swept (and leaks logged) after the workers are gone.
        self.worker_segments: set[str] = set()
        for rank in range(p):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=target,
                args=(child_conn, spec_for(rank)),
                daemon=True,
                name=f"repro-mp-{rank}",
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)
        self.conn_rank = {id(c): r for r, c in enumerate(self.conns)}
        self.sentinel_rank = {pr.sentinel: r for r, pr in enumerate(self.procs)}

    def shutdown(self) -> None:
        """Terminate everything and reclaim stray shared-memory segments."""
        for conn in self.conns:
            try:
                while conn.poll():
                    msg = conn.recv()
                    if msg and msg[0] == MSG_OP:
                        # One-shot segments: unlink without copying out.
                        # Arena slabs: remember the names for the sweep.
                        unlink_segments(collect_shm_names(msg[2].payload))
                        self.worker_segments |= collect_slab_names(
                            msg[2].payload)
                    elif msg and msg[0] == MSG_DONE:
                        unlink_segments(collect_shm_names(msg[2]))
            except (EOFError, OSError):
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate() sufficed so far
                proc.kill()
                proc.join(timeout=5.0)
        for conn in self.conns:
            conn.close()
        # Workers unlink their own arenas on clean exit (before DONE), so
        # anything still reclaimable here leaked — a worker died or was
        # terminated mid-run.  Make that visible.  The wire sweep catches
        # slabs whose names crossed the pipe; the prefix sweep below also
        # catches a killed worker's never-shipped (retained) slabs.
        names = set(self.worker_segments)
        if self.slab_token and os.path.isdir("/dev/shm"):
            names |= {
                os.path.basename(path)
                for path in glob.glob(f"/dev/shm/{self.slab_token}*")
            }
        leaked = unlink_segments(sorted(names))
        if leaked:
            logger.warning(
                "reclaimed %d leaked worker shm segment(s) at shutdown: %s",
                len(leaked), ", ".join(leaked),
            )


class MpBackend(Backend):
    """Execute SPMD programs on real OS processes with measured timing.

    Parameters
    ----------
    cache:
        Cache geometry for the analytic counter charges (shared with the
        workers so counters match the simulator's bit-for-bit).
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"``; default per platform.
    timeout:
        Inactivity timeout in seconds (no message from any worker) before
        the run is aborted with :class:`WorkerTimeoutError`.  ``None``
        disables the bound (not recommended).
    shm_threshold:
        Minimum payload bytes for the shared-memory path (per message in
        arena mode, per array in legacy mode).
    use_arena:
        Pooled slab arena transport (default).  ``False`` selects the
        legacy one-segment-per-array codec — kept for differential
        benchmarking of the transport itself.
    trace / tracer:
        Per-superstep collective tracing, mirroring the simulator's:
        ``trace=True`` records into a default
        :class:`~repro.trace.tracer.RecordingTracer`, or pass an explicit
        tracer.  Workers then ship their since-sync counter snapshots
        with every collective request, and the coordinator emits events
        bit-identical to the simulator's for the same seed (only the
        measured ``wall_s`` differs).  Off by default: untraced runs use
        exactly the pre-trace wire protocol.
    fuse:
        Automatic adjacent superstep fusion (see
        :mod:`repro.bsp.fusion`): ``True`` for the default
        :class:`~repro.bsp.fusion.FusionConfig`, or a ready config.  Off
        by default; explicit ``comm.batch`` requests always work.
    graph_plane:
        Zero-copy shared graph plane (:mod:`repro.graph.shm`): dispatch
        sites that pass :func:`~repro.graph.shm.plane_slices` markers
        get their graph published once into a read-only shm segment and
        shipped to every worker as an O(1) handle instead of p pickled
        copies.  Default on (``REPRO_GRAPH_PLANE=0`` flips the default);
        off resolves markers locally — bit-identical results either way.
    """

    name = "mp"

    def __init__(
        self,
        *,
        cache: CacheParams | None = None,
        start_method: str | None = None,
        timeout: float | None = DEFAULT_TIMEOUT_S,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        use_arena: bool = True,
        trace: bool = False,
        tracer: Tracer | None = None,
        fuse: bool | FusionConfig | None = None,
        graph_plane: bool | None = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")
        if trace and tracer is not None:
            raise ValueError(
                "pass either trace=True (a default RecordingTracer) or an "
                "explicit tracer, not both"
            )
        self.tracer = tracer if tracer is not None else (
            RecordingTracer() if trace else NULL_TRACER
        )
        self.cache = cache or CacheParams()
        self.start_method = start_method or default_start_method()
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {self.start_method!r} unavailable on this "
                f"platform; have {multiprocessing.get_all_start_methods()}"
            )
        self.timeout = timeout
        self.shm_threshold = int(shm_threshold)
        self.use_arena = bool(use_arena)
        #: Automatic adjacent-fusion policy, mirroring ``Engine(fuse=...)``:
        #: the coordinator merges a collective into the group's previous
        #: superstep when every member reported itself clean (no local
        #: charges since its last reply) — the simulator's exact criterion,
        #: so fused runs stay bit-identical across backends.
        self.fuse = as_fusion_config(fuse)
        self.graph_plane = (default_plane_enabled() if graph_plane is None
                            else bool(graph_plane))
        #: Per-kind transport stats of the most recent run (coordinator +
        #: all workers merged), as :meth:`TransportStats.as_dict`.
        self.last_transport_stats: dict | None = None

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
        faults: Sequence[FaultSpec] | None = None,
    ) -> RunResult:
        """Run ``program`` on ``p`` worker processes; measured time split.

        ``faults`` injects the given deterministic :class:`FaultSpec`
        records at the worker driver loop (see :mod:`repro.faults`); the
        default ``None`` is the fault-free fast path.
        """
        try:
            p = _operator.index(p)
        except TypeError:
            raise TypeError(
                f"p must be an integer processor count, got {type(p).__name__}"
            ) from None
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")

        engine = Engine(cache=self.cache)  # shared collective semantics
        world = engine._new_group(tuple(range(p)))
        ctx = multiprocessing.get_context(self.start_method)
        args = tuple(args)
        kwargs = dict(kwargs or {})
        # Graph-plane staging: publish each marked graph once and ship
        # O(1) handles; pins are dropped (and segments unlinked unless a
        # longer-lived layer also pins them) in the finally below — a
        # crashed run cannot leak a published segment.
        plane_pins: list[str] = []
        if self.graph_plane:
            args = stage_plane(args, plane_pins)
            kwargs = stage_plane(kwargs, plane_pins)
        else:
            args = localize_plane(args)
            kwargs = localize_plane(kwargs)

        fault_specs = tuple(faults or ())
        slab_token = _run_slab_token() if self.use_arena else None

        def spec_for(rank: int) -> WorkerSpec:
            return WorkerSpec(
                rank=rank, p=p, world_gid=world.gid, seed=seed,
                cache=self.cache, program=program, args=args, kwargs=kwargs,
                shm_threshold=self.shm_threshold,
                trace=self.tracer.enabled,
                use_arena=self.use_arena,
                faults=fault_specs,
                slab_prefix=(f"{slab_token}r{rank}n" if slab_token else None),
            )

        specs = [spec_for(rank) for rank in range(p)]
        # Logical input footprint: what shipping the specs costs in
        # pickle bytes (under spawn this is literally what crosses the
        # wire; under fork it is the same byte count, just not paid).
        # Guarded: fork-only callers may pass non-picklable programs.
        input_bytes = 0
        try:
            input_bytes = sum(
                len(ForkingPickler.dumps(s)) for s in specs)
        except Exception:
            pass
        pool = _Pool(ctx, p, specs.__getitem__, slab_token=slab_token)
        try:
            return self._coordinate(engine, pool, p,
                                    input_bytes=input_bytes)
        finally:
            pool.shutdown()
            release_pins(plane_pins)

    # -- coordinator ---------------------------------------------------------

    @staticmethod
    def _crash(pool: _Pool, rank: int,
               superstep: int | None = None) -> WorkerCrashError:
        """Build the crash error, reaping the child first: its sentinel can
        fire a moment before the process is waitable, leaving ``exitcode``
        None until a join."""
        proc = pool.procs[rank]
        proc.join(timeout=5.0)
        return WorkerCrashError(rank, proc.exitcode, superstep=superstep)

    def _coordinate(self, engine: Engine, pool: _Pool, p: int,
                    transport: Transport | None = None,
                    input_bytes: int = 0) -> RunResult:
        tracer = self.tracer
        events_before = len(tracer)
        last_event_t = [perf_counter()]  # wall clock between collectives
        owns_transport = transport is None
        if owns_transport:
            transport = Transport(threshold=self.shm_threshold,
                                  use_arena=self.use_arena)
        else:
            # Warm pool: the caller's transport (and its arena slabs)
            # outlives this run; stats restart so last_transport_stats
            # stays per-run.
            transport.stats = TransportStats()
        # Input shipping gets its own stats kind so benches can report
        # bytes-per-query with the graph plane on vs off.
        transport.stats.note("input", messages=p, pickle_bytes=input_bytes)
        # pending: rank -> (op, since_sync, clean, pre-request snapshot)
        pending: dict[int, tuple[CollectiveOp, float, bool, tuple | None]] = {}
        finished: set[int] = set()
        # Adjacent-fusion bookkeeping, mirroring Engine._execute's:
        fuse = self.fuse
        last_sync: dict[int, tuple[int, bool]] = {}  # rank -> (gid, mergeable)
        chain: dict[int, int] = {}        # gid -> collectives this superstep
        chain_words: dict[int, int] = {}  # gid -> words this superstep
        values: list[Any] = [None] * p
        counters: list[ProcCounters | None] = [None] * p
        app_s = [0.0] * p
        mpi_s = [0.0] * p
        # Completed supersteps per rank (replies shipped): a failure stamps
        # the failing rank's count so errors name the superstep in flight.
        steps = [0] * p
        # Segments backing each rank's outstanding reply: the rank's next
        # message proves the reply was decoded, releasing the slabs back
        # to the pool (legacy: the worker already unlinked its one-shots).
        reply_refs: dict[int, list[str]] = {r: [] for r in range(p)}

        def handle(msg) -> None:
            tag, rank = msg[0], msg[1]
            transport.release(reply_refs[rank])  # previous reply consumed
            reply_refs[rank].clear()
            if tag == MSG_OP:
                op, since_sync, clean = msg[2], msg[3], msg[4]
                snap = msg[5] if len(msg) > 5 else None  # tracing only
                pool.worker_segments |= collect_slab_names(op.payload)
                op = CollectiveOp(
                    group=op.group, kind=op.kind, sender=op.sender,
                    local_rank=op.local_rank,
                    payload=transport.decode(op.payload),
                    root=op.root, op=op.op,
                )
                pending[rank] = (op, float(since_sync), bool(clean), snap)
            elif tag == MSG_DONE:
                value, procs_counters, app, mpi = msg[2:6]
                values[rank] = decode_payload(value)
                counters[rank] = procs_counters
                app_s[rank] = app
                mpi_s[rank] = mpi
                if len(msg) > 6:  # the worker's transport stats
                    transport.stats.merge(msg[6])
                finished.add(rank)
            elif tag == MSG_ERROR:
                _, _, exc_type, tb = msg
                raise WorkerProgramError(rank, exc_type, tb)
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown worker message tag {tag!r}")

        def execute_ready() -> None:
            by_gid: dict[int, list[int]] = {}
            for rank, (op, _s, _c, _snap) in pending.items():
                by_gid.setdefault(op.group.gid, []).append(rank)
            for gid in sorted(by_gid):
                ranks = by_gid[gid]
                group = pending[ranks[0]][0].group
                waiting = set(ranks)
                missing = [m for m in group.members if m not in waiting]
                if any(m not in finished for m in missing):
                    continue  # someone is still computing; not ready yet
                if missing:
                    raise DeadlockError(
                        f"collective {pending[ranks[0]][0].kind!r} on group "
                        f"{gid} can never complete: member(s) {missing} "
                        f"already terminated while {sorted(waiting)} are "
                        "waiting"
                    )
                ops = sorted((pending[r][0] for r in ranks),
                             key=lambda o: o.local_rank)
                kinds = {op.kind for op in ops}
                if len(kinds) != 1:
                    detail = {op.sender: op.kind for op in ops}
                    raise CollectiveMismatchError(
                        f"group {gid} members issued different collectives: "
                        f"{detail}"
                    )
                kind = ops[0].kind
                if kind in ROOTED_KINDS:
                    roots = {op.root for op in ops}
                    if len(roots) != 1:
                        raise CollectiveMismatchError(
                            f"group {gid} members disagree on the {kind} "
                            f"root: {roots}"
                        )
                handler = getattr(engine, f"_exec_{kind}", None)
                if handler is None:
                    raise CollectiveMismatchError(
                        f"unknown collective kind {kind!r}"
                    )
                # Adjacent fusion, mirroring Engine._execute: merge into the
                # group's previous superstep when every member is clean (no
                # local charges since its last reply — then all since-sync
                # values are zero and the merge elides only the latency).
                words = -1
                merged = False
                if fuse is not None and fuse.auto and kind in FUSABLE_KINDS:
                    words = sum(payload_words(op.payload) for op in ops)
                    merged = (
                        chain.get(gid, 0) + 1 <= fuse.max_chain
                        and chain_words.get(gid, 0) + words <= fuse.max_words
                        and all(last_sync.get(m) == (gid, True)
                                for m in group.members)
                        and all(pending[m][2] for m in group.members)
                    )
                since = {r: pending[r][1] for r in ranks}
                slowest = max(since.values())
                posts = [] if tracer.enabled else None
                cleans = tuple(pending[m][2] for m in group.members) \
                    if posts is not None else ()
                if kind == "fused":
                    # Explicit batch: one superstep, sub-collectives run
                    # back-to-back.  Each sub-op gets its *own* scratch so
                    # the worker (and the traced replica below) can apply
                    # the charges one sub-op at a time — the simulator's
                    # exact float addition order.
                    per_member_res: list[list] = [[] for _ in ops]
                    per_member_chg: list[list] = [[] for _ in ops]
                    for subkind, subs in engine._iter_fused(group, ops):
                        sub_handler = getattr(engine, f"_exec_{subkind}")
                        scratch = [ProcCounters() for _ in range(p)]
                        sub_res = sub_handler(group, subs, scratch, None)
                        for j, op in enumerate(ops):
                            sc = scratch[op.sender]
                            per_member_res[j].append(sub_res[j])
                            per_member_chg[j].append(
                                (sc.ops, sc.words_sent,
                                 sc.words_recv, sc.misses)
                            )
                    for j, op in enumerate(ops):
                        m = op.sender
                        res = tuple(per_member_res[j])
                        charges = tuple(per_member_chg[j])
                        wire, reply_refs[m] = transport.encode(res, kind)
                        wait_delta = slowest - since[m]
                        if posts is not None:
                            o, se, re_, mi, wait0, ss0 = pending[m][3]
                            for c_ops, c_sent, c_recv, c_miss in charges:
                                o += c_ops
                                se += c_sent
                                re_ += c_recv
                                mi += c_miss
                            posts.append((o, se, re_, mi,
                                          wait0 + wait_delta, ss0 + 1))
                        buf = ForkingPickler.dumps((
                            REPLY_RESULT, wire, wait_delta, charges,
                        ))
                        transport.note_pickle(kind, len(buf))
                        try:
                            pool.conns[m].send_bytes(buf)
                        except (BrokenPipeError, OSError):
                            raise self._crash(pool, m, steps[m]) from None
                        del pending[m]
                        steps[m] += 1
                else:
                    # Scratch counters collect this collective's charges;
                    # the workers apply them so per-rank totals accumulate
                    # in the simulator's exact order (bit-equal floats).
                    scratch = [ProcCounters() for _ in range(p)]
                    results = handler(group, ops, scratch, None)
                    for op, res in zip(ops, results):
                        m = op.sender
                        wire, reply_refs[m] = transport.encode(res, kind)
                        sc = scratch[m]
                        wait_delta = slowest - since[m]
                        if posts is not None:
                            # Replicate the worker's post-collective
                            # counters from its pre-request snapshot, using
                            # the same single-addition-per-field arithmetic
                            # the worker applies, so the recorded snapshot
                            # is bit-equal to both the worker's and the
                            # simulator's state.
                            ops0, sent0, recv0, misses0, wait0, ss0 = \
                                pending[m][3]
                            posts.append((
                                ops0 + sc.ops, sent0 + sc.words_sent,
                                recv0 + sc.words_recv, misses0 + sc.misses,
                                wait0 + wait_delta,
                                ss0 if merged else ss0 + 1,
                            ))
                        buf = ForkingPickler.dumps((
                            REPLY_RESULT, wire, wait_delta,
                            sc.ops, sc.words_sent, sc.words_recv, sc.misses,
                            not merged,
                        ))
                        transport.note_pickle(kind, len(buf))
                        try:
                            pool.conns[m].send_bytes(buf)
                        except (BrokenPipeError, OSError):
                            raise self._crash(pool, m, steps[m]) from None
                        del pending[m]
                        steps[m] += 1
                if posts is not None:
                    now = perf_counter()
                    if words < 0:
                        words = sum(payload_words(op.payload) for op in ops)
                    if merged:
                        tracer.on_merge(
                            kind=kind, gid=gid, participants=group.members,
                            words=words, snapshots=posts,
                            wall_s=now - last_event_t[0],
                        )
                    else:
                        tracer.on_collective(
                            kind=kind, gid=gid, participants=group.members,
                            words=words, snapshots=posts,
                            wall_s=now - last_event_t[0],
                            fused=tuple(s.kind for s in ops[0].payload)
                            if kind == "fused" else (),
                            clean=cleans,
                        )
                    last_event_t[0] = now
                if fuse is not None:
                    if words < 0:
                        words = sum(payload_words(op.payload) for op in ops)
                    weight = len(ops[0].payload) if kind == "fused" else 1
                    chain[gid] = (chain.get(gid, 0) + weight if merged
                                  else weight)
                    chain_words[gid] = (chain_words.get(gid, 0) + words
                                        if merged else words)
                    mergeable = kind in FUSABLE_KINDS or kind == "fused"
                    for m in group.members:
                        last_sync[m] = (gid, mergeable)

        try:
            self._event_loop(engine, pool, p, pending, finished, handle,
                             execute_ready, steps)
        finally:
            # Replies a worker never consumed (error teardown) would leak
            # their segments; reclaim them here (no-op on clean runs: the
            # arena owns its slabs and close() unlinks them all).
            if not self.use_arena:
                unlink_segments(
                    name for names in reply_refs.values() for name in names
                )
            if owns_transport:
                transport.close()
            self.last_transport_stats = transport.stats.as_dict()

        report = CountersReport.from_procs(list(counters))
        trace = None
        if tracer.enabled:
            tracer.on_finish([c.snapshot() for c in counters],
                             wall_s=perf_counter() - last_event_t[0])
            trace = tracer.events()[events_before:]
        return RunResult(
            values=values,
            report=report,
            time=TimeEstimate(app_s=max(app_s), mpi_s=max(mpi_s)),
            trace=trace,
        )

    def _event_loop(self, engine, pool, p, pending, finished, handle,
                    execute_ready, steps) -> None:
        while len(finished) < p:
            waitables = [
                pool.conns[r] for r in range(p) if r not in finished
            ] + [
                pool.procs[r].sentinel for r in range(p) if r not in finished
            ]
            ready = _conn_wait(waitables, timeout=self.timeout)
            if not ready:
                silent = sorted(
                    r for r in range(p)
                    if r not in finished and r not in pending
                ) or sorted(r for r in range(p) if r not in finished)
                raise WorkerTimeoutError(
                    self.timeout, silent,
                    supersteps={r: steps[r] for r in silent},
                )
            ready_ids = {id(obj) for obj in ready}
            # Messages first: a worker that reported and exited is not a crash.
            for rank in range(p):
                conn = pool.conns[rank]
                if rank in finished or id(conn) not in ready_ids:
                    continue
                try:
                    while conn.poll():
                        handle(conn.recv())
                except EOFError:
                    pass  # fall through to the sentinel check
            for obj in ready:
                rank = pool.sentinel_rank.get(obj)
                if rank is None or rank in finished:
                    continue
                try:
                    while pool.conns[rank].poll():
                        handle(pool.conns[rank].recv())
                except EOFError:
                    pass
                if rank not in finished:
                    # Died before reporting — either mid-compute or while
                    # blocked inside a collective request.
                    raise self._crash(pool, rank, steps[rank])
            execute_ready()
