"""Keep-alive multiprocess backend: one worker pool, many runs.

:class:`WarmMpBackend` is :class:`~repro.runtime.mp.MpBackend` with the
per-run setup amortized away.  The one-shot backend pays, on **every**
``run()``: spawn ``p`` OS processes, import state (under ``spawn``,
re-import the scientific stack), create per-worker shm arenas, and tear
it all down.  The warm backend spawns the pool once
(:func:`~repro.runtime.worker.persistent_worker_main` workers), keeps the
worker *and* coordinator :class:`~repro.runtime.transport.Transport`
arenas mapped, and dispatches each subsequent run as a small ``CMD_RUN``
command down the existing pipes.  This is the serving-layer contract the
daemon (:mod:`repro.serve`) is built on: request latency excludes process
creation entirely.

Semantics are identical to ``MpBackend`` — the coordinator logic is
literally shared (:meth:`MpBackend._coordinate` with an external
transport) — so results, counters and traces stay bit-identical to the
one-shot backend and the simulator for a fixed seed.  Differences:

* Programs are shipped per-run through the pipe, pickled by reference,
  so they must be module-level functions (every program in the tree is).
* On any :class:`~repro.runtime.errors.WorkerFailure` the whole pool is
  discarded — surviving workers may be blocked mid-collective — and the
  next ``run()`` transparently respawns it.  Failure behavior therefore
  matches the one-shot backend observationally (same typed errors, no
  leaked processes or segments), it just also costs the warmth.
* A ``run()`` at a different ``p`` respawns the pool at the new width.
* Call :meth:`close` (or use the backend as a context manager) when done;
  a forgotten pool of daemonic workers dies with the parent process, and
  the arena sweep in :meth:`~repro.runtime.mp._Pool.shutdown` still
  reclaims slabs, but an explicit close is what keeps /dev/shm clean at
  a deterministic point — the CI leak checks pin exactly that.
"""

from __future__ import annotations

import logging
import multiprocessing
import operator as _operator
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.bsp.engine import Engine, RunResult
from repro.faults import FaultSpec
from repro.runtime.mp import MpBackend, _Pool, _run_slab_token
from repro.runtime.transport import Transport
from repro.runtime.worker import (
    CMD_EXIT,
    CMD_RUN,
    WorkerSpec,
    persistent_worker_main,
)

__all__ = ["WarmMpBackend"]

logger = logging.getLogger(__name__)


class WarmMpBackend(MpBackend):
    """Multiprocess backend that keeps its worker pool warm across runs.

    Accepts every :class:`~repro.runtime.mp.MpBackend` parameter.  The
    pool is spawned lazily on the first ``run()`` (at that run's ``p``)
    and reused until :meth:`close`, a failure, or a ``p`` change.
    """

    name = "warm"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._pool: _Pool | None = None
        self._pool_p: int | None = None
        self._transport: Transport | None = None
        #: Pool generation counter: spawns observed (tests assert warmth
        #: by watching this stay flat across runs).
        self.pool_spawns = 0

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self, p: int) -> _Pool:
        if self._pool is not None and self._pool_p != p:
            logger.info("warm pool width change %d -> %d: respawning",
                        self._pool_p, p)
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            slab_token = _run_slab_token() if self.use_arena else None

            def spec_for(rank: int) -> WorkerSpec:
                # Per-run fields (program/args/seed/world gid/trace/
                # faults) are placeholders here; every CMD_RUN replaces
                # them.  The transport geometry is fixed for the pool's
                # lifetime.
                return WorkerSpec(
                    rank=rank, p=p, world_gid=0, seed=0, cache=self.cache,
                    program=None, args=(), kwargs={},
                    shm_threshold=self.shm_threshold,
                    trace=self.tracer.enabled,
                    use_arena=self.use_arena,
                    faults=(),
                    slab_prefix=(f"{slab_token}r{rank}n"
                                 if slab_token else None),
                )

            self._pool = _Pool(ctx, p, spec_for, slab_token=slab_token,
                               target=persistent_worker_main)
            self._pool_p = p
            self._transport = Transport(threshold=self.shm_threshold,
                                        use_arena=self.use_arena)
            self.pool_spawns += 1
        return self._pool

    def _discard_pool(self) -> None:
        """Tear down after a failure: workers may be wedged mid-collective."""
        pool, self._pool = self._pool, None
        self._pool_p = None
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()
        if pool is not None:
            pool.shutdown()

    def close(self) -> None:
        """Gracefully stop the pool and unlink every arena slab."""
        pool, self._pool = self._pool, None
        self._pool_p = None
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()
        if pool is None:
            return
        for conn in pool.conns:
            try:
                conn.send((CMD_EXIT,))
            except (BrokenPipeError, OSError):
                pass
        for proc in pool.procs:
            proc.join(timeout=5.0)
        # Already-exited workers make shutdown() a drain + sweep; anything
        # still alive is terminated there.
        pool.shutdown()

    def __enter__(self) -> "WarmMpBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
        faults: Sequence[FaultSpec] | None = None,
    ) -> RunResult:
        """Run ``program`` on the warm pool (spawning it if needed)."""
        try:
            p = _operator.index(p)
        except TypeError:
            raise TypeError(
                f"p must be an integer processor count, got {type(p).__name__}"
            ) from None
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")

        engine = Engine(cache=self.cache)  # shared collective semantics
        world = engine._new_group(tuple(range(p)))
        pool = self._ensure_pool(p)
        cmd = (CMD_RUN, world.gid, seed, program, tuple(args),
               dict(kwargs or {}), self.tracer.enabled, tuple(faults or ()))
        try:
            for rank, conn in enumerate(pool.conns):
                try:
                    conn.send(cmd)
                except (BrokenPipeError, OSError):
                    raise self._crash(pool, rank) from None
            return self._coordinate(engine, pool, p,
                                    transport=self._transport)
        except BaseException:
            self._discard_pool()
            raise
