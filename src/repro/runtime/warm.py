"""Keep-alive multiprocess backend: one worker pool, many runs.

:class:`WarmMpBackend` is :class:`~repro.runtime.mp.MpBackend` with the
per-run setup amortized away.  The one-shot backend pays, on **every**
``run()``: spawn ``p`` OS processes, import state (under ``spawn``,
re-import the scientific stack), create per-worker shm arenas, and tear
it all down.  The warm backend spawns the pool once
(:func:`~repro.runtime.worker.persistent_worker_main` workers), keeps the
worker *and* coordinator :class:`~repro.runtime.transport.Transport`
arenas mapped, and dispatches each subsequent run as a small ``CMD_RUN``
command down the existing pipes.  This is the serving-layer contract the
daemon (:mod:`repro.serve`) is built on: request latency excludes process
creation entirely.

Semantics are identical to ``MpBackend`` — the coordinator logic is
literally shared (:meth:`MpBackend._coordinate` with an external
transport) — so results, counters and traces stay bit-identical to the
one-shot backend and the simulator for a fixed seed.  Differences:

* Programs are shipped through the pipe pickled by reference the first
  time they run on a pool — a small integer token thereafter (workers
  cache the callable per token) — so they must be module-level functions
  (every program in the tree is).
* Graph-plane inputs (:mod:`repro.graph.shm`) stay *pinned* across runs:
  an LRU window of ``plane_retain`` recently queried graphs keeps their
  published segments alive, so a repeat query ships only an O(1) handle
  and the workers' cached attachments make it attach-free too.
* On any :class:`~repro.runtime.errors.WorkerFailure` the whole pool is
  discarded — surviving workers may be blocked mid-collective — and the
  next ``run()`` transparently respawns it.  Failure behavior therefore
  matches the one-shot backend observationally (same typed errors, no
  leaked processes or segments), it just also costs the warmth.
* A ``run()`` at a different ``p`` respawns the pool at the new width.
* Call :meth:`close` (or use the backend as a context manager) when done;
  a forgotten pool of daemonic workers dies with the parent process, and
  the arena sweep in :meth:`~repro.runtime.mp._Pool.shutdown` still
  reclaims slabs, but an explicit close is what keeps /dev/shm clean at
  a deterministic point — the CI leak checks pin exactly that.
"""

from __future__ import annotations

import logging
import multiprocessing
import operator as _operator
from collections import OrderedDict
from multiprocessing.reduction import ForkingPickler
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.bsp.engine import Engine, RunResult
from repro.faults import FaultSpec
from repro.graph.shm import localize_plane, release_pins, stage_plane, unpin
from repro.runtime.mp import MpBackend, _Pool, _run_slab_token
from repro.runtime.transport import Transport
from repro.runtime.worker import (
    CMD_EXIT,
    CMD_RUN,
    WorkerSpec,
    persistent_worker_main,
)

__all__ = ["WarmMpBackend"]

logger = logging.getLogger(__name__)

#: Published graphs the warm backend keeps pinned across runs (LRU):
#: repeat queries on a recently seen graph re-use its segment without a
#: republish, and the workers' attachment caches stay valid.
DEFAULT_PLANE_RETAIN = 8


class WarmMpBackend(MpBackend):
    """Multiprocess backend that keeps its worker pool warm across runs.

    Accepts every :class:`~repro.runtime.mp.MpBackend` parameter.  The
    pool is spawned lazily on the first ``run()`` (at that run's ``p``)
    and reused until :meth:`close`, a failure, or a ``p`` change.
    """

    name = "warm"

    def __init__(self, *, plane_retain: int = DEFAULT_PLANE_RETAIN, **kwargs):
        super().__init__(**kwargs)
        self._pool: _Pool | None = None
        self._pool_p: int | None = None
        self._transport: Transport | None = None
        #: Pool generation counter: spawns observed (tests assert warmth
        #: by watching this stay flat across runs).
        self.pool_spawns = 0
        #: Published-graph retention window: fingerprint -> True, LRU
        #: over the last ``plane_retain`` distinct graphs; each holds one
        #: pin so repeat queries stay publish-free.
        self.plane_retain = int(plane_retain)
        self._plane_retained: OrderedDict[str, bool] = OrderedDict()
        #: program -> small int token; workers cache the callable by
        #: token so repeat runs never re-pickle the program reference.
        self._program_tokens: dict[Any, int] = {}

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self, p: int) -> _Pool:
        if self._pool is not None and self._pool_p != p:
            logger.info("warm pool width change %d -> %d: respawning",
                        self._pool_p, p)
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            slab_token = _run_slab_token() if self.use_arena else None

            def spec_for(rank: int) -> WorkerSpec:
                # Per-run fields (program/args/seed/world gid/trace/
                # faults) are placeholders here; every CMD_RUN replaces
                # them.  The transport geometry is fixed for the pool's
                # lifetime.
                return WorkerSpec(
                    rank=rank, p=p, world_gid=0, seed=0, cache=self.cache,
                    program=None, args=(), kwargs={},
                    shm_threshold=self.shm_threshold,
                    trace=self.tracer.enabled,
                    use_arena=self.use_arena,
                    faults=(),
                    slab_prefix=(f"{slab_token}r{rank}n"
                                 if slab_token else None),
                )

            self._pool = _Pool(ctx, p, spec_for, slab_token=slab_token,
                               target=persistent_worker_main)
            self._pool_p = p
            self._transport = Transport(threshold=self.shm_threshold,
                                        use_arena=self.use_arena)
            self.pool_spawns += 1
        return self._pool

    def _release_plane(self) -> None:
        """Drop every retained graph pin (and unlink the unpinned)."""
        retained = list(self._plane_retained)
        self._plane_retained.clear()
        release_pins(retained)

    def _discard_pool(self) -> None:
        """Tear down after a failure: workers may be wedged mid-collective."""
        pool, self._pool = self._pool, None
        self._pool_p = None
        self._program_tokens.clear()
        self._release_plane()
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()
        if pool is not None:
            pool.shutdown()

    def close(self) -> None:
        """Gracefully stop the pool and unlink every arena slab."""
        pool, self._pool = self._pool, None
        self._pool_p = None
        self._program_tokens.clear()
        self._release_plane()
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()
        if pool is None:
            return
        for conn in pool.conns:
            try:
                conn.send((CMD_EXIT,))
            except (BrokenPipeError, OSError):
                pass
        for proc in pool.procs:
            proc.join(timeout=5.0)
        # Already-exited workers make shutdown() a drain + sweep; anything
        # still alive is terminated there.
        pool.shutdown()

    def _retain_plane(self, run_pins: list[str]) -> None:
        """Migrate a finished run's graph pins into the retention LRU.

        A graph already retained just refreshes its recency (the run's
        extra pin is dropped); a new one hands its run pin to the window,
        evicting — unpinning and unlinking — the least recent beyond
        ``plane_retain``.  After a failure teardown (no pool) the pins
        are simply released: nothing is retained across a respawn.
        """
        if self._pool is None or self.plane_retain <= 0:
            release_pins(run_pins)
            return
        for fp in run_pins:
            if fp in self._plane_retained:
                self._plane_retained.move_to_end(fp)
                unpin(fp)  # retention already holds its own pin
            else:
                self._plane_retained[fp] = True  # run pin becomes ours
        while len(self._plane_retained) > self.plane_retain:
            old, _ = self._plane_retained.popitem(last=False)
            release_pins((old,))

    def __enter__(self) -> "WarmMpBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
        faults: Sequence[FaultSpec] | None = None,
    ) -> RunResult:
        """Run ``program`` on the warm pool (spawning it if needed)."""
        try:
            p = _operator.index(p)
        except TypeError:
            raise TypeError(
                f"p must be an integer processor count, got {type(p).__name__}"
            ) from None
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")

        engine = Engine(cache=self.cache)  # shared collective semantics
        world = engine._new_group(tuple(range(p)))
        pool = self._ensure_pool(p)
        args = tuple(args)
        kwargs = dict(kwargs or {})
        # Graph plane: publish/pin marked graphs for this run; afterwards
        # the pins migrate into the LRU retention window so the next
        # query on the same graph ships only its O(1) handle.
        run_pins: list[str] = []
        if self.graph_plane:
            args = stage_plane(args, run_pins)
            kwargs = stage_plane(kwargs, run_pins)
        else:
            args = localize_plane(args)
            kwargs = localize_plane(kwargs)
        # Program token: ship the callable once per pool generation, a
        # small token thereafter (the workers cache it by token).
        token = self._program_tokens.get(program)
        wire_program = None if token is not None else program
        if token is None:
            token = self._program_tokens[program] = \
                len(self._program_tokens)
        cmd = (CMD_RUN, world.gid, seed, token, wire_program, args, kwargs,
               self.tracer.enabled, tuple(faults or ()))
        # One pickle for all ranks: send_bytes reuses the buffer, so the
        # per-run input cost is p pipe writes of one encoding — and with
        # the plane on, that encoding is O(1) in the graph size.
        buf = bytes(ForkingPickler.dumps(cmd))
        try:
            for rank, conn in enumerate(pool.conns):
                try:
                    conn.send_bytes(buf)
                except (BrokenPipeError, OSError):
                    raise self._crash(pool, rank) from None
            return self._coordinate(engine, pool, p,
                                    transport=self._transport,
                                    input_bytes=len(buf) * p)
        except BaseException:
            self._discard_pool()
            raise
        finally:
            self._retain_plane(run_pins)
