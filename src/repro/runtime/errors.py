"""Typed failures of the multiprocess execution backend.

Every error a real run can hit — a worker segfaulting, a program raising
on one rank, a rank hanging past the inactivity timeout — surfaces as a
:class:`WorkerFailure` (a ``RuntimeError``) carrying the failing rank(s),
never as a hang: the coordinator bounds every wait and tears the worker
pool down before re-raising.

Failures additionally carry *where* the run was when it died: the
coordinator stamps the failing rank's completed-superstep count
(``superstep``), and the trial scheduler (:mod:`repro.sched`) stamps the
trial ids that were in flight (:meth:`WorkerFailure.attach_trials`), so
an error message names the exact retryable unit of work that was lost —
which is what makes partial results recoverable instead of discarded.
"""

from __future__ import annotations

__all__ = [
    "WorkerFailure",
    "WorkerCrashError",
    "WorkerProgramError",
    "WorkerTimeoutError",
]


class WorkerFailure(RuntimeError):
    """Base class for multiprocess-backend failures.

    Attributes
    ----------
    trials:
        Trial ids in flight when the failure hit, stamped by the trial
        scheduler via :meth:`attach_trials`; ``None`` outside a scheduled
        run.
    """

    trials: tuple[int, ...] | None = None

    def attach_trials(self, trial_ids) -> "WorkerFailure":
        """Stamp the in-flight trial ids onto this failure (idempotent).

        Extends the message so the context survives plain ``str(exc)``
        formatting in logs and test output.
        """
        ids = tuple(int(t) for t in trial_ids)
        if self.trials == ids:
            return self
        self.trials = ids
        if self.args:
            self.args = (
                f"{self.args[0]} [trial(s) in flight: {list(ids)}]",
            ) + self.args[1:]
        return self


class WorkerCrashError(WorkerFailure):
    """A worker process died without reporting a Python exception.

    Typically an abrupt exit (``os._exit``, OOM kill, segfault).  Carries
    the global rank, the process exit code, and — when the coordinator
    knows it — the number of supersteps the rank had completed when it
    died (i.e. the superstep that was in flight).
    """

    def __init__(self, rank: int, exitcode: int | None,
                 superstep: int | None = None):
        self.rank = rank
        self.exitcode = exitcode
        self.superstep = superstep
        at = "" if superstep is None else f" during superstep {superstep}"
        super().__init__(
            f"worker rank {rank} died unexpectedly{at} "
            f"(exit code {exitcode})"
        )


class WorkerProgramError(WorkerFailure):
    """The SPMD program raised on one rank; carries the remote traceback."""

    def __init__(self, rank: int, exc_type: str, remote_traceback: str):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker rank {rank} raised {exc_type}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )


class WorkerTimeoutError(WorkerFailure):
    """No worker made progress within the configured inactivity timeout.

    ``missing`` lists the global ranks the coordinator was still waiting
    on (alive but silent — hung, deadlocked outside a collective, or
    legitimately slower than the timeout allows); ``supersteps`` maps each
    missing rank to the number of supersteps it had completed, when the
    coordinator knows it.
    """

    def __init__(self, timeout_s: float, missing: list[int],
                 supersteps: dict[int, int] | None = None):
        self.timeout_s = timeout_s
        self.missing = list(missing)
        self.supersteps = dict(supersteps) if supersteps else None
        at = ""
        if self.supersteps:
            at = (" (completed supersteps: "
                  + ", ".join(f"rank {r}: {s}"
                              for r, s in sorted(self.supersteps.items()))
                  + ")")
        super().__init__(
            f"no worker activity for {timeout_s:g}s; still waiting on "
            f"rank(s) {self.missing}{at} (raise MpBackend(timeout=...) if "
            "the computation is legitimately slow)"
        )
