"""Typed failures of the multiprocess execution backend.

Every error a real run can hit — a worker segfaulting, a program raising
on one rank, a rank hanging past the inactivity timeout — surfaces as a
:class:`WorkerFailure` (a ``RuntimeError``) carrying the failing rank(s),
never as a hang: the coordinator bounds every wait and tears the worker
pool down before re-raising.
"""

from __future__ import annotations

__all__ = [
    "WorkerFailure",
    "WorkerCrashError",
    "WorkerProgramError",
    "WorkerTimeoutError",
]


class WorkerFailure(RuntimeError):
    """Base class for multiprocess-backend failures."""


class WorkerCrashError(WorkerFailure):
    """A worker process died without reporting a Python exception.

    Typically an abrupt exit (``os._exit``, OOM kill, segfault).  Carries
    the global rank and the process exit code.
    """

    def __init__(self, rank: int, exitcode: int | None):
        self.rank = rank
        self.exitcode = exitcode
        super().__init__(
            f"worker rank {rank} died unexpectedly (exit code {exitcode})"
        )


class WorkerProgramError(WorkerFailure):
    """The SPMD program raised on one rank; carries the remote traceback."""

    def __init__(self, rank: int, exc_type: str, remote_traceback: str):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker rank {rank} raised {exc_type}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )


class WorkerTimeoutError(WorkerFailure):
    """No worker made progress within the configured inactivity timeout.

    ``missing`` lists the global ranks the coordinator was still waiting
    on (alive but silent — hung, deadlocked outside a collective, or
    legitimately slower than the timeout allows).
    """

    def __init__(self, timeout_s: float, missing: list[int]):
        self.timeout_s = timeout_s
        self.missing = list(missing)
        super().__init__(
            f"no worker activity for {timeout_s:g}s; still waiting on "
            f"rank(s) {self.missing} (raise MpBackend(timeout=...) if the "
            "computation is legitimately slow)"
        )
