"""Shared-memory payload transport for the multiprocess backend.

Control messages travel over ``multiprocessing`` pipes (pickle), but bulk
numpy payloads — edge arrays, gathered samples, dense matrix blocks — are
hoisted out of the pickle stream into POSIX shared memory: the sender
copies the array into a :class:`~multiprocessing.shared_memory.SharedMemory`
segment and ships only a small :class:`ShmArrayRef` descriptor; the receiver
attaches, copies out, and unlinks the segment.

The discipline is strictly single-reader: every encoded message has exactly
one recipient, which owns the segment's lifetime after decode.  The sender
unregisters the segment from its own ``resource_tracker`` immediately after
creation so that neither side's tracker warns about (or double-frees) a
segment the other side already reclaimed.

Arrays below :data:`DEFAULT_SHM_THRESHOLD` bytes stay inline in the pickle
— a pipe round-trip is cheaper than two page-aligned copies for small
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "ShmArrayRef",
    "encode_payload",
    "decode_payload",
    "collect_shm_names",
    "unlink_segments",
]

#: Minimum ``ndarray.nbytes`` for the shared-memory path (64 KiB).
DEFAULT_SHM_THRESHOLD = 1 << 16


@dataclass(frozen=True)
class ShmArrayRef:
    """Wire descriptor of an ndarray parked in a shared-memory segment."""

    name: str
    shape: tuple
    dtype: str


def _stash_array(arr: np.ndarray) -> ShmArrayRef:
    """Copy ``arr`` into a fresh shared-memory segment owned by the reader."""
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    try:
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        dst[...] = arr
        return ShmArrayRef(name=seg.name, shape=arr.shape, dtype=arr.dtype.str)
    finally:
        # The reader unlinks after decoding; forget the segment here so the
        # sender's resource tracker neither warns nor double-unlinks it.
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker is best-effort anyway
            pass
        seg.close()


def _fetch_array(ref: ShmArrayRef) -> np.ndarray:
    """Materialize a stashed array and reclaim its segment."""
    seg = shared_memory.SharedMemory(name=ref.name)
    try:
        src = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        return src.copy()
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


def encode_payload(obj, threshold: int = DEFAULT_SHM_THRESHOLD):
    """Replace large ndarrays in ``obj`` with shared-memory descriptors.

    Walks tuples, lists and dict values (the shapes collectives move);
    everything else passes through to the pipe's pickle stream untouched.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= threshold and not obj.dtype.hasobject:
            return _stash_array(obj)
        return obj
    if isinstance(obj, tuple):
        return tuple(encode_payload(x, threshold) for x in obj)
    if isinstance(obj, list):
        return [encode_payload(x, threshold) for x in obj]
    if isinstance(obj, dict):
        return {k: encode_payload(v, threshold) for k, v in obj.items()}
    return obj


def decode_payload(obj):
    """Inverse of :func:`encode_payload`; reclaims every referenced segment."""
    if isinstance(obj, ShmArrayRef):
        return _fetch_array(obj)
    if isinstance(obj, tuple):
        return tuple(decode_payload(x) for x in obj)
    if isinstance(obj, list):
        return [decode_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: decode_payload(v) for k, v in obj.items()}
    return obj


def collect_shm_names(obj, out: list[str] | None = None) -> list[str]:
    """Segment names referenced by an *encoded* wire object."""
    if out is None:
        out = []
    if isinstance(obj, ShmArrayRef):
        out.append(obj.name)
    elif isinstance(obj, (tuple, list)):
        for x in obj:
            collect_shm_names(x, out)
    elif isinstance(obj, dict):
        for v in obj.values():
            collect_shm_names(v, out)
    return out


def unlink_segments(names) -> None:
    """Best-effort reclamation of leaked segments (error-path cleanup)."""
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent unlink
            pass
