"""Shared-memory payload transport for the multiprocess backend.

Control messages travel over ``multiprocessing`` pipes (pickle), but bulk
numpy payloads — edge arrays, gathered samples, dense matrix blocks — are
hoisted out of the pickle stream into POSIX shared memory.  Two codecs
share the wire format machinery:

**Pooled arena** (the default, :class:`Transport` with ``use_arena=True``):
each endpoint owns a :class:`ShmArena` of size-classed slabs (power-of-two
sizes from 64 KiB up).  All ndarray leaves of one message — including the
columns of an :class:`~repro.bsp.arrays.ArrayBundle` — are packed into
*one* slab at aligned offsets and shipped as :class:`SlabArrayRef`
descriptors, so a whole multi-column collective costs one segment and one
copy per side instead of one ``shm_open``/``mmap``/``unlink`` per array.
Slabs are recycled through a free list:

* a worker's *request* slab is released when the coordinator's reply
  arrives (the coordinator decodes a request on receipt, so by reply time
  the slab is provably consumed);
* the coordinator's *reply* slab is released when that rank's next
  message arrives (the worker is strictly synchronous, so its next
  request proves the reply was decoded).

Receivers keep peer segments attached in a :class:`Transport` cache keyed
by segment name — a recycled slab is re-read without a fresh
``shm_open``/``mmap``.  Each arena unlinks everything it owns at close;
the coordinator additionally sweeps every worker slab name it has seen
after the pool is torn down and **logs** any it actually had to reclaim,
so leaks are visible instead of silent.

**Legacy one-shot** (``use_arena=False``, kept for differential
benchmarking): the sender copies each large array into a fresh segment
(:class:`ShmArrayRef`), the receiver attaches, copies out, and unlinks.
Strictly single-reader in both modes: every encoded message has exactly
one recipient.  Senders/attachers unregister segments from their own
``resource_tracker`` so neither side's tracker warns about (or
double-frees) a segment the other side reclaimed.

Arrays below the threshold stay inline in the pickle — a pipe round-trip
is cheaper than page-aligned copies for small payloads.  (In arena mode
the decision is per *message*: leaves are packed when their combined size
crosses the threshold.)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.bsp.arrays import ArrayBundle

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "DEFAULT_MAX_RETAINED",
    "ShmArrayRef",
    "SlabArrayRef",
    "BundleRef",
    "ShmArena",
    "Transport",
    "TransportStats",
    "encode_payload",
    "decode_payload",
    "collect_shm_names",
    "collect_slab_names",
    "unlink_segments",
]

logger = logging.getLogger(__name__)

#: Minimum payload-array bytes for the shared-memory path (64 KiB); also
#: the smallest arena slab size class.
DEFAULT_SHM_THRESHOLD = 1 << 16

#: Free-list retention bound per arena: released slabs beyond this many
#: bytes are unlinked instead of pooled (bounds the high-water mark).
DEFAULT_MAX_RETAINED = 32 << 20

#: Slab packing alignment (bytes) — cache-line aligned array starts.
_ALIGN = 64


@dataclass(frozen=True)
class ShmArrayRef:
    """Wire descriptor of an ndarray parked in a one-shot segment.

    Legacy path: the receiver attaches, copies out, and unlinks.
    """

    name: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class SlabArrayRef:
    """Wire descriptor of an ndarray packed into a pooled arena slab.

    The slab stays owned by the sender's arena: the receiver attaches
    (cached), copies out, and must **not** unlink.
    """

    name: str
    offset: int
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class BundleRef:
    """Wire form of an :class:`~repro.bsp.arrays.ArrayBundle`.

    ``columns`` holds per-column wire objects (slab refs, one-shot refs,
    or small inline arrays); ``counts`` rides inline — it is metadata and
    tiny (one int64 per group member).
    """

    columns: tuple
    counts: object


try:  # POSIX: raw shm_unlink, bypassing the resource tracker
    import _posixshmem

    def _shm_unlink(name: str) -> None:
        _posixshmem.shm_unlink(name)
except ImportError:  # pragma: no cover - non-POSIX fallback
    def _shm_unlink(name: str) -> None:
        seg = shared_memory.SharedMemory(name=name)
        seg.close()
        seg.unlink()


def _untrack(name: str) -> None:
    """Forget a segment in this process's resource tracker.

    Every ``SharedMemory`` — attach as well as create — registers with the
    tracker on this Python; without unregistering, the tracker would warn
    about (and try to double-unlink) segments the owning side reclaims.
    """
    try:
        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is best-effort anyway
        pass


def _size_class(nbytes: int) -> int:
    """Smallest power-of-two slab size >= nbytes (floor 64 KiB)."""
    return 1 << max(16, int(nbytes - 1).bit_length())


def _packable(arr: np.ndarray) -> bool:
    return arr.nbytes > 0 and not arr.dtype.hasobject


# ---------------------------------------------------------------------------
# Legacy one-shot codec
# ---------------------------------------------------------------------------

def _stash_array(arr: np.ndarray) -> ShmArrayRef:
    """Copy ``arr`` into a fresh shared-memory segment owned by the reader."""
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    try:
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        dst[...] = arr
        return ShmArrayRef(name=seg.name, shape=arr.shape, dtype=arr.dtype.str)
    finally:
        # The reader unlinks after decoding; forget the segment here so the
        # sender's resource tracker neither warns nor double-unlinks it.
        _untrack(seg._name)
        seg.close()


def _fetch_array(ref: ShmArrayRef) -> np.ndarray:
    """Materialize a one-shot stashed array and reclaim its segment."""
    seg = shared_memory.SharedMemory(name=ref.name)
    try:
        src = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        return src.copy()
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


def encode_payload(obj, threshold: int = DEFAULT_SHM_THRESHOLD):
    """Replace large ndarrays in ``obj`` with one-shot segment descriptors.

    Walks tuples, lists, dict values and :class:`ArrayBundle` columns (the
    shapes collectives move); everything else passes through to the pipe's
    pickle stream untouched.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= threshold and not obj.dtype.hasobject:
            return _stash_array(obj)
        return obj
    if isinstance(obj, ArrayBundle):
        return BundleRef(
            columns=tuple(encode_payload(c, threshold) for c in obj.columns),
            counts=obj.counts,
        )
    if isinstance(obj, tuple):
        return tuple(encode_payload(x, threshold) for x in obj)
    if isinstance(obj, list):
        return [encode_payload(x, threshold) for x in obj]
    if isinstance(obj, dict):
        return {k: encode_payload(v, threshold) for k, v in obj.items()}
    return obj


def decode_payload(obj, attach=None):
    """Inverse of :func:`encode_payload` / :meth:`Transport.encode`.

    One-shot refs are reclaimed (attach + copy + unlink).  Slab refs are
    read through ``attach`` — a callable ``name -> SharedMemory`` (the
    transport's cached attacher); without one, an ephemeral attach is used
    and the slab is left alone (it belongs to the sender's arena).
    """
    if isinstance(obj, ShmArrayRef):
        return _fetch_array(obj)
    if isinstance(obj, SlabArrayRef):
        if attach is not None:
            seg = attach(obj.name)
            return np.ndarray(
                obj.shape, dtype=np.dtype(obj.dtype),
                buffer=seg.buf, offset=obj.offset,
            ).copy()
        seg = shared_memory.SharedMemory(name=obj.name)
        try:
            _untrack(seg._name)
            return np.ndarray(
                obj.shape, dtype=np.dtype(obj.dtype),
                buffer=seg.buf, offset=obj.offset,
            ).copy()
        finally:
            seg.close()
    if isinstance(obj, BundleRef):
        return ArrayBundle(
            *(decode_payload(c, attach) for c in obj.columns),
            counts=obj.counts,
        )
    if isinstance(obj, tuple):
        return tuple(decode_payload(x, attach) for x in obj)
    if isinstance(obj, list):
        return [decode_payload(x, attach) for x in obj]
    if isinstance(obj, dict):
        return {k: decode_payload(v, attach) for k, v in obj.items()}
    return obj


def collect_shm_names(obj, out: list[str] | None = None) -> list[str]:
    """One-shot segment names referenced by an *encoded* wire object."""
    if out is None:
        out = []
    if isinstance(obj, ShmArrayRef):
        out.append(obj.name)
    elif isinstance(obj, BundleRef):
        for c in obj.columns:
            collect_shm_names(c, out)
    elif isinstance(obj, (tuple, list)):
        for x in obj:
            collect_shm_names(x, out)
    elif isinstance(obj, dict):
        for v in obj.values():
            collect_shm_names(v, out)
    return out


def collect_slab_names(obj, out: set[str] | None = None) -> set[str]:
    """Arena slab names referenced by an *encoded* wire object."""
    if out is None:
        out = set()
    if isinstance(obj, SlabArrayRef):
        out.add(obj.name)
    elif isinstance(obj, BundleRef):
        for c in obj.columns:
            collect_slab_names(c, out)
    elif isinstance(obj, (tuple, list)):
        for x in obj:
            collect_slab_names(x, out)
    elif isinstance(obj, dict):
        for v in obj.values():
            collect_slab_names(v, out)
    return out


def unlink_segments(names) -> list[str]:
    """Reclaim segments by name; returns the names that actually existed.

    Only ``FileNotFoundError`` (already reclaimed by the other side) is
    tolerated — anything else is a real bug and propagates.
    """
    reclaimed = []
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent unlink
            continue
        reclaimed.append(name)
    return reclaimed


# ---------------------------------------------------------------------------
# Pooled arena
# ---------------------------------------------------------------------------

class ShmArena:
    """Sender-owned pool of size-classed shared-memory slabs.

    Slabs are power-of-two sized (>= 64 KiB), recycled through per-class
    free lists, and unlinked eagerly once the pooled free bytes exceed
    ``max_retained`` — which bounds the arena's high-water mark.  Not
    thread-safe; each process endpoint owns exactly one.

    ``name_prefix`` makes slab names deterministic (``{prefix}{seq}``)
    instead of kernel-random: the multiprocess coordinator hands every
    worker a unique per-run prefix so that slabs a killed worker never
    got to unlink — including retained free-list slabs whose names never
    crossed the wire — can be found and reclaimed by a prefix sweep at
    pool shutdown.
    """

    def __init__(self, max_retained: int = DEFAULT_MAX_RETAINED,
                 name_prefix: str | None = None):
        self.max_retained = int(max_retained)
        self.name_prefix = name_prefix
        self._seq = 0
        self._free: dict[int, list[shared_memory.SharedMemory]] = {}
        self._segs: dict[str, shared_memory.SharedMemory] = {}  # all owned
        self._class_of: dict[str, int] = {}
        self._in_use: set[str] = set()
        self._free_bytes = 0
        self.created = 0       # fresh segments allocated (syscall path)
        self.reused = 0        # acquisitions served from the free list
        self.live_bytes = 0    # bytes across all owned slabs, right now
        self.high_water = 0    # max live_bytes ever

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A slab with capacity >= nbytes, recycled when possible.

        Best-fit from the free lists: the smallest pooled class that can
        hold the request is reused, even if larger than the exact class —
        shrinking workloads (CC frontiers, contracting graphs) then keep
        recycling their round-one slab instead of allocating a fresh
        segment per size class on the way down.
        """
        cls = _size_class(nbytes)
        fit = min((c for c, lst in self._free.items() if lst and c >= cls),
                  default=None)
        if fit is not None:
            seg = self._free[fit].pop()
            self._free_bytes -= fit
            self.reused += 1
        else:
            if self.name_prefix is None:
                seg = shared_memory.SharedMemory(create=True, size=cls)
            else:
                seg = shared_memory.SharedMemory(
                    name=f"{self.name_prefix}{self._seq}", create=True,
                    size=cls,
                )
                self._seq += 1
            _untrack(seg._name)
            self._segs[seg.name] = seg
            self._class_of[seg.name] = cls
            self.created += 1
            self.live_bytes += cls
            self.high_water = max(self.high_water, self.live_bytes)
        self._in_use.add(seg.name)
        return seg

    def release(self, name: str) -> None:
        """Return a slab to the pool once its single reader has decoded it."""
        if name not in self._in_use:
            return
        self._in_use.discard(name)
        cls = self._class_of[name]
        self._free.setdefault(cls, []).append(self._segs[name])
        self._free_bytes += cls
        # Evict largest classes first: frees the most bytes per unlink.
        while self._free_bytes > self.max_retained:
            big = max(c for c, lst in self._free.items() if lst)
            seg = self._free[big].pop()
            self._unlink(seg)
            self._free_bytes -= big

    def _unlink(self, seg: shared_memory.SharedMemory) -> None:
        del self._segs[seg.name]
        self.live_bytes -= self._class_of.pop(seg.name)
        name = seg._name  # the OS name, before close() drops state
        seg.close()
        # Slabs were unregistered from the resource tracker at creation;
        # SharedMemory.unlink() would unregister a second time and make the
        # tracker process log a KeyError, so unlink at the OS level.
        try:
            _shm_unlink(name)
        except FileNotFoundError:  # pragma: no cover - swept by the peer
            pass

    def close(self) -> list[str]:
        """Unlink every owned slab; returns their names."""
        names = list(self._segs)
        for name in names:
            self._unlink(self._segs[name])
        self._free.clear()
        self._in_use.clear()
        self._free_bytes = 0
        return names

    @property
    def owned_names(self) -> list[str]:
        return list(self._segs)


class TransportStats:
    """Per-collective-kind transport counters, mergeable across endpoints.

    For each message kind (collective kind, or ``"done"``/``"value"`` for
    result shipping) tracks: messages encoded, pickle bytes put on the
    pipe, shared-memory segments created vs reused, and array bytes copied
    into segments.  ``high_water`` is the max over the contributing
    arenas' high-water marks.
    """

    _FIELDS = ("messages", "pickle_bytes", "segments_created",
               "segments_reused", "bytes_copied")

    def __init__(self):
        self.kinds: dict[str, dict[str, int]] = {}
        self.high_water = 0

    def _bucket(self, kind: str) -> dict[str, int]:
        b = self.kinds.get(kind)
        if b is None:
            b = self.kinds[kind] = dict.fromkeys(self._FIELDS, 0)
        return b

    def note(self, kind: str, **deltas) -> None:
        b = self._bucket(kind)
        for f, d in deltas.items():
            b[f] += int(d)

    def merge(self, other: "TransportStats") -> None:
        for kind, b in other.kinds.items():
            mine = self._bucket(kind)
            for f in self._FIELDS:
                mine[f] += b[f]
        self.high_water = max(self.high_water, other.high_water)

    def totals(self) -> dict[str, int]:
        out = dict.fromkeys(self._FIELDS, 0)
        for b in self.kinds.values():
            for f in self._FIELDS:
                out[f] += b[f]
        return out

    def as_dict(self) -> dict:
        """JSON-ready snapshot: per-kind buckets plus totals."""
        return {
            "per_kind": {k: dict(v) for k, v in sorted(self.kinds.items())},
            "total": self.totals(),
            "high_water_bytes": self.high_water,
        }


class Transport:
    """One endpoint's payload codec: arena + peer-attachment cache + stats.

    ``encode`` returns ``(wire, names)`` where ``names`` are the shm
    segments backing the message — arena slabs to ``release()`` once the
    peer provably decoded them (arena mode), or one-shot segment names the
    peer unlinks itself (legacy mode; ``release`` is a no-op for those).
    """

    def __init__(
        self,
        *,
        threshold: int = DEFAULT_SHM_THRESHOLD,
        use_arena: bool = True,
        max_retained: int = DEFAULT_MAX_RETAINED,
        slab_prefix: str | None = None,
    ):
        self.threshold = int(threshold)
        self.use_arena = bool(use_arena)
        self.arena = (ShmArena(max_retained, name_prefix=slab_prefix)
                      if use_arena else None)
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self.stats = TransportStats()

    # -- encode --------------------------------------------------------------

    def encode(self, obj, kind: str = "?"):
        """Encode one message's payload; returns ``(wire, segment_names)``."""
        if not self.use_arena:
            wire = encode_payload(obj, self.threshold)
            names = collect_shm_names(wire)
            self.stats.note(
                kind, messages=1, segments_created=len(names),
                bytes_copied=self._one_shot_bytes(wire),
            )
            return wire, names

        leaves: list[np.ndarray] = []
        self._walk(obj, leaves.append)
        total = sum(a.nbytes for a in leaves)
        if total < self.threshold:
            self.stats.note(kind, messages=1)
            return self._inline(obj), []

        # Pack every array leaf into ONE slab at aligned offsets.
        offsets = []
        cursor = 0
        for a in leaves:
            cursor = -(-cursor // _ALIGN) * _ALIGN
            offsets.append(cursor)
            cursor += a.nbytes
        created0, reused0 = self.arena.created, self.arena.reused
        seg = self.arena.acquire(cursor)
        refs = []
        for a, off in zip(leaves, offsets):
            src = np.ascontiguousarray(a)
            dst = np.ndarray(src.shape, dtype=src.dtype,
                             buffer=seg.buf, offset=off)
            dst[...] = src
            refs.append(SlabArrayRef(name=seg.name, offset=off,
                                     shape=src.shape, dtype=src.dtype.str))
        it = iter(refs)
        wire = self._walk(obj, lambda a: next(it))
        self.stats.note(
            kind, messages=1, bytes_copied=total,
            segments_created=self.arena.created - created0,
            segments_reused=self.arena.reused - reused0,
        )
        self.stats.high_water = max(self.stats.high_water,
                                    self.arena.high_water)
        return wire, [seg.name]

    @staticmethod
    def _walk(obj, fn):
        """Rebuild ``obj`` with ``fn`` applied to every packable ndarray.

        The same traversal serves the collect pass (``fn`` records, result
        discarded) and the replace pass (``fn`` yields the refs in the
        identical order).
        """
        if isinstance(obj, np.ndarray):
            return fn(obj) if _packable(obj) else obj
        if isinstance(obj, ArrayBundle):
            return BundleRef(
                columns=tuple(
                    fn(c) if _packable(c) else c for c in obj.columns
                ),
                counts=obj.counts,
            )
        if isinstance(obj, tuple):
            return tuple(Transport._walk(x, fn) for x in obj)
        if isinstance(obj, list):
            return [Transport._walk(x, fn) for x in obj]
        if isinstance(obj, dict):
            return {k: Transport._walk(v, fn) for k, v in obj.items()}
        return obj

    @staticmethod
    def _inline(obj):
        """Below-threshold wire form: bundles still travel as BundleRefs
        (plain picklable dataclass), arrays stay inline."""
        if isinstance(obj, ArrayBundle):
            return BundleRef(columns=obj.columns, counts=obj.counts)
        if isinstance(obj, tuple):
            return tuple(Transport._inline(x) for x in obj)
        if isinstance(obj, list):
            return [Transport._inline(x) for x in obj]
        if isinstance(obj, dict):
            return {k: Transport._inline(v) for k, v in obj.items()}
        return obj

    @staticmethod
    def _one_shot_bytes(wire) -> int:
        total = 0

        def add(o):
            nonlocal total
            if isinstance(o, ShmArrayRef):
                total += int(np.prod(o.shape, dtype=np.int64)
                             * np.dtype(o.dtype).itemsize)
            elif isinstance(o, BundleRef):
                for c in o.columns:
                    add(c)
            elif isinstance(o, (tuple, list)):
                for x in o:
                    add(x)
            elif isinstance(o, dict):
                for v in o.values():
                    add(v)
        add(wire)
        return total

    # -- decode --------------------------------------------------------------

    def attach(self, name: str) -> shared_memory.SharedMemory:
        """Cached attachment to a peer-owned slab (one mmap per name)."""
        seg = self._attached.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            _untrack(seg._name)
            self._attached[name] = seg
        return seg

    def decode(self, obj):
        """Decode a wire payload through the attachment cache."""
        return decode_payload(obj, self.attach)

    # -- lifetime ------------------------------------------------------------

    def release(self, names) -> None:
        """Return arena slabs to the pool (no-op on one-shot names)."""
        if self.arena is not None:
            for name in names:
                self.arena.release(name)

    def note_pickle(self, kind: str, nbytes: int) -> None:
        self.stats.note(kind, pickle_bytes=nbytes)

    def close(self) -> list[str]:
        """Drop peer attachments and unlink the own arena; returns the
        unlinked slab names."""
        for seg in self._attached.values():
            seg.close()
        self._attached.clear()
        if self.arena is not None:
            return self.arena.close()
        return []
