"""Execution backends: one SPMD program surface, multiple runtimes.

The algorithms in :mod:`repro.core` are SPMD generator programs written
against the :class:`~repro.bsp.comm.Communicator` collectives.  This
package decides *where* such a program runs:

* :class:`SimBackend` — the deterministic single-process BSP simulator
  (:mod:`repro.bsp.engine`), with analytic cost counters and the §5.3
  machine-model time estimate.  The correctness and cost oracle.
* :class:`MpBackend` — real OS processes (``multiprocessing``,
  spawn-safe) communicating through a shared-memory transport, with
  *measured* wall-clock application/MPI time and bit-identical results
  and counters for a fixed seed.
* :class:`WarmMpBackend` — ``MpBackend`` with a keep-alive worker pool
  and persistent shm arenas: spawn once, run many.  The serving-layer
  backend (:mod:`repro.serve`).

:func:`resolve_backend` maps a spec (``"sim"``/``"mp"``/``"warm"``/
instance/None) to a backend; :mod:`repro.runtime.differential` holds the
backends to each other.
"""

from repro.runtime.base import Backend, available_backends, resolve_backend
from repro.runtime.errors import (
    WorkerCrashError,
    WorkerFailure,
    WorkerProgramError,
    WorkerTimeoutError,
)
from repro.runtime.mp import MpBackend, default_start_method
from repro.runtime.sim import SimBackend
from repro.runtime.warm import WarmMpBackend
from repro.runtime.differential import (
    ALGORITHMS,
    BackendParityError,
    ParityReport,
    assert_backend_parity,
    compare_backends,
)

__all__ = [
    "Backend",
    "SimBackend",
    "MpBackend",
    "WarmMpBackend",
    "resolve_backend",
    "available_backends",
    "default_start_method",
    "WorkerFailure",
    "WorkerCrashError",
    "WorkerProgramError",
    "WorkerTimeoutError",
    "ALGORITHMS",
    "BackendParityError",
    "ParityReport",
    "compare_backends",
    "assert_backend_parity",
]
