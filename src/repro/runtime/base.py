"""The execution-backend protocol shared by the simulator and real runtimes.

A :class:`Backend` executes an **unmodified SPMD generator program** — the
same ``program(ctx, *args, **kwargs)`` generators the BSP simulator runs —
and returns the engine's :class:`~repro.bsp.engine.RunResult` shape:
per-rank return values, an aggregated :class:`~repro.bsp.counters.CountersReport`,
and a :class:`~repro.bsp.machine.TimeEstimate` (analytic for the simulator,
measured wall-clock for real runtimes).

Entry points accept a backend *spec*: an existing :class:`Backend`
instance, a registered name (``"sim"``, ``"mp"``), or ``None`` for the
default simulator.  :func:`resolve_backend` performs that resolution and
keeps the legacy ``engine=`` escape hatch working.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Sequence

from repro.bsp.engine import Engine, RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultSpec
    from repro.trace.tracer import Tracer

__all__ = ["Backend", "resolve_backend", "available_backends"]


class Backend(ABC):
    """An executor for SPMD generator programs."""

    #: Registry name (``"sim"``, ``"mp"``); set by subclasses.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
        faults: "Sequence[FaultSpec] | None" = None,
    ) -> RunResult:
        """Execute ``program(ctx, *args, **kwargs)`` on ``p`` processors.

        Must be deterministic given ``seed``: for a fixed root seed every
        backend returns byte-identical per-rank values and counters (the
        simulator is the correctness/cost oracle for real runtimes).

        ``faults`` injects deterministic :class:`~repro.faults.FaultSpec`
        records at the backend's superstep seam (see :mod:`repro.faults`);
        failures then surface as the same typed
        :class:`~repro.runtime.errors.WorkerFailure` errors on every
        backend.  ``None`` (the default) must be a zero-overhead fast
        path.
        """

    def close(self) -> None:
        """Release any long-lived resources (worker pools, shm arenas).

        One-shot backends hold none between runs, so the default is a
        no-op; keep-alive backends (:class:`~repro.runtime.warm.WarmMpBackend`)
        override it.  Safe to call repeatedly and on a never-run backend.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def available_backends() -> dict[str, type]:
    """Name -> class map of the registered backends."""
    from repro.runtime.mp import MpBackend
    from repro.runtime.sim import SimBackend
    from repro.runtime.warm import WarmMpBackend

    return {SimBackend.name: SimBackend, MpBackend.name: MpBackend,
            WarmMpBackend.name: WarmMpBackend}


def resolve_backend(
    backend: "str | Backend | None" = None,
    *,
    engine: Engine | None = None,
    tracer: "Tracer | None" = None,
    fuse=None,
) -> Backend:
    """Resolve a backend spec (name, instance or ``None``) to an instance.

    ``engine`` is the legacy simulator escape hatch used throughout the
    benchmarks (traced engines, custom cache geometry); it is only
    meaningful for the simulator, so combining it with any non-sim spec is
    an error rather than a silent ignore.  ``tracer`` attaches a collective
    tracer to a freshly constructed backend (either name); an already
    constructed instance carries its own tracer, so combining the two is
    likewise an error.  ``fuse`` (a bool or
    :class:`~repro.bsp.fusion.FusionConfig`) enables automatic superstep
    fusion on a freshly constructed backend, with the same
    instance-conflict rule as ``tracer``.
    """
    from repro.runtime.sim import SimBackend

    if isinstance(backend, Backend):
        if engine is not None:
            raise ValueError(
                "pass either backend= or engine=, not both "
                "(engine= configures the simulator only)"
            )
        if tracer is not None:
            raise ValueError(
                "a backend instance carries its own tracer; pass tracer= "
                "only with a backend name (or None)"
            )
        if fuse is not None:
            raise ValueError(
                "a backend instance carries its own fusion config; pass "
                "fuse= only with a backend name (or None)"
            )
        return backend
    if backend is None or backend == "sim":
        if engine is not None and (tracer is not None or fuse is not None):
            raise ValueError(
                "pass either engine= or tracer=/fuse=, not both"
            )
        return SimBackend(engine=engine, tracer=tracer, fuse=fuse)
    if engine is not None:
        raise ValueError(
            f"engine= applies to the sim backend only, not {backend!r}"
        )
    registry = available_backends()
    if isinstance(backend, str) and backend in registry:
        cls = registry[backend]
        kw = {}
        if tracer is not None:
            kw["tracer"] = tracer
        if fuse is not None:
            kw["fuse"] = fuse
        return cls(**kw)
    raise ValueError(
        f"unknown backend {backend!r}; available: {sorted(registry)}"
    )
