"""Counter-based parallel pseudo-random number generation.

The paper's artifact uses the Philox counter-based PRNG of Salmon et al.
(SC'11) to guarantee uncorrelated streams across MPI ranks, with one fresh
root seed per execution.  We mirror that design: a single :class:`SeedSequence`
root is split into one independent Philox stream per virtual processor, so the
whole execution is a deterministic function of the root seed.
"""

from repro.rng.streams import RngStreams, philox_stream
from repro.rng.sampling import (
    CumulativeWeightSampler,
    AliasSampler,
    multinomial_split,
    sample_without_replacement,
)

__all__ = [
    "RngStreams",
    "philox_stream",
    "CumulativeWeightSampler",
    "AliasSampler",
    "multinomial_split",
    "sample_without_replacement",
]
