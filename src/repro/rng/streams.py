"""Per-processor Philox random streams.

Every virtual BSP processor owns an independent counter-based stream derived
from a single root seed, matching the artifact's use of Salmon et al.'s
Philox generator for uncorrelated parallel streams.  Streams are keyed by
``(root_seed, stream_id)`` so the same processor re-created later (e.g. in a
resumed trial) sees the same randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["philox_stream", "RngStreams"]


def philox_stream(seed: int, stream_id: int = 0) -> np.random.Generator:
    """Return an independent Philox generator for ``(seed, stream_id)``.

    Parameters
    ----------
    seed:
        Root seed of the whole execution.
    stream_id:
        Index of the logical stream (e.g. the processor rank).  Distinct
        ``stream_id`` values yield statistically independent streams.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    if stream_id < 0:
        raise ValueError(f"stream_id must be non-negative, got {stream_id}")
    bitgen = np.random.Philox(key=(np.uint64(seed) << np.uint64(32)) + np.uint64(stream_id))
    return np.random.Generator(bitgen)


class RngStreams:
    """A family of independent streams derived from one root seed.

    The family hands out one stream per processor rank plus arbitrarily many
    named auxiliary streams (e.g. per-trial streams inside the minimum cut
    algorithm).  Stream ids are allocated deterministically.
    """

    #: Offset separating per-rank streams from auxiliary streams.  Supports
    #: up to 2**20 processor ranks, far above any simulated configuration.
    _AUX_BASE = 1 << 20

    def __init__(self, seed: int):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)

    def for_rank(self, rank: int) -> np.random.Generator:
        """Stream owned by processor ``rank``."""
        if not 0 <= rank < self._AUX_BASE:
            raise ValueError(f"rank out of range: {rank}")
        return philox_stream(self.seed, rank)

    def aux(self, index: int) -> np.random.Generator:
        """Auxiliary stream ``index`` (independent of all rank streams)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return philox_stream(self.seed, self._AUX_BASE + index)

    def spawn(self, index: int) -> "RngStreams":
        """Derive a child family (e.g. one per minimum-cut trial)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        # Mix with a splitmix64-style constant so child seeds do not collide
        # with parent seeds for small indices.
        child = (self.seed * 0x9E3779B97F4A7C15 + index + 1) % (1 << 63)
        return RngStreams(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed})"
