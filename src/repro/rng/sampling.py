"""Weighted sampling primitives used by sparsification.

The paper samples edges *with replacement*, each edge chosen with probability
proportional to its weight (§3.1).  After a linear-time preprocessing step a
sample takes O(log n) time (binary search over cumulative weights, as in
Karger–Stein §5); the alias method gives O(1) per sample and is used where
the distribution is reused many times.  ``multinomial_split`` implements the
root's step 2 of the sparsification schedule: distributing the ``s`` sample
slots over processors proportionally to their slice weights.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CumulativeWeightSampler",
    "AliasSampler",
    "multinomial_split",
    "sample_without_replacement",
]


class CumulativeWeightSampler:
    """Sample indices with probability proportional to ``weights``.

    Linear-time preprocessing (a prefix-sum), O(log n) per sample via binary
    search — the scheme the paper cites from Karger–Stein [25, §5].
    Vectorized: drawing ``k`` samples costs one uniform batch plus one
    ``searchsorted``.
    """

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if weights.size == 0:
            raise ValueError("cannot sample from an empty weight vector")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        self._cumulative = np.cumsum(weights)
        self.total = float(self._cumulative[-1])
        if self.total <= 0:
            raise ValueError("total weight must be positive")

    def __len__(self) -> int:
        return int(self._cumulative.size)

    def sample(self, rng: np.random.Generator, k: int) -> np.ndarray:
        """Draw ``k`` indices i.i.d. proportionally to the weights."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        u = rng.random(k) * self.total
        return np.searchsorted(self._cumulative, u, side="right").astype(np.int64)

    def sample_in_segments(
        self, draws: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Map uniform draws onto weighted choices inside index segments.

        ``lo``/``hi`` give, per draw, a non-empty half-open slot range
        ``[lo, hi)`` of this sampler's weight vector; each draw in
        ``[0, 1)`` selects one slot of its range with probability
        proportional to the slot weights (the conditional distribution of
        :meth:`sample` given the range).  One ``searchsorted`` over the
        shared prefix-sum serves every segment, so the per-vertex two-out
        sampler can draw all vertices' choices in a single call.
        """
        draws = np.asarray(draws, dtype=np.float64)
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        if not (draws.shape == lo.shape == hi.shape):
            raise ValueError("draws, lo and hi must have matching shapes")
        if np.any(lo >= hi):
            raise ValueError("every segment must be non-empty (lo < hi)")
        if lo.size and (lo.min() < 0 or hi.max() > self._cumulative.size):
            raise ValueError("segment bounds out of range")
        cum = self._cumulative
        base = np.where(lo > 0, cum[lo - 1], 0.0)
        targets = base + draws * (cum[hi - 1] - base)
        idx = np.searchsorted(cum, targets, side="right").astype(np.int64)
        # Float round-off can land a target exactly on (or past) the
        # segment's final cumulative value; clamp into the half-open range.
        return np.clip(idx, lo, hi - 1)


class AliasSampler:
    """Walker's alias method: O(n) preprocessing, O(1) per sample.

    Used when a weight distribution is sampled many more times than its size
    (e.g. repeated contraction trials over the same graph copy).
    """

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("total weight must be positive")
        n = weights.size
        prob = weights * (n / total)
        alias = np.zeros(n, dtype=np.int64)
        accept = np.ones(n, dtype=np.float64)
        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            accept[s] = prob[s]
            alias[s] = l
            prob[l] = prob[l] - (1.0 - prob[s])
            if prob[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Remaining entries keep accept == 1 (numerical leftovers).
        self._accept = accept
        self._alias = alias
        self.total = float(total)

    def __len__(self) -> int:
        return int(self._accept.size)

    def sample(self, rng: np.random.Generator, k: int) -> np.ndarray:
        """Draw ``k`` indices i.i.d. proportionally to the weights."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        n = self._accept.size
        idx = rng.integers(0, n, size=k)
        u = rng.random(k)
        take_alias = u >= self._accept[idx]
        out = idx.copy()
        out[take_alias] = self._alias[idx[take_alias]]
        return out.astype(np.int64)


def multinomial_split(
    rng: np.random.Generator, total: int, weights: np.ndarray
) -> np.ndarray:
    """Distribute ``total`` sample slots over bins proportionally to weights.

    This is step 2 of the paper's sparsification schedule: the root draws,
    for each of the ``s`` sample positions, the processor that will provide
    the edge, with probability W_i / sum_z W_z.  Returns the per-bin counts
    K_1..K_p (which are jointly multinomial).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    wsum = weights.sum()
    if wsum <= 0:
        raise ValueError("total weight must be positive")
    return rng.multinomial(total, weights / wsum).astype(np.int64)


def sample_without_replacement(
    rng: np.random.Generator, population: int, k: int
) -> np.ndarray:
    """Uniform sample of ``k`` distinct indices from ``range(population)``."""
    if not 0 <= k <= population:
        raise ValueError(f"need 0 <= k <= population, got k={k}, population={population}")
    return rng.choice(population, size=k, replace=False).astype(np.int64)
