"""Dynamic-graph sessions: the serve daemon's streaming-update state.

A *session* wraps one :class:`~repro.dynamic.graph.DynamicGraph` behind
the daemon's ``dyn_*`` verbs.  Durability follows the job store's
pattern: a session document (``<state_dir>/dynamic/<id>.json``) pins the
initial graph by path + content fingerprint, and an append-only update
log (``<id>.updates.jsonl``) records every accepted batch **before** it
is applied (write-ahead), interleaved with the sparsifier's rebuild
events (which are query-triggered, so updates alone don't pin them).
Because every dynamic answer is then a pure function of ``(initial
graph, log, seed, p)``, a daemon killed mid-stream and restarted
replays the log and serves bit-identical answers from the exact epoch
it reached — the dynamic analogue of the trial ledger's resume story.

Updates are applied inline on the connection thread (O(α) bookkeeping,
no backend work); queries go through the job queue so the single-tenant
backend only ever runs on the executor thread.
"""

from __future__ import annotations

import json
import os
import threading

from repro.dynamic.graph import DynamicGraph

__all__ = ["DynamicSession", "DynamicSessionManager"]


class DynamicSession:
    """One live dynamic graph plus its durable update log."""

    def __init__(self, sid: str, doc: dict, dyn: DynamicGraph,
                 log_path: str):
        self.id = sid
        self.doc = doc              # persisted session document
        self.dyn = dyn
        self.log_path = log_path
        self.lock = threading.Lock()
        # Sparsifier rebuilds are query-triggered, so replaying updates
        # alone would leave a resumed session's approx answers on a
        # different (fresher) base.  Recording each rebuild epoch makes
        # the whole trajectory — updates *and* amortization events — a
        # pure function of the log.
        dyn.on_resparsify = self._log_resparsify

    def _append(self, doc: dict) -> None:
        line = json.dumps(doc, separators=(",", ":"))
        with open(self.log_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _log_resparsify(self, epoch: int) -> None:
        self._append({"resparsify": epoch})

    def update(self, ops: list) -> dict:
        """Write-ahead log one batch, apply it, return the staleness doc."""
        with self.lock:
            self._append({"epoch": self.dyn.epoch + 1, "ops": ops})
            return self.dyn.update_edges(ops)


class DynamicSessionManager:
    """Session registry + persistence under ``state_dir/dynamic/``."""

    def __init__(self, state_dir: str):
        self.dir = os.path.join(state_dir, "dynamic")
        os.makedirs(self.dir, exist_ok=True)
        self.sessions: dict[str, DynamicSession] = {}
        self._lock = threading.Lock()
        self._seq = self._next_seq()

    def _next_seq(self) -> int:
        top = 0
        for name in os.listdir(self.dir):
            if name.startswith("d") and name.endswith(".json"):
                try:
                    top = max(top, int(name[1:-5]))
                except ValueError:
                    continue
        return top + 1

    def _paths(self, sid: str) -> tuple[str, str]:
        return (os.path.join(self.dir, f"{sid}.json"),
                os.path.join(self.dir, f"{sid}.updates.jsonl"))

    # -- lifecycle -----------------------------------------------------------

    def open(self, g, *, path: str, fingerprint: str, seed: int, p: int,
             backend=None, plane: bool = False, plan_cache=None,
             **dyn_kwargs) -> DynamicSession:
        """Create, persist and register a fresh session at epoch 0."""
        with self._lock:
            sid = f"d{self._seq:06d}"
            self._seq += 1
        doc = {"id": sid, "path": os.path.abspath(path),
               "fingerprint": fingerprint, "seed": int(seed), "p": int(p),
               "dyn_kwargs": dyn_kwargs}
        doc_path, log_path = self._paths(sid)
        tmp = f"{doc_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, doc_path)
        open(log_path, "a").close()
        dyn = DynamicGraph(g, p=int(p), seed=int(seed), backend=backend,
                           plane=plane, plan_cache=plan_cache, **dyn_kwargs)
        session = DynamicSession(sid, doc, dyn, log_path)
        with self._lock:
            self.sessions[sid] = session
        return session

    def resume_all(self, load_graph, *, backend=None, plane: bool = False,
                   plan_cache=None) -> list[str]:
        """Rebuild every persisted session by replaying its update log.

        ``load_graph(path, expected_fp)`` supplies the initial graph
        (the daemon passes its cache's loader, so the fingerprint pin is
        re-validated).  A session whose graph file vanished or changed
        is skipped — its jobs will fail with a typed error rather than
        silently serving different bits.  Returns resumed session ids.
        """
        resumed = []
        for name in sorted(os.listdir(self.dir)):
            if not (name.startswith("d") and name.endswith(".json")):
                continue
            doc_path = os.path.join(self.dir, name)
            with open(doc_path, encoding="utf-8") as fh:
                doc = json.load(fh)
            sid = doc["id"]
            if sid in self.sessions:
                continue
            try:
                g = load_graph(doc["path"], doc["fingerprint"])
            except Exception:
                continue  # graph gone/changed: session unrecoverable
            dyn = DynamicGraph(g, p=int(doc["p"]), seed=int(doc["seed"]),
                               backend=backend, plane=plane,
                               plan_cache=plan_cache,
                               **doc.get("dyn_kwargs", {}))
            _doc_path, log_path = self._paths(sid)
            # The hook is attached by DynamicSession below, AFTER the
            # replay — replayed rebuilds must not re-append log lines.
            with open(log_path, encoding="utf-8") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    entry = json.loads(line)
                    if "ops" in entry:
                        dyn.update_edges(entry["ops"])
                    elif "resparsify" in entry:
                        dyn.sparsifier.rebuild(dyn, dyn.snapshot(),
                                               dyn.fingerprint())
            session = DynamicSession(sid, doc, dyn, log_path)
            with self._lock:
                self.sessions[sid] = session
            resumed.append(sid)
        return resumed

    def get(self, sid: str) -> DynamicSession | None:
        with self._lock:
            return self.sessions.get(sid)

    def close(self, sid: str, *, discard: bool = True) -> bool:
        """Drop a session (and, by default, its persisted state)."""
        with self._lock:
            session = self.sessions.pop(sid, None)
        if session is None:
            return False
        session.dyn.close()
        if discard:
            for path in self._paths(sid):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
        return True

    def close_all(self) -> None:
        """Release every live session's plane pin (state stays on disk)."""
        with self._lock:
            sessions = list(self.sessions.values())
            self.sessions.clear()
        for session in sessions:
            session.dyn.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "sessions": len(self.sessions),
                "epochs": {sid: s.dyn.epoch
                           for sid, s in sorted(self.sessions.items())},
            }
