"""The line-delimited-JSON wire protocol of the serve daemon.

One connection, one JSON object per line, request/response in lockstep.
Every request carries ``{"op": <name>, ...}``; every response carries
``{"ok": true, ...}`` or ``{"ok": false, "error": <type>, "message": ...}``.
Ops:

``submit``
    ``{"op": "submit", "algorithm": "parallel_cc" | "approx_cut" |
    "square_root", "path": <graph file>, "seed": int, "p": int,
    "client": str, "priority": float, ...algorithm kwargs}`` →
    ``{"ok": true, "job": <id>}``.  ``priority`` is the client's fair-
    queue weight (default 1.0; higher drains faster, never starves
    others).  Optional algorithm kwargs: ``variant``/``trials``/
    ``trial_scale``/``success_prob`` for ``square_root``, ``eps``/
    ``delta`` for the others where applicable.
``status``
    ``{"op": "status", "job": <id>}`` → job state (``queued`` /
    ``running`` / ``done`` / ``failed`` / ``cancelled``) plus progress
    (waves completed / planned).
``result``
    ``{"op": "result", "job": <id>, "wait": bool, "timeout": float}`` →
    the result document (below), blocking until terminal when ``wait``.
``cancel``
    ``{"op": "cancel", "job": <id>}`` → cancels a queued/running job.
``stats``
    daemon-wide counters: cache stats, queue depths, per-client served
    slices, backend pool spawns, uptime.
``ping`` / ``shutdown``
    liveness probe / graceful stop.

Dynamic-graph sessions (``docs/dynamic.md``):

``dyn_open``
    ``{"op": "dyn_open", "path": <graph file>, "seed": int, "p": int}``
    → ``{"ok": true, "session": <id>, "epoch": 0, "fingerprint": ...}``.
    Opens a streaming session on the file's graph (epoch 0).
``dyn_update``
    ``{"op": "dyn_update", "session": <id>, "ops": [["insert", u, v, w],
    ["delete", u, v], ["reweight", u, v, w], ...]}`` → the new epoch's
    staleness document.  Applied inline (no backend work); each batch
    closes an epoch and is write-ahead logged for restart replay.
``dyn_query``
    ``{"op": "dyn_query", "session": <id>, "query": "components" |
    "cut", "mode": "exact" | "approx", "if_stale": "reject" |
    "requeue"}`` → ``{"ok": true, "job": <id>}``.  Queries run through
    the job queue (the backend is single-tenant); the job pins the
    session's epoch at submit.  If the epoch advanced before dispatch,
    ``"reject"`` (default) fails the job with the typed ``StaleEpoch``
    error; ``"requeue"`` re-pins it to the latest epoch and the result
    reports ``repinned_from_epoch``.
``dyn_staleness``
    ``{"op": "dyn_staleness", "session": <id>}`` → epoch, fingerprint,
    sparsifier drift/rebuild state, maintenance counters.
``dyn_close``
    ``{"op": "dyn_close", "session": <id>}`` → drops the session, its
    plane pin and (by default) its persisted stream.

Result documents are JSON-safe summaries, not pickles: ``parallel_cc``
reports ``n_components`` and a sha256 of the label array (plus the
labels themselves when small); ``square_root`` reports the cut ``value``,
the hex-packed witness ``side`` (:func:`repro.sched.ledger.encode_side`),
``trials``/``completed`` and the achieved success probability;
``approx_cut`` reports the estimate and witness value.  Everything needed
to *verify* a result against a direct :func:`repro.harness.run_algorithm`
call crosses the wire; bulk payloads stay in the daemon.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "ALGORITHMS",
    "DYNAMIC_ALGORITHMS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ProtocolError",
    "encode_line",
    "decode_line",
    "error_doc",
    "ok_doc",
    "result_doc",
    "dyn_result_doc",
]

#: Bumped on incompatible wire changes; ping reports it.  2 added the
#: dynamic-session verbs (dyn_open/dyn_update/dyn_query/dyn_staleness/
#: dyn_close) — a pure extension, so 1-era clients keep working.
PROTOCOL_VERSION = 2

#: Algorithm tags accepted by ``submit`` (the artifact executables).
ALGORITHMS = ("parallel_cc", "approx_cut", "square_root")

#: Internal job tags for dynamic-session queries (created by
#: ``dyn_query``, never by ``submit``).
DYNAMIC_ALGORITHMS = ("dyn_components", "dyn_cut")

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Label arrays at most this long ride along in cc result docs.
_MAX_INLINE_LABELS = 4096


class ProtocolError(Exception):
    """Malformed request or illegal op (reported, never fatal)."""


def encode_line(doc: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return (json.dumps(doc, separators=(",", ":"), sort_keys=True)
            + "\n").encode()


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line into a dict (raises ProtocolError)."""
    try:
        doc = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(doc).__name__}")
    return doc


def ok_doc(**fields: Any) -> dict:
    return {"ok": True, **fields}


def error_doc(error: str, message: str) -> dict:
    return {"ok": False, "error": error, "message": message}


def _labels_sha(labels: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype=np.int64).tobytes()).hexdigest()


def result_doc(algorithm: str, result: Any) -> dict:
    """JSON-safe summary of an algorithm result object (see module doc)."""
    from repro.sched.ledger import encode_side

    if algorithm == "parallel_cc":
        labels = np.asarray(result.labels)
        doc = {
            "algorithm": algorithm,
            "n_components": int(result.n_components),
            "labels_sha256": _labels_sha(labels),
        }
        if labels.size <= _MAX_INLINE_LABELS:
            doc["labels"] = [int(x) for x in labels]
        return doc
    if algorithm == "approx_cut":
        return {
            "algorithm": algorithm,
            "estimate": float(result.estimate),
            "witness_value": float(result.witness_value),
            "witness_side": (None if result.witness_side is None
                             else encode_side(result.witness_side)),
        }
    if algorithm == "square_root":
        return {
            "algorithm": algorithm,
            "value": float(result.value),
            "side": (None if result.side is None
                     else encode_side(result.side)),
            "trials": int(result.trials),
            # None for fixed-trials runs, where no probability target applies
            "achieved_success_prob": (
                None if result.achieved_success_prob is None
                else float(result.achieved_success_prob)),
            "variant": result.variant,
        }
    raise ProtocolError(f"unknown algorithm {algorithm!r}")


def dyn_result_doc(result) -> dict:
    """JSON-safe summary of a dynamic query result.

    Accepts a :class:`~repro.dynamic.graph.DynamicCCResult` or
    :class:`~repro.dynamic.graph.DynamicCutResult`; the epoch and
    fingerprint ride along so clients can verify which graph version
    the answer certifies.
    """
    from repro.dynamic.graph import DynamicCCResult
    from repro.sched.ledger import encode_side

    if isinstance(result, DynamicCCResult):
        labels = np.asarray(result.labels)
        doc = {
            "algorithm": "dyn_components",
            "epoch": int(result.epoch),
            "fingerprint": result.fingerprint,
            "n_components": int(result.n_components),
            "labels_sha256": _labels_sha(labels),
            "via": result.via,
        }
        if labels.size <= _MAX_INLINE_LABELS:
            doc["labels"] = [int(x) for x in labels]
        return doc
    return {
        "algorithm": "dyn_cut",
        "epoch": int(result.epoch),
        "fingerprint": result.fingerprint,
        "mode": result.mode,
        "value": float(result.value),
        "witness_value": (None if result.witness_value is None
                          else float(result.witness_value)),
        "side": (None if result.side is None
                 else encode_side(np.asarray(result.side, dtype=bool))),
        "certificate": result.certificate,
    }
