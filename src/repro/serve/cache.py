"""The daemon's graph and derivative caches.

Two levels, both bounded LRU (:class:`repro.cache.store.BoundedLRU`):

* **Graph cache** — content-fingerprint → loaded
  :class:`~repro.graph.edgelist.EdgeList`, weighted by edge count.  A
  fast *stat index* ``(abspath, mtime_ns, size) → fingerprint`` lets the
  warm path skip re-reading an unchanged file entirely; any stat change
  falls back to a full read + re-fingerprint, so a file edited in place
  can never serve stale bits.  Keeping the same ``EdgeList`` **object**
  hot has a second-order payoff: the samplers' identity-keyed caches
  (:func:`repro.core.sparsify.cached_sampler`, the 2-out incidence
  cache) stay warm automatically across queries on the same graph.
* **Derivative cache** — ``(fingerprint, seed, p, success_prob,
  trial_scale, rounds, replicas) → TwoOutPlan``: the 2-out preprocessing
  dispatch is deterministic in exactly those inputs, so replaying a
  cached plan through ``two_out_minimum_cut(plan=...)`` is bit-identical
  to recomputing it.

Clients may pin a graph identity by sending the fingerprint they expect
(``fingerprint`` field on submit); a mismatch against the loaded file is
rejected before any work is queued — the serving-side analogue of the
ledger's resume identity validation.
"""

from __future__ import annotations

import os
import threading

from repro.cache.store import BoundedLRU
from repro.graph import content_fingerprint, read_edgelist
from repro.graph.shm import eligible, pin, publish, release_pins

__all__ = ["FingerprintMismatch", "GraphCache"]


class FingerprintMismatch(ValueError):
    """The loaded graph's content fingerprint is not the one pinned."""

    def __init__(self, path: str, expected: str, actual: str):
        super().__init__(
            f"graph {path!r} has content fingerprint {actual[:16]}..., "
            f"client pinned {expected[:16]}..."
        )
        self.path = path
        self.expected = expected
        self.actual = actual


class GraphCache:
    """Fingerprint-keyed graph store with a stat fast path (module doc).

    ``capacity_edges`` bounds the total cached edge count;
    ``derivative_capacity`` bounds the number of cached 2-out plans.

    With ``plane=True`` (the daemon sets it when its backend has the
    shared graph plane) every resident graph above the plane's size
    floor is published and pinned for exactly as long as it is resident:
    LRU eviction is the single unpin/unlink site, so cache residency and
    ``/dev/shm`` segment lifetime move in lockstep and repeat queries on
    a cached graph ship O(1) handles with zero publish work.
    """

    def __init__(self, capacity_edges: float = 50_000_000,
                 derivative_capacity: int = 64, plane: bool = False):
        self.plane = bool(plane)
        self.graphs = BoundedLRU(capacity_edges,
                                 on_evict=self._on_graph_evict)
        self.derivatives = BoundedLRU(derivative_capacity)
        # stat-key -> fingerprint; tiny, pruned opportunistically against
        # the graph store so it cannot grow unboundedly.
        self._stat_index: dict[tuple, str] = {}
        # fingerprints holding a cache-residency plane pin.
        self._pinned: set[str] = set()
        self._lock = threading.Lock()

    def _on_graph_evict(self, fp, _g) -> None:
        # Called by BoundedLRU outside its lock for every departure
        # (eviction, pop, clear) — never for same-key replacement.
        with self._lock:
            held = fp in self._pinned
            self._pinned.discard(fp)
        if held:
            release_pins((fp,))

    @staticmethod
    def _stat_key(path: str) -> tuple:
        st = os.stat(path)
        return (os.path.abspath(path), st.st_mtime_ns, st.st_size)

    def load(self, path: str, expected_fp: str | None = None):
        """Load ``path`` through the cache; returns ``(graph, fingerprint)``.

        Raises :class:`FingerprintMismatch` when ``expected_fp`` is given
        and the file's content hashes differently.
        """
        skey = self._stat_key(path)
        with self._lock:
            fp = self._stat_index.get(skey)
        g = self.graphs.get(fp) if fp is not None else None
        if g is None:
            g = read_edgelist(path)
            fp = content_fingerprint(g)
            if expected_fp is not None and fp != expected_fp:
                raise FingerprintMismatch(path, expected_fp, fp)
            self._put(fp, g)
            with self._lock:
                if len(self._stat_index) > 4 * max(1, len(self.graphs)):
                    self._stat_index.clear()  # stale beyond usefulness
                self._stat_index[skey] = fp
        elif expected_fp is not None and fp != expected_fp:
            raise FingerprintMismatch(path, expected_fp, fp)
        return g, fp

    def _put(self, fp: str, g) -> None:
        # A graph bigger than the whole cache is served uncached rather
        # than rejected; callers reload it per use.
        weight = max(1, g.m)
        if weight > self.graphs.capacity:
            return
        if self.plane and eligible(g):
            # Pin before insert so the segment exists for the graph's
            # entire residency; same-fingerprint re-puts keep the one
            # existing pin (replacement fires no evict callback).
            with self._lock:
                fresh = fp not in self._pinned
                if fresh:
                    self._pinned.add(fp)
            if fresh:
                publish(g, fingerprint=fp)
                pin(fp)
        self.graphs.put(fp, g, weight=weight)

    def put_graph(self, g, fp: str | None = None) -> str:
        """Insert an already-loaded graph (tests, generated graphs)."""
        fp = fp or content_fingerprint(g)
        self._put(fp, g)
        return fp

    def get_graph(self, fp: str):
        return self.graphs.get(fp)

    # -- derivatives ---------------------------------------------------------

    @staticmethod
    def plan_key(fp: str, *, seed: int, p: int, success_prob: float,
                 trial_scale: float, rounds, replicas) -> tuple:
        return ("2out-plan", fp, int(seed), int(p), float(success_prob),
                float(trial_scale), rounds, replicas)

    def get_plan(self, key: tuple):
        return self.derivatives.get(key)

    def put_plan(self, key: tuple, plan) -> None:
        self.derivatives.put(key, plan)

    def close(self) -> None:
        """Release everything: evict all entries (dropping their plane
        pins through the evict callback) and sweep any stragglers."""
        self.graphs.clear()
        self.derivatives.clear()
        with self._lock:
            leftover = list(self._pinned)
            self._pinned.clear()
        release_pins(leftover)

    def stats(self) -> dict:
        return {
            "graphs": self.graphs.stats(),
            "derivatives": self.derivatives.stats(),
            "stat_index_entries": len(self._stat_index),
            "plane_pinned": len(self._pinned),
        }
