"""Deficit-round-robin fair queuing of job slices across clients.

The daemon executes work in *slices* — one scheduler trial wave for a
min-cut job, one whole run for a CC/approx query — through a single
warm backend.  The queue decides whose slice runs next so a client
submitting a 500-wave min cut cannot starve another's one-slice CC
query: classic deficit round robin (Shreedhar–Varghese) over per-client
FIFOs, with the client's ``weight`` (the protocol's ``priority``)
scaling its per-round quantum.

Costs are in abstract slice-cost units (the daemon charges each slice
its trial count, or 1 for single-shot jobs).  Each round visits active
clients in a fixed rotation; a client's deficit grows by
``quantum * weight`` and it dispatches queued slices while the deficit
covers them.  Because every slice's result is invariant to dispatch
order (per-trial RNG is keyed by global trial id), fairness here is a
pure latency policy — it cannot change any job's bits, which is what
the interleaving tests pin.

Deterministic and single-threaded by design; the daemon serializes
access from its executor thread (plus a lock for submit/cancel from
connection threads).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Hashable

__all__ = ["DeficitFairQueue"]


class DeficitFairQueue:
    """DRR scheduler over per-client slice queues.

    ``quantum`` is the base per-round cost budget; a client with weight
    ``w`` earns ``quantum * w`` per round.  A quantum at least the
    largest single slice cost guarantees every round can dispatch at
    least one slice per active client (DRR's O(1) bound).
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = float(quantum)
        # client -> FIFO of (cost, item); OrderedDict gives the stable
        # round-robin rotation order (insertion order of first use).
        self._queues: OrderedDict[Hashable, deque] = OrderedDict()
        self._weights: dict[Hashable, float] = {}
        self._deficits: dict[Hashable, float] = {}
        #: Per-client dispatched slice counts (stats endpoint).
        self.served: dict[Hashable, int] = {}
        self._rotation: deque = deque()  # active clients, round order
        self._lock = threading.Lock()

    def set_weight(self, client: Hashable, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        with self._lock:
            self._weights[client] = float(weight)

    def push(self, client: Hashable, item: Any, cost: float = 1.0,
             weight: float | None = None) -> None:
        """Enqueue one slice for ``client`` (optionally updating weight)."""
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        with self._lock:
            if weight is not None:
                if weight <= 0:
                    raise ValueError(
                        f"weight must be positive, got {weight}")
                self._weights[client] = float(weight)
            q = self._queues.get(client)
            if q is None:
                q = self._queues[client] = deque()
            if not q and client not in self._rotation:
                self._rotation.append(client)
                self._deficits.setdefault(client, 0.0)
            q.append((float(cost), item))

    def pop(self) -> tuple[Hashable, Any] | None:
        """Dispatch the next slice under DRR, or None when idle.

        Visits clients in rotation order; tops up the visited client's
        deficit once per visit and drains as many of its queued slices
        as the deficit affords before moving on.  An emptied client
        leaves the rotation (and forfeits its remaining deficit, per DRR — an
        idle client cannot bank credit).
        """
        with self._lock:
            while self._rotation:
                dispatched_this_pass = False
                for _ in range(len(self._rotation)):
                    client = self._rotation[0]
                    q = self._queues.get(client)
                    if not q:
                        self._rotation.popleft()
                        self._deficits[client] = 0.0
                        continue
                    d = self._deficits[client]
                    cost = q[0][0]
                    if d < cost:
                        d += self.quantum * self._weights.get(client, 1.0)
                        dispatched_this_pass = True  # deficits grew: progress
                    if d >= cost:
                        _, item = q.popleft()
                        d -= cost
                        self._deficits[client] = d
                        self.served[client] = self.served.get(client, 0) + 1
                        if not q:
                            # emptied: forfeit credit, leave the rotation
                            self._rotation.popleft()
                            self._deficits[client] = 0.0
                        elif d < q[0][0]:
                            # visit over: the remaining deficit does not
                            # cover the next slice — yield the head so the
                            # next pop visits the next client in rotation
                            self._rotation.rotate(-1)
                        return client, item
                    # slice heavier than one top-up: bank the deficit and
                    # move to the rotation's back; the outer loop keeps
                    # topping up each pass, so any finite cost is reached.
                    self._deficits[client] = d
                    self._rotation.rotate(-1)
                if not dispatched_this_pass:
                    break  # only empty queues were pruned
            return None

    def drop_client(self, client: Hashable) -> list[Any]:
        """Remove every queued slice of ``client`` (cancel); returns them."""
        with self._lock:
            q = self._queues.pop(client, None)
            self._deficits[client] = 0.0
            try:
                self._rotation.remove(client)
            except ValueError:
                pass
            return [item for _cost, item in q] if q else []

    def drop_items(self, predicate) -> list[Any]:
        """Remove queued slices matching ``predicate(item)`` (job cancel)."""
        dropped = []
        with self._lock:
            for client in list(self._queues):
                kept = deque()
                for cost, item in self._queues[client]:
                    if predicate(item):
                        dropped.append(item)
                    else:
                        kept.append((cost, item))
                self._queues[client] = kept
                if not kept:
                    try:
                        self._rotation.remove(client)
                    except ValueError:
                        pass
                    self._deficits[client] = 0.0
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def depth(self, client: Hashable) -> int:
        with self._lock:
            q = self._queues.get(client)
            return len(q) if q else 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "quantum": self.quantum,
                "depth": sum(len(q) for q in self._queues.values()),
                "clients": {
                    str(c): {
                        "depth": len(q),
                        "weight": self._weights.get(c, 1.0),
                        "served": self.served.get(c, 0),
                    }
                    for c, q in self._queues.items()
                },
                "served_total": sum(self.served.values()),
            }
