"""repro.serve — a persistent graph-analytics daemon.

Serves warm CC / min-cut queries to many concurrent clients: a
long-lived coordinator (:class:`~repro.serve.daemon.Daemon`) keeps the
multiprocess worker pool and shared-memory arena slabs alive between
requests, caches loaded graphs and 2-out preprocessing plans by content
fingerprint, and interleaves concurrent jobs' trial waves through one
fault-tolerant scheduler under deficit-fair queuing.  Every answer is
bit-identical to a direct :func:`repro.harness.run_algorithm` call with
the same ``(graph, seed, p)`` — warmth and multi-tenancy are pure
latency policy.  See ``docs/serve.md``.
"""

from repro.serve.cache import FingerprintMismatch, GraphCache
from repro.serve.client import Client, ServeError, wait_server
from repro.serve.daemon import Daemon, ServeConfig
from repro.serve.dynamic import DynamicSession, DynamicSessionManager
from repro.serve.jobs import Job, JobStore
from repro.serve.protocol import (
    ALGORITHMS,
    DYNAMIC_ALGORITHMS,
    JOB_STATES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    ProtocolError,
    dyn_result_doc,
    result_doc,
)
from repro.serve.queue import DeficitFairQueue

__all__ = [
    "ALGORITHMS",
    "DYNAMIC_ALGORITHMS",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "TERMINAL_STATES",
    "Client",
    "Daemon",
    "DeficitFairQueue",
    "DynamicSession",
    "DynamicSessionManager",
    "FingerprintMismatch",
    "GraphCache",
    "Job",
    "JobStore",
    "ProtocolError",
    "ServeConfig",
    "ServeError",
    "wait_server",
    "dyn_result_doc",
    "result_doc",
]
