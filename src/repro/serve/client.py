"""Blocking client for the serve daemon's line-JSON protocol.

One persistent socket, request/response in lockstep (the protocol is
strictly synchronous per connection; open several clients for overlap).
Raises :class:`ServeError` on any ``{"ok": false}`` reply, with the
daemon-reported error type preserved on the exception.
"""

from __future__ import annotations

import os
import socket
import time

from repro.serve.protocol import decode_line, encode_line

__all__ = ["Client", "ServeError", "wait_server"]


class ServeError(RuntimeError):
    """A request the daemon answered ``ok: false``."""

    def __init__(self, error: str, message: str):
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


def _connect(address: str, timeout: float | None):
    if os.sep in address or address.startswith("."):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    else:
        host, _, port = address.rpartition(":")
        sock = socket.create_connection(
            (host or "127.0.0.1", int(port)), timeout=timeout)
    return sock


def wait_server(address: str, timeout: float = 10.0,
                poll_s: float = 0.05) -> None:
    """Block until a daemon answers ``ping`` at ``address`` (or raise)."""
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with Client(address, timeout=max(poll_s, 1.0)) as c:
                c.ping()
                return
        except (OSError, ServeError) as exc:
            last = exc
            time.sleep(poll_s)
    raise TimeoutError(
        f"no serve daemon at {address!r} within {timeout}s: {last}")


class Client:
    """Synchronous serve-daemon client (see module docstring).

    ``client``/``priority`` name this client's fair-queue identity and
    weight; every submit stamps them unless overridden per call.
    """

    def __init__(self, address: str, *, client: str = "anon",
                 priority: float = 1.0, timeout: float | None = None):
        self.address = address
        self.name = client
        self.priority = float(priority)
        self._sock = _connect(address, timeout)
        self._fh = self._sock.makefile("rwb")

    # -- plumbing ------------------------------------------------------------

    def request(self, doc: dict) -> dict:
        """Send one request document, return the (ok) reply document."""
        self._fh.write(encode_line(doc))
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        reply = decode_line(line)
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "Error"),
                             reply.get("message", ""))
        return reply

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops -----------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(self, algorithm: str, path: str, *, seed: int = 0,
               p: int | None = None, priority: float | None = None,
               fingerprint: str | None = None, **kwargs) -> str:
        """Submit a query; returns the job id immediately."""
        doc = {"op": "submit", "algorithm": algorithm, "path": path,
               "seed": int(seed), "client": self.name,
               "priority": self.priority if priority is None else priority}
        if p is not None:
            doc["p"] = int(p)
        if fingerprint is not None:
            doc["fingerprint"] = fingerprint
        doc.update(kwargs)
        return self.request(doc)["job"]

    def status(self, job: str) -> dict:
        return self.request({"op": "status", "job": job})

    def result(self, job: str, *, wait: bool = True,
               timeout: float | None = None) -> dict:
        """The job's result document (blocking until terminal by default).

        Raises :class:`ServeError` (``JobFailed`` / ``JobCancelled``) for
        unsuccessful terminal states; returns ``None`` result for a job
        still in flight when ``wait=False`` or the timeout lapsed.
        """
        doc = {"op": "result", "job": job, "wait": bool(wait)}
        if timeout is not None:
            doc["timeout"] = float(timeout)
        return self.request(doc)["result"]

    def run(self, algorithm: str, path: str, **kwargs) -> dict:
        """submit + blocking result in one call."""
        return self.result(self.submit(algorithm, path, **kwargs))

    def cancel(self, job: str) -> dict:
        return self.request({"op": "cancel", "job": job})

    # -- dynamic sessions ----------------------------------------------------

    def dyn_open(self, path: str, *, seed: int = 0, p: int | None = None,
                 fingerprint: str | None = None, **kwargs) -> str:
        """Open a streaming session on a graph file; returns the session id."""
        doc = {"op": "dyn_open", "path": path, "seed": int(seed)}
        if p is not None:
            doc["p"] = int(p)
        if fingerprint is not None:
            doc["fingerprint"] = fingerprint
        doc.update(kwargs)
        return self.request(doc)["session"]

    def dyn_update(self, session: str, ops: list) -> dict:
        """Apply one update batch (closing an epoch); returns staleness."""
        return self.request({"op": "dyn_update", "session": session,
                             "ops": ops})

    def dyn_staleness(self, session: str) -> dict:
        return self.request({"op": "dyn_staleness", "session": session})

    def dyn_query(self, session: str, query: str, *, mode: str = "exact",
                  if_stale: str = "reject",
                  priority: float | None = None) -> str:
        """Submit a components/cut query on the session's current epoch."""
        return self.request({
            "op": "dyn_query", "session": session, "query": query,
            "mode": mode, "if_stale": if_stale, "client": self.name,
            "priority": self.priority if priority is None else priority,
        })["job"]

    def dyn_components(self, session: str, *, if_stale: str = "reject",
                       timeout: float | None = None) -> dict:
        """dyn_query('components') + blocking result in one call."""
        return self.result(self.dyn_query(session, "components",
                                          if_stale=if_stale),
                           timeout=timeout)

    def dyn_cut(self, session: str, *, mode: str = "exact",
                if_stale: str = "reject",
                timeout: float | None = None) -> dict:
        """dyn_query('cut') + blocking result in one call."""
        return self.result(self.dyn_query(session, "cut", mode=mode,
                                          if_stale=if_stale),
                           timeout=timeout)

    def dyn_close(self, session: str, *, discard: bool = True) -> dict:
        return self.request({"op": "dyn_close", "session": session,
                             "discard": discard})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
