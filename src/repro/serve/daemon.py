"""The ``repro.serve`` daemon: warm graph analytics for many clients.

One long-lived coordinator process that amortizes everything the
one-shot CLI pays per query:

* a **warm execution backend** — :class:`~repro.runtime.warm.WarmMpBackend`
  keeps worker processes and shared-memory arena slabs alive across
  requests (``backend="sim"`` serves from the in-process simulator, the
  deterministic testbed);
* a **graph cache** (:class:`~repro.serve.cache.GraphCache`) — loaded
  edge lists and 2-out preprocessing plans keyed by content fingerprint;
* one shared :class:`~repro.sched.scheduler.TrialScheduler` whose
  ``begin``/``run_wave``/``finish`` seam lets the single executor thread
  interleave *waves* from many concurrent ``square_root`` jobs under
  deficit-fair queuing (:class:`~repro.serve.queue.DeficitFairQueue`) —
  per-trial RNG is keyed by global trial id, so interleaving and
  priorities are pure latency policy and every job's bits match a solo
  :func:`~repro.harness.run_algorithm` call;
* a **durable job store** (:class:`~repro.serve.jobs.JobStore`) with a
  per-job ledger checkpoint written after every wave, so a daemon killed
  mid-job and restarted resumes exactly where it stopped and produces a
  bit-identical result.

Threads: one listener (accept loop), one reader per connection (parses
line-JSON requests, answers immediately or blocks on ``result wait``),
and exactly **one executor** that pops job slices off the fair queue and
drives the backend — the backend is single-tenant by construction, so
serialization here is correctness, not a bottleneck.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.harness.experiment import run_algorithm
from repro.runtime.base import Backend, resolve_backend
from repro.sched.scheduler import TrialRun, TrialScheduler
from repro.serve.cache import FingerprintMismatch, GraphCache
from repro.serve.dynamic import DynamicSessionManager
from repro.serve.jobs import Job, JobStore
from repro.serve.protocol import (
    ALGORITHMS,
    DYNAMIC_ALGORITHMS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    dyn_result_doc,
    encode_line,
    error_doc,
    ok_doc,
    result_doc,
)
from repro.serve.queue import DeficitFairQueue

__all__ = ["ServeConfig", "Daemon"]

logger = logging.getLogger(__name__)

#: submit fields forwarded as algorithm kwargs, per algorithm.
_ALGO_KWARGS = {
    "parallel_cc": ("eps", "delta", "hybrid"),
    "approx_cut": ("eps", "delta", "trials_per_level", "pipelined"),
    "square_root": ("variant", "trials", "trial_scale", "success_prob",
                    "preprocess", "dense"),
}


@dataclass
class ServeConfig:
    """Daemon configuration.

    ``bind`` is a unix socket path (anything containing a path
    separator, e.g. ``/tmp/repro.sock``) or a ``host:port`` TCP
    endpoint (``:0`` picks a free port).  ``state_dir`` holds the job
    store; it is the daemon's identity across restarts.  ``backend`` is
    ``"warm"`` (persistent mp worker pool), ``"sim"``, ``"mp"``, or a
    ready :class:`~repro.runtime.base.Backend`.  ``wave_size`` slices
    ``square_root`` trial budgets so concurrent jobs interleave at wave
    granularity; ``quantum`` is the fair-queue round budget in trial
    units (keep it >= ``wave_size`` so every round can dispatch).
    """

    bind: str = ""
    state_dir: str = "serve-state"
    backend: "str | Backend" = "sim"
    p: int = 4
    wave_size: int = 8
    quantum: float = 8.0
    cache_edges: float = 50_000_000
    cache_plans: int = 64
    max_retries: int = 2
    backoff_s: float = 0.05
    accept_timeout_s: float = 0.2
    extra: dict = field(default_factory=dict)


class Daemon:
    """The serve coordinator (module docstring has the architecture)."""

    def __init__(self, config: ServeConfig):
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.store = JobStore(config.state_dir)
        self.backend = (config.backend if isinstance(config.backend, Backend)
                        else resolve_backend(config.backend))
        # Cache residency drives graph-plane pins when the backend ships
        # plane handles: a cached graph's segment stays published until
        # LRU eviction, so repeat queries are publish-free.
        self.cache = GraphCache(
            capacity_edges=config.cache_edges,
            derivative_capacity=config.cache_plans,
            plane=bool(getattr(self.backend, "graph_plane", False)),
        )
        self.queue = DeficitFairQueue(quantum=config.quantum)
        self.scheduler = TrialScheduler(
            max_retries=config.max_retries, backoff_s=config.backoff_s,
            wave_size=config.wave_size,
        )
        self.jobs: dict[str, Job] = {}
        self._runs: dict[str, TrialRun] = {}   # open square_root states
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)  # job state changes
        self._work = threading.Condition()          # queue became non-empty
        self._stopping = threading.Event()
        self._stop_lock = threading.Lock()
        self._stopped = threading.Event()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self.address: str | None = None
        self.started_at = time.time()
        # Dynamic sessions must exist before job resume: a persisted
        # dyn_* job references its session, which replays its update
        # log here (bit-identical by determinism of the update stream).
        self.dynamic = DynamicSessionManager(config.state_dir)
        self.dynamic.resume_all(
            lambda path, fp: self.cache.load(path, expected_fp=fp)[0],
            backend=self.backend, plane=self.cache.plane,
            plan_cache=self.cache)
        self._resume_persisted_jobs()

    # -- restart resume ------------------------------------------------------

    def _resume_persisted_jobs(self) -> None:
        """Load the job store; requeue everything non-terminal.

        A job found ``running`` was in flight when the previous daemon
        died.  Its ledger checkpoint (written after every wave) carries
        the completed trials; re-queuing it re-enters the scheduler with
        ``resume=True``, which replays only the missing waves — the
        fold over the full ledger is bit-identical to an uninterrupted
        run.
        """
        for job in self.store.load_all():
            self.jobs[job.id] = job
            if job.terminal:
                continue
            if job.state == "running":
                job.state = "queued"
                self.store.save(job)
            self._enqueue(job)
            logger.info("resumed job %s (%s, %d/%d waves done)",
                        job.id, job.algorithm, job.waves_done,
                        job.waves_total)

    # -- queue plumbing ------------------------------------------------------

    def _enqueue(self, job: Job, cost: float = 1.0) -> None:
        self.queue.push(job.client, job.id, cost=cost, weight=job.priority)
        with self._work:
            self._work.notify()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> str:
        """Bind, spawn listener + executor threads; returns the address."""
        bind = self.config.bind
        if os.sep in bind or bind.startswith("."):
            if os.path.exists(bind):
                os.unlink(bind)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(bind)
            self.address = bind
        else:
            host, _, port = bind.rpartition(":")
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host or "127.0.0.1", int(port or 0)))
            self.address = "%s:%d" % sock.getsockname()[:2]
        sock.listen(64)
        sock.settimeout(self.config.accept_timeout_s)
        self._listener = sock
        for name, fn in (("serve-accept", self._accept_loop),
                         ("serve-exec", self._executor_loop)):
            t = threading.Thread(target=fn, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        logger.info("serving on %s (backend=%s, state=%s)",
                    self.address, self.backend.name, self.config.state_dir)
        return self.address

    def stop(self) -> None:
        """Graceful shutdown: drain nothing, persist everything, close.

        Safe from any thread; a concurrent caller blocks until shutdown
        has *completed* (not merely begun) — the serve CLI relies on
        this to keep the process alive while a connection thread's
        ``shutdown`` op is still closing the backend.
        """
        with self._stop_lock:
            if self._stopped.is_set():
                return
            try:
                self._stop()
            finally:
                self._stopped.set()

    def _stop(self) -> None:
        self._stopping.set()
        with self._work:
            self._work.notify_all()
        with self._cv:
            self._cv.notify_all()
        if self._listener is not None:
            self._listener.close()
        for conn in list(self._conns):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for t in self._threads:
            t.join(timeout=10.0)
        with self._lock:
            for job in self.jobs.values():
                if not job.terminal and job.state != "queued":
                    job.state = "queued"   # resumable on restart
                self.store.save(job)
        # Drop every plane pin this daemon holds — open runs' plan pins,
        # then the cache's residency pins, then the warm backend's
        # retention pins (inside close) — so a clean shutdown leaves
        # /dev/shm empty.
        for run in list(self._runs.values()):
            run.release()
        self._runs.clear()
        self.dynamic.close_all()   # epoch pins (session state stays on disk)
        self.cache.close()
        self.backend.close()
        addr = self.address
        if addr and os.sep in addr and os.path.exists(addr):
            os.unlink(addr)
        logger.info("daemon stopped")

    def __enter__(self) -> "Daemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- network threads -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._conns.add(conn)
            t = threading.Thread(target=self._serve_conn, args=(conn,),
                                 name="serve-conn", daemon=True)
            t.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            with conn.makefile("rwb") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    req = {}
                    try:
                        req = decode_line(line)
                    except ProtocolError as exc:
                        reply = error_doc("ProtocolError", str(exc))
                    else:
                        reply = self.handle_request(req)
                    fh.write(encode_line(reply))
                    fh.flush()
                    if req.get("op") == "shutdown" and reply.get("ok"):
                        self.stop()
                        return
        except (OSError, ValueError):
            pass
        finally:
            self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # -- request handlers ----------------------------------------------------

    def handle_request(self, req: dict) -> dict:
        """Answer one request document; never raises (see the protocol)."""
        try:
            op = req.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if op is None or handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            return handler(req)
        except ProtocolError as exc:
            return error_doc("ProtocolError", str(exc))
        except Exception as exc:  # never kill the connection
            logger.exception("request failed")
            return error_doc(type(exc).__name__, str(exc))

    def _op_ping(self, req: dict) -> dict:
        return ok_doc(version=PROTOCOL_VERSION, backend=self.backend.name,
                      uptime_s=time.time() - self.started_at)

    def _op_shutdown(self, req: dict) -> dict:
        return ok_doc(stopping=True)

    def _op_submit(self, req: dict) -> dict:
        algorithm = req.get("algorithm")
        if algorithm not in ALGORITHMS:
            raise ProtocolError(
                f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}")
        path = req.get("path")
        if not isinstance(path, str):
            raise ProtocolError("submit needs a graph file 'path'")
        kwargs = {k: req[k] for k in _ALGO_KWARGS[algorithm] if k in req}
        try:
            g, fp = self.cache.load(path, expected_fp=req.get("fingerprint"))
        except FingerprintMismatch as exc:
            return error_doc("FingerprintMismatch", str(exc))
        except OSError as exc:
            return error_doc("GraphUnreadable", str(exc))
        job = Job(
            id=self.store.new_id(),
            client=str(req.get("client", "anon")),
            algorithm=algorithm, path=path, fingerprint=fp,
            seed=int(req.get("seed", 0)),
            p=int(req.get("p", self.config.p)),
            priority=float(req.get("priority", 1.0)),
            kwargs=kwargs,
        )
        with self._lock:
            self.jobs[job.id] = job
        self.store.save(job)
        self._enqueue(job)
        return ok_doc(job=job.id, fingerprint=fp)

    def _get_job(self, req: dict) -> Job:
        jid = req.get("job")
        with self._lock:
            job = self.jobs.get(jid)
        if job is None:
            raise ProtocolError(f"unknown job {jid!r}")
        return job

    def _op_status(self, req: dict) -> dict:
        return ok_doc(**self._get_job(req).status_doc())

    def _op_result(self, req: dict) -> dict:
        job = self._get_job(req)
        if req.get("wait"):
            deadline = (time.monotonic() + float(req["timeout"])
                        if "timeout" in req else None)
            with self._cv:
                while not job.terminal and not self._stopping.is_set():
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        break
                    self._cv.wait(remaining if remaining is not None
                                  else 0.5)
        if job.state == "done":
            return ok_doc(job=job.id, state=job.state, result=job.result)
        if job.state == "failed":
            return error_doc(job.error_type or "JobFailed",
                             job.error or "job failed")
        if job.state == "cancelled":
            return error_doc("JobCancelled", f"job {job.id} was cancelled")
        return ok_doc(job=job.id, state=job.state, result=None)

    def _op_cancel(self, req: dict) -> dict:
        job = self._get_job(req)
        with self._cv:
            if job.terminal:
                return ok_doc(job=job.id, state=job.state)
            job.state = "cancelled"
            job.finished_at = time.time()
            self._cv.notify_all()
        self._release_run(job.id)
        self.queue.drop_items(lambda jid: jid == job.id)
        self.store.save(job)
        return ok_doc(job=job.id, state="cancelled")

    def _op_stats(self, req: dict) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        from repro.graph.shm import plane_stats

        return ok_doc(
            uptime_s=time.time() - self.started_at,
            backend=self.backend.name,
            pool_spawns=getattr(self.backend, "pool_spawns", None),
            jobs=states,
            cache=self.cache.stats(),
            queue=self.queue.stats(),
            graph_plane=plane_stats(),
            dynamic=self.dynamic.stats(),
        )

    # -- dynamic sessions ----------------------------------------------------

    def _op_dyn_open(self, req: dict) -> dict:
        path = req.get("path")
        if not isinstance(path, str):
            raise ProtocolError("dyn_open needs a graph file 'path'")
        try:
            g, fp = self.cache.load(path, expected_fp=req.get("fingerprint"))
        except FingerprintMismatch as exc:
            return error_doc("FingerprintMismatch", str(exc))
        except OSError as exc:
            return error_doc("GraphUnreadable", str(exc))
        kwargs = {k: req[k] for k in ("reconnect_budget", "drift_threshold",
                                      "eps", "sample_scale", "success_prob",
                                      "trial_scale") if k in req}
        session = self.dynamic.open(
            g, path=path, fingerprint=fp,
            seed=int(req.get("seed", 0)), p=int(req.get("p", self.config.p)),
            backend=self.backend, plane=self.cache.plane,
            plan_cache=self.cache, **kwargs)
        return ok_doc(session=session.id, epoch=0, fingerprint=fp)

    def _get_session(self, req: dict):
        sid = req.get("session")
        session = self.dynamic.get(sid)
        if session is None:
            raise ProtocolError(f"unknown dynamic session {sid!r}")
        return session

    def _op_dyn_update(self, req: dict) -> dict:
        session = self._get_session(req)
        ops = req.get("ops")
        if not isinstance(ops, list):
            raise ProtocolError("dyn_update needs a list of 'ops'")
        try:
            staleness = session.update(ops)
        except (KeyError, ValueError) as exc:
            return error_doc("BadUpdate", str(exc))
        return ok_doc(session=session.id, **staleness)

    def _op_dyn_staleness(self, req: dict) -> dict:
        session = self._get_session(req)
        return ok_doc(session=session.id, **session.dyn.staleness())

    def _op_dyn_query(self, req: dict) -> dict:
        session = self._get_session(req)
        query = req.get("query")
        if query not in ("components", "cut"):
            raise ProtocolError(
                f"dyn_query 'query' must be 'components' or 'cut', "
                f"got {query!r}")
        mode = req.get("mode", "exact")
        if mode not in ("exact", "approx"):
            raise ProtocolError(
                f"dyn_query 'mode' must be 'exact' or 'approx', got {mode!r}")
        if_stale = req.get("if_stale", "reject")
        if if_stale not in ("reject", "requeue"):
            raise ProtocolError(
                f"'if_stale' must be 'reject' or 'requeue', got {if_stale!r}")
        # The job pins the session's epoch at submit; the executor
        # compares it against the live epoch at dispatch.  The stored
        # fingerprint pins the session's *base* graph — the epoch
        # integer is the version pin (forcing the epoch's content
        # fingerprint here would cost an O(m) snapshot per submit).
        job = Job(
            id=self.store.new_id(),
            client=str(req.get("client", "anon")),
            algorithm=("dyn_components" if query == "components"
                       else "dyn_cut"),
            path=session.doc["path"],
            fingerprint=session.doc["fingerprint"],
            seed=session.dyn.seed, p=session.dyn.p,
            priority=float(req.get("priority", 1.0)),
            kwargs={"session": session.id, "epoch": session.dyn.epoch,
                    "mode": mode, "if_stale": if_stale},
        )
        with self._lock:
            self.jobs[job.id] = job
        self.store.save(job)
        self._enqueue(job)
        return ok_doc(job=job.id, session=session.id,
                      epoch=session.dyn.epoch)

    def _op_dyn_close(self, req: dict) -> dict:
        sid = req.get("session")
        closed = self.dynamic.close(sid, discard=bool(req.get("discard",
                                                              True)))
        return ok_doc(session=sid, closed=closed)

    # -- executor ------------------------------------------------------------

    def _executor_loop(self) -> None:
        while not self._stopping.is_set():
            popped = self.queue.pop()
            if popped is None:
                with self._work:
                    if self._stopping.is_set():
                        break
                    self._work.wait(timeout=0.2)
                continue
            _, job_id = popped
            with self._lock:
                job = self.jobs.get(job_id)
            if job is None or job.terminal:
                continue
            try:
                self._run_slice(job)
            except Exception as exc:
                logger.exception("job %s failed", job.id)
                self._release_run(job.id)
                self._finish_job(job, error=f"{type(exc).__name__}: {exc}")

    def _release_run(self, job_id: str) -> None:
        """Abandon a job's open TrialRun, dropping its plane pin.

        Every path that leaves a run unfinished (cancel, executor error,
        shutdown) funnels through here; an in-flight wave is unaffected
        because each dispatch holds its own pin for its duration.
        """
        run = self._runs.pop(job_id, None)
        if run is not None:
            run.release()

    def _graph_for(self, job: Job):
        g = self.cache.get_graph(job.fingerprint)
        if g is None:  # evicted; reload and re-pin the identity
            g, _ = self.cache.load(job.path, expected_fp=job.fingerprint)
        return g

    def _run_slice(self, job: Job) -> None:
        """Execute one fair-queue slice of ``job`` on the executor thread."""
        with self._cv:
            if job.state == "cancelled":
                return
            job.state = "running"
        if job.algorithm in DYNAMIC_ALGORITHMS:
            self._run_dynamic(job)
        elif (job.algorithm == "square_root"
                and job.kwargs.get("variant", "default") == "default"
                and "trials" not in job.kwargs
                and not job.kwargs.get("preprocess")):
            self._run_wave_slice(job)
        else:
            self._run_single_shot(job)

    def _run_wave_slice(self, job: Job) -> None:
        """One trial wave of a scheduled min-cut job, then yield the CPU."""
        run = self._runs.get(job.id)
        if run is None:
            g = self._graph_for(job)
            ledger = self.store.ledger_path(job.id)
            run = self.scheduler.begin(
                g, job.p, backend=self.backend, seed=job.seed,
                success_prob=float(job.kwargs.get("success_prob", 0.9)),
                trial_scale=float(job.kwargs.get("trial_scale", 1.0)),
                dense=bool(job.kwargs.get("dense", False)),
                checkpoint=ledger,
                resume=os.path.exists(ledger),
            )
            self._runs[job.id] = run
            # On resume the planned waves cover only the pending trials;
            # waves finished before the restart stay counted.
            job.waves_total = job.waves_done + len(run.waves)
            self.store.save(job)
            # Enqueue the remaining waves as individual slices now that
            # the plan is known: the fair queue sees the job's true
            # backlog, so per-round deficits bound every client's share
            # (one slice at a time would collapse DRR to round-robin —
            # an emptied queue forfeits its deficit).
            for w in range(1, len(run.waves)):
                self._enqueue(job, cost=float(len(run.waves[w])))
        if run.step():
            job.waves_done += 1
        self.store.save(job)
        with self._cv:
            cancelled = job.state == "cancelled"
        if cancelled:
            self._release_run(job.id)
            return
        if not run.done:
            return
        sres = self.scheduler.finish(run)
        self._runs.pop(job.id, None)
        doc = {
            "algorithm": job.algorithm,
            "value": float(sres.value),
            "side": (None if sres.side is None else
                     _encode_side(sres.side)),
            "trials": int(sres.trials),
            "achieved_success_prob": float(sres.achieved_success_prob),
            "variant": "default",
            "completed": int(sres.completed),
            "dispatches": int(sres.dispatches),
            "ledger_fingerprint": sres.ledger.fingerprint(),
        }
        self._finish_job(job, result=doc)

    def _run_dynamic(self, job: Job) -> None:
        """One dynamic-session query on the executor thread.

        The job pinned the session's epoch at submit.  If updates
        advanced the epoch before this dispatch, the pinned answer no
        longer describes the live graph: ``if_stale="reject"`` fails the
        job with the typed ``StaleEpoch`` error, ``"requeue"`` re-pins
        it to the latest epoch (the result doc then carries
        ``repinned_from_epoch`` so the client knows what it got).
        """
        session = self.dynamic.get(job.kwargs.get("session"))
        if session is None:
            self._finish_job(
                job, error=f"dynamic session {job.kwargs.get('session')!r} "
                           f"is gone", error_type="SessionClosed")
            return
        pinned = int(job.kwargs.get("epoch", 0))
        repinned_from = None
        with session.lock:
            live = session.dyn.epoch
            if live != pinned:
                if job.kwargs.get("if_stale", "reject") == "reject":
                    self._finish_job(
                        job,
                        error=(f"epoch advanced {pinned} -> {live} between "
                               f"submit and dispatch"),
                        error_type="StaleEpoch")
                    return
                repinned_from = pinned
                job.kwargs["epoch"] = live
                self.store.save(job)
            if job.algorithm == "dyn_components":
                result = session.dyn.query_components()
            else:
                result = session.dyn.query_cut(
                    mode=job.kwargs.get("mode", "exact"))
        doc = dyn_result_doc(result)
        doc["session"] = session.id
        if repinned_from is not None:
            doc["repinned_from_epoch"] = repinned_from
        job.waves_total = job.waves_done = 1
        self._finish_job(job, result=doc)

    def _run_single_shot(self, job: Job) -> None:
        """cc / approx / 2-out / fixed-trials jobs: one dispatch, one slice."""
        g = self._graph_for(job)
        kwargs = dict(job.kwargs)
        if (job.algorithm == "square_root"
                and kwargs.get("variant") == "2out"):
            result = self._run_two_out(job, g, kwargs)
        else:
            result = run_algorithm(job.algorithm, g, p=job.p, seed=job.seed,
                                   backend=self.backend, **kwargs)
        job.waves_total = job.waves_done = 1
        self._finish_job(job, result=result_doc(job.algorithm, result))

    def _run_two_out(self, job: Job, g, kwargs: dict):
        """2-out min cut with the preprocessing plan served from cache.

        ``plan_two_out`` is deterministic in exactly the key's fields, so
        replaying a cached plan is bit-identical to recomputing it — the
        warm path only skips the preprocessing dispatch.
        """
        from repro.core.two_out import (
            DEFAULT_ROUNDS,
            plan_two_out,
            two_out_minimum_cut,
        )

        success_prob = float(kwargs.get("success_prob", 0.9))
        trial_scale = float(kwargs.get("trial_scale", 1.0))
        key = self.cache.plan_key(
            job.fingerprint, seed=job.seed, p=job.p,
            success_prob=success_prob, trial_scale=trial_scale,
            rounds=DEFAULT_ROUNDS, replicas=None)
        plan = self.cache.get_plan(key)
        if plan is None:
            plan = plan_two_out(g, job.p, seed=job.seed,
                                success_prob=success_prob,
                                trial_scale=trial_scale,
                                backend=self.backend)
            self.cache.put_plan(key, plan)
        return two_out_minimum_cut(
            g, job.p, seed=job.seed, success_prob=success_prob,
            trial_scale=trial_scale, backend=self.backend, plan=plan)

    def _finish_job(self, job: Job, result: dict | None = None,
                    error: str | None = None,
                    error_type: str | None = None) -> None:
        with self._cv:
            if job.state == "cancelled":
                self._cv.notify_all()
            else:
                job.state = "failed" if error is not None else "done"
                job.result = result
                job.error = error
                job.error_type = error_type
                job.finished_at = time.time()
                self._cv.notify_all()
        self.store.save(job)


def _encode_side(side) -> str:
    from repro.sched.ledger import encode_side

    return encode_side(side)
