"""Durable job records: the daemon's restart-safe bookkeeping.

A job is one submitted query.  Its JSON document (``<state_dir>/jobs/
<id>.json``, written atomically) carries the full request plus lifecycle
state; a ``square_root`` job additionally owns a
:class:`~repro.sched.ledger.TrialLedger` checkpoint next to it
(``<id>.ledger.jsonl``) that the scheduler updates after **every wave**.
The pair is the whole resume story: a daemon killed mid-job and
restarted loads the job docs, re-queues anything non-terminal, and the
scheduler's ``resume=True`` path replays only the missing waves — the
final result is bit-identical to an uninterrupted run because each
trial's bits are a pure function of ``(graph, seed, trial id)`` and the
ledger pins the graph by content fingerprint.

Jobs whose pipeline cannot checkpoint (``variant="2out"`` spans
per-replica dispatches; cc/approx are single dispatches) simply rerun
from the start on resume — determinism makes the rerun bit-identical,
it just re-spends the compute.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.serve.protocol import (
    ALGORITHMS,
    DYNAMIC_ALGORITHMS,
    JOB_STATES,
    TERMINAL_STATES,
)

__all__ = ["Job", "JobStore"]


@dataclass
class Job:
    """One submitted query and its lifecycle state."""

    id: str
    client: str
    algorithm: str
    path: str | None          # graph file (None: inline-registered graph)
    fingerprint: str | None   # pinned/observed graph content fingerprint
    seed: int
    p: int
    priority: float = 1.0
    kwargs: dict = field(default_factory=dict)  # algorithm extras
    state: str = "queued"
    error: str | None = None
    #: Typed error tag surfaced to the client instead of the generic
    #: ``JobFailed`` (e.g. ``StaleEpoch`` when the pinned graph epoch
    #: advanced between submit and dispatch).
    error_type: str | None = None
    result: dict | None = None
    #: Waves completed / planned (square_root progress; 0/1 single-shots).
    waves_done: int = 0
    waves_total: int = 0
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS + DYNAMIC_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {ALGORITHMS + DYNAMIC_ALGORITHMS}"
            )
        if self.state not in JOB_STATES:
            raise ValueError(f"bad job state {self.state!r}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_doc(self) -> dict:
        return {
            "job": self.id, "state": self.state, "client": self.client,
            "algorithm": self.algorithm,
            "waves_done": self.waves_done, "waves_total": self.waves_total,
            "error": self.error,
        }

    def to_doc(self) -> dict:
        return asdict(self)

    @classmethod
    def from_doc(cls, doc: dict) -> "Job":
        return cls(**doc)


class JobStore:
    """Atomic JSON persistence for jobs under ``state_dir/jobs/``."""

    def __init__(self, state_dir: str):
        self.dir = os.path.join(state_dir, "jobs")
        os.makedirs(self.dir, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = self._next_seq()

    def _next_seq(self) -> int:
        top = 0
        for name in os.listdir(self.dir):
            if name.startswith("j") and name.endswith(".json"):
                try:
                    top = max(top, int(name[1:-5]))
                except ValueError:
                    continue
        return top + 1

    def new_id(self) -> str:
        with self._lock:
            jid = f"j{self._seq:06d}"
            self._seq += 1
            return jid

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.dir, f"{job_id}.json")

    def ledger_path(self, job_id: str) -> str:
        return os.path.join(self.dir, f"{job_id}.ledger.jsonl")

    def save(self, job: Job) -> None:
        path = self.job_path(job.id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(job.to_doc(), fh, sort_keys=True)
        os.replace(tmp, path)

    def load(self, job_id: str) -> Job:
        with open(self.job_path(job_id), "r", encoding="utf-8") as fh:
            return Job.from_doc(json.load(fh))

    def load_all(self) -> list[Job]:
        """Every persisted job, id order (resume scan at daemon start)."""
        jobs = []
        for name in sorted(os.listdir(self.dir)):
            if name.endswith(".json") and not name.endswith(".tmp"):
                with open(os.path.join(self.dir, name), encoding="utf-8") as fh:
                    jobs.append(Job.from_doc(json.load(fh)))
        return jobs
