"""Per-superstep trace/metrics layer for the BSP execution backends.

The paper's evaluation (§5) attributes cost to individual supersteps —
max local computation, h-relation volume, cache misses, imbalance wait
("time spent in MPI") — while the run-level
:class:`~repro.bsp.counters.CountersReport` only exposes end-of-run
totals.  This package records the missing structure: one
:class:`TraceEvent` per executed collective per group, streamed from
either backend through a zero-overhead-when-off :class:`Tracer` hook
(:class:`NullTracer` default keeps untraced runs byte-identical).

The cornerstone invariant, enforced with zero tolerance by the test
suite::

    aggregate_trace(result.trace) == result.report

Traces are bit-identical across the simulator and the multiprocess
backend for a fixed seed (events are ordered by a scheduler-independent
Lamport clock; only the measured ``wall_s`` field differs), and
round-trip losslessly through the ``--trace PATH`` JSON-lines file.
"""

from repro.trace.analyze import (
    FusibleRun,
    SuperstepCost,
    find_fusible_runs,
    format_analysis,
    fusion_plan,
    rank_supersteps,
)
from repro.trace.events import FINAL, TraceEvent, exact_delta
from repro.trace.io import (
    event_from_dict,
    event_to_dict,
    read_jsonl,
    write_jsonl,
)
from repro.trace.report import (
    aggregate_trace,
    format_summary,
    heaviest_events,
    kind_counts,
    volume_histogram,
)
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Tracer,
)

__all__ = [
    "TraceEvent",
    "FINAL",
    "exact_delta",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "aggregate_trace",
    "kind_counts",
    "volume_histogram",
    "heaviest_events",
    "format_summary",
    "event_to_dict",
    "event_from_dict",
    "write_jsonl",
    "read_jsonl",
    "SuperstepCost",
    "FusibleRun",
    "rank_supersteps",
    "find_fusible_runs",
    "fusion_plan",
    "format_analysis",
]
