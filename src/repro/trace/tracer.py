"""Tracer protocol: zero-overhead-when-off collective recording.

The BSP engine and the multiprocess coordinator call exactly two hooks —
:meth:`Tracer.on_collective` after every executed collective and
:meth:`Tracer.on_finish` once all ranks have terminated — guarded by the
``enabled`` flag, so an untraced run pays one attribute check per
collective and nothing else (:class:`NullTracer`, the default, makes
untraced runs byte-identical to the pre-trace engine).

:class:`RecordingTracer` turns the hook stream into canonical
:class:`~repro.trace.events.TraceEvent` records.  It is fed *cumulative*
post-collective counter snapshots (which both backends can produce
bit-identically) and derives the per-superstep deltas itself via
:func:`~repro.trace.events.exact_delta`, maintaining a per-rank
reconstruction sum so that replaying the deltas reproduces every
snapshot exactly.  Lamport steps and per-group sequence numbers depend
only on per-rank program order, so the canonical event sequence is
identical across backends no matter how the scheduler interleaved the
groups.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.trace.events import FINAL, TraceEvent, exact_delta

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "RecordingTracer",
           "Snapshot"]

#: A cumulative counter snapshot: (ops, words_sent, words_recv, misses,
#: wait_ops, supersteps) — the tuple ``ProcCounters.snapshot()`` returns.
Snapshot = tuple[float, float, float, float, float, int]


class Tracer:
    """Recording protocol; the engine only ever checks ``enabled`` first."""

    #: Hot-path guard: when False the engine skips every hook call (and
    #: the per-collective ``payload_words`` accounting that feeds it).
    enabled: bool = False

    def on_collective(
        self,
        kind: str,
        gid: int,
        participants: tuple[int, ...],
        words: int,
        snapshots: Sequence[Snapshot],
        wall_s: float = 0.0,
        fused: tuple[str, ...] = (),
        clean: tuple[bool, ...] = (),
    ) -> None:
        """One collective executed; ``snapshots`` are the participants'
        cumulative post-collective counters, aligned with ``participants``.
        ``fused`` carries the sub-operation kinds of an explicit batch;
        ``clean`` each participant's arrival cleanliness (no local charges
        since its previous sync — the fusion precondition)."""

    def on_merge(
        self,
        kind: str,
        gid: int,
        participants: tuple[int, ...],
        words: int,
        snapshots: Sequence[Snapshot],
        wall_s: float = 0.0,
    ) -> None:
        """A collective executed *inside* the group's previous superstep
        (adjacent fusion): extend that superstep's event in place rather
        than recording a new one.  Only ever called for a gid whose last
        recorded event is still the group's current superstep."""

    def on_finish(self, snapshots: Sequence[Snapshot],
                  wall_s: float = 0.0) -> None:
        """All ranks terminated; ``snapshots`` are the final cumulative
        counters of ranks ``0..p-1``."""

    def events(self) -> list[TraceEvent]:
        """The recorded events in canonical ``(step, gid, gseq)`` order."""
        return []

    def __len__(self) -> int:
        return 0


class NullTracer(Tracer):
    """The default no-op tracer: tracing off, zero overhead."""


#: Shared default instance (stateless, so sharing is safe).
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Records every collective as a :class:`TraceEvent`.

    A tracer may span several engine runs (e.g. a backend instance reused
    across algorithm calls): :meth:`on_finish` closes a run and resets
    the per-rank accumulators while keeping the Lamport clocks strictly
    increasing, so events of consecutive runs never interleave under the
    canonical order.  The aggregation invariant applies per run (each
    run's events end at its FINAL record).
    """

    enabled = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._clock: dict[int, int] = {}    # rank -> Lamport step
        self._gseq: dict[int, int] = {}     # gid -> next sequence number
        #: rank -> [ops, sent, recv, misses, wait] reconstruction sums;
        #: kept bit-equal to the last snapshot via exact_delta.
        self._sums: dict[int, list[float]] = {}
        #: gid -> (index of the group's last event in ``_events``, per-rank
        #: pre-event reconstruction sums).  Floating deltas cannot be
        #: un-applied bit-exactly, so a merge restores the sums captured
        #: *before* the event and re-derives deltas against the new
        #: snapshots.  The pre-sums stay valid across chained merges.
        self._last_by_gid: dict[int, tuple[int, dict[int, list[float]]]] = {}

    # -- hooks ---------------------------------------------------------------

    def on_collective(self, kind, gid, participants, words, snapshots,
                      wall_s=0.0, fused=(), clean=()) -> None:
        step = 1 + max((self._clock.get(r, 0) for r in participants),
                       default=0)
        gseq = self._gseq.get(gid, 0)
        self._gseq[gid] = gseq + 1
        pre = {r: list(self._sums.setdefault(r, [0.0] * 5))
               for r in participants}
        self._events.append(self._event(
            kind, gid, participants, words, step, gseq, snapshots, wall_s,
            fused=fused, clean=clean,
        ))
        self._last_by_gid[gid] = (len(self._events) - 1, pre)
        for r in participants:
            self._clock[r] = step

    def on_merge(self, kind, gid, participants, words, snapshots,
                 wall_s=0.0) -> None:
        idx, pre = self._last_by_gid[gid]
        old = self._events[idx]
        for r in participants:
            self._sums[r] = list(pre[r])
        # Same superstep: step/gseq/clocks are untouched; the event is
        # rebuilt against the new cumulative snapshots with the original
        # pre-superstep sums, so aggregation stays bit-exact.
        self._events[idx] = self._event(
            old.kind, gid, participants, old.words + int(words),
            old.step, old.gseq, snapshots, old.wall_s + wall_s,
            fused=(old.fused or (old.kind,)) + (kind,),
            clean=old.clean,
        )

    def on_finish(self, snapshots, wall_s=0.0) -> None:
        participants = tuple(range(len(snapshots)))
        step = 1 + max((self._clock.get(r, 0) for r in participants),
                       default=0)
        gseq = self._gseq.get(0, 0)
        self._gseq[0] = gseq + 1
        self._events.append(self._event(
            FINAL, 0, participants, 0, step, gseq, snapshots, wall_s,
        ))
        # Close the run: fresh counters next run, clocks keep increasing,
        # and no event of this run can absorb a later run's collective.
        self._sums.clear()
        self._last_by_gid.clear()
        for r in participants:
            self._clock[r] = step

    # -- internals -----------------------------------------------------------

    def _event(self, kind, gid, participants, words, step, gseq,
               snapshots, wall_s, fused=(), clean=()) -> TraceEvent:
        d_ops, d_sent, d_recv, d_misses, d_wait, sss = [], [], [], [], [], []
        for r, snap in zip(participants, snapshots):
            ops, sent, recv, misses, wait, supersteps = snap
            sums = self._sums.setdefault(r, [0.0] * 5)
            for slot, cur, out in (
                (0, ops, d_ops), (1, sent, d_sent), (2, recv, d_recv),
                (3, misses, d_misses), (4, wait, d_wait),
            ):
                d = exact_delta(sums[slot], cur)
                sums[slot] += d
                out.append(d)
            sss.append(int(supersteps))
        return TraceEvent(
            kind=kind, gid=gid, participants=tuple(participants),
            words=int(words), step=step, gseq=gseq,
            supersteps=tuple(sss),
            d_ops=tuple(d_ops), d_sent=tuple(d_sent), d_recv=tuple(d_recv),
            d_misses=tuple(d_misses), d_wait=tuple(d_wait),
            wall_s=float(wall_s), fused=tuple(fused),
            clean=tuple(bool(c) for c in clean),
        )

    # -- access --------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        return sorted(self._events, key=TraceEvent.order_key)

    def __len__(self) -> int:
        return len(self._events)
