"""Offline trace analysis: heavy supersteps and fusible sequences.

Consumes a recorded JSON-lines trace (``repro.cli --trace PATH``) and
answers the two questions the paper's evaluation methodology asks of a
run's superstep structure:

* **Where does the predicted time go?**  :func:`rank_supersteps` prices
  every superstep with the §5.3 machine model (local computation, cache
  misses, h-relation volume, imbalance wait, latency) and ranks the
  heaviest.
* **Which synchronizations are avoidable?**  :func:`find_fusible_runs`
  detects maximal runs of consecutive small collectives on the same group
  with *no intervening local work* — per-rank ``d_ops``/``d_misses`` of
  zero and no interleaved collective on any participant, the exact
  precondition under which the engine's adjacent fusion
  (``Engine(fuse=...)``, :mod:`repro.bsp.fusion`) merges them into one
  superstep.  :func:`fusion_plan` turns the runs into a JSON plan whose
  predicted savings can be checked against a re-run with fusion enabled.

The analyzer is deliberately *static*: it reads only the recorded deltas,
so replaying a blessed trace through it is deterministic and cheap — the
trace-replay test corpus pins both this module's output and the engine's
superstep structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.bsp.fusion import FUSABLE_KINDS, FusionConfig
from repro.bsp.machine import MachineModel
from repro.trace.events import FINAL, TraceEvent

__all__ = [
    "SuperstepCost",
    "FusibleRun",
    "rank_supersteps",
    "find_fusible_runs",
    "fusion_plan",
    "format_analysis",
]


def _trace_p(events: Sequence[TraceEvent]) -> int:
    """Processor count of the traced run (max participating rank + 1)."""
    return 1 + max((r for ev in events for r in ev.participants), default=0)


def _collective_count(ev: TraceEvent) -> int:
    """How many program-level collectives this event represents (a fused
    superstep counts every merged sub-collective)."""
    return len(ev.fused) if ev.fused else 1


@dataclass(frozen=True)
class SuperstepCost:
    """One superstep priced by the machine model (seconds)."""

    event: TraceEvent
    app_s: float      # max rank-local computation + cache misses
    volume_s: float   # h-relation transfer
    wait_s: float     # max imbalance wait
    latency_s: float  # the superstep's L x log p charge

    @property
    def total_s(self) -> float:
        """Predicted seconds attributed to this superstep."""
        return self.app_s + self.volume_s + self.wait_s + self.latency_s


def rank_supersteps(
    events: Sequence[TraceEvent],
    *,
    machine: MachineModel | None = None,
    k: int = 10,
) -> list[SuperstepCost]:
    """The ``k`` heaviest supersteps by predicted machine-model seconds.

    Prices each non-FINAL event exactly as
    :meth:`~repro.bsp.machine.MachineModel.predict` prices the whole run
    (the per-superstep terms sum to the run prediction minus the constant
    overhead), so the ranking answers "which synchronization points
    dominate the predicted wall clock".
    """
    machine = machine or MachineModel()
    p = _trace_p(events)
    logp = max(1.0, math.log2(max(p, 1)))
    costs = []
    for ev in sorted(events, key=TraceEvent.order_key):
        if ev.kind == FINAL:
            continue
        costs.append(SuperstepCost(
            event=ev,
            app_s=(max(ev.d_ops, default=0.0) * machine.op_s
                   + max(ev.d_misses, default=0.0) * machine.miss_s),
            volume_s=ev.words * machine.g_s * logp,
            wait_s=max(ev.d_wait, default=0.0) * machine.op_s,
            latency_s=machine.L_s * logp,
        ))
    costs.sort(key=lambda c: (-c.total_s,) + c.event.order_key())
    return costs[:k]


@dataclass(frozen=True)
class FusibleRun:
    """A maximal run of adjacent collectives the engine could fuse.

    ``collectives`` counts program-level collectives (already-fused
    supersteps contribute their merged kinds), ``events`` the trace
    events; the run saves ``events - 1`` supersteps because fusion leaves
    exactly one synchronization standing.
    """

    gid: int
    start_step: int                # Lamport step of the first event
    start_gseq: int                # group sequence of the first event
    participants: tuple[int, ...]
    kinds: tuple[str, ...]         # program-level kinds, in order
    events: int
    collectives: int
    words: int                     # combined payload words
    saved_supersteps: int
    saved_s: float                 # latency seconds fusion would save


def find_fusible_runs(
    events: Sequence[TraceEvent],
    *,
    fuse: FusionConfig | None = None,
    machine: MachineModel | None = None,
) -> list[FusibleRun]:
    """Detect fusible sequences in a recorded trace.

    A run extends over consecutive events of one group where every event
    after the first was *arrived at clean* by every participant (the
    recorded ``TraceEvent.clean`` flags: zero local ops/miss charges since
    the rank's previous sync, hence no intervening data dependency the
    engine would have to respect), no participant took part in another
    group's collective in between, all kinds are fusable, and the combined
    payload stays within ``fuse.max_words`` / ``fuse.max_chain`` —
    precisely the conditions under which ``Engine(fuse=...)`` merges the
    run into one superstep.  Events without recorded cleanliness (traces
    from before the flag existed) are conservatively treated as dirty.
    """
    fuse = fuse or FusionConfig()
    machine = machine or MachineModel()
    p = _trace_p(events)
    logp = max(1.0, math.log2(max(p, 1)))
    ordered = [ev for ev in sorted(events, key=TraceEvent.order_key)
               if ev.kind != FINAL]
    last_seen: dict[int, int] = {}   # rank -> index of its last event
    runs: list[FusibleRun] = []
    cur: list[TraceEvent] | None = None
    cur_words = 0
    cur_count = 0

    def flush() -> None:
        nonlocal cur
        if cur is not None and len(cur) > 1:
            kinds = []
            for ev in cur:
                kinds.extend(ev.fused if ev.fused else (ev.kind,))
            runs.append(FusibleRun(
                gid=cur[0].gid,
                start_step=cur[0].step,
                start_gseq=cur[0].gseq,
                participants=cur[0].participants,
                kinds=tuple(kinds),
                events=len(cur),
                collectives=cur_count,
                words=cur_words,
                saved_supersteps=len(cur) - 1,
                saved_s=(len(cur) - 1) * machine.L_s * logp,
            ))
        cur = None

    for i, ev in enumerate(ordered):
        fusable = (
            (ev.kind in FUSABLE_KINDS or ev.kind == "fused")
            and ev.words <= fuse.max_words
        )
        if cur is not None:
            clean = bool(ev.clean) and all(ev.clean)
            adjacent = (
                ev.gid == cur[0].gid
                and all(last_seen.get(r) == i - 1 for r in ev.participants)
            )
            extends = (
                fusable and clean and adjacent
                and cur_words + ev.words <= fuse.max_words
                and cur_count + _collective_count(ev) <= fuse.max_chain
            )
            if extends:
                cur.append(ev)
                cur_words += ev.words
                cur_count += _collective_count(ev)
            else:
                flush()
        if cur is None and fusable:
            cur = [ev]
            cur_words = ev.words
            cur_count = _collective_count(ev)
        for r in ev.participants:
            last_seen[r] = i
    flush()
    return runs


def fusion_plan(
    events: Sequence[TraceEvent],
    *,
    fuse: FusionConfig | None = None,
    machine: MachineModel | None = None,
) -> dict:
    """JSON-able fusion plan: the runs plus their aggregate savings.

    The ``predicted`` block states what enabling ``Engine(fuse=...)`` on
    the same workload should change: superstep count drops by
    ``saved_supersteps`` while computation, volume and misses stay
    bit-identical (fusion only elides latency).
    """
    fuse = fuse or FusionConfig()
    runs = find_fusible_runs(events, fuse=fuse, machine=machine)
    supersteps = sum(1 for ev in events if ev.kind != FINAL)
    saved = sum(r.saved_supersteps for r in runs)
    return {
        "config": {"max_words": fuse.max_words, "max_chain": fuse.max_chain},
        "supersteps": supersteps,
        "fusible_runs": [
            {
                "gid": r.gid,
                "start_step": r.start_step,
                "start_gseq": r.start_gseq,
                "participants": list(r.participants),
                "kinds": list(r.kinds),
                "events": r.events,
                "collectives": r.collectives,
                "words": r.words,
                "saved_supersteps": r.saved_supersteps,
                "saved_s": r.saved_s,
            }
            for r in runs
        ],
        "predicted": {
            "saved_supersteps": saved,
            "supersteps_after": supersteps - saved,
            "saved_s": sum(r.saved_s for r in runs),
        },
    }


def format_analysis(
    events: Sequence[TraceEvent],
    *,
    machine: MachineModel | None = None,
    fuse: FusionConfig | None = None,
    k: int = 10,
) -> str:
    """Human-readable analyzer report: top-k supersteps + fusion plan."""
    machine = machine or MachineModel()
    top = rank_supersteps(events, machine=machine, k=k)
    plan = fusion_plan(events, fuse=fuse, machine=machine)
    lines = ["trace analysis"]
    lines.append(f"  supersteps: {plan['supersteps']}")
    lines.append(f"  top-{len(top)} heaviest supersteps (predicted seconds):")
    lines.append(f"    {'step':>6} {'kind':<12} {'group':>6} {'total':>12} "
                 f"{'app':>10} {'volume':>10} {'wait':>10} {'latency':>10}")
    for c in top:
        ev = c.event
        kind = "+".join(ev.fused) if ev.fused else ev.kind
        lines.append(
            f"    {ev.step:>6} {kind[:12]:<12} {ev.gid:>6} "
            f"{c.total_s:>12.3e} {c.app_s:>10.3e} {c.volume_s:>10.3e} "
            f"{c.wait_s:>10.3e} {c.latency_s:>10.3e}"
        )
    runs = plan["fusible_runs"]
    lines.append(f"  fusible runs: {len(runs)} "
                 f"(saving {plan['predicted']['saved_supersteps']} supersteps"
                 f", {plan['predicted']['saved_s']:.3e}s predicted)")
    for r in runs:
        lines.append(
            f"    group {r['gid']:>4} @step {r['start_step']:>5}: "
            f"{'+'.join(r['kinds'])} "
            f"({r['words']} words, -{r['saved_supersteps']} supersteps)"
        )
    return "\n".join(lines)
