"""The per-superstep trace event record and its exactness helper.

A :class:`TraceEvent` is one executed collective on one processor group:
which collective ran (``kind``/``gid``), who took part (``participants``,
global ranks in local-rank order), how much data moved (``words``), and —
per participating rank, aligned with ``participants`` — the counter
*deltas* accrued since that rank's previous synchronization (``d_ops``,
``d_sent``, ``d_recv``, ``d_misses``, ``d_wait``) plus the rank's
superstep index after the sync.  These are exactly the per-superstep
quantities the paper's evaluation plots (max local computation,
h-relation volume, cache misses, imbalance wait — the "time spent in
MPI" decomposition of Figures 1, 4 and 8).

One terminal event of kind :data:`FINAL` closes a run: it carries every
rank's residual charges between its last collective and program exit, so
that summing a rank's deltas over the whole stream reconstructs its
cumulative :class:`~repro.bsp.counters.ProcCounters` *bit-exactly* — the
``aggregate(trace) == CountersReport`` invariant the test suite enforces
with zero tolerance.

Exactness is by construction, not by luck: floating-point telescoping
(``(c1-c0) + (c2-c1) + ...``) does not round back to ``c_n`` in general,
so deltas are produced by :func:`exact_delta`, which returns a ``d`` such
that ``prev + d`` rounds to *exactly* the target cumulative value.

``step`` is a Lamport clock over the collective DAG (each event is one
plus the largest step any participant has seen), which depends only on
the per-rank program order — never on scheduler interleaving — so the
canonical event order ``(step, gid, gseq)`` is identical across the
simulator and the multiprocess backend for a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TraceEvent", "FINAL", "exact_delta"]

#: Kind of the terminal flush event closing a traced run.
FINAL = "final"


@dataclass(frozen=True)
class TraceEvent:
    """One executed collective (or the terminal flush) of a traced run.

    The first four fields keep the layout of the engine's original
    ``CollectiveEvent`` record, of which this class is the superset (the
    old ``RunResult.trace_kinds()`` API reads only those).
    """

    kind: str                       # collective kind, or FINAL
    gid: int                        # group id (0 for the FINAL event)
    participants: tuple[int, ...]   # global ranks, in local-rank order
    words: int                      # total payload words moved
    step: int = 0                   # Lamport step over the collective DAG
    gseq: int = 0                   # sequence number within this group
    #: Per-participant superstep index after this synchronization
    #: (1-based; unchanged by the FINAL event).
    supersteps: tuple[int, ...] = ()
    # Per-participant counter deltas since that rank's previous sync,
    # aligned with ``participants``; exact per ``exact_delta``.
    d_ops: tuple[float, ...] = ()
    d_sent: tuple[float, ...] = ()
    d_recv: tuple[float, ...] = ()
    d_misses: tuple[float, ...] = ()
    d_wait: tuple[float, ...] = ()
    #: Wall-clock seconds since the previous executed collective, as
    #: measured by the MpBackend coordinator; 0.0 under the simulator.
    #: Excluded from cross-backend trace comparisons, like TimeEstimate.
    wall_s: float = 0.0
    #: For a fused superstep (an explicit ``comm.batch`` or the engine's
    #: automatic adjacent merge): the kinds of every collective that ran
    #: inside it, in execution order.  ``kind`` holds the first; empty for
    #: an ordinary single-collective superstep.
    fused: tuple[str, ...] = ()
    #: Per-participant *arrival cleanliness*, aligned with ``participants``:
    #: True when the rank reached this collective with zero local charges
    #: (ops, misses) since its previous synchronization.  This is the
    #: engine's fusion precondition recorded verbatim — the offline
    #: analyzer cannot infer it from the deltas, because ``d_ops`` /
    #: ``d_misses`` also contain the collective's own charges.  Empty for
    #: the FINAL event.
    clean: tuple[bool, ...] = ()

    @property
    def is_final(self) -> bool:
        """Whether this is the terminal flush record of a run."""
        return self.kind == FINAL

    def order_key(self) -> tuple[int, int, int]:
        """The canonical (deterministic, causality-respecting) sort key."""
        return (self.step, self.gid, self.gseq)


def exact_delta(prev: float, cur: float) -> float:
    """A delta ``d`` with ``prev + d == cur`` exactly in double rounding.

    ``cur - prev`` already satisfies this for almost every pair (counters
    are non-negative and non-decreasing, so the difference is well
    conditioned); when one rounding boundary conspires against us the
    result is nudged by ulps until the reconstruction lands exactly.
    This is what makes trace aggregation equal the live counters with
    zero tolerance instead of "up to rounding".
    """
    d = cur - prev
    if prev + d == cur:
        return d
    target = math.inf if prev + d < cur else -math.inf
    while prev + d != cur:
        d = math.nextafter(d, target)
    return d
