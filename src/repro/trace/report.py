"""Trace aggregation and summarization.

:func:`aggregate_trace` folds a per-superstep event stream back into the
run-level :class:`~repro.bsp.counters.CountersReport`.  The cornerstone
invariant — enforced with zero tolerance by ``tests/test_trace_invariants``
— is::

    aggregate_trace(result.trace) == result.report

for every algorithm, backend and seed.  It holds bit-exactly because the
recorded deltas are exact by construction (:func:`~repro.trace.events
.exact_delta`) and both the tracer and this aggregator fold each rank's
deltas in the same canonical order.

The summary helpers condense a trace the way the paper's evaluation
reads one: collective counts per kind, an h-relation volume histogram,
and the top-k heaviest supersteps by local computation or communication
volume (Figures 1, 4, 8).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.bsp.counters import CountersReport, ProcCounters
from repro.trace.events import FINAL, TraceEvent

__all__ = [
    "aggregate_trace",
    "kind_counts",
    "volume_histogram",
    "heaviest_events",
    "format_summary",
]


def aggregate_trace(events: Sequence[TraceEvent]) -> CountersReport:
    """Rebuild the run's :class:`CountersReport` from its trace.

    Applies to the trace of a *single* run (one FINAL record); folding a
    multi-run trace would sum the runs' counters together.
    """
    events = sorted(events, key=TraceEvent.order_key)
    if not events:
        raise ValueError("cannot aggregate an empty trace")
    p = 1 + max(r for ev in events for r in ev.participants)
    procs = [ProcCounters() for _ in range(p)]
    for ev in events:
        for i, r in enumerate(ev.participants):
            c = procs[r]
            c.ops += ev.d_ops[i]
            c.words_sent += ev.d_sent[i]
            c.words_recv += ev.d_recv[i]
            c.misses += ev.d_misses[i]
            c.wait_ops += ev.d_wait[i]
            if ev.kind != FINAL:
                c.supersteps += 1
                if c.supersteps != ev.supersteps[i]:
                    raise ValueError(
                        f"rank {r}: superstep index {ev.supersteps[i]} in "
                        f"event (step={ev.step}, gid={ev.gid}) does not "
                        f"match its position {c.supersteps} in the stream "
                        "— trace is incomplete or out of order"
                    )
    return CountersReport.from_procs(procs)


def kind_counts(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Executed-collective counts per kind (FINAL records excluded)."""
    return dict(Counter(ev.kind for ev in events if ev.kind != FINAL))


def volume_histogram(events: Iterable[TraceEvent]) -> list[tuple[int, int, int]]:
    """Histogram of per-collective payload words in power-of-two buckets.

    Returns ``(lo, hi, count)`` rows covering ``lo <= words < hi``; the
    first bucket is the exact-zero one (barriers, splits).
    """
    zeros = 0
    buckets: Counter[int] = Counter()
    for ev in events:
        if ev.kind == FINAL:
            continue
        if ev.words == 0:
            zeros += 1
        else:
            buckets[max(0, ev.words.bit_length() - 1)] += 1
    rows = []
    if zeros:
        rows.append((0, 1, zeros))
    for b in sorted(buckets):
        rows.append((1 << b, 1 << (b + 1), buckets[b]))
    return rows


def heaviest_events(events: Iterable[TraceEvent], k: int = 5,
                    by: str = "ops") -> list[TraceEvent]:
    """The ``k`` heaviest supersteps: ``by="ops"`` ranks by the maximum
    per-rank local computation since the previous sync (the paper's
    bottleneck metric), ``by="words"`` by h-relation volume."""
    if by == "ops":
        def weight(ev: TraceEvent) -> float:
            return max(ev.d_ops, default=0.0)
    elif by == "words":
        def weight(ev: TraceEvent) -> float:
            return float(ev.words)
    else:
        raise ValueError(f"unknown ranking {by!r}; use 'ops' or 'words'")
    real = [ev for ev in events if ev.kind != FINAL]
    return sorted(real, key=lambda ev: (-weight(ev),) + ev.order_key())[:k]


def format_summary(events: Sequence[TraceEvent], k: int = 5) -> str:
    """Human-readable trace digest: kinds, volume histogram, top-k steps."""
    events = sorted(events, key=TraceEvent.order_key)
    lines = ["trace summary"]
    counts = kind_counts(events)
    total = sum(counts.values())
    lines.append(f"  collectives: {total}")
    for kind in sorted(counts):
        lines.append(f"    {kind:<12}{counts[kind]:>8}")
    lines.append("  volume histogram (words/collective):")
    for lo, hi, count in volume_histogram(events):
        label = "0" if hi == 1 else f"[{lo}, {hi})"
        lines.append(f"    {label:<16}{count:>8}")
    top = heaviest_events(events, k=k, by="ops")
    if top:
        lines.append(f"  top-{len(top)} heaviest supersteps (max rank-local "
                     "ops since previous sync):")
        lines.append(f"    {'step':>6} {'kind':<10} {'group':>8} "
                     f"{'ranks':>6} {'max ops':>12} {'words':>10}")
        for ev in top:
            lines.append(
                f"    {ev.step:>6} {ev.kind:<10} {ev.gid:>8} "
                f"{len(ev.participants):>6} "
                f"{max(ev.d_ops, default=0.0):>12.1f} {ev.words:>10}"
            )
    return "\n".join(lines)
