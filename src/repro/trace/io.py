"""JSON-lines serialization of trace event streams.

One JSON object per line, one line per :class:`TraceEvent`, in canonical
order — the format ``repro.cli --trace PATH`` writes.  Floats are emitted
with Python's shortest-round-trip ``repr``, so a decode/encode cycle is
lossless and the ``aggregate(trace) == counters`` invariant survives the
file round-trip bit-exactly (covered by the trace test suite).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from repro.trace.events import TraceEvent

__all__ = ["event_to_dict", "event_from_dict", "write_jsonl", "read_jsonl"]

_FLOAT_TUPLES = ("d_ops", "d_sent", "d_recv", "d_misses", "d_wait")


def event_to_dict(ev: TraceEvent) -> dict:
    """Plain-JSON-types dict of one event (inverse of event_from_dict)."""
    return {
        "step": ev.step,
        "kind": ev.kind,
        "gid": ev.gid,
        "gseq": ev.gseq,
        "participants": list(ev.participants),
        "words": ev.words,
        "supersteps": list(ev.supersteps),
        "d_ops": list(ev.d_ops),
        "d_sent": list(ev.d_sent),
        "d_recv": list(ev.d_recv),
        "d_misses": list(ev.d_misses),
        "d_wait": list(ev.d_wait),
        "wall_s": ev.wall_s,
        "fused": list(ev.fused),
        "clean": [int(c) for c in ev.clean],
    }


def event_from_dict(d: dict) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its JSON object."""
    return TraceEvent(
        kind=str(d["kind"]),
        gid=int(d["gid"]),
        participants=tuple(int(r) for r in d["participants"]),
        words=int(d["words"]),
        step=int(d.get("step", 0)),
        gseq=int(d.get("gseq", 0)),
        supersteps=tuple(int(s) for s in d.get("supersteps", ())),
        **{f: tuple(float(x) for x in d.get(f, ()))
           for f in _FLOAT_TUPLES},
        wall_s=float(d.get("wall_s", 0.0)),
        fused=tuple(str(k) for k in d.get("fused", ())),
        clean=tuple(bool(c) for c in d.get("clean", ())),
    )


def write_jsonl(events: Sequence[TraceEvent], path_or_file) -> int:
    """Write events as JSON-lines (canonical order); returns the count."""
    events = sorted(events, key=TraceEvent.order_key)
    if hasattr(path_or_file, "write"):
        return _write(events, path_or_file)
    with open(path_or_file, "w", encoding="utf-8") as fh:
        return _write(events, fh)


def _write(events: Iterable[TraceEvent], fh: IO[str]) -> int:
    n = 0
    for ev in events:
        fh.write(json.dumps(event_to_dict(ev), separators=(",", ":")))
        fh.write("\n")
        n += 1
    return n


def read_jsonl(path_or_file) -> list[TraceEvent]:
    """Read a JSON-lines trace file back into events (blank lines skipped)."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    return [event_from_dict(json.loads(line))
            for line in lines if line.strip()]
