"""Closed-form cache-oblivious cost charges.

These are the standard CO-model bounds the paper's analysis composes
(Frigo et al. [11]): scanning costs ceil(n/B)+1, sorting costs
Theta((n/B) log_M (n)) for the funnelsort-style bound the paper quotes as
O((s/B) log_M s), random access costs one miss per element once the working
set exceeds M, and a tall-cache transpose costs O(n^2/B).

The BSP engine charges these analytically per processor so that cache-miss
counters exist even for configurations far too large to trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CacheParams"]


@dataclass(frozen=True)
class CacheParams:
    """Cache geometry: capacity ``M`` words, block size ``B`` words.

    Defaults model one Piz Daint socket's 45 MiB LLC with 64-byte lines,
    in 8-byte words: M = 45 MiB / 8 B, B = 8 words.
    """

    M: int = 45 * 1024 * 1024 // 8
    B: int = 8

    def __post_init__(self):
        if self.B < 1:
            raise ValueError(f"B must be >= 1, got {self.B}")
        if self.M < self.B * self.B:
            raise ValueError(
                f"tall-cache assumption requires M >= B^2, got M={self.M}, B={self.B}"
            )

    def scan(self, n: float) -> float:
        """Misses to scan ``n`` contiguous words: ceil(n/B) + 1."""
        if n <= 0:
            return 0.0
        return math.ceil(n / self.B) + 1

    def random_access(self, n: float, working_set: float | None = None) -> float:
        """Misses for ``n`` random accesses into ``working_set`` words.

        If the working set fits in cache, only compulsory misses to load it
        are charged; otherwise each access is a miss.
        """
        if n <= 0:
            return 0.0
        ws = n if working_set is None else working_set
        if ws <= self.M:
            return self.scan(min(ws, n))
        return float(n)

    def sort(self, n: float) -> float:
        """Misses for a CO sort of ``n`` words: O((n/B) log_M n)."""
        if n <= 1:
            return 0.0
        return (n / self.B) * max(1.0, math.log(n, max(2, self.M)))

    def permute(self, n: float) -> float:
        """Misses to apply a random permutation to ``n`` words.

        Charged as min(random access, sort) — the classic permuting bound.
        """
        return min(self.random_access(n), self.sort(n)) if n > 0 else 0.0

    def transpose(self, n: int) -> float:
        """Misses to transpose an n x n matrix: O(n^2/B) under tall cache."""
        if n <= 0:
            return 0.0
        return self.scan(float(n) * n)

    def matrix_scan(self, rows: int, cols: int) -> float:
        """Misses to stream an entire rows x cols matrix."""
        return self.scan(float(rows) * cols)
