"""Instrumentation interface between algorithms and the cache simulator.

Sequential algorithms (the baselines and the sequential legs of the BSP
codes) accept a :class:`MemoryTracker`.  The null implementation makes the
instrumentation free in normal runs; :class:`LRUTracker` maps named arrays
onto a flat simulated address space and feeds the LRU simulator, standing in
for the PAPI LLC hardware counters of the paper's §5.

The tracker also counts completed "instructions" (one per element charged via
:meth:`MemoryTracker.ops`), giving the Instructions-per-Miss metric of
Figures 4 and 8.
"""

from __future__ import annotations

import numpy as np

from repro.cache.lru import LRUCache

__all__ = ["MemoryTracker", "NullTracker", "LRUTracker", "AnalyticTracker"]


class MemoryTracker:
    """Interface: named-array allocation, element touches, op counting."""

    #: True when the tracker replays the exact access sequence (LRU
    #: simulation); algorithms use this to choose a faithful per-access
    #: trace over vectorized batch charging.
    is_tracing = False

    def alloc(self, name: str, n_elems: int, words_per_elem: int = 1) -> None:
        """Register (or re-register, resizing) an array of elements."""
        raise NotImplementedError

    def touch(self, name: str, idx) -> None:
        """Random accesses to elements ``idx`` (scalar or array) of ``name``."""
        raise NotImplementedError

    def scan(self, name: str, start: int = 0, length: int | None = None) -> None:
        """Sequential access to a range of elements of ``name``."""
        raise NotImplementedError

    def ops(self, k: int) -> None:
        """Charge ``k`` completed instructions."""
        raise NotImplementedError

    @property
    def miss_count(self) -> int:
        raise NotImplementedError

    @property
    def op_count(self) -> int:
        raise NotImplementedError

    def instructions_per_miss(self) -> float:
        """IPM as reported in Figures 4c/8 (inf when no misses occurred)."""
        m = self.miss_count
        return float("inf") if m == 0 else self.op_count / m


class NullTracker(MemoryTracker):
    """Free no-op tracker used when instrumentation is off."""

    def alloc(self, name, n_elems, words_per_elem=1):
        pass

    def touch(self, name, idx):
        pass

    def scan(self, name, start=0, length=None):
        pass

    def ops(self, k):
        pass

    @property
    def miss_count(self) -> int:
        return 0

    @property
    def op_count(self) -> int:
        return 0


class AnalyticTracker(MemoryTracker):
    """O(1)-per-call tracker using the closed-form CO charges.

    Counts every charged instruction and estimates misses with the
    :class:`~repro.cache.model.CacheParams` formulas instead of simulating.
    Used inside BSP programs to account for their sequential legs (e.g. the
    Karger–Stein leaf of the Recursive Step) without trace overhead.
    """

    def __init__(self, params=None):
        from repro.cache.model import CacheParams

        self.params = params or CacheParams()
        self._sizes: dict[str, int] = {}
        self._misses = 0.0
        self._ops = 0

    def alloc(self, name, n_elems, words_per_elem=1):
        self._sizes[name] = max(
            self._sizes.get(name, 0), int(n_elems) * int(words_per_elem)
        )

    def touch(self, name, idx):
        k = int(np.size(idx))
        self._misses += self.params.random_access(k, self._sizes.get(name, k))

    def scan(self, name, start=0, length=None):
        if length is None:
            length = self._sizes.get(name, 0) - start
        self._misses += self.params.scan(max(length, 0))

    def ops(self, k):
        self._ops += int(k)

    @property
    def miss_count(self) -> int:
        return int(self._misses)

    @property
    def op_count(self) -> int:
        return self._ops


class LRUTracker(MemoryTracker):
    """Feeds named-array accesses into an :class:`LRUCache`.

    Arrays live at block-aligned base addresses in one flat address space;
    an element access of array ``a`` at index ``i`` touches words
    ``base_a + i*words`` .. ``base_a + (i+1)*words - 1`` (only the first word
    is simulated for multi-word elements — same block behaviour, cheaper).
    """

    is_tracing = True

    def __init__(self, M: int, B: int):
        self.cache = LRUCache(M, B)
        self._base: dict[str, int] = {}
        self._size: dict[str, int] = {}
        self._words: dict[str, int] = {}
        self._next_base = 0
        self._ops = 0

    def alloc(self, name, n_elems, words_per_elem=1):
        if n_elems < 0 or words_per_elem < 1:
            raise ValueError("invalid allocation")
        if name in self._base and self._size[name] >= n_elems * words_per_elem:
            return  # existing allocation is big enough; reuse it
        words = int(n_elems) * int(words_per_elem)
        # Block-align each array so arrays do not share blocks.
        base = -(-self._next_base // self.cache.B) * self.cache.B
        self._base[name] = base
        self._size[name] = words
        self._words[name] = int(words_per_elem)
        self._next_base = base + max(words, 1)

    def _resolve(self, name: str) -> tuple[int, int, int]:
        if name not in self._base:
            raise KeyError(f"array {name!r} was never allocated")
        return self._base[name], self._size[name], self._words[name]

    def touch(self, name, idx):
        base, size, words = self._resolve(name)
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        if idx.size == 0:
            return
        addr = base + idx * words
        if addr.min() < base or (addr.max() - base) >= max(size, 1):
            raise IndexError(f"access out of bounds for array {name!r}")
        self.cache.access(addr)

    def scan(self, name, start=0, length=None):
        base, size, words = self._resolve(name)
        total_elems = size // words if words else 0
        if length is None:
            length = total_elems - start
        if length <= 0:
            return
        if start < 0 or (start + length) > total_elems:
            raise IndexError(f"scan out of bounds for array {name!r}")
        self.cache.access_range(base + start * words, length * words)

    def ops(self, k):
        self._ops += int(k)

    def address(self, name: str, idx) -> np.ndarray:
        """Simulated word addresses of elements ``idx`` of array ``name``.

        Lets callers build one *interleaved* access sequence spanning
        several arrays (e.g. an edge stream mixed with map lookups) and
        replay it with :meth:`access_sequence`, which is what determines
        whether small hot arrays stay resident under LRU.
        """
        base, size, words = self._resolve(name)
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        addr = base + idx * words
        if idx.size and (addr.min() < base or (addr.max() - base) >= max(size, 1)):
            raise IndexError(f"access out of bounds for array {name!r}")
        return addr

    def access_sequence(self, addrs: np.ndarray) -> None:
        """Replay a pre-built interleaved address sequence."""
        self.cache.access(addrs)

    @property
    def miss_count(self) -> int:
        return self.cache.misses

    @property
    def op_count(self) -> int:
        return self._ops
