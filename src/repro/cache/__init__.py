"""Cache-oblivious cost modeling and LRU cache simulation.

The paper analyzes cache misses in the Cache-Oblivious model (§2.1): one
fully-associative cache of M words organized in blocks of B words, optimal
replacement, tall cache M = Omega(B^2).  LRU matches optimal replacement up
to constant factors, so we provide:

* :mod:`repro.cache.model` — closed-form CO charges (scan, sort, permute,
  matrix ops) used for analytic accounting inside the BSP engine, and
* :mod:`repro.cache.lru` / :mod:`repro.cache.traced` — a block-level LRU
  simulator plus an instrumentation interface that the sequential baselines
  feed with their real access patterns (stands in for the PAPI LLC hardware
  counters of §5).
"""

from repro.cache.model import CacheParams
from repro.cache.lru import LRUCache
from repro.cache.store import BoundedLRU
from repro.cache.traced import (
    MemoryTracker,
    NullTracker,
    LRUTracker,
    AnalyticTracker,
)

__all__ = [
    "CacheParams",
    "LRUCache",
    "BoundedLRU",
    "MemoryTracker",
    "NullTracker",
    "LRUTracker",
    "AnalyticTracker",
]
