"""Block-level fully-associative LRU cache simulator.

Simulates the Cache-Oblivious model's single cache: capacity ``M`` words in
blocks of ``B`` words, LRU eviction (within a constant factor of the optimal
replacement assumed by the model, §2.1).  Addresses are word-granular; the
simulator tracks which blocks are resident and counts misses.

Accesses arrive as numpy address arrays; consecutive duplicates are folded
before the Python-level LRU loop so that vectorized algorithms pay roughly
one loop iteration per block actually touched.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["LRUCache"]


class LRUCache:
    """Fully-associative LRU over blocks of ``B`` words, capacity ``M`` words."""

    def __init__(self, M: int, B: int):
        if B < 1:
            raise ValueError(f"B must be >= 1, got {B}")
        if M < B:
            raise ValueError(f"M must hold at least one block, got M={M}, B={B}")
        self.M = int(M)
        self.B = int(B)
        self.capacity_blocks = self.M // self.B
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.misses = 0
        self.accesses = 0

    def reset_counters(self) -> None:
        """Zero the miss/access counters (cache contents are kept)."""
        self.misses = 0
        self.accesses = 0

    def flush(self) -> None:
        """Evict everything (the artifact's pointer-chase between trials)."""
        self._resident.clear()

    def _touch_blocks(self, blocks: np.ndarray) -> None:
        resident = self._resident
        cap = self.capacity_blocks
        misses = 0
        for b in blocks.tolist():
            if b in resident:
                resident.move_to_end(b)
            else:
                misses += 1
                resident[b] = None
                if len(resident) > cap:
                    resident.popitem(last=False)
        self.misses += misses

    def access(self, addrs: np.ndarray | int) -> None:
        """Word-granular accesses in order; counts one access per word."""
        addrs = np.atleast_1d(np.asarray(addrs, dtype=np.int64))
        if addrs.size == 0:
            return
        if addrs.min() < 0:
            raise ValueError("negative address")
        self.accesses += int(addrs.size)
        blocks = addrs // self.B
        # Fold runs of identical blocks: they hit after the first touch.
        if blocks.size > 1:
            keep = np.r_[True, blocks[1:] != blocks[:-1]]
            blocks = blocks[keep]
        self._touch_blocks(blocks)

    def access_range(self, start: int, length: int) -> None:
        """Sequential scan of ``length`` words starting at word ``start``."""
        if length <= 0:
            return
        if start < 0:
            raise ValueError("negative address")
        self.accesses += int(length)
        first = start // self.B
        last = (start + length - 1) // self.B
        self._touch_blocks(np.arange(first, last + 1, dtype=np.int64))

    @property
    def resident_blocks(self) -> int:
        """Number of blocks currently cached."""
        return len(self._resident)
