"""A bounded LRU *store* — an actual container, not a miss simulator.

:mod:`repro.cache.lru` models cache behavior analytically; this module
holds real objects with real eviction, for layers that cache expensive
artifacts (the serve daemon's loaded graphs and 2-out plans).  Capacity
is counted in caller-supplied *weight* units (entries by default, bytes
if the caller sizes its values), recency is move-to-end on hit, and the
hit/miss/eviction counters feed the daemon's ``stats`` endpoint.

Thread-safe: every public method holds one internal lock, and
:meth:`get_or_load` runs the loader **outside** the lock so a slow load
(a multi-GB graph parse) never blocks hits on other keys — at the cost
that two racing loads of the same key both run (the second insert wins;
correct for pure loaders, which ours are).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

__all__ = ["BoundedLRU"]


class BoundedLRU:
    """LRU-evicting mapping bounded by total weight.

    ``capacity`` is the maximum total weight held; a single entry heavier
    than the capacity is rejected with ``ValueError`` rather than
    silently thrashing the whole store.

    ``on_evict(key, value)`` is called for every entry that *leaves* the
    store — LRU evictions, :meth:`pop` and :meth:`clear`, but **not**
    same-key replacement (the key is still present) — always outside the
    lock, so a callback may re-enter the store.  The serve layer uses it
    to keep graph-plane pins in lockstep with residency: eviction is the
    single unpin site.
    """

    def __init__(self, capacity: float,
                 on_evict: Callable[[Hashable, Any], None] | None = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.on_evict = on_evict
        self._entries: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self._weight = 0.0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _notify(self, evicted: "list[tuple[Hashable, Any]]") -> None:
        if self.on_evict is not None:
            for key, value in evicted:
                self.on_evict(key, value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def weight(self) -> float:
        """Total weight currently held."""
        with self._lock:
            return self._weight

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return default

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up without touching recency or counters (introspection)."""
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry[0]

    def put(self, key: Hashable, value: Any, weight: float = 1.0) -> None:
        """Insert/replace ``key``, evicting LRU entries to fit."""
        weight = float(weight)
        if weight > self.capacity:
            raise ValueError(
                f"entry weight {weight} exceeds store capacity "
                f"{self.capacity}"
            )
        if weight < 0:
            raise ValueError(f"entry weight must be >= 0, got {weight}")
        evicted: list[tuple[Hashable, Any]] = []
        with self._lock:
            if key in self._entries:
                self._weight -= self._entries.pop(key)[1]
            while self._entries and self._weight + weight > self.capacity:
                k, (v, w) = self._entries.popitem(last=False)
                self._weight -= w
                self.evictions += 1
                evicted.append((k, v))
            self._entries[key] = (value, weight)
            self._weight += weight
        self._notify(evicted)

    def get_or_load(self, key: Hashable, loader: Callable[[], Any],
                    weigher: Callable[[Any], float] = lambda _v: 1.0) -> Any:
        """Return the cached value, loading (outside the lock) on a miss."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = loader()
        self.put(key, value, weigher(value))
        return value

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                value, w = self._entries.pop(key)
                self._weight -= w
            else:
                return default
        self._notify([(key, value)])
        return value

    def clear(self) -> None:
        with self._lock:
            evicted = [(k, v) for k, (v, _w) in self._entries.items()]
            self._entries.clear()
            self._weight = 0.0
        self._notify(evicted)

    def keys(self) -> Iterator[Hashable]:
        """LRU-to-MRU key snapshot."""
        with self._lock:
            return iter(list(self._entries))

    def stats(self) -> dict:
        """JSON-ready counters for the daemon's ``stats`` endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "weight": self._weight,
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
