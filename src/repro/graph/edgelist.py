"""Weighted edge-array graph representation.

An :class:`EdgeList` is the sequential building block of the paper's
*distributed array of edges*: three parallel numpy arrays ``(u, v, w)`` plus
an explicit vertex count.  Vertices are ``0..n-1``; edges are undirected and
may appear as parallel duplicates (multigraph) — the bulk-contraction
routines combine them.  Self-loops are disallowed except transiently inside
contraction, which strips them.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

__all__ = ["EdgeList"]


class EdgeList:
    """An undirected weighted multigraph stored as parallel edge arrays.

    Parameters
    ----------
    n:
        Number of vertices; vertex ids are ``0..n-1``.
    u, v:
        Endpoint arrays (``int64``), one entry per edge.
    w:
        Edge weights (``float64``); must be positive.
    canonical:
        If true, normalize so that ``u <= v`` per edge (cheap, vectorized).
    """

    __slots__ = ("n", "u", "v", "w")

    def __init__(
        self,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | None = None,
        *,
        canonical: bool = True,
        validate: bool = True,
    ):
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if w is None:
            w = np.ones(u.size, dtype=np.float64)
        else:
            w = np.asarray(w, dtype=np.float64)
        if validate:
            if n < 0:
                raise ValueError(f"vertex count must be non-negative, got {n}")
            if not (u.shape == v.shape == w.shape) or u.ndim != 1:
                raise ValueError("u, v, w must be 1-D arrays of equal length")
            if u.size and (u.min() < 0 or v.min() < 0 or max(u.max(), v.max()) >= n):
                raise ValueError("edge endpoint out of range")
            if np.any(u == v):
                raise ValueError("self-loops are not allowed in an EdgeList")
            if np.any(w <= 0):
                raise ValueError("edge weights must be positive")
        if canonical and u.size:
            swap = u > v
            if swap.any():
                u = u.copy()
                v = v.copy()
                u[swap], v[swap] = v[swap].copy(), u[swap].copy()
        self.n = int(n)
        self.u = u
        self.v = v
        self.w = w

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_pairs(
        cls, n: int, pairs: Iterable[Tuple[int, int]] | Iterable[Tuple[int, int, float]]
    ) -> "EdgeList":
        """Build from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
        rows = list(pairs)
        if not rows:
            return cls.empty(n)
        if len(rows[0]) == 2:
            u, v = zip(*rows)
            w = None
        else:
            u, v, w = zip(*rows)
        return cls(n, np.array(u), np.array(v), None if w is None else np.array(w))

    @classmethod
    def empty(cls, n: int) -> "EdgeList":
        """Graph with ``n`` vertices and no edges."""
        z = np.zeros(0, dtype=np.int64)
        return cls(n, z, z, np.zeros(0, dtype=np.float64))

    @classmethod
    def from_networkx(cls, graph) -> "EdgeList":
        """Convert a networkx (Multi)Graph; nodes are renumbered ``0..n-1``.

        Edge ``weight`` attributes are honoured (default 1.0); parallel
        edges of a MultiGraph are kept as parallel entries.
        """
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        rows = []
        for a, b, data in graph.edges(data=True):
            if a == b:
                continue  # self-loops carry no cut/component information
            rows.append((index[a], index[b], float(data.get("weight", 1.0))))
        if not rows:
            return cls.empty(len(nodes))
        u, v, w = zip(*rows)
        return cls(len(nodes), np.array(u), np.array(v), np.array(w))

    # -- basic queries -----------------------------------------------------

    @property
    def m(self) -> int:
        """Number of (possibly parallel) edges."""
        return int(self.u.size)

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.w.sum())

    def average_degree(self) -> float:
        """Average degree d = 2m/n (counting parallel edges)."""
        return 2.0 * self.m / self.n if self.n else 0.0

    def degrees(self) -> np.ndarray:
        """Unweighted degree of every vertex (parallel edges count)."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.u, 1)
        np.add.at(deg, self.v, 1)
        return deg

    def weighted_degrees(self) -> np.ndarray:
        """Total incident edge weight of every vertex."""
        deg = np.zeros(self.n, dtype=np.float64)
        np.add.at(deg, self.u, self.w)
        np.add.at(deg, self.v, self.w)
        return deg

    def copy(self) -> "EdgeList":
        """Deep copy (all edge arrays are duplicated)."""
        return EdgeList(
            self.n, self.u.copy(), self.v.copy(), self.w.copy(),
            canonical=False, validate=False,
        )

    def select(self, index: np.ndarray) -> "EdgeList":
        """Sub-multigraph keeping the edges at ``index`` (same vertex set)."""
        return EdgeList(
            self.n, self.u[index], self.v[index], self.w[index],
            canonical=False, validate=False,
        )

    def slices(self, p: int) -> list["EdgeList"]:
        """Split the edge array into ``p`` contiguous slices of O(m/p) edges.

        This is exactly the paper's initial distribution of the edge array
        over processors (order arbitrary, balanced counts).
        """
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        bounds = np.linspace(0, self.m, p + 1).astype(np.int64)
        return [
            EdgeList(
                self.n,
                self.u[bounds[i]:bounds[i + 1]],
                self.v[bounds[i]:bounds[i + 1]],
                self.w[bounds[i]:bounds[i + 1]],
                canonical=False,
                validate=False,
            )
            for i in range(p)
        ]

    def cut_value(self, side: np.ndarray) -> float:
        """Weight of the cut defined by boolean membership array ``side``.

        ``side[x]`` is true iff vertex ``x`` is inside the cut.  Raises if the
        cut is empty or the whole vertex set (not a proper subset).
        """
        side = np.asarray(side, dtype=bool)
        if side.shape != (self.n,):
            raise ValueError("side must be a boolean array of length n")
        k = int(side.sum())
        if k == 0 or k == self.n:
            raise ValueError("a cut must be a nonempty proper subset of V")
        crossing = side[self.u] != side[self.v]
        return float(self.w[crossing].sum())

    def permute_edges(self, rng: np.random.Generator) -> "EdgeList":
        """Random permutation of the edge array (vertices untouched)."""
        perm = rng.permutation(self.m)
        return self.select(perm)

    def induced(self, vertices: np.ndarray) -> tuple["EdgeList", np.ndarray]:
        """Induced subgraph on ``vertices`` with a local renumbering.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        id of the subgraph's vertex ``i`` (i.e. ``vertices`` as an array).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self.n):
            raise ValueError("vertex id out of range")
        if np.unique(vertices).size != vertices.size:
            raise ValueError("vertices must be distinct")
        local = -np.ones(self.n, dtype=np.int64)
        local[vertices] = np.arange(vertices.size)
        keep = (local[self.u] >= 0) & (local[self.v] >= 0)
        sub = EdgeList(
            vertices.size, local[self.u[keep]], local[self.v[keep]],
            self.w[keep], canonical=True, validate=False,
        )
        return sub, vertices

    def degree_statistics(self) -> dict:
        """Degree-distribution summary (family fingerprints used in §5)."""
        deg = self.degrees()
        if deg.size == 0:
            return {"min": 0, "max": 0, "mean": 0.0, "median": 0.0, "std": 0.0}
        return {
            "min": int(deg.min()),
            "max": int(deg.max()),
            "mean": float(deg.mean()),
            "median": float(np.median(deg)),
            "std": float(deg.std()),
        }

    def as_tuples(self) -> list[tuple[int, int, float]]:
        """Edges as python tuples (test/debug helper)."""
        return list(zip(self.u.tolist(), self.v.tolist(), self.w.tolist()))

    def to_networkx(self):
        """Convert to a ``networkx.MultiGraph`` (validation helper)."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(self.as_tuples())
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeList(n={self.n}, m={self.m}, W={self.total_weight():g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
            and np.array_equal(self.w, other.w)
        )

    def __hash__(self):  # EdgeList is mutable through its arrays
        raise TypeError("EdgeList is unhashable")
