"""Edge-list file IO in the artifact's format.

The artifact stores every input graph as a single text file: a header line
with the vertex and edge counts, then one ``u v w`` line per edge.  We keep
that format (comments starting with ``#`` are allowed before the header) so
generated inputs can be inspected and shared between benchmark runs.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["read_edgelist", "write_edgelist", "read_snap", "stream_edge_chunks"]


def write_edgelist(g: EdgeList, path: str | Path) -> None:
    """Write ``g`` to ``path`` in the artifact text format."""
    path = Path(path)
    with path.open("w") as f:
        f.write(f"# repro graph: n={g.n} m={g.m}\n")
        f.write(f"{g.n} {g.m}\n")
        buf = io.StringIO()
        np.savetxt(
            buf,
            np.column_stack([g.u, g.v, g.w]),
            fmt=["%d", "%d", "%.17g"],
        )
        f.write(buf.getvalue())


def read_edgelist(path: str | Path) -> EdgeList:
    """Read a graph written by :func:`write_edgelist`."""
    path = Path(path)
    with path.open() as f:
        header = None
        while header is None:
            line = f.readline()
            if not line:
                raise ValueError(f"{path}: missing header line")
            line = line.strip()
            if line and not line.startswith("#"):
                header = line
        parts = header.split()
        if len(parts) != 2:
            raise ValueError(f"{path}: malformed header {header!r}")
        n, m = int(parts[0]), int(parts[1])
        data = np.loadtxt(f, ndmin=2) if m else np.zeros((0, 3))
    if data.shape != (m, 3):
        raise ValueError(
            f"{path}: expected {m} edges with 3 columns, got shape {data.shape}"
        )
    return EdgeList(
        n,
        data[:, 0].astype(np.int64),
        data[:, 1].astype(np.int64),
        data[:, 2].astype(np.float64),
    )


def read_snap(path: str | Path, *, n: int | None = None) -> EdgeList:
    """Read a SNAP-format edge list (the datasets the artifact evaluates on).

    SNAP files are whitespace-separated ``u v`` pairs with ``#`` comment
    lines and no header; vertex ids may be sparse, so they are compacted to
    ``0..n-1`` unless ``n`` is given (then ids are taken literally).
    Self-loops and duplicate edges are dropped.
    """
    path = Path(path)
    with path.open() as f:
        lines = [ln for ln in f if ln.strip() and not ln.lstrip().startswith("#")]
    if not lines:
        return EdgeList.empty(n or 0)
    data = np.loadtxt(lines, dtype=np.int64, ndmin=2)
    if data.shape[1] < 2:
        raise ValueError(f"{path}: SNAP rows need at least two columns")
    u, v = data[:, 0], data[:, 1]
    if n is None:
        ids = np.unique(np.concatenate([u, v]))
        remap = {int(x): i for i, x in enumerate(ids)}
        u = np.array([remap[int(x)] for x in u], dtype=np.int64)
        v = np.array([remap[int(x)] for x in v], dtype=np.int64)
        n = ids.size
    elif u.size and max(int(u.max()), int(v.max())) >= n:
        raise ValueError(f"{path}: vertex id exceeds given n={n}")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    code = np.unique(lo[keep] * np.int64(n) + hi[keep])
    return EdgeList(n, code // n, code % n)


def stream_edge_chunks(path: str | Path, chunk_edges: int = 1 << 16):
    """Iterate a graph file's edges in bounded-memory chunks.

    Yields ``(u, v, w)`` array triples of at most ``chunk_edges`` edges from
    an artifact-format file written by :func:`write_edgelist` — the access
    pattern of the paper's *semi-external* setting (§3.2: vertices fit in
    fast memory, edges do not).
    """
    if chunk_edges < 1:
        raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
    path = Path(path)
    with path.open() as f:
        header = None
        while header is None:
            line = f.readline()
            if not line:
                raise ValueError(f"{path}: missing header line")
            line = line.strip()
            if line and not line.startswith("#"):
                header = line
        n, m = (int(x) for x in header.split())
        remaining = m
        while remaining > 0:
            rows = []
            for _ in range(min(chunk_edges, remaining)):
                line = f.readline()
                if not line:
                    raise ValueError(f"{path}: truncated edge section")
                rows.append(line.split())
            remaining -= len(rows)
            arr = np.asarray(rows, dtype=np.float64)
            yield (arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64),
                   arr[:, 2])
