"""Ground-truth oracles for validation (tests and artifact-style checks).

Small-instance reference answers computed either by brute force (enumerating
all 2^(n-1) cuts) or by networkx.  The artifact validates its randomized
codes exactly this way: against deterministic baselines on small inputs and
against mutual agreement on large ones.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["brute_force_mincut", "networkx_mincut", "networkx_components"]


def brute_force_mincut(g: EdgeList) -> float:
    """Exact minimum cut by enumerating all cuts; only for n <= ~16.

    Returns 0.0 for a disconnected graph (the empty cut between components).
    """
    if g.n < 2:
        raise ValueError("minimum cut needs at least 2 vertices")
    if g.n > 20:
        raise ValueError("brute force limited to n <= 20")
    best = np.inf
    # Fix vertex 0 outside the cut: enumerate subsets of 1..n-1.
    for r in range(1, g.n):
        for subset in itertools.combinations(range(1, g.n), r):
            side = np.zeros(g.n, dtype=bool)
            side[list(subset)] = True
            best = min(best, g.cut_value(side))
    return float(best)


def networkx_mincut(g: EdgeList) -> float:
    """Stoer–Wagner minimum cut via networkx (requires connectivity)."""
    import networkx as nx

    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    for u, v, w in g.as_tuples():
        if h.has_edge(u, v):
            h[u][v]["weight"] += w
        else:
            h.add_edge(u, v, weight=w)
    value, _ = nx.stoer_wagner(h)
    return float(value)


def networkx_components(g: EdgeList) -> int:
    """Number of connected components via networkx."""
    import networkx as nx

    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(zip(g.u.tolist(), g.v.tolist()))
    return nx.number_connected_components(h)
