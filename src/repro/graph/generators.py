"""Synthetic graph generators used by the paper's evaluation (§5).

Four random families with distinct degree and spectral properties:

* Erdős–Rényi ``G(n, M)`` (Poisson degrees),
* Watts–Strogatz small-world graphs (edge rewiring probability 0.3),
* Barabási–Albert scale-free graphs,
* R-MAT graphs with ``a = 0.45, b = c = 0.22`` (power-law-ish, skewed).

plus deterministic corner cases with known minimum cuts and component
counts, mirroring the artifact's ``verification_graphs.sh`` suite.

All generators are vectorized, take an explicit ``numpy.random.Generator``
and are deterministic given it.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.graph.contract import combine_parallel_edges
from repro.graph.edgelist import EdgeList

__all__ = [
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "rmat",
    "grid_graph",
    "clustered_er",
    "ring_of_cliques",
    "two_cliques_bridge",
    "weighted_cycle",
    "star_graph",
    "complete_graph",
    "VerificationCase",
    "verification_suite",
]


def _dedupe_pairs(n: int, u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalize to u<v, drop loops and duplicate pairs."""
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    code = lo * np.int64(n) + hi
    code = np.unique(code)
    return code // n, code % n


def erdos_renyi(
    n: int, m: int, rng: np.random.Generator, *, weighted: bool = False
) -> EdgeList:
    """Erdős–Rényi ``G(n, M)``: exactly ``m`` distinct uniform edges.

    With ``weighted=True``, weights are uniform integers in ``1..8``
    (otherwise unit).  Rejection-samples batches until ``m`` distinct
    non-loop pairs are collected.
    """
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds maximum simple-graph size {max_m}")
    got = np.zeros(0, dtype=np.int64)
    while got.size < m:
        need = m - got.size
        batch = max(64, int(need * 1.2))
        u = rng.integers(0, n, size=batch, dtype=np.int64)
        v = rng.integers(0, n, size=batch, dtype=np.int64)
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        keep = lo != hi
        code = lo[keep] * np.int64(n) + hi[keep]
        got = np.unique(np.concatenate([got, code]))
    if got.size > m:
        got = rng.permutation(got)[:m]
    u, v = got // n, got % n
    w = rng.integers(1, 9, size=m).astype(np.float64) if weighted else None
    return EdgeList(n, u, v, w)


def watts_strogatz(
    n: int, k: int, rng: np.random.Generator, *, rewire_p: float = 0.3
) -> EdgeList:
    """Watts–Strogatz small-world graph (ring lattice + rewiring).

    Each vertex starts connected to its ``k`` nearest neighbours (``k`` must
    be even); each edge's far endpoint is rewired with probability
    ``rewire_p`` (0.3 in the paper).  Duplicate edges created by rewiring are
    dropped, matching the usual construction.
    """
    if k % 2 != 0:
        raise ValueError(f"k must be even, got {k}")
    if not 0 <= rewire_p <= 1:
        raise ValueError(f"rewire_p must be in [0,1], got {rewire_p}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    src_parts = []
    dst_parts = []
    base = np.arange(n, dtype=np.int64)
    for j in range(1, k // 2 + 1):
        src_parts.append(base)
        dst_parts.append((base + j) % n)
    u = np.concatenate(src_parts)
    v = np.concatenate(dst_parts)
    rewired = rng.random(u.size) < rewire_p
    v = v.copy()
    v[rewired] = rng.integers(0, n, size=int(rewired.sum()), dtype=np.int64)
    uu, vv = _dedupe_pairs(n, u, v)
    return EdgeList(n, uu, vv)


def barabasi_albert(n: int, k: int, rng: np.random.Generator) -> EdgeList:
    """Barabási–Albert preferential attachment with ``k`` edges per vertex.

    Implemented with the classic repeated-endpoints trick: a vertex is chosen
    proportionally to its degree by uniform sampling from the endpoint list
    of the edges so far.
    """
    if not 1 <= k < n:
        raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
    # Final edge count is (n - k) * k; endpoints list holds 2 entries/edge.
    m_final = (n - k) * k
    endpoints = np.empty(2 * m_final, dtype=np.int64)
    u_out = np.empty(m_final, dtype=np.int64)
    v_out = np.empty(m_final, dtype=np.int64)
    filled = 0  # entries used in `endpoints`
    m = 0
    for new in range(k, n):
        if filled == 0:
            targets = np.arange(k, dtype=np.int64)  # seed star over 0..k-1
        else:
            # Sample k distinct targets by degree; retry duplicates in bulk.
            targets = np.unique(endpoints[rng.integers(0, filled, size=k)])
            while targets.size < k:
                extra = endpoints[rng.integers(0, filled, size=k)]
                targets = np.unique(np.concatenate([targets, extra]))[:k]
        u_out[m:m + k] = new
        v_out[m:m + k] = targets
        endpoints[filled:filled + k] = new
        endpoints[filled + k:filled + 2 * k] = targets
        filled += 2 * k
        m += k
    return EdgeList(n, u_out, v_out)


def rmat(
    n: int,
    m: int,
    rng: np.random.Generator,
    *,
    a: float = 0.45,
    b: float = 0.22,
    c: float = 0.22,
    simple: bool = True,
) -> EdgeList:
    """R-MAT graph (Chakrabarti et al.): recursive quadrant subdivision.

    ``n`` is rounded up to a power of two internally for quadrant splitting;
    endpoints are taken modulo ``n``.  With ``simple=True``, loops and
    duplicates are dropped (so the returned ``m`` can be slightly smaller,
    and is topped up by re-drawing until within 2% or no progress is made).
    The paper's parameters are ``a=0.45, b=c=0.22`` (``d = 0.11``).
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    levels = max(1, int(np.ceil(np.log2(max(n, 2)))))

    def draw(count: int) -> tuple[np.ndarray, np.ndarray]:
        u = np.zeros(count, dtype=np.int64)
        v = np.zeros(count, dtype=np.int64)
        for _ in range(levels):
            r = rng.random(count)
            right = (r >= a) & (r < a + b) | (r >= a + b + c)  # quadrants b, d
            down = r >= a + b  # quadrants c, d
            u = 2 * u + down
            v = 2 * v + right
        return u % n, v % n

    if not simple:
        u, v = draw(m)
        keep = u != v
        return combine_parallel_edges(EdgeList(n, u[keep], v[keep]))

    u, v = draw(m)
    uu, vv = _dedupe_pairs(n, u, v)
    for _ in range(16):
        if uu.size >= m * 0.98:
            break
        eu, ev = draw(m - uu.size + 16)
        cat_u = np.concatenate([uu, eu])
        cat_v = np.concatenate([vv, ev])
        new_u, new_v = _dedupe_pairs(n, cat_u, cat_v)
        if new_u.size == uu.size:
            break  # saturated: the skewed quadrants can't produce new pairs
        uu, vv = new_u, new_v
    if uu.size > m:
        idx = rng.permutation(uu.size)[:m]
        uu, vv = uu[idx], vv[idx]
    return EdgeList(n, uu, vv)


def grid_graph(rows: int, cols: int) -> EdgeList:
    """2-D 4-neighbour grid (image-processing workload shape)."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_u = ids[:, :-1].ravel()
    right_v = ids[:, 1:].ravel()
    down_u = ids[:-1, :].ravel()
    down_v = ids[1:, :].ravel()
    return EdgeList(
        rows * cols,
        np.concatenate([right_u, down_u]),
        np.concatenate([right_v, down_v]),
    )


def complete_graph(n: int, *, weight: float = 1.0) -> EdgeList:
    """K_n with uniform weights; minimum cut is ``(n-1) * weight``."""
    iu, iv = np.triu_indices(n, k=1)
    return EdgeList(n, iu.astype(np.int64), iv.astype(np.int64),
                    np.full(iu.size, weight))


def star_graph(n: int, *, weight: float = 1.0) -> EdgeList:
    """Star on ``n`` vertices; minimum cut is ``weight`` (any leaf)."""
    if n < 2:
        raise ValueError("star needs at least 2 vertices")
    hub = np.zeros(n - 1, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    return EdgeList(n, hub, leaves, np.full(n - 1, weight))


def weighted_cycle(n: int, weights: np.ndarray | None = None) -> EdgeList:
    """Cycle; minimum cut = sum of the two smallest edge weights."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    if w is not None and w.shape != (n,):
        raise ValueError("need one weight per cycle edge")
    return EdgeList(n, u, v, w)


def two_cliques_bridge(k: int, *, bridge_weight: float = 1.0,
                       bridges: int = 1) -> EdgeList:
    """Two K_k cliques joined by ``bridges`` unit edges.

    Minimum cut = ``bridges * bridge_weight`` for k large enough
    (k - 1 > bridges * bridge_weight); the canonical mincut corner case.
    """
    if k < 2:
        raise ValueError("cliques need at least 2 vertices")
    if bridges > k:
        raise ValueError("at most k bridges supported")
    iu, iv = np.triu_indices(k, k=1)
    u = np.concatenate([iu, iu + k, np.arange(bridges)])
    v = np.concatenate([iv, iv + k, np.arange(bridges) + k])
    w = np.concatenate([
        np.ones(2 * iu.size),
        np.full(bridges, bridge_weight),
    ])
    return EdgeList(2 * k, u.astype(np.int64), v.astype(np.int64), w)


def ring_of_cliques(cliques: int, k: int) -> EdgeList:
    """``cliques`` copies of K_k arranged in a ring with unit links.

    Minimum cut = 2 (cut the two ring links around any clique) when
    k - 1 > 2; the graph is connected with one component.
    """
    if cliques < 3:
        raise ValueError("need at least 3 cliques for a ring")
    iu, iv = np.triu_indices(k, k=1)
    us, vs = [], []
    for c in range(cliques):
        us.append(iu + c * k)
        vs.append(iv + c * k)
    link_u = np.arange(cliques, dtype=np.int64) * k  # vertex 0 of each clique
    link_v = ((np.arange(cliques, dtype=np.int64) + 1) % cliques) * k + 1
    u = np.concatenate(us + [link_u])
    v = np.concatenate(vs + [link_v])
    return EdgeList(cliques * k, u.astype(np.int64), v.astype(np.int64))


def clustered_er(
    n: int,
    degree: int,
    rng: np.random.Generator,
    *,
    clusters: int = 2,
    bridges: int = 4,
    bridge_weight: float = 1.0,
    weighted: bool = True,
) -> EdgeList:
    """Dense Erdős–Rényi clusters joined in a path by a few light edges.

    ``clusters`` near-equal G(n/c, M) blocks of average ``degree``;
    consecutive blocks are linked by ``bridges`` random edges of weight
    ``bridge_weight``.  The planted minimum cut is a bridge group —
    ``bridges * bridge_weight`` — whenever the blocks are internally far
    better connected than that (``degree >> bridges * bridge_weight``
    makes this overwhelmingly likely).  This is the dense-but-sparsely-cut
    regime where 2-out contraction (:mod:`repro.core.two_out`) shines:
    ``n^2/m`` is large, so the default trial budget is huge, while the
    sampled subgraph splits along the planted cut.
    """
    if clusters < 2:
        raise ValueError("need at least 2 clusters")
    if n < 2 * clusters:
        raise ValueError("need at least 2 vertices per cluster")
    if bridges < 1:
        raise ValueError("need at least one bridge per link")
    bounds = np.linspace(0, n, clusters + 1).astype(np.int64)
    us, vs, ws = [], [], []
    for c in range(clusters):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        size = hi - lo
        block = erdos_renyi(size, size * degree // 2, rng, weighted=weighted)
        us.append(block.u + lo)
        vs.append(block.v + lo)
        ws.append(block.w)
        if c + 1 < clusters:
            nxt = int(bounds[c + 2])
            us.append(rng.integers(lo, hi, size=bridges))
            vs.append(rng.integers(hi, nxt, size=bridges))
            ws.append(np.full(bridges, bridge_weight))
    return EdgeList(
        n,
        np.concatenate(us).astype(np.int64),
        np.concatenate(vs).astype(np.int64),
        np.concatenate(ws),
    )


class VerificationCase(NamedTuple):
    """A corner-case graph with known ground truth."""

    name: str
    graph: EdgeList
    mincut: float | None  # None when disconnected (cut value 0 by convention)
    components: int


def verification_suite() -> list[VerificationCase]:
    """Deterministic corner cases with known cut values and component counts.

    Mirrors the artifact's ``verification_graphs.sh``: graphs whose minimum
    cut and component structure are known in closed form.
    """
    cases = [
        VerificationCase("triangle", complete_graph(3), 2.0, 1),
        VerificationCase("k5", complete_graph(5), 4.0, 1),
        VerificationCase("k8_w3", complete_graph(8, weight=3.0), 21.0, 1),
        VerificationCase("star10", star_graph(10), 1.0, 1),
        VerificationCase("cycle6", weighted_cycle(6), 2.0, 1),
        VerificationCase(
            "cycle5_weighted",
            weighted_cycle(5, np.array([5.0, 1.0, 4.0, 2.0, 3.0])),
            3.0,
            1,
        ),
        VerificationCase("bridge_k6", two_cliques_bridge(6), 1.0, 1),
        VerificationCase(
            "bridge_k6_w4", two_cliques_bridge(6, bridge_weight=4.0), 4.0, 1
        ),
        VerificationCase("bridge_k7_x3", two_cliques_bridge(7, bridges=3), 3.0, 1),
        VerificationCase("ring_4x5", ring_of_cliques(4, 5), 2.0, 1),
        VerificationCase("path4", EdgeList.from_pairs(4, [(0, 1), (1, 2), (2, 3)]), 1.0, 1),
        VerificationCase(
            "two_triangles",
            EdgeList.from_pairs(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]),
            None,
            2,
        ),
        VerificationCase("isolated", EdgeList.empty(5), None, 5),
        VerificationCase(
            "dumbbell_parallel",
            EdgeList.from_pairs(
                4, [(0, 1, 5.0), (2, 3, 5.0), (1, 2, 1.0), (1, 2, 1.0)]
            ),
            2.0,
            1,
        ),
    ]
    return cases
