"""Dense weighted adjacency-matrix graphs.

The Recursive Step of the exact minimum-cut algorithm works on graphs that
become arbitrarily dense under contraction, so the paper switches to a
distributed adjacency matrix there (§3, §4.3).  This module provides the
sequential matrix graph; the row-sliced distribution lives in the BSP
algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["AdjacencyMatrix"]


class AdjacencyMatrix:
    """Symmetric weighted adjacency matrix with a zero diagonal.

    ``a[i, j]`` is the combined weight of all edges between ``i`` and ``j``
    (parallel edges are merged on construction).
    """

    __slots__ = ("a",)

    def __init__(self, a: np.ndarray, *, validate: bool = True):
        a = np.asarray(a, dtype=np.float64)
        if validate:
            if a.ndim != 2 or a.shape[0] != a.shape[1]:
                raise ValueError("adjacency matrix must be square")
            if not np.allclose(a, a.T):
                raise ValueError("adjacency matrix must be symmetric")
            if np.any(np.diagonal(a) != 0):
                raise ValueError("diagonal must be zero (no self-loops)")
            if np.any(a < 0):
                raise ValueError("weights must be non-negative")
        self.a = a

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self.a.shape[0])

    @property
    def m(self) -> int:
        """Number of distinct (combined) edges."""
        return int(np.count_nonzero(np.triu(self.a)))

    def total_weight(self) -> float:
        """Sum of all (combined) edge weights."""
        return float(np.triu(self.a).sum())

    @classmethod
    def from_edgelist(cls, g: EdgeList) -> "AdjacencyMatrix":
        """Combine parallel edges of ``g`` into a dense matrix."""
        a = np.zeros((g.n, g.n), dtype=np.float64)
        np.add.at(a, (g.u, g.v), g.w)
        np.add.at(a, (g.v, g.u), g.w)
        return cls(a, validate=False)

    def to_edgelist(self) -> EdgeList:
        """Upper-triangle nonzeros as an edge list."""
        iu, iv = np.nonzero(np.triu(self.a))
        return EdgeList(self.n, iu, iv, self.a[iu, iv], canonical=False, validate=False)

    def copy(self) -> "AdjacencyMatrix":
        """Deep copy (the weight matrix is duplicated)."""
        return AdjacencyMatrix(self.a.copy(), validate=False)

    def contract(self, labels: np.ndarray, n_new: int) -> "AdjacencyMatrix":
        """Dense bulk edge contraction (§4.1, sequential reference).

        Sums the rows and then the columns of vertices mapped to the same
        label, and zeroes the diagonal — exactly the paper's two-pass
        row/column combine.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (self.n,):
            raise ValueError("labels must map every vertex")
        if labels.size and (labels.min() < 0 or labels.max() >= n_new):
            raise ValueError("label out of range")
        rows = np.zeros((n_new, self.n), dtype=np.float64)
        np.add.at(rows, labels, self.a)
        out = np.zeros((n_new, n_new), dtype=np.float64)
        np.add.at(out.T, labels, rows.T)  # column pass == row pass on transpose
        np.fill_diagonal(out, 0.0)
        return AdjacencyMatrix(out, validate=False)

    def cut_value(self, side: np.ndarray) -> float:
        """Weight of the cut given a boolean membership array."""
        side = np.asarray(side, dtype=bool)
        if side.shape != (self.n,):
            raise ValueError("side must be a boolean array of length n")
        k = int(side.sum())
        if k == 0 or k == self.n:
            raise ValueError("a cut must be a nonempty proper subset of V")
        return float(self.a[np.ix_(side, ~side)].sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdjacencyMatrix(n={self.n}, W={self.total_weight():g})"
