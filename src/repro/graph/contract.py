"""Sequential contraction utilities.

Edge contraction (§2.4) merges the endpoints of an edge, removes the loops
this creates, and combines parallel edges.  These helpers implement the
vectorized sequential pieces that both the BSP algorithms and the baselines
share: relabeling endpoints under a vertex mapping, stripping loops,
combining parallel edges, and computing the components induced by an edge
subset (used by Prefix Selection and by the CC algorithm's root step).

The per-edge work is carried by :mod:`repro.kernels`; the scalar loops that
used to live here survive as the kernels' ``slow`` references, so
``union_find_components(..., slow=True)`` still exercises them.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.kernels import (
    cc_labels,
    cc_roots,
    combine_packed,
    pack_edge_keys,
    unpack_edge_keys,
)

__all__ = [
    "relabel_edges",
    "combine_parallel_edges",
    "contract_edges",
    "components_from_edges",
    "compress_labels",
    "union_find_components",
]


def relabel_edges(g: EdgeList, labels: np.ndarray, n_new: int) -> EdgeList:
    """Replace each edge ``(u, v)`` by ``(labels[u], labels[v])``, drop loops.

    The result is a multigraph on ``n_new`` vertices; parallel edges are
    *not* combined (that is bulk contraction's job).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (g.n,):
        raise ValueError("labels must map every vertex of g")
    if labels.size and (labels.min() < 0 or labels.max() >= n_new):
        raise ValueError("label out of range")
    u = labels[g.u]
    v = labels[g.v]
    keep = u != v
    return EdgeList(n_new, u[keep], v[keep], g.w[keep], validate=False)


def combine_parallel_edges(g: EdgeList) -> EdgeList:
    """Merge parallel edges, summing their weights (sorted-key combine)."""
    if g.m == 0:
        return g.copy()
    # Canonical form guarantees u <= v, so the packed key is already canonical.
    keys, w = combine_packed(pack_edge_keys(g.u, g.v, g.n), g.w)
    u, v = unpack_edge_keys(keys, g.n)
    return EdgeList(g.n, u, v, w, canonical=False, validate=False)


def contract_edges(g: EdgeList, edge_index: np.ndarray) -> tuple[EdgeList, np.ndarray]:
    """Contract the edges at ``edge_index`` (bulk), combining parallel edges.

    Returns ``(contracted_graph, labels)`` where ``labels[x]`` is the new id
    (``0..n'-1``) of original vertex ``x``.  Contracting never decreases the
    minimum cut value (§2.4).
    """
    labels, n_new = components_from_edges(g.n, g.u[edge_index], g.v[edge_index])
    h = relabel_edges(g, labels, n_new)
    return combine_parallel_edges(h), labels


def union_find_components(
    n: int, u: np.ndarray, v: np.ndarray, *, slow: bool = False
) -> np.ndarray:
    """Connected-component root id per vertex over the edge set.

    The root of a component is its minimum member vertex (a deterministic
    choice, shared by every backend); use :func:`compress_labels` for dense
    ``0..k-1`` labels.  The default path runs the vectorized kernel
    (:func:`repro.kernels.cc_roots`); ``slow=True`` runs the original
    per-edge union-find loop — both return identical arrays.
    """
    return cc_roots(n, u, v, backend="scalar" if slow else "auto")


def compress_labels(roots: np.ndarray) -> tuple[np.ndarray, int]:
    """Map arbitrary root ids to dense labels ``0..k-1`` (order-preserving)."""
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def components_from_edges(
    n: int, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, int]:
    """Connected components of ``(range(n), edges)``: dense labels + count.

    Labels are assigned in order of first appearance, so the output is
    deterministic (and identical across the kernel backends).
    """
    return cc_labels(n, u, v)
