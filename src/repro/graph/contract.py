"""Sequential contraction utilities.

Edge contraction (§2.4) merges the endpoints of an edge, removes the loops
this creates, and combines parallel edges.  These helpers implement the
vectorized sequential pieces that both the BSP algorithms and the baselines
share: relabeling endpoints under a vertex mapping, stripping loops,
combining parallel edges, and computing the components induced by an edge
subset (used by Prefix Selection and by the CC algorithm's root step).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "relabel_edges",
    "combine_parallel_edges",
    "contract_edges",
    "components_from_edges",
    "compress_labels",
    "union_find_components",
]


def relabel_edges(g: EdgeList, labels: np.ndarray, n_new: int) -> EdgeList:
    """Replace each edge ``(u, v)`` by ``(labels[u], labels[v])``, drop loops.

    The result is a multigraph on ``n_new`` vertices; parallel edges are
    *not* combined (that is bulk contraction's job).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (g.n,):
        raise ValueError("labels must map every vertex of g")
    if labels.size and (labels.min() < 0 or labels.max() >= n_new):
        raise ValueError("label out of range")
    u = labels[g.u]
    v = labels[g.v]
    keep = u != v
    return EdgeList(n_new, u[keep], v[keep], g.w[keep], validate=False)


def combine_parallel_edges(g: EdgeList) -> EdgeList:
    """Merge parallel edges, summing their weights (sorted-key combine)."""
    if g.m == 0:
        return g.copy()
    key = g.u * np.int64(g.n) + g.v  # canonical form guarantees u <= v
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    starts = np.flatnonzero(np.r_[True, key_sorted[1:] != key_sorted[:-1]])
    w = np.add.reduceat(g.w[order], starts)
    u = g.u[order][starts]
    v = g.v[order][starts]
    return EdgeList(g.n, u, v, w, canonical=False, validate=False)


def contract_edges(g: EdgeList, edge_index: np.ndarray) -> tuple[EdgeList, np.ndarray]:
    """Contract the edges at ``edge_index`` (bulk), combining parallel edges.

    Returns ``(contracted_graph, labels)`` where ``labels[x]`` is the new id
    (``0..n'-1``) of original vertex ``x``.  Contracting never decreases the
    minimum cut value (§2.4).
    """
    labels, n_new = components_from_edges(g.n, g.u[edge_index], g.v[edge_index])
    h = relabel_edges(g, labels, n_new)
    return combine_parallel_edges(h), labels


def union_find_components(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Union–find over the edge set; returns a root id per vertex.

    Path-halving with union by size.  Root ids are arbitrary vertex ids;
    use :func:`compress_labels` for dense ``0..k-1`` labels.
    """
    parent = np.arange(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]

    # Final full compression so every vertex points at its root.
    for x in range(n):
        parent[x] = find(x)
    return parent


def compress_labels(roots: np.ndarray) -> tuple[np.ndarray, int]:
    """Map arbitrary root ids to dense labels ``0..k-1`` (order-preserving)."""
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64), int(uniq.size)


def components_from_edges(
    n: int, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, int]:
    """Connected components of ``(range(n), edges)``: dense labels + count.

    Uses scipy's compiled traversal; labels are assigned in order of first
    appearance, so the output is deterministic.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.size == 0:
        return np.arange(n, dtype=np.int64), n
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components as _cc

    adj = coo_matrix(
        (np.ones(u.size, dtype=np.int8), (u, v)), shape=(n, n)
    )
    count, labels = _cc(adj, directed=False)
    return labels.astype(np.int64), int(count)
