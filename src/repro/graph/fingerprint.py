"""Content fingerprinting of graphs.

A graph's *content fingerprint* is a SHA-256 over its exact byte content:
the vertex count and the raw ``int64``/``float64`` bytes of the ``u``,
``v``, ``w`` edge arrays, in array order.  Two :class:`EdgeList` objects
fingerprint identically iff they are byte-identical graphs — same vertex
count, same edges in the same order, same weight bits — which is exactly
the identity the trial machinery needs: a trial's result is a pure
function of ``(graph, master seed, trial id)``, so any layer that replays
or caches per-graph work (the trial ledger's resume validation, the serve
layer's graph/derivative cache) keys by this value.

The fingerprint deliberately does **not** canonicalize: a permuted edge
array is a different fingerprint even though it is the same abstract
graph, because the trial RNG trajectories (weighted samplers walk the
edge array in order) differ.  Byte identity is the conservative notion
that makes "same fingerprint" imply "bit-identical results".
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["content_fingerprint"]


def content_fingerprint(g) -> str:
    """Hex SHA-256 identifying ``g``'s exact content (see module docstring).

    Accepts any object with ``n`` and ``u``/``v``/``w`` edge arrays
    (an :class:`~repro.graph.edgelist.EdgeList` or compatible).
    """
    h = hashlib.sha256()
    h.update(f"repro-graph-v1|n={int(g.n)}|m={int(g.u.size)}\n".encode())
    for arr, dtype in ((g.u, np.int64), (g.v, np.int64), (g.w, np.float64)):
        h.update(np.ascontiguousarray(arr, dtype=dtype).tobytes())
    return h.hexdigest()
