"""Content fingerprinting of graphs.

A graph's *content fingerprint* is a SHA-256 over its exact byte content:
the vertex count and the raw ``int64``/``float64`` bytes of the ``u``,
``v``, ``w`` edge arrays, in array order.  Two :class:`EdgeList` objects
fingerprint identically iff they are byte-identical graphs — same vertex
count, same edges in the same order, same weight bits — which is exactly
the identity the trial machinery needs: a trial's result is a pure
function of ``(graph, master seed, trial id)``, so any layer that replays
or caches per-graph work (the trial ledger's resume validation, the serve
layer's graph/derivative cache) keys by this value.

The fingerprint deliberately does **not** canonicalize: a permuted edge
array is a different fingerprint even though it is the same abstract
graph, because the trial RNG trajectories (weighted samplers walk the
edge array in order) differ.  Byte identity is the conservative notion
that makes "same fingerprint" imply "bit-identical results".
"""

from __future__ import annotations

import hashlib
import weakref

import numpy as np

__all__ = ["content_fingerprint", "cached_fingerprint", "freeze_edges"]


def freeze_edges(g) -> None:
    """Make ``g``'s edge arrays read-only (best effort, idempotent).

    The memo below — and every layer keyed off it (graph-plane segments,
    the serve caches, dynamic-graph epochs) — relies on the contract that
    edge arrays are never mutated in place.  Freezing turns a silent
    contract violation into an immediate ``ValueError`` at the mutation
    site: an in-place edit after a fingerprint was cached (or a segment
    published) can no longer serve stale bits.  Arrays that do not own
    their buffer are frozen as views; the rare non-freezable subclass is
    skipped rather than rejected.
    """
    for arr in (g.u, g.v, g.w):
        try:
            arr.flags.writeable = False
        except (AttributeError, ValueError):  # pragma: no cover - exotic arrays
            pass


def content_fingerprint(g) -> str:
    """Hex SHA-256 identifying ``g``'s exact content (see module docstring).

    Accepts any object with ``n`` and ``u``/``v``/``w`` edge arrays
    (an :class:`~repro.graph.edgelist.EdgeList` or compatible).
    """
    h = hashlib.sha256()
    h.update(f"repro-graph-v1|n={int(g.n)}|m={int(g.u.size)}\n".encode())
    for arr, dtype in ((g.u, np.int64), (g.v, np.int64), (g.w, np.float64)):
        h.update(np.ascontiguousarray(arr, dtype=dtype).tobytes())
    return h.hexdigest()


#: (id(u), id(v), id(w)) -> (array weakrefs, fingerprint).  Weakrefs both
#: validate that the ids still name the same arrays and let dead entries
#: be pruned; bounded by the prune pass below.
_MEMO: dict[tuple[int, int, int], tuple[tuple, str]] = {}


def cached_fingerprint(g, *, freeze: bool = False) -> str:
    """:func:`content_fingerprint` memoized on array identity.

    Layers that fingerprint the *same* graph object per query (the serve
    path re-plans a scheduled run on every submit) skip the O(m) hash on
    repeats.  Safe under the codebase's contract that edge arrays are
    never mutated in place — the memo keys on object identity, not
    content.  ``freeze=True`` additionally enforces the contract via
    :func:`freeze_edges`, so a later in-place edit raises instead of
    silently aliasing the memoized fingerprint (the graph plane and the
    dynamic-epoch machinery pass it for every array they publish).
    """
    key = (id(g.u), id(g.v), id(g.w))
    hit = _MEMO.get(key)
    if hit is not None:
        refs, fp = hit
        if all(r() is a for r, a in zip(refs, (g.u, g.v, g.w))):
            if freeze:
                freeze_edges(g)
            return fp
    fp = content_fingerprint(g)
    if freeze:
        freeze_edges(g)
    try:
        refs = tuple(weakref.ref(a) for a in (g.u, g.v, g.w))
    except TypeError:  # pragma: no cover - non-weakrefable array subclass
        return fp
    if len(_MEMO) > 256:
        for k in [k for k, (rs, _f) in _MEMO.items() if rs[0]() is None]:
            del _MEMO[k]
    _MEMO[key] = (refs, fp)
    return fp
