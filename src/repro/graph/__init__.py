"""Graph substrate: representations, generators, IO, contraction helpers.

The paper stores graphs either as a *distributed array of edges* (each
processor holds O(m/p) weighted edges, §3) or, for dense graphs
(m >= n^2/log n), as a *distributed adjacency matrix* (Theta(n/p) rows per
processor, §3).  The sequential building blocks live here; the distributed
slicing is done by the BSP algorithms themselves.
"""

from repro.graph.edgelist import EdgeList
from repro.graph.matrix import AdjacencyMatrix
from repro.graph.contract import (
    contract_edges,
    relabel_edges,
    combine_parallel_edges,
    components_from_edges,
)
from repro.graph.generators import (
    erdos_renyi,
    watts_strogatz,
    barabasi_albert,
    rmat,
    grid_graph,
    clustered_er,
    ring_of_cliques,
    two_cliques_bridge,
    weighted_cycle,
    star_graph,
    complete_graph,
    verification_suite,
)
from repro.graph.io import (
    read_edgelist,
    write_edgelist,
    read_snap,
    stream_edge_chunks,
)
from repro.graph.fingerprint import (
    cached_fingerprint,
    content_fingerprint,
    freeze_edges,
)
from repro.graph.shm import GraphHandle, bump_epoch, plane_slices

__all__ = [
    "EdgeList",
    "AdjacencyMatrix",
    "contract_edges",
    "relabel_edges",
    "combine_parallel_edges",
    "components_from_edges",
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "rmat",
    "grid_graph",
    "clustered_er",
    "ring_of_cliques",
    "two_cliques_bridge",
    "weighted_cycle",
    "star_graph",
    "complete_graph",
    "verification_suite",
    "read_edgelist",
    "write_edgelist",
    "read_snap",
    "stream_edge_chunks",
    "content_fingerprint",
    "cached_fingerprint",
    "freeze_edges",
    "GraphHandle",
    "bump_epoch",
    "plane_slices",
]
