"""The shared graph plane: publish-once input distribution over POSIX shm.

The multiprocess backends ship a program's inputs by pickling them into
every worker's :class:`~repro.runtime.worker.WorkerSpec` (or per-query
``CMD_RUN`` tuple) — **p independent copies of the edge arrays per
dispatch**, even when the serve daemon's cache already holds the exact
same graph.  This module removes that O(p·m) input path for the common
case (the graph itself):

* :func:`publish` copies a graph's ``u``/``v``/``w`` arrays **once** into
  a single read-only, 64-byte-aligned POSIX shared-memory segment keyed
  by :func:`~repro.graph.fingerprint.content_fingerprint`, and returns a
  :class:`GraphHandle` — fingerprint, segment name, dtypes, shapes,
  offsets — that pickles in O(1) regardless of ``m``.  Publishing the
  same fingerprint again is idempotent and free.
* Workers resolve handles lazily (:func:`resolve_plane`): attach the
  segment, reconstruct zero-copy read-only numpy views, and keep both
  the attachment and the derived slice lists in process-local caches so
  repeat queries on the same graph are attach-free *and* return the
  identical :class:`~repro.graph.edgelist.EdgeList` objects (which keeps
  the samplers' identity-keyed caches warm, mirroring the arena's cached
  peer attachments in :mod:`repro.runtime.transport`).
* Lifetime is pin-counted: the publishing coordinator pins a fingerprint
  for each layer that needs it alive (a run in flight, the warm
  backend's retention window, the serve daemon's ``GraphCache``) and
  :func:`unpublish` unlinks only once every pin is dropped.  An
  ``atexit`` sweep plus the per-run ``finally`` blocks in the backends
  guarantee a crashed run leaks zero ``/dev/shm`` segments; segment
  names carry the fixed :data:`SEGMENT_PREFIX` so leak checks (tests,
  CI) can simply glob ``/dev/shm/rgpl*``.

Dispatch sites opt in by passing :func:`plane_slices(g, p) <plane_slices>`
instead of ``g.slices(p)``.  The marker is **transport, not semantics**:
the simulator (and a plane-disabled mp backend) resolves it locally to
exactly ``g.slices(p)``, and attached workers rebuild the same
``np.linspace`` slice bounds over byte-identical arrays — results,
counters and traces are bit-identical with the plane on or off.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.fingerprint import cached_fingerprint, freeze_edges

__all__ = [
    "PLANE_MIN_BYTES",
    "SEGMENT_PREFIX",
    "GraphHandle",
    "PlaneSlices",
    "SlicedHandle",
    "plane_slices",
    "default_plane_enabled",
    "eligible",
    "publish",
    "bump_epoch",
    "pin",
    "unpin",
    "unpublish",
    "published",
    "plane_stats",
    "stage_plane",
    "localize_plane",
    "resolve_plane",
    "release_pins",
    "shutdown_plane",
]

#: Array-byte alignment inside a published segment (cache-line starts).
_ALIGN = 64

#: Graphs whose combined edge-array bytes fall below this stay inline in
#: the dispatch pickle: a pipe round-trip beats segment bookkeeping for
#: tiny inputs (the transport applies the same logic per message).
PLANE_MIN_BYTES = 1 << 15

#: Every published segment name starts with this, so tests and CI leak
#: checks can assert cleanliness with one ``/dev/shm/rgpl*`` glob.
SEGMENT_PREFIX = "rgpl"

#: Process-local cap on cached peer attachments (distinct graphs a
#: worker keeps mapped); LRU beyond it.
_ATTACH_CAP = 8

#: Monotonic per-process publish sequence; fixed-width in the segment
#: name so handle pickle sizes are deterministic across runs.
_SEG_SEQ = itertools.count()

_LOCK = threading.Lock()


def default_plane_enabled() -> bool:
    """Plane default for the mp backends; ``REPRO_GRAPH_PLANE=0`` disables."""
    return os.environ.get("REPRO_GRAPH_PLANE", "1") != "0"


def _untrack(name: str) -> None:
    """Forget a segment in this process's resource tracker (the plane
    manages unlinking itself; the tracker would warn or double-free)."""
    try:
        resource_tracker.unregister(f"/{name}" if not name.startswith("/")
                                    else name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is best-effort anyway
        pass


def _segment_name() -> str:
    """Fixed-width, per-process-unique segment name.

    Fixed width keeps handle pickle sizes deterministic (the perf gate
    pins input bytes per query exactly); the monotonic sequence means a
    name is never reused within a process, so worker attachment caches
    keyed by name can never alias two generations of a graph.
    """
    return (f"{SEGMENT_PREFIX}{os.getpid() & 0xFFFFFFFF:08x}"
            f"s{next(_SEG_SEQ) & 0xFFFFFF:06x}")


@dataclass(frozen=True)
class GraphHandle:
    """O(1) wire form of a published graph.

    Everything needed to reconstruct zero-copy views — one segment, per
    array offset/shape/dtype — in a couple hundred pickle bytes,
    independent of ``m``.
    """

    fingerprint: str
    n: int
    m: int
    segment: str
    offsets: tuple[int, int, int]       # u, v, w byte offsets
    dtypes: tuple[str, str, str]        # numpy dtype strs, same order

    def graph(self) -> EdgeList:
        """The published graph: registry object in the publisher process,
        cached zero-copy attachment elsewhere."""
        return _resolve_graph(self)


class PlaneSlices:
    """Coordinator-side lazy marker for ``g.slices(p)`` at a dispatch site.

    Backends decide its fate: the simulator (and a plane-disabled mp
    backend) calls :meth:`resolve` locally; a plane-enabled mp backend
    publishes the graph and ships an O(1) :class:`SlicedHandle` instead.
    Never pickled — a marker crossing the wire is a backend bug, so
    pickling raises.
    """

    __slots__ = ("graph", "p", "_slices")

    def __init__(self, graph: EdgeList, p: int):
        self.graph = graph
        self.p = int(p)
        self._slices = None

    def resolve(self) -> list[EdgeList]:
        if self._slices is None:
            self._slices = self.graph.slices(self.p)
        return self._slices

    def __reduce__(self):
        raise TypeError(
            "PlaneSlices markers are coordinator-local; a backend must "
            "stage them (stage_plane) or resolve them (localize_plane) "
            "before anything is pickled"
        )


@dataclass(frozen=True)
class SlicedHandle:
    """Wire marker: ``handle.graph().slices(p)``, resolved worker-side."""

    handle: GraphHandle
    p: int

    def resolve(self) -> list[EdgeList]:
        return _resolve_slices(self)


def plane_slices(g: EdgeList, p: int) -> PlaneSlices:
    """The marker dispatch sites pass in place of ``g.slices(p)``."""
    return PlaneSlices(g, p)


def eligible(g) -> bool:
    """Whether ``g`` is worth publishing (see :data:`PLANE_MIN_BYTES`)."""
    return (g.u.nbytes + g.v.nbytes + g.w.nbytes) >= PLANE_MIN_BYTES


# ---------------------------------------------------------------------------
# Publisher registry (coordinator side)
# ---------------------------------------------------------------------------

class _Entry:
    __slots__ = ("seg", "handle", "graph", "pins")

    def __init__(self, seg, handle, graph):
        self.seg = seg
        self.handle = handle
        self.graph = graph  # strong ref: keeps the publisher zero-work
        self.pins = 0


_REGISTRY: dict[str, _Entry] = {}
_ATEXIT_REGISTERED = False


def publish(g: EdgeList, *, fingerprint: str | None = None) -> GraphHandle:
    """Publish ``g`` into the plane (idempotent per fingerprint).

    Copies the edge arrays once into a fresh read-only segment; a second
    publish of the same content returns the existing handle without
    touching the arrays.  The caller should :func:`pin` the fingerprint
    for as long as it needs the segment alive.

    The source arrays are frozen (:func:`~repro.graph.fingerprint.
    freeze_edges`): the registry serves the original object back to the
    publisher process keyed by this fingerprint, so an in-place edit
    after publish would silently alias stale content — freezing turns
    that into a ``ValueError`` at the mutation site.  Mutation happens
    by *epoch*, not in place: see :func:`bump_epoch`.
    """
    global _ATEXIT_REGISTERED
    fp = fingerprint or cached_fingerprint(g)
    freeze_edges(g)
    with _LOCK:
        entry = _REGISTRY.get(fp)
        if entry is not None:
            return entry.handle
        arrays = (
            np.ascontiguousarray(g.u, dtype=np.int64),
            np.ascontiguousarray(g.v, dtype=np.int64),
            np.ascontiguousarray(g.w, dtype=np.float64),
        )
        offsets = []
        cursor = 0
        for a in arrays:
            cursor = -(-cursor // _ALIGN) * _ALIGN
            offsets.append(cursor)
            cursor += a.nbytes
        seg = shared_memory.SharedMemory(name=_segment_name(), create=True,
                                         size=max(cursor, 1))
        _untrack(seg._name)
        for a, off in zip(arrays, offsets):
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf,
                             offset=off)
            dst[...] = a
        handle = GraphHandle(
            fingerprint=fp, n=int(g.n), m=int(g.m), segment=seg.name,
            offsets=tuple(offsets),
            dtypes=tuple(a.dtype.str for a in arrays),
        )
        _REGISTRY[fp] = _Entry(seg, handle, g)
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_plane)
            _ATEXIT_REGISTERED = True
        return handle


def bump_epoch(old_fp: str | None, g_new: EdgeList, *,
               fingerprint: str | None = None) -> GraphHandle:
    """Advance a published graph identity to a new epoch.

    The plane's mutation model: a graph never changes in place (publish
    freezes its arrays) — instead an *epoch* closes and the identity
    moves to new content.  ``bump_epoch`` is that transition in one
    call: drop the epoch-holder's pin on ``old_fp`` and unlink its
    ``rgpl*`` segment if that pin was the last one, then publish and pin
    ``g_new``'s content, returning the fresh handle.  Idempotent per new
    fingerprint like :func:`publish`; ``old_fp=None`` opens the first
    epoch.  Callers (the dynamic-graph epoch machinery, the serve
    daemon's session layer) hold exactly one pin per live epoch, so the
    old segment disappears exactly when the epoch closes — never
    earlier (an in-flight dispatch holds its own pin) and never later.
    """
    if old_fp is not None:
        unpin(old_fp)
        unpublish(old_fp)
    handle = publish(g_new, fingerprint=fingerprint)
    pin(handle.fingerprint)
    return handle


def pin(fp: str) -> None:
    """Hold the published segment alive across :func:`unpublish` calls."""
    with _LOCK:
        entry = _REGISTRY.get(fp)
        if entry is not None:
            entry.pins += 1


def unpin(fp: str) -> None:
    with _LOCK:
        entry = _REGISTRY.get(fp)
        if entry is not None and entry.pins > 0:
            entry.pins -= 1


def unpublish(fp: str) -> bool:
    """Unlink ``fp``'s segment if (and only if) nothing pins it.

    Returns whether the segment was actually reclaimed — callers drop
    their pin first, so ``unpin(fp); unpublish(fp)`` releases one layer
    and the last layer out turns off the lights.
    """
    with _LOCK:
        entry = _REGISTRY.get(fp)
        if entry is None or entry.pins > 0:
            return False
        del _REGISTRY[fp]
        name = entry.seg.name
        for key in [k for k in _ATTACHED_SLICES if k[0] == name]:
            del _ATTACHED_SLICES[key]
        _close_and_unlink(entry.seg)
        return True


def _close_and_unlink(seg) -> None:
    name = seg._name
    seg.close()
    try:
        _shm_unlink(name)
    except FileNotFoundError:  # pragma: no cover - already swept
        pass


try:  # POSIX: raw shm_unlink, bypassing the resource tracker
    import _posixshmem

    def _shm_unlink(name: str) -> None:
        _posixshmem.shm_unlink(name)
except ImportError:  # pragma: no cover - non-POSIX fallback
    def _shm_unlink(name: str) -> None:
        seg = shared_memory.SharedMemory(name=name)
        seg.close()
        seg.unlink()


def published() -> dict[str, int]:
    """fingerprint -> pin count of everything currently published."""
    with _LOCK:
        return {fp: e.pins for fp, e in _REGISTRY.items()}


def plane_stats() -> dict:
    """JSON-ready counters (the serve daemon's ``stats`` endpoint)."""
    with _LOCK:
        return {
            "published": len(_REGISTRY),
            "pinned": sum(1 for e in _REGISTRY.values() if e.pins > 0),
            "bytes": sum(e.seg.size for e in _REGISTRY.values()),
            "attached": len(_ATTACHED),
        }


def release_pins(fps) -> None:
    """Drop one pin per fingerprint and unlink whatever became free."""
    for fp in fps:
        unpin(fp)
        unpublish(fp)


def shutdown_plane() -> None:
    """Unlink everything regardless of pins (atexit sweep, test cleanup)."""
    with _LOCK:
        entries = list(_REGISTRY.values())
        _REGISTRY.clear()
        for entry in entries:
            _close_and_unlink(entry.seg)
        for seg in _ATTACHED.values():
            seg.close()
        _ATTACHED.clear()
        _ATTACHED_GRAPHS.clear()
        _ATTACHED_SLICES.clear()


# ---------------------------------------------------------------------------
# Coordinator-side staging
# ---------------------------------------------------------------------------

def stage_plane(obj, pinned: list[str]):
    """Publish every :class:`PlaneSlices` marker in ``obj`` for the wire.

    Eligible graphs are published (idempotent), pinned (fingerprints
    appended to ``pinned`` — the caller releases them when the run is
    over), and replaced by O(1) :class:`SlicedHandle` markers; graphs
    below :data:`PLANE_MIN_BYTES` are resolved locally and ship inline
    exactly as before.
    """
    def fn(marker: PlaneSlices):
        if not eligible(marker.graph):
            return marker.resolve()
        handle = publish(marker.graph)
        pin(handle.fingerprint)
        pinned.append(handle.fingerprint)
        return SlicedHandle(handle, marker.p)

    return _walk_markers(obj, fn)


def localize_plane(obj):
    """Resolve every marker in ``obj`` locally (sim / plane-off path)."""
    return _walk_markers(obj, PlaneSlices.resolve)


def _walk_markers(obj, fn):
    if isinstance(obj, PlaneSlices):
        return fn(obj)
    if isinstance(obj, tuple):
        return tuple(_walk_markers(x, fn) for x in obj)
    if isinstance(obj, list):
        return [_walk_markers(x, fn) for x in obj]
    if isinstance(obj, dict):
        return {k: _walk_markers(v, fn) for k, v in obj.items()}
    return obj


# ---------------------------------------------------------------------------
# Worker-side resolution (process-local caches)
# ---------------------------------------------------------------------------

#: segment name -> attached SharedMemory (LRU-bounded by _ATTACH_CAP).
_ATTACHED: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
#: segment name -> reconstructed EdgeList (views over _ATTACHED[name]).
_ATTACHED_GRAPHS: dict[str, EdgeList] = {}
#: (segment name, p) -> slice list; identical objects on repeat queries
#: keep the samplers' identity-keyed caches warm across CMD_RUNs.
_ATTACHED_SLICES: dict[tuple[str, int], list[EdgeList]] = {}


def _views_from_buffer(handle: GraphHandle, buf) -> EdgeList:
    """Zero-copy read-only EdgeList over a published segment's buffer."""
    cols = []
    for off, dt in zip(handle.offsets, handle.dtypes):
        a = np.ndarray((handle.m,), dtype=np.dtype(dt), buffer=buf,
                       offset=off)
        a.flags.writeable = False  # programs only read their inputs
        cols.append(a)
    return EdgeList(handle.n, cols[0], cols[1], cols[2],
                    canonical=False, validate=False)


def _resolve_graph(handle: GraphHandle) -> EdgeList:
    with _LOCK:
        entry = _REGISTRY.get(handle.fingerprint)
        if entry is not None and entry.seg.name == handle.segment:
            return entry.graph  # publisher process: the original object
    g = _ATTACHED_GRAPHS.get(handle.segment)
    if g is not None:
        _ATTACHED.move_to_end(handle.segment)
        return g
    seg = shared_memory.SharedMemory(name=handle.segment)
    _untrack(seg._name)
    while len(_ATTACHED) >= _ATTACH_CAP:
        old, old_seg = _ATTACHED.popitem(last=False)
        _ATTACHED_GRAPHS.pop(old, None)
        for key in [k for k in _ATTACHED_SLICES if k[0] == old]:
            del _ATTACHED_SLICES[key]
        old_seg.close()
    _ATTACHED[handle.segment] = seg
    g = _views_from_buffer(handle, seg.buf)
    _ATTACHED_GRAPHS[handle.segment] = g
    return g


def _resolve_slices(marker: SlicedHandle) -> list[EdgeList]:
    key = (marker.handle.segment, marker.p)
    slices = _ATTACHED_SLICES.get(key)
    if slices is None:
        slices = _resolve_graph(marker.handle).slices(marker.p)
        # Publisher-process resolutions are not attachment-backed; only
        # cache slice lists tied to a cached attachment (or the
        # registry, whose entries outlive their pins' holders).
        _ATTACHED_SLICES[key] = slices
    return slices


def resolve_plane(obj):
    """Materialize every wire marker in ``obj`` (worker-side inverse of
    :func:`stage_plane`; plain inputs pass through untouched)."""
    if isinstance(obj, SlicedHandle):
        return obj.resolve()
    if isinstance(obj, GraphHandle):
        return obj.graph()
    if isinstance(obj, tuple):
        return tuple(resolve_plane(x) for x in obj)
    if isinstance(obj, list):
        return [resolve_plane(x) for x in obj]
    if isinstance(obj, dict):
        return {k: resolve_plane(v) for k, v in obj.items()}
    return obj
