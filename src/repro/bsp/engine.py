"""The BSP superstep engine.

Runs ``p`` virtual processors, each executing the same generator program
(SPMD).  A processor runs local code until it yields a
:class:`~repro.bsp.comm.CollectiveOp`; once every live member of the
operation's group has yielded a matching request, the engine executes the
collective, charges communication costs and synchronization imbalance, and
resumes the members with their results.  Sub-communicators created by
``split`` progress independently — exactly the behaviour of processor groups
running minimum-cut trials concurrently.

Execution is fully deterministic: processors are scheduled in global-rank
order, complete collectives are executed in group-id order, and all
randomness flows from one root seed through per-rank Philox streams.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

import numpy as np

from repro.bsp.arrays import ArrayBundle
from repro.bsp.comm import CollectiveOp, Communicator, Group, payload_words
from repro.bsp.counters import CountersReport, ProcCounters
from repro.bsp.errors import CollectiveMismatchError, DeadlockError
from repro.bsp.machine import MachineModel, TimeEstimate
from repro.cache.model import CacheParams
from repro.rng.streams import RngStreams
from repro.trace.events import FINAL, TraceEvent
from repro.trace.tracer import NULL_TRACER, RecordingTracer, Tracer

__all__ = ["Context", "Engine", "RunResult", "CollectiveEvent", "run_spmd"]

#: The engine's original per-collective record is now the trace layer's
#: event type (a strict superset: same leading kind/gid/participants/words
#: fields, plus per-rank since-sync deltas and ordering metadata).
CollectiveEvent = TraceEvent


class Context:
    """Per-processor execution context handed to SPMD programs.

    Attributes
    ----------
    rank:
        Global processor id, ``0..p-1``.
    p:
        Total processor count of the run.
    comm:
        World communicator (use ``split`` for groups).
    rng:
        This processor's independent Philox stream.
    counters:
        This processor's cost counters.
    cache:
        Cache geometry used for analytic CO charges.
    """

    __slots__ = ("rank", "p", "comm", "rng", "counters", "cache")

    def __init__(self, rank: int, p: int, comm: Communicator,
                 rng: np.random.Generator, counters: ProcCounters,
                 cache: CacheParams):
        self.rank = rank
        self.p = p
        self.comm = comm
        self.rng = rng
        self.counters = counters
        self.cache = cache

    # -- cost charging helpers ---------------------------------------------

    def charge(self, ops: float = 0.0, misses: float = 0.0) -> None:
        """Charge raw local computation / cache misses."""
        self.counters.charge(ops=ops, misses=misses)

    def charge_scan(self, elems: float, words_per_elem: int = 1) -> None:
        """Streaming pass over ``elems`` elements: linear ops, scan misses."""
        self.counters.charge(
            ops=elems, misses=self.cache.scan(elems * words_per_elem)
        )

    def charge_sort(self, elems: float, words_per_elem: int = 1) -> None:
        """Comparison sort of ``elems`` elements: n log n ops, CO sort misses."""
        if elems <= 1:
            return
        self.counters.charge(
            ops=elems * max(1.0, np.log2(elems)),
            misses=self.cache.sort(elems * words_per_elem),
        )

    def charge_random(self, accesses: float, working_set: float | None = None) -> None:
        """``accesses`` random touches into a working set of given size."""
        self.counters.charge(
            ops=accesses, misses=self.cache.random_access(accesses, working_set)
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one SPMD run: per-rank return values + aggregated costs."""

    values: list
    report: CountersReport
    time: TimeEstimate
    trace: list[TraceEvent] | None = None

    @property
    def root_value(self) -> Any:
        """Return value of rank 0 (where algorithms deposit their result)."""
        return self.values[0]

    def trace_kinds(self) -> list[str]:
        """Sequence of executed collective kinds (traced runs only).

        The terminal :data:`~repro.trace.events.FINAL` flush record is not
        a collective and is excluded, which keeps this list exactly what
        it was before the per-superstep trace layer existed.
        """
        if self.trace is None:
            raise ValueError("run without trace=True has no event log")
        return [ev.kind for ev in self.trace if ev.kind != FINAL]


#: Collectives whose members must agree on the root rank.
ROOTED_KINDS = frozenset(
    {"bcast", "gather", "scatter", "reduce", "gatherv", "scatterv"}
)

_DONE = object()


def _zigzag(x: int) -> int:
    """Fold an integer onto the non-negatives (for the gid pairing)."""
    return 2 * x if x >= 0 else -2 * x - 1


def _cantor(a: int, b: int) -> int:
    """Cantor pairing: a bijection N x N -> N."""
    return (a + b) * (a + b + 1) // 2 + b


def _split_gid(parent_gid: int, split_seq: int, color: int) -> int:
    """Deterministic gid of a split-created group.

    A pure function of (parent group, how many splits that group executed
    before this one, color) — all scheduler-independent quantities — so
    sub-communicator identities, and with them trace event streams, are
    identical across backends regardless of how concurrently-progressing
    groups interleave.  The +2 keeps clear of the world gid (1) and the
    trace FINAL record's gid (0); injectivity is Cantor's.
    """
    return _cantor(_cantor(parent_gid, split_seq), _zigzag(color)) + 2


class Engine:
    """Deterministic BSP simulator; see module docstring."""

    def __init__(self, cache: CacheParams | None = None,
                 machine: MachineModel | None = None,
                 trace: bool = False,
                 tracer: Tracer | None = None):
        if trace and tracer is not None:
            raise ValueError(
                "pass either trace=True (a default RecordingTracer) or an "
                "explicit tracer, not both"
            )
        self.cache = cache or CacheParams()
        self.machine = machine or MachineModel()
        self._tracer = tracer if tracer is not None else (
            RecordingTracer() if trace else NULL_TRACER
        )
        self.trace = self._tracer.enabled
        self._next_gid = 0
        self._split_seq: dict[int, int] = {}

    def _new_group(self, members: tuple[int, ...]) -> Group:
        self._next_gid += 1
        return Group(self._next_gid, members)

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
    ) -> RunResult:
        """Execute ``program(ctx, *args, **kwargs)`` on ``p`` processors.

        ``p`` must be an integer >= 1 (``p = 1`` is a valid degenerate BSP
        machine: every collective is a self-communication).  Anything else
        — zero, negative, or a non-integral value — raises ``TypeError``
        or ``ValueError`` before any program code runs; all execution
        backends share this contract.
        """
        try:
            p = operator.index(p)
        except TypeError:
            raise TypeError(
                f"p must be an integer, got {type(p).__name__} ({p!r})"
            ) from None
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        kwargs = kwargs or {}
        # Group ids restart every run so gids (and traces) are a pure
        # function of (program, p, seed), even on a reused engine.
        self._next_gid = 0
        self._split_seq = {}
        tracer = self._tracer
        events_before = len(tracer)
        streams = RngStreams(seed)
        counters = [ProcCounters() for _ in range(p)]
        world = self._new_group(tuple(range(p)))
        ctxs = [
            Context(
                rank=r, p=p, comm=Communicator(world, r),
                rng=streams.for_rank(r), counters=counters[r], cache=self.cache,
            )
            for r in range(p)
        ]
        gens: list[Generator | None] = [program(ctx, *args, **kwargs) for ctx in ctxs]
        values: list[Any] = [None] * p
        inbox: list[Any] = [None] * p          # value to send into the generator
        pending: dict[int, CollectiveOp | None] = {}  # rank -> blocked request
        runnable: list[int] = list(range(p))

        while True:
            # Phase 1: advance runnable processors until they block or finish.
            for r in runnable:
                gen = gens[r]
                assert gen is not None
                try:
                    op = gen.send(inbox[r])
                except StopIteration as stop:
                    values[r] = stop.value
                    gens[r] = None
                    pending[r] = None
                    continue
                if not isinstance(op, CollectiveOp):
                    raise TypeError(
                        f"rank {r} yielded {type(op).__name__}; programs may only "
                        "yield collective operations (use `yield from comm.<op>`)"
                    )
                if op.sender != r:
                    raise CollectiveMismatchError(
                        f"rank {r} issued a collective through rank {op.sender}'s "
                        "communicator view"
                    )
                pending[r] = op
                inbox[r] = None
            runnable = []

            if all(g is None for g in gens):
                break

            # Phase 2: find groups whose live members all posted a request.
            by_group: dict[int, list[CollectiveOp]] = {}
            for r, op in pending.items():
                if op is not None:
                    by_group.setdefault(op.group.gid, []).append(op)
            executed_any = False
            for gid in sorted(by_group):
                ops = by_group[gid]
                group = ops[0].group
                waiting = {op.sender for op in ops}
                missing = [m for m in group.members if m not in waiting]
                if any(gens[m] is not None for m in missing):
                    continue  # someone is still computing; not ready yet
                if missing:
                    dead = [m for m in missing if gens[m] is None]
                    raise DeadlockError(
                        f"collective {ops[0].kind!r} on group {gid} can never "
                        f"complete: member(s) {dead} already terminated while "
                        f"{sorted(waiting)} are waiting"
                    )
                kinds = {op.kind for op in ops}
                if len(kinds) != 1:
                    detail = {op.sender: op.kind for op in ops}
                    raise CollectiveMismatchError(
                        f"group {gid} members issued different collectives: {detail}"
                    )
                self._execute(group, ops, counters, ctxs, inbox)
                for op in ops:
                    pending[op.sender] = None
                    runnable.append(op.sender)
                executed_any = True
            runnable.sort()

            if not executed_any:
                blocked = {
                    r: f"{op.kind} on group {op.group.gid}"
                    for r, op in pending.items()
                    if op is not None
                }
                if not blocked:
                    break  # everything finished
                raise DeadlockError(
                    f"no collective can complete; blocked processors: {blocked}; "
                    f"terminated: {[r for r in range(p) if gens[r] is None]}"
                )

        trace = None
        if tracer.enabled:
            tracer.on_finish([c.snapshot() for c in counters])
            # This run's slice: canonical order, and a tracer spanning
            # several runs keeps Lamport steps strictly increasing, so
            # earlier runs' events sort strictly before ours.
            trace = tracer.events()[events_before:]
        report = CountersReport.from_procs(counters)
        return RunResult(values=values, report=report,
                         time=self.machine.predict(report),
                         trace=trace)

    # -- collective execution ------------------------------------------------

    def _execute(
        self,
        group: Group,
        ops: list[CollectiveOp],
        counters: list[ProcCounters],
        ctxs: list[Context],
        inbox: list[Any],
    ) -> None:
        ops.sort(key=lambda o: o.local_rank)
        kind = ops[0].kind
        members = group.members

        # Synchronization accounting: supersteps + imbalance wait.
        since_sync = [
            counters[m].ops - counters[m].ops_at_last_sync for m in members
        ]
        slowest = max(since_sync)
        for m, c in zip(members, since_sync):
            counters[m].wait_ops += slowest - c
            counters[m].ops_at_last_sync = counters[m].ops
            counters[m].supersteps += 1

        if kind in ROOTED_KINDS:
            roots = {op.root for op in ops}
            if len(roots) != 1:
                raise CollectiveMismatchError(
                    f"group {group.gid} members disagree on the {kind} root: {roots}"
                )
        handler = getattr(self, f"_exec_{kind}", None)
        if handler is None:
            raise CollectiveMismatchError(f"unknown collective kind {kind!r}")
        results = handler(group, ops, counters, ctxs)
        if self._tracer.enabled:
            # Post-collective cumulative snapshots: the tracer derives the
            # exact since-sync deltas itself (ops[i].sender == members[i]).
            self._tracer.on_collective(
                kind=kind, gid=group.gid, participants=members,
                words=sum(payload_words(op.payload) for op in ops),
                snapshots=[counters[m].snapshot() for m in members],
            )
        for op, res in zip(ops, results):
            inbox[op.sender] = res

    def _charge(self, counters: list[ProcCounters], member: int,
                sent: float, recv: float) -> None:
        moved = sent + recv
        counters[member].charge_comm(
            sent, recv, misses=self.cache.scan(moved) if moved else 0.0
        )

    def _exec_barrier(self, group, ops, counters, ctxs):
        for op in ops:
            self._charge(counters, op.sender, 1, 1)
        return [None] * len(ops)

    def _exec_bcast(self, group, ops, counters, ctxs):
        value = ops[ops[0].root].payload  # ops are sorted by local rank
        k = payload_words(value)
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, k, 0)
            else:
                self._charge(counters, op.sender, 0, k)
        return [value] * len(ops)

    def _exec_gather(self, group, ops, counters, ctxs):
        gathered = [op.payload for op in ops]
        total = sum(payload_words(v) for v in gathered)
        results = []
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, 0, total)
                results.append(gathered)
            else:
                self._charge(counters, op.sender, payload_words(op.payload), 0)
                results.append(None)
        return results

    def _exec_allgather(self, group, ops, counters, ctxs):
        gathered = [op.payload for op in ops]
        total = sum(payload_words(v) for v in gathered)
        for op in ops:
            self._charge(counters, op.sender, payload_words(op.payload), total)
        return [gathered] * len(ops)

    def _exec_scatter(self, group, ops, counters, ctxs):
        values = ops[ops[0].root].payload  # ops are sorted by local rank
        results = []
        for op in ops:
            part = values[op.local_rank]
            if op.local_rank == op.root:
                self._charge(counters, op.sender, sum(payload_words(v) for v in values), 0)
            else:
                self._charge(counters, op.sender, 0, payload_words(part))
            results.append(part)
        return results

    def _reduce_values(self, ops, counters):
        fold = ops[0].op
        assert fold is not None
        acc = ops[0].payload
        for op in ops[1:]:
            acc = fold(acc, op.payload)
        # Tree reduction: every proc sends/combines O(k) words.
        for op in ops:
            k = payload_words(op.payload)
            counters[op.sender].charge(ops=float(k))
        return acc

    def _exec_reduce(self, group, ops, counters, ctxs):
        acc = self._reduce_values(ops, counters)
        k = payload_words(acc)
        results = []
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, 0, k)
                results.append(acc)
            else:
                self._charge(counters, op.sender, payload_words(op.payload), 0)
                results.append(None)
        return results

    def _exec_allreduce(self, group, ops, counters, ctxs):
        acc = self._reduce_values(ops, counters)
        k = payload_words(acc)
        for op in ops:
            self._charge(counters, op.sender, payload_words(op.payload), k)
        return [acc] * len(ops)

    # -- typed array collectives --------------------------------------------
    #
    # Same group semantics and — by construction — the same communication
    # charges as their untyped counterparts: a bundle's words are the sum
    # of its column sizes, exactly what the tuple-of-arrays encoding
    # charged, and ``counts`` metadata is free (as in MPI).  Results are
    # concatenated/split column-wise in local-rank order, which is
    # bit-identical to what receivers of the untyped collectives computed
    # with their own ``np.concatenate`` calls.

    @staticmethod
    def _concat_bundles(group, parts):
        try:
            return ArrayBundle.concat(parts)
        except ValueError as exc:
            raise CollectiveMismatchError(
                f"group {group.gid} members' bundles do not align: {exc}"
            ) from None

    def _exec_gatherv(self, group, ops, counters, ctxs):
        gathered = self._concat_bundles(group, [op.payload for op in ops])
        total = gathered.__bsp_words__()
        results = []
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, 0, total)
                results.append(gathered)
            else:
                self._charge(counters, op.sender, payload_words(op.payload), 0)
                results.append(None)
        return results

    def _exec_allgatherv(self, group, ops, counters, ctxs):
        gathered = self._concat_bundles(group, [op.payload for op in ops])
        total = gathered.__bsp_words__()
        for op in ops:
            self._charge(counters, op.sender, payload_words(op.payload), total)
        return [gathered] * len(ops)

    def _exec_scatterv(self, group, ops, counters, ctxs):
        bundle = ops[ops[0].root].payload  # ops are sorted by local rank
        parts = bundle.split_rows(bundle.counts)
        results = []
        for op in ops:
            part = parts[op.local_rank]
            if op.local_rank == op.root:
                self._charge(counters, op.sender, bundle.__bsp_words__(), 0)
            else:
                self._charge(counters, op.sender, 0, part.__bsp_words__())
            results.append(part)
        return results

    def _exec_alltoallv(self, group, ops, counters, ctxs):
        size = group.size
        for op in ops:
            if len(op.payload) != size:
                raise CollectiveMismatchError(
                    f"alltoallv payload of rank {op.sender} has "
                    f"{len(op.payload)} parcels, expected {size}"
                )
        results = []
        for i, op in enumerate(ops):
            received = self._concat_bundles(
                group, [ops[j].payload[i] for j in range(size)]
            )
            sent = sum(payload_words(b) for b in op.payload)
            self._charge(counters, op.sender, sent, received.__bsp_words__())
            results.append(received)
        return results

    def _exec_alltoall(self, group, ops, counters, ctxs):
        size = group.size
        for op in ops:
            if len(op.payload) != size:
                raise CollectiveMismatchError(
                    f"alltoall payload of rank {op.sender} has {len(op.payload)} "
                    f"items, expected {size}"
                )
        results = []
        for i, op in enumerate(ops):
            received = [ops[j].payload[i] for j in range(size)]
            sent = sum(payload_words(v) for v in op.payload)
            recv = sum(payload_words(v) for v in received)
            self._charge(counters, op.sender, sent, recv)
            results.append(received)
        return results

    def _exec_split(self, group, ops, counters, ctxs):
        # payload = (color, key); new groups ordered by color, then (key, rank).
        # Child gids are a deterministic function of (parent gid, split
        # sequence number, color) so that traces match across backends.
        seq = self._split_seq.get(group.gid, 0)
        self._split_seq[group.gid] = seq + 1
        by_color: dict[int, list[CollectiveOp]] = {}
        for op in ops:
            by_color.setdefault(op.payload[0], []).append(op)
        new_comm: dict[int, Communicator] = {}
        for color in sorted(by_color):
            cohort = sorted(by_color[color], key=lambda o: (o.payload[1], o.local_rank))
            new_group = Group(_split_gid(group.gid, seq, color),
                              tuple(o.sender for o in cohort))
            for local, op in enumerate(cohort):
                new_comm[op.sender] = Communicator(new_group, local)
        for op in ops:
            self._charge(counters, op.sender, 1, 1)
        return [new_comm[op.sender] for op in ops]


def run_spmd(
    program: Callable[..., Generator],
    p: int,
    *,
    seed: int = 0,
    args: Iterable[Any] = (),
    kwargs: dict | None = None,
    cache: CacheParams | None = None,
    machine: MachineModel | None = None,
    trace: bool = False,
    tracer: Tracer | None = None,
) -> RunResult:
    """One-shot convenience wrapper: build an :class:`Engine` and run.

    Shares :meth:`Engine.run`'s processor-count contract: ``p`` must be an
    integer >= 1, enforced with ``TypeError``/``ValueError`` before any
    program code runs.  ``trace=True`` (or an explicit ``tracer``) records
    the per-superstep event stream in ``RunResult.trace``.
    """
    return Engine(cache=cache, machine=machine, trace=trace, tracer=tracer).run(
        program, p, seed=seed, args=args, kwargs=kwargs
    )
