"""The BSP superstep engine.

Runs ``p`` virtual processors, each executing the same generator program
(SPMD).  A processor runs local code until it yields a
:class:`~repro.bsp.comm.CollectiveOp`; once every live member of the
operation's group has yielded a matching request, the engine executes the
collective, charges communication costs and synchronization imbalance, and
resumes the members with their results.  Sub-communicators created by
``split`` progress independently — exactly the behaviour of processor groups
running minimum-cut trials concurrently.

Execution is fully deterministic: processors are scheduled in global-rank
order, complete collectives are executed in group-id order, and all
randomness flows from one root seed through per-rank Philox streams.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

import numpy as np

from repro.bsp.arrays import ArrayBundle
from repro.bsp.comm import CollectiveOp, Communicator, Group, payload_words
from repro.bsp.counters import CountersReport, ProcCounters
from repro.bsp.errors import CollectiveMismatchError, DeadlockError
from repro.bsp.fusion import FUSABLE_KINDS, FusionConfig, as_fusion_config
from repro.bsp.machine import MachineModel, TimeEstimate
from repro.cache.model import CacheParams
from repro.rng.streams import RngStreams
from repro.trace.events import FINAL, TraceEvent
from repro.trace.tracer import NULL_TRACER, RecordingTracer, Tracer

__all__ = ["Context", "Engine", "RunResult", "CollectiveEvent", "run_spmd"]

#: The engine's original per-collective record is now the trace layer's
#: event type (a strict superset: same leading kind/gid/participants/words
#: fields, plus per-rank since-sync deltas and ordering metadata).
CollectiveEvent = TraceEvent


class Context:
    """Per-processor execution context handed to SPMD programs.

    Attributes
    ----------
    rank:
        Global processor id, ``0..p-1``.
    p:
        Total processor count of the run.
    comm:
        World communicator (use ``split`` for groups).
    rng:
        This processor's independent Philox stream.
    counters:
        This processor's cost counters.
    cache:
        Cache geometry used for analytic CO charges.
    """

    __slots__ = ("rank", "p", "comm", "rng", "counters", "cache")

    def __init__(self, rank: int, p: int, comm: Communicator,
                 rng: np.random.Generator, counters: ProcCounters,
                 cache: CacheParams):
        self.rank = rank
        self.p = p
        self.comm = comm
        self.rng = rng
        self.counters = counters
        self.cache = cache

    # -- cost charging helpers ---------------------------------------------

    def charge(self, ops: float = 0.0, misses: float = 0.0) -> None:
        """Charge raw local computation / cache misses."""
        self.counters.charge(ops=ops, misses=misses)

    def charge_scan(self, elems: float, words_per_elem: int = 1) -> None:
        """Streaming pass over ``elems`` elements: linear ops, scan misses."""
        self.counters.charge(
            ops=elems, misses=self.cache.scan(elems * words_per_elem)
        )

    def charge_sort(self, elems: float, words_per_elem: int = 1) -> None:
        """Comparison sort of ``elems`` elements: n log n ops, CO sort misses."""
        if elems <= 1:
            return
        self.counters.charge(
            ops=elems * max(1.0, np.log2(elems)),
            misses=self.cache.sort(elems * words_per_elem),
        )

    def charge_random(self, accesses: float, working_set: float | None = None) -> None:
        """``accesses`` random touches into a working set of given size."""
        self.counters.charge(
            ops=accesses, misses=self.cache.random_access(accesses, working_set)
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one SPMD run: per-rank return values + aggregated costs."""

    values: list
    report: CountersReport
    time: TimeEstimate
    trace: list[TraceEvent] | None = None

    @property
    def root_value(self) -> Any:
        """Return value of rank 0 (where algorithms deposit their result)."""
        return self.values[0]

    def trace_kinds(self) -> list[str]:
        """Sequence of executed collective kinds (traced runs only).

        The terminal :data:`~repro.trace.events.FINAL` flush record is not
        a collective and is excluded, which keeps this list exactly what
        it was before the per-superstep trace layer existed.
        """
        if self.trace is None:
            raise ValueError("run without trace=True has no event log")
        return [ev.kind for ev in self.trace if ev.kind != FINAL]


#: Collectives whose members must agree on the root rank.
ROOTED_KINDS = frozenset(
    {"bcast", "gather", "scatter", "reduce", "gatherv", "scatterv"}
)

_DONE = object()


def _zigzag(x: int) -> int:
    """Fold an integer onto the non-negatives (for the gid pairing)."""
    return 2 * x if x >= 0 else -2 * x - 1


def _cantor(a: int, b: int) -> int:
    """Cantor pairing: a bijection N x N -> N."""
    return (a + b) * (a + b + 1) // 2 + b


def _split_gid(parent_gid: int, split_seq: int, color: int) -> int:
    """Deterministic gid of a split-created group.

    A pure function of (parent group, how many splits that group executed
    before this one, color) — all scheduler-independent quantities — so
    sub-communicator identities, and with them trace event streams, are
    identical across backends regardless of how concurrently-progressing
    groups interleave.  The +2 keeps clear of the world gid (1) and the
    trace FINAL record's gid (0); injectivity is Cantor's.
    """
    return _cantor(_cantor(parent_gid, split_seq), _zigzag(color)) + 2


class Engine:
    """Deterministic BSP simulator; see module docstring."""

    def __init__(self, cache: CacheParams | None = None,
                 machine: MachineModel | None = None,
                 trace: bool = False,
                 tracer: Tracer | None = None,
                 fuse: bool | FusionConfig | None = None):
        if trace and tracer is not None:
            raise ValueError(
                "pass either trace=True (a default RecordingTracer) or an "
                "explicit tracer, not both"
            )
        self.cache = cache or CacheParams()
        self.machine = machine or MachineModel()
        self._tracer = tracer if tracer is not None else (
            RecordingTracer() if trace else NULL_TRACER
        )
        self.trace = self._tracer.enabled
        #: Automatic adjacent-fusion policy; None (default) disables the
        #: merge so superstep counts match the pre-fusion engine exactly.
        #: Explicit ``comm.batch`` requests work regardless of this.
        self.fuse = as_fusion_config(fuse)
        self._next_gid = 0
        self._split_seq: dict[int, int] = {}
        # Auto-fusion bookkeeping (reset per run; see _execute):
        self._last_sync: dict[int, tuple[int, bool]] = {}   # rank -> (gid, mergeable)
        self._post_sync: dict[int, tuple[float, float]] = {}  # rank -> (ops, misses)
        self._chain: dict[int, int] = {}        # gid -> collectives this superstep
        self._chain_words: dict[int, int] = {}  # gid -> words this superstep

    def _new_group(self, members: tuple[int, ...]) -> Group:
        self._next_gid += 1
        return Group(self._next_gid, members)

    # -- main entry ----------------------------------------------------------

    def run(
        self,
        program: Callable[..., Generator],
        p: int,
        *,
        seed: int = 0,
        args: Iterable[Any] = (),
        kwargs: dict | None = None,
    ) -> RunResult:
        """Execute ``program(ctx, *args, **kwargs)`` on ``p`` processors.

        ``p`` must be an integer >= 1 (``p = 1`` is a valid degenerate BSP
        machine: every collective is a self-communication).  Anything else
        — zero, negative, or a non-integral value — raises ``TypeError``
        or ``ValueError`` before any program code runs; all execution
        backends share this contract.
        """
        try:
            p = operator.index(p)
        except TypeError:
            raise TypeError(
                f"p must be an integer, got {type(p).__name__} ({p!r})"
            ) from None
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        kwargs = kwargs or {}
        # Group ids restart every run so gids (and traces) are a pure
        # function of (program, p, seed), even on a reused engine.
        self._next_gid = 0
        self._split_seq = {}
        self._last_sync = {}
        self._post_sync = {}
        self._chain = {}
        self._chain_words = {}
        tracer = self._tracer
        events_before = len(tracer)
        streams = RngStreams(seed)
        counters = [ProcCounters() for _ in range(p)]
        world = self._new_group(tuple(range(p)))
        ctxs = [
            Context(
                rank=r, p=p, comm=Communicator(world, r),
                rng=streams.for_rank(r), counters=counters[r], cache=self.cache,
            )
            for r in range(p)
        ]
        gens: list[Generator | None] = [program(ctx, *args, **kwargs) for ctx in ctxs]
        values: list[Any] = [None] * p
        inbox: list[Any] = [None] * p          # value to send into the generator
        pending: dict[int, CollectiveOp | None] = {}  # rank -> blocked request
        runnable: list[int] = list(range(p))

        while True:
            # Phase 1: advance runnable processors until they block or finish.
            for r in runnable:
                gen = gens[r]
                assert gen is not None
                try:
                    op = gen.send(inbox[r])
                except StopIteration as stop:
                    values[r] = stop.value
                    gens[r] = None
                    pending[r] = None
                    continue
                if not isinstance(op, CollectiveOp):
                    raise TypeError(
                        f"rank {r} yielded {type(op).__name__}; programs may only "
                        "yield collective operations (use `yield from comm.<op>`)"
                    )
                if op.sender != r:
                    raise CollectiveMismatchError(
                        f"rank {r} issued a collective through rank {op.sender}'s "
                        "communicator view"
                    )
                pending[r] = op
                inbox[r] = None
            runnable = []

            if all(g is None for g in gens):
                break

            # Phase 2: find groups whose live members all posted a request.
            by_group: dict[int, list[CollectiveOp]] = {}
            for r, op in pending.items():
                if op is not None:
                    by_group.setdefault(op.group.gid, []).append(op)
            executed_any = False
            for gid in sorted(by_group):
                ops = by_group[gid]
                group = ops[0].group
                waiting = {op.sender for op in ops}
                missing = [m for m in group.members if m not in waiting]
                if any(gens[m] is not None for m in missing):
                    continue  # someone is still computing; not ready yet
                if missing:
                    dead = [m for m in missing if gens[m] is None]
                    raise DeadlockError(
                        f"collective {ops[0].kind!r} on group {gid} can never "
                        f"complete: member(s) {dead} already terminated while "
                        f"{sorted(waiting)} are waiting"
                    )
                kinds = {op.kind for op in ops}
                if len(kinds) != 1:
                    detail = {op.sender: op.kind for op in ops}
                    raise CollectiveMismatchError(
                        f"group {gid} members issued different collectives: {detail}"
                    )
                self._execute(group, ops, counters, ctxs, inbox)
                for op in ops:
                    pending[op.sender] = None
                    runnable.append(op.sender)
                executed_any = True
            runnable.sort()

            if not executed_any:
                blocked = {
                    r: f"{op.kind} on group {op.group.gid}"
                    for r, op in pending.items()
                    if op is not None
                }
                if not blocked:
                    break  # everything finished
                raise DeadlockError(
                    f"no collective can complete; blocked processors: {blocked}; "
                    f"terminated: {[r for r in range(p) if gens[r] is None]}"
                )

        trace = None
        if tracer.enabled:
            tracer.on_finish([c.snapshot() for c in counters])
            # This run's slice: canonical order, and a tracer spanning
            # several runs keeps Lamport steps strictly increasing, so
            # earlier runs' events sort strictly before ours.
            trace = tracer.events()[events_before:]
        report = CountersReport.from_procs(counters)
        return RunResult(values=values, report=report,
                         time=self.machine.predict(report),
                         trace=trace)

    # -- collective execution ------------------------------------------------

    def _execute(
        self,
        group: Group,
        ops: list[CollectiveOp],
        counters: list[ProcCounters],
        ctxs: list[Context],
        inbox: list[Any],
    ) -> None:
        ops.sort(key=lambda o: o.local_rank)
        kind = ops[0].kind
        members = group.members
        gid = group.gid
        fuse = self.fuse

        # Adjacent fusion: when every member reached this collective with
        # *zero* local charges since this group's previous one, a real
        # runtime would piggyback it on the same synchronization — merge it
        # retroactively into the group's current superstep.  The cleanliness
        # precondition makes the merge a pure latency elision: since-sync
        # values are all zero, so skipping the sync block changes neither
        # wait nor ops_at_last_sync, only the superstep count.
        merged = False
        words = -1
        track = fuse is not None or self._tracer.enabled
        clean: tuple[bool, ...] = ()
        if track:
            # Arrival cleanliness: no local (ops, misses) charges since the
            # member's previous sync.  Feeds both the merge decision and
            # the trace record (the analyzer cannot recover it offline).
            clean = tuple(
                self._post_sync.get(m, (0.0, 0.0))
                == (counters[m].ops, counters[m].misses)
                for m in members
            )
        if fuse is not None and fuse.auto and kind in FUSABLE_KINDS:
            words = sum(payload_words(op.payload) for op in ops)
            merged = (
                self._chain.get(gid, 0) + 1 <= fuse.max_chain
                and self._chain_words.get(gid, 0) + words <= fuse.max_words
                and all(self._last_sync.get(m) == (gid, True) for m in members)
                and all(clean)
            )

        if not merged:
            # Synchronization accounting: supersteps + imbalance wait.
            since_sync = [
                counters[m].ops - counters[m].ops_at_last_sync for m in members
            ]
            slowest = max(since_sync)
            for m, c in zip(members, since_sync):
                counters[m].wait_ops += slowest - c
                counters[m].ops_at_last_sync = counters[m].ops
                counters[m].supersteps += 1

        if kind in ROOTED_KINDS:
            roots = {op.root for op in ops}
            if len(roots) != 1:
                raise CollectiveMismatchError(
                    f"group {group.gid} members disagree on the {kind} root: {roots}"
                )
        handler = getattr(self, f"_exec_{kind}", None)
        if handler is None:
            raise CollectiveMismatchError(f"unknown collective kind {kind!r}")
        results = handler(group, ops, counters, ctxs)
        if self._tracer.enabled:
            # Post-collective cumulative snapshots: the tracer derives the
            # exact since-sync deltas itself (ops[i].sender == members[i]).
            if words < 0:
                words = sum(payload_words(op.payload) for op in ops)
            snapshots = [counters[m].snapshot() for m in members]
            if merged:
                self._tracer.on_merge(
                    kind=kind, gid=gid, participants=members,
                    words=words, snapshots=snapshots,
                )
            else:
                self._tracer.on_collective(
                    kind=kind, gid=gid, participants=members,
                    words=words, snapshots=snapshots,
                    fused=tuple(s.kind for s in ops[0].payload)
                    if kind == "fused" else (),
                    clean=clean,
                )
        if track:
            self._post_sync.update(
                (m, (counters[m].ops, counters[m].misses)) for m in members
            )
        if fuse is not None:
            if words < 0:
                words = sum(payload_words(op.payload) for op in ops)
            weight = len(ops[0].payload) if kind == "fused" else 1
            self._chain[gid] = (self._chain.get(gid, 0) + weight if merged
                                else weight)
            self._chain_words[gid] = (
                self._chain_words.get(gid, 0) + words if merged else words
            )
            mergeable = kind in FUSABLE_KINDS or kind == "fused"
            for m in members:
                self._last_sync[m] = (gid, mergeable)
        for op, res in zip(ops, results):
            inbox[op.sender] = res

    def _charge(self, counters: list[ProcCounters], member: int,
                sent: float, recv: float) -> None:
        moved = sent + recv
        counters[member].charge_comm(
            sent, recv, misses=self.cache.scan(moved) if moved else 0.0
        )

    def _exec_barrier(self, group, ops, counters, ctxs):
        for op in ops:
            self._charge(counters, op.sender, 1, 1)
        return [None] * len(ops)

    def _exec_bcast(self, group, ops, counters, ctxs):
        value = ops[ops[0].root].payload  # ops are sorted by local rank
        k = payload_words(value)
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, k, 0)
            else:
                self._charge(counters, op.sender, 0, k)
        return [value] * len(ops)

    def _exec_gather(self, group, ops, counters, ctxs):
        gathered = [op.payload for op in ops]
        total = sum(payload_words(v) for v in gathered)
        results = []
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, 0, total)
                results.append(gathered)
            else:
                self._charge(counters, op.sender, payload_words(op.payload), 0)
                results.append(None)
        return results

    def _exec_allgather(self, group, ops, counters, ctxs):
        gathered = [op.payload for op in ops]
        total = sum(payload_words(v) for v in gathered)
        for op in ops:
            self._charge(counters, op.sender, payload_words(op.payload), total)
        return [gathered] * len(ops)

    def _exec_scatter(self, group, ops, counters, ctxs):
        values = ops[ops[0].root].payload  # ops are sorted by local rank
        results = []
        for op in ops:
            part = values[op.local_rank]
            if op.local_rank == op.root:
                self._charge(counters, op.sender, sum(payload_words(v) for v in values), 0)
            else:
                self._charge(counters, op.sender, 0, payload_words(part))
            results.append(part)
        return results

    def _reduce_values(self, ops, counters):
        fold = ops[0].op
        assert fold is not None
        acc = ops[0].payload
        for op in ops[1:]:
            acc = fold(acc, op.payload)
        # Tree reduction: every proc sends/combines O(k) words.
        for op in ops:
            k = payload_words(op.payload)
            counters[op.sender].charge(ops=float(k))
        return acc

    def _exec_reduce(self, group, ops, counters, ctxs):
        acc = self._reduce_values(ops, counters)
        k = payload_words(acc)
        results = []
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, 0, k)
                results.append(acc)
            else:
                self._charge(counters, op.sender, payload_words(op.payload), 0)
                results.append(None)
        return results

    def _exec_allreduce(self, group, ops, counters, ctxs):
        acc = self._reduce_values(ops, counters)
        k = payload_words(acc)
        for op in ops:
            self._charge(counters, op.sender, payload_words(op.payload), k)
        return [acc] * len(ops)

    # -- typed array collectives --------------------------------------------
    #
    # Same group semantics and — by construction — the same communication
    # charges as their untyped counterparts: a bundle's words are the sum
    # of its column sizes, exactly what the tuple-of-arrays encoding
    # charged, and ``counts`` metadata is free (as in MPI).  Results are
    # concatenated/split column-wise in local-rank order, which is
    # bit-identical to what receivers of the untyped collectives computed
    # with their own ``np.concatenate`` calls.

    @staticmethod
    def _concat_bundles(group, parts):
        try:
            return ArrayBundle.concat(parts)
        except ValueError as exc:
            raise CollectiveMismatchError(
                f"group {group.gid} members' bundles do not align: {exc}"
            ) from None

    def _exec_gatherv(self, group, ops, counters, ctxs):
        gathered = self._concat_bundles(group, [op.payload for op in ops])
        total = gathered.__bsp_words__()
        results = []
        for op in ops:
            if op.local_rank == op.root:
                self._charge(counters, op.sender, 0, total)
                results.append(gathered)
            else:
                self._charge(counters, op.sender, payload_words(op.payload), 0)
                results.append(None)
        return results

    def _exec_allgatherv(self, group, ops, counters, ctxs):
        gathered = self._concat_bundles(group, [op.payload for op in ops])
        total = gathered.__bsp_words__()
        for op in ops:
            self._charge(counters, op.sender, payload_words(op.payload), total)
        return [gathered] * len(ops)

    def _exec_scatterv(self, group, ops, counters, ctxs):
        bundle = ops[ops[0].root].payload  # ops are sorted by local rank
        parts = bundle.split_rows(bundle.counts)
        results = []
        for op in ops:
            part = parts[op.local_rank]
            if op.local_rank == op.root:
                self._charge(counters, op.sender, bundle.__bsp_words__(), 0)
            else:
                self._charge(counters, op.sender, 0, part.__bsp_words__())
            results.append(part)
        return results

    def _exec_alltoallv(self, group, ops, counters, ctxs):
        size = group.size
        for op in ops:
            if len(op.payload) != size:
                raise CollectiveMismatchError(
                    f"alltoallv payload of rank {op.sender} has "
                    f"{len(op.payload)} parcels, expected {size}"
                )
        results = []
        for i, op in enumerate(ops):
            received = self._concat_bundles(
                group, [ops[j].payload[i] for j in range(size)]
            )
            sent = sum(payload_words(b) for b in op.payload)
            self._charge(counters, op.sender, sent, received.__bsp_words__())
            results.append(received)
        return results

    def _exec_alltoall(self, group, ops, counters, ctxs):
        size = group.size
        for op in ops:
            if len(op.payload) != size:
                raise CollectiveMismatchError(
                    f"alltoall payload of rank {op.sender} has {len(op.payload)} "
                    f"items, expected {size}"
                )
        results = []
        for i, op in enumerate(ops):
            received = [ops[j].payload[i] for j in range(size)]
            sent = sum(payload_words(v) for v in op.payload)
            recv = sum(payload_words(v) for v in received)
            self._charge(counters, op.sender, sent, recv)
            results.append(received)
        return results

    def _exec_split(self, group, ops, counters, ctxs):
        # payload = (color, key); new groups ordered by color, then (key, rank).
        # Child gids are a deterministic function of (parent gid, split
        # sequence number, color) so that traces match across backends.
        seq = self._split_seq.get(group.gid, 0)
        self._split_seq[group.gid] = seq + 1
        by_color: dict[int, list[CollectiveOp]] = {}
        for op in ops:
            by_color.setdefault(op.payload[0], []).append(op)
        new_comm: dict[int, Communicator] = {}
        for color in sorted(by_color):
            cohort = sorted(by_color[color], key=lambda o: (o.payload[1], o.local_rank))
            new_group = Group(_split_gid(group.gid, seq, color),
                              tuple(o.sender for o in cohort))
            for local, op in enumerate(cohort):
                new_comm[op.sender] = Communicator(new_group, local)
        for op in ops:
            self._charge(counters, op.sender, 1, 1)
        return [new_comm[op.sender] for op in ops]

    # -- explicit superstep fusion ------------------------------------------

    def _iter_fused(self, group: Group, ops: list[CollectiveOp]):
        """Validate an aligned ``fused`` batch; yield (kind, sub_ops) per slot.

        ``ops`` are the members' batch requests in local-rank order; slot
        ``i`` of every member must carry the same collective kind (and, for
        rooted kinds, the same root).  Shared with the mp coordinator so
        both backends reject malformed batches identically.
        """
        n = len(ops[0].payload)
        for op in ops:
            if not isinstance(op.payload, tuple) or len(op.payload) != n:
                sizes = {o.sender: len(o.payload) if isinstance(o.payload, tuple)
                         else None for o in ops}
                raise CollectiveMismatchError(
                    f"group {group.gid} members issued batches of different "
                    f"lengths: {sizes}"
                )
        for i in range(n):
            subs = []
            for op in ops:
                sub = op.payload[i]
                if not isinstance(sub, CollectiveOp) or sub.sender != op.sender:
                    raise CollectiveMismatchError(
                        f"batch slot {i} of rank {op.sender} is not that "
                        "rank's own collective descriptor"
                    )
                subs.append(sub)
            kinds = {s.kind for s in subs}
            if len(kinds) != 1:
                detail = {s.sender: s.kind for s in subs}
                raise CollectiveMismatchError(
                    f"group {group.gid} batch slot {i} mixes collective "
                    f"kinds: {detail}"
                )
            kind = subs[0].kind
            if kind not in FUSABLE_KINDS:
                raise CollectiveMismatchError(
                    f"collective kind {kind!r} cannot run inside a batch"
                )
            if kind in ROOTED_KINDS:
                roots = {s.root for s in subs}
                if len(roots) != 1:
                    raise CollectiveMismatchError(
                        f"group {group.gid} batch slot {i} members disagree "
                        f"on the {kind} root: {roots}"
                    )
            yield kind, subs

    def _exec_fused(self, group, ops, counters, ctxs):
        # One superstep (the sync accounting already ran once for the whole
        # batch); the sub-collectives execute back-to-back, charging their
        # ordinary computation/transfer/miss costs in batch order.  Each
        # member receives the tuple of its sub-results.
        results: list[list[Any]] = [[] for _ in ops]
        for kind, subs in self._iter_fused(group, ops):
            handler = getattr(self, f"_exec_{kind}")
            for acc, res in zip(results, handler(group, subs, counters, ctxs)):
                acc.append(res)
        return [tuple(acc) for acc in results]


def run_spmd(
    program: Callable[..., Generator],
    p: int,
    *,
    seed: int = 0,
    args: Iterable[Any] = (),
    kwargs: dict | None = None,
    cache: CacheParams | None = None,
    machine: MachineModel | None = None,
    trace: bool = False,
    tracer: Tracer | None = None,
    fuse: bool | FusionConfig | None = None,
) -> RunResult:
    """One-shot convenience wrapper: build an :class:`Engine` and run.

    Shares :meth:`Engine.run`'s processor-count contract: ``p`` must be an
    integer >= 1, enforced with ``TypeError``/``ValueError`` before any
    program code runs.  ``trace=True`` (or an explicit ``tracer``) records
    the per-superstep event stream in ``RunResult.trace``; ``fuse=True``
    (or a :class:`~repro.bsp.fusion.FusionConfig`) enables automatic
    adjacent superstep fusion.
    """
    return Engine(cache=cache, machine=machine, trace=trace, tracer=tracer,
                  fuse=fuse).run(
        program, p, seed=seed, args=args, kwargs=kwargs
    )
