"""Machine cost model: counters -> predicted execution / MPI time.

Implements the paper's §5.3 performance model: predicted time is the BSP
computation time, plus the BSP communication volume multiplied by a per-word
cost and a ``log p`` factor accounting for the MPI collective implementation
(Hoefler et al. [19]), plus a per-superstep latency, plus a constant.
Default constants are loosely calibrated to a Piz Daint-class machine
(3.3 GHz Broadwell, Cray Aries) but any run can re-fit them with
:func:`fit_model`, exactly as the authors fitted their model to
measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bsp.counters import CountersReport

__all__ = ["MachineModel", "TimeEstimate", "fit_model"]


@dataclass(frozen=True)
class TimeEstimate:
    """Predicted wall-clock decomposition of one run (seconds)."""

    app_s: float   # local computation (the "Application" bar)
    mpi_s: float   # sync imbalance + transfer + latency (the "MPI" bar)

    @property
    def total_s(self) -> float:
        """Total predicted wall-clock seconds (app + MPI)."""
        return self.app_s + self.mpi_s

    @property
    def mpi_fraction(self) -> float:
        """T_MPI / T as plotted in Figs 1b and 6 (0 for an empty run)."""
        return self.mpi_s / self.total_s if self.total_s > 0 else 0.0


@dataclass(frozen=True)
class MachineModel:
    """Constant factors converting BSP counters into seconds.

    Parameters
    ----------
    op_s:
        Seconds per unit of local computation (one "operation").
    g_s:
        Seconds per word of communication volume (per-word bandwidth cost).
    L_s:
        Seconds per superstep (collective latency at the given scale).
    miss_s:
        Additional seconds per LLC cache miss.
    cores_per_node:
        Piz Daint nodes expose 36 cores; the paper observes MPI-time plateaus
        governed by node count, which the latency term models via
        ``log2(nodes)`` scaling inside :meth:`predict`.
    """

    op_s: float = 1.2e-9
    g_s: float = 2.4e-9
    L_s: float = 1.5e-5
    miss_s: float = 3.0e-8
    overhead_s: float = 1.0e-4
    cores_per_node: int = 36

    def predict(self, counters: CountersReport) -> TimeEstimate:
        """Predicted execution-time split for a finished run's counters."""
        p = max(counters.p, 1)
        logp = max(1.0, math.log2(p))
        app = counters.computation * self.op_s + counters.misses * self.miss_s
        mpi = (
            counters.wait * self.op_s
            + counters.volume * self.g_s * logp
            + counters.supersteps * self.L_s * logp
            + self.overhead_s
        )
        return TimeEstimate(app_s=app, mpi_s=mpi)


def fit_model(
    reports: list[CountersReport],
    measured_s: list[float],
    *,
    base: MachineModel | None = None,
) -> MachineModel:
    """Re-fit the per-unit constants to measured total times (§5.3).

    Non-negative least squares over the model terms (computation, cache
    misses, volume x log p, supersteps x log p) plus a constant.
    ``measured_s`` are total execution times of the corresponding runs.
    """
    if len(reports) != len(measured_s) or not reports:
        raise ValueError("need one measurement per report")
    base = base or MachineModel()
    a = np.array(
        [
            [
                r.computation + 0.0,
                r.misses + 0.0,
                r.volume * max(1.0, math.log2(max(r.p, 2))),
                r.supersteps * max(1.0, math.log2(max(r.p, 2))),
                1.0,
            ]
            for r in reports
        ]
    )
    b = np.asarray(measured_s, dtype=np.float64)
    from scipy.optimize import nnls

    coef, _ = nnls(a, b)
    # Keep fitted zeros as zeros: with collinear counters (e.g. misses
    # proportional to computation) nnls assigns the shared effect to one
    # column, and substituting base constants back would double-count it.
    return MachineModel(
        op_s=float(coef[0]),
        miss_s=float(coef[1]),
        g_s=float(coef[2]),
        L_s=float(coef[3]),
        overhead_s=float(coef[4]),
        cores_per_node=base.cores_per_node,
    )
