"""Typed multi-column array payloads for the array collectives.

An :class:`ArrayBundle` is the unit the typed collectives
(``gatherv``/``allgatherv``/``scatterv``/``alltoallv``) move: a tuple of
numpy *columns* aligned on axis 0 — e.g. the ``(u, v, w)`` columns of an
edge-array slice — plus an optional per-member ``counts`` vector.  The
columns are the payload; ``counts`` is metadata (an MPI ``recvcounts``
analogue) and is **not** charged as communication volume, exactly as MPI
does not charge the count arrays of ``MPI_Gatherv``.

Keeping the columns in one container is what lets the transport layer
pack a whole multi-column payload into a single contiguous shared-memory
buffer (one ``(counts, dtype, flat-buffer)`` triple per column) instead
of pickling a tuple of arrays part by part, and it lets the engine
concatenate gathered contributions column-wise without an object-walk.

Inside the simulator bundles are passed by reference — receivers must
treat the columns as read-only, the standing rule for all received
payloads (:mod:`repro.bsp.comm`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["ArrayBundle", "as_bundle"]


class ArrayBundle:
    """Aligned numpy columns moved as one typed payload.

    Parameters
    ----------
    columns:
        One or more ``np.ndarray`` of equal length along axis 0 (any
        dtypes, any trailing shape — 1-D edge columns and 2-D matrix row
        blocks both qualify).
    counts:
        Optional per-member row counts (metadata).  On results of the
        typed collectives this is the number of rows each group member
        contributed, in local-rank order.
    """

    __slots__ = ("columns", "counts", "_words")

    def __init__(self, *columns: np.ndarray, counts=None):
        if not columns:
            raise ValueError("ArrayBundle needs at least one column")
        cols = []
        for c in columns:
            if not isinstance(c, np.ndarray):
                raise TypeError(
                    f"bundle columns must be numpy arrays, got {type(c).__name__}"
                )
            if c.dtype.hasobject:
                raise TypeError("bundle columns must have non-object dtypes")
            cols.append(c)
        nrows = cols[0].shape[0] if cols[0].ndim else None
        for c in cols:
            if c.ndim == 0 or c.shape[0] != nrows:
                raise ValueError(
                    "bundle columns must be aligned on axis 0; got shapes "
                    f"{[c.shape for c in cols]}"
                )
        self.columns: tuple[np.ndarray, ...] = tuple(cols)
        self.counts = None if counts is None else \
            np.asarray(counts, dtype=np.int64)
        self._words = int(sum(c.size for c in cols))

    # -- payload protocol ---------------------------------------------------

    def __bsp_words__(self) -> int:
        """Wire volume in machine words: one per element, counts free."""
        return self._words

    # -- container protocol -------------------------------------------------

    @property
    def nrows(self) -> int:
        """Rows along axis 0 (shared by every column)."""
        return int(self.columns[0].shape[0])

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate columns, so ``su, sv, sw = bundle`` destructures."""
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.columns[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shapes = ", ".join(f"{c.dtype}{list(c.shape)}" for c in self.columns)
        return f"ArrayBundle({shapes})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, ArrayBundle):
            return NotImplemented
        if self.ncols != other.ncols:
            return False
        return all(
            a.dtype == b.dtype and a.shape == b.shape and bool(np.all(a == b))
            for a, b in zip(self.columns, other.columns)
        )

    __hash__ = None  # mutable ndarray contents; match ndarray's behaviour

    # -- structural operations ----------------------------------------------

    @classmethod
    def concat(cls, bundles: Sequence["ArrayBundle"]) -> "ArrayBundle":
        """Column-wise concatenation along axis 0, in the given order.

        The result's ``counts`` records each input bundle's row count, so
        a receiver can recover the per-member boundaries.
        """
        if not bundles:
            raise ValueError("cannot concatenate zero bundles")
        ncols = bundles[0].ncols
        for b in bundles:
            if b.ncols != ncols:
                raise ValueError(
                    "bundles must agree on the column count; got "
                    f"{[b.ncols for b in bundles]}"
                )
        cols = tuple(
            np.concatenate([b.columns[j] for b in bundles])
            for j in range(ncols)
        )
        counts = np.array([b.nrows for b in bundles], dtype=np.int64)
        return cls(*cols, counts=counts)

    def split_rows(self, counts: Iterable[int]) -> list["ArrayBundle"]:
        """Split into consecutive row blocks of the given sizes (views)."""
        counts = np.asarray(list(counts), dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ValueError("split counts must be non-negative")
        if int(counts.sum()) != self.nrows:
            raise ValueError(
                f"split counts sum to {int(counts.sum())}, bundle has "
                f"{self.nrows} rows"
            )
        bounds = np.concatenate([[0], np.cumsum(counts)])
        return [
            ArrayBundle(*(c[bounds[i]:bounds[i + 1]] for c in self.columns))
            for i in range(counts.size)
        ]


def as_bundle(x) -> ArrayBundle:
    """Coerce a bundle, a bare array, or a tuple/list of arrays."""
    if isinstance(x, ArrayBundle):
        return x
    if isinstance(x, np.ndarray):
        return ArrayBundle(x)
    if isinstance(x, (tuple, list)):
        return ArrayBundle(*x)
    raise TypeError(
        f"cannot interpret {type(x).__name__} as an array bundle"
    )
