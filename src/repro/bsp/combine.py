"""Generic distributed combine-by-key (§4.1 closing remark).

The paper notes that sparse bulk edge contraction "can be generalized to
group values by an arbitrary comparable key and then combining them using
any associative operator".  This module is that generalization: a global
sample sort by key, a local combine of equal-key runs, and the one-round
boundary fix-up in which the leftmost holder of a key class absorbs the
first entries of the processors to its right.

O(1) supersteps and O(k/p) communication volume for k key-value pairs, the
same bounds as Lemma 4.2.
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

from repro.bsp.sort import distributed_sort
from repro.kernels import combine_sorted_run

__all__ = ["combine_by_key", "combine_local_run", "boundary_fixup"]


def combine_local_run(
    keys: np.ndarray, values: np.ndarray, op: Callable = operator.add
) -> tuple[np.ndarray, np.ndarray]:
    """Combine equal *consecutive* keys of a sorted run with ``op``.

    ``operator.add`` on numeric arrays uses the vectorized kernel
    (:func:`repro.kernels.combine_sorted_run`); any other associative
    callable is folded per group.
    """
    if keys.size == 0:
        return keys, values
    if op is operator.add and np.issubdtype(np.asarray(values).dtype, np.number):
        return combine_sorted_run(keys, values)
    starts = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
    bounds = np.r_[starts, keys.size]
    out = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        acc = values[lo]
        for j in range(lo + 1, hi):
            acc = op(acc, values[j])
        out.append(acc)
    return keys[starts], np.asarray(out)


def combine_by_key(ctx, comm, keys, values, op: Callable = operator.add):
    """Generator: globally group ``values`` by ``keys`` and fold with ``op``.

    Returns this processor's slice ``(keys, values)`` of the combined
    result; concatenating the slices in rank order yields all distinct keys
    in sorted order, each with the ``op``-fold of its values (fold order is
    the global sorted order, so any associative ``op`` is safe).
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape[: 1] or keys.ndim != 1:
        raise ValueError("keys and values must be aligned 1-D arrays")

    # (1) Global sort by key, values riding along.
    keys, (values,) = yield from distributed_sort(ctx, comm, keys, (values,))

    # (2) Local combine of equal-key runs.
    keys, values = combine_local_run(keys, values, op)
    ctx.charge_scan(keys.size, words_per_elem=2)

    # (3)+(4) The one-round boundary fix-up.  With this package's sample
    # sort the fix-up is a no-op (equal keys are routed to one processor),
    # but any globally sorted distribution — including ones that split a
    # key class across adjacent ranks, as the paper's balanced sort may —
    # is handled, and the unit tests drive those cases directly.
    keys, values = yield from boundary_fixup(ctx, comm, keys, values, op)
    return keys, values


def boundary_fixup(ctx, comm, keys, values, op: Callable = operator.add):
    """Generator: merge key classes split across adjacent sorted ranks.

    Precondition: the concatenation of the per-rank ``(keys, values)`` in
    rank order is globally sorted by key and each rank's run is locally
    combined (no internal duplicates).  One allgather of (first pair, last
    key) summaries; the leftmost holder of a class absorbs the first
    entries of the ranks to its right, which drop them (§4.1 steps 4-5).
    """
    if keys.size:
        summary = (keys[0].item(), values[0], keys[-1].item())
    else:
        summary = None
    summaries = yield from comm.allgather(summary)

    if keys.size:
        me = comm.rank

        def leftmost_holder(key):
            for j, s in enumerate(summaries):
                if s is not None and (s[0] == key or s[2] == key):
                    return j
            raise AssertionError("key missing from its own summary")

        values = values.copy()
        first_key = keys[0].item()
        last_key = keys[-1].item()
        drop_first = leftmost_holder(first_key) < me
        for pos, key in ((0, first_key), (keys.size - 1, last_key)):
            if key == first_key and drop_first:
                continue
            if leftmost_holder(key) == me:
                for j, s in enumerate(summaries):
                    if j > me and s is not None and s[0] == key:
                        values[pos] = op(values[pos], s[1])
            if pos == keys.size - 1:
                break  # single-entry array: handled once
        if drop_first:
            keys, values = keys[1:], values[1:]

    return keys, values
