"""Communicators and collective operations for SPMD generator programs.

Programs are written in mpi4py style but as Python generators: every
collective is invoked with ``yield from`` and returns its result, e.g.::

    def program(ctx):
        parts = yield from ctx.comm.gather(local_part, root=0)
        total = yield from ctx.comm.allreduce(x, op=operator.add)
        return total

A :class:`Communicator` is a per-processor view (local rank + size) onto a
shared :class:`Group` of global processor ids.  ``split`` creates
sub-communicators, which the minimum-cut algorithm uses both to assign
trials to processor groups and to halve groups inside Recursive Contraction.

Received payloads are shared objects, not copies: like MPI buffers on a
shared simulator they must be treated as **read-only** by receivers (copy
before mutating).  The engine charges transfer volume as if the data moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["Group", "Communicator", "payload_words"]


def payload_words(x: Any) -> int:
    """Number of machine words a payload occupies on the wire.

    numpy arrays count one word per element; containers sum their items;
    ``None`` is free; scalars and small objects count one word.  Objects can
    override via a ``__bsp_words__()`` method.
    """
    # Exact-type fast paths for the dominant wire shapes — ndarrays and flat
    # tuples/lists of them (sort parcels, gathered forests).  Exact ``type``
    # checks cannot shadow ``__bsp_words__`` overrides (builtins never define
    # it), so these return the same counts as the general walk below.
    tx = type(x)
    if tx is np.ndarray:
        return int(x.size)
    if tx is tuple or tx is list:
        total = 0
        for item in x:
            if type(item) is np.ndarray:
                total += item.size
            else:
                total += payload_words(item)
        return int(total)
    if x is None:
        return 0
    if isinstance(x, np.ndarray):
        return int(x.size)
    if hasattr(x, "__bsp_words__"):
        return int(x.__bsp_words__())
    if isinstance(x, (list, tuple)):
        return sum(payload_words(item) for item in x)
    if isinstance(x, dict):
        return sum(1 + payload_words(vv) for vv in x.values())
    return 1


@dataclass(frozen=True)
class Group:
    """A shared processor group: engine-unique id + global member ranks."""

    gid: int
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of member processors."""
        return len(self.members)


@dataclass(frozen=True)
class CollectiveOp:
    """One processor's pending collective request (engine-internal)."""

    group: Group
    kind: str
    sender: int          # global rank of the issuing processor
    local_rank: int
    payload: Any = None
    root: int = 0        # local rank of the root, where applicable
    op: Callable[[Any, Any], Any] | None = None


class Communicator:
    """Per-processor view of a :class:`Group` with MPI-style collectives.

    All methods are generator functions; call them with ``yield from``.
    """

    __slots__ = ("group", "rank", "_global_rank")

    def __init__(self, group: Group, local_rank: int):
        if not 0 <= local_rank < group.size:
            raise ValueError(f"local rank {local_rank} out of range for {group}")
        self.group = group
        self.rank = local_rank
        self._global_rank = group.members[local_rank]

    @property
    def size(self) -> int:
        """Number of member processors of this communicator."""
        return self.group.size

    def _op(self, kind: str, payload: Any = None, root: int = 0,
            op: Callable | None = None) -> CollectiveOp:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size-{self.size} comm")
        return CollectiveOp(
            group=self.group, kind=kind, sender=self._global_rank,
            local_rank=self.rank, payload=payload, root=root, op=op,
        )

    # -- collectives (generator functions; use with `yield from`) ----------

    def barrier(self):
        """Synchronize the group."""
        yield self._op("barrier")

    def bcast(self, value: Any = None, root: int = 0):
        """Root's ``value`` is returned at every member."""
        result = yield self._op("bcast", value if self.rank == root else None, root)
        return result

    def gather(self, value: Any, root: int = 0):
        """Returns the list of member values at the root, ``None`` elsewhere."""
        result = yield self._op("gather", value, root)
        return result

    def allgather(self, value: Any):
        """Returns the list of member values at every member."""
        result = yield self._op("allgather", value)
        return result

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0):
        """Root provides one value per member; each member gets its own."""
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError("scatter root must provide one value per member")
            payload = list(values)
        else:
            payload = None
        result = yield self._op("scatter", payload, root)
        return result

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
        """Left-fold of member values with ``op`` at the root (local-rank order)."""
        result = yield self._op("reduce", value, root, op)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]):
        """Reduce then broadcast: every member gets the folded value."""
        result = yield self._op("allreduce", value, 0, op)
        return result

    def alltoall(self, values: Sequence[Any]):
        """Member i's ``values[j]`` is delivered to member j's result[i]."""
        if len(values) != self.size:
            raise ValueError("alltoall needs exactly one value per member")
        result = yield self._op("alltoall", list(values))
        return result

    def split(self, color: int, key: int | None = None):
        """Partition the group by ``color`` into new communicators.

        Members of equal color form a new group, ordered by ``(key, old
        local rank)`` (``key`` defaults to the old local rank, preserving
        relative order as in ``MPI_Comm_split``).  Returns this member's new
        :class:`Communicator`.
        """
        result = yield self._op(
            "split", (int(color), self.rank if key is None else int(key))
        )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(gid={self.group.gid}, rank={self.rank}/{self.size})"
