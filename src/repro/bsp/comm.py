"""Communicators and collective operations for SPMD generator programs.

Programs are written in mpi4py style but as Python generators: every
collective is invoked with ``yield from`` and returns its result, e.g.::

    def program(ctx):
        parts = yield from ctx.comm.gather(local_part, root=0)
        total = yield from ctx.comm.allreduce(x, op=operator.add)
        return total

A :class:`Communicator` is a per-processor view (local rank + size) onto a
shared :class:`Group` of global processor ids.  ``split`` creates
sub-communicators, which the minimum-cut algorithm uses both to assign
trials to processor groups and to halve groups inside Recursive Contraction.

Received payloads are shared objects, not copies: like MPI buffers on a
shared simulator they must be treated as **read-only** by receivers (copy
before mutating).  The engine charges transfer volume as if the data moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.bsp.arrays import ArrayBundle, as_bundle

__all__ = ["Group", "Communicator", "payload_words"]


def payload_words(x: Any) -> int:
    """Number of machine words a payload occupies on the wire.

    numpy arrays count one word per element; containers sum their items;
    ``None`` is free; scalars and small objects count one word.  Objects can
    override via a ``__bsp_words__()`` method.
    """
    # Exact-type fast paths for the dominant wire shapes — ndarrays and flat
    # tuples/lists of them (sort parcels, gathered forests).  Exact ``type``
    # checks cannot shadow ``__bsp_words__`` overrides (builtins never define
    # it), so these return the same counts as the general walk below.
    tx = type(x)
    if tx is np.ndarray:
        return int(x.size)
    if tx is ArrayBundle:
        return x.__bsp_words__()
    if tx is tuple or tx is list:
        total = 0
        for item in x:
            if type(item) is np.ndarray:
                total += item.size
            else:
                total += payload_words(item)
        return int(total)
    if x is None:
        return 0
    if isinstance(x, np.ndarray):
        return int(x.size)
    if hasattr(x, "__bsp_words__"):
        return int(x.__bsp_words__())
    if isinstance(x, (list, tuple)):
        return sum(payload_words(item) for item in x)
    if isinstance(x, dict):
        return sum(1 + payload_words(vv) for vv in x.values())
    return 1


@dataclass(frozen=True)
class Group:
    """A shared processor group: engine-unique id + global member ranks."""

    gid: int
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of member processors."""
        return len(self.members)


@dataclass(frozen=True)
class CollectiveOp:
    """One processor's pending collective request (engine-internal).

    A ``kind == "fused"`` request is an explicit batch: its payload is a
    tuple of sub-``CollectiveOp`` requests executed back-to-back within a
    single superstep (see :meth:`Communicator.batch`).
    """

    group: Group
    kind: str
    sender: int          # global rank of the issuing processor
    local_rank: int
    payload: Any = None
    root: int = 0        # local rank of the root, where applicable
    op: Callable[[Any, Any], Any] | None = None

    def __bsp_words__(self) -> int:
        """Wire words of this request = words of its payload, so a fused
        batch (a tuple of sub-requests) counts the sub-payloads' words."""
        return payload_words(self.payload)


class Communicator:
    """Per-processor view of a :class:`Group` with MPI-style collectives.

    All methods are generator functions; call them with ``yield from``.
    """

    __slots__ = ("group", "rank", "_global_rank")

    def __init__(self, group: Group, local_rank: int):
        if not 0 <= local_rank < group.size:
            raise ValueError(f"local rank {local_rank} out of range for {group}")
        self.group = group
        self.rank = local_rank
        self._global_rank = group.members[local_rank]

    @property
    def size(self) -> int:
        """Number of member processors of this communicator."""
        return self.group.size

    def _op(self, kind: str, payload: Any = None, root: int = 0,
            op: Callable | None = None) -> CollectiveOp:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size-{self.size} comm")
        return CollectiveOp(
            group=self.group, kind=kind, sender=self._global_rank,
            local_rank=self.rank, payload=payload, root=root, op=op,
        )

    # -- collectives (generator functions; use with `yield from`) ----------

    def barrier(self):
        """Synchronize the group."""
        yield self._op("barrier")

    def bcast(self, value: Any = None, root: int = 0):
        """Root's ``value`` is returned at every member."""
        result = yield self._op("bcast", value if self.rank == root else None, root)
        return result

    def gather(self, value: Any, root: int = 0):
        """Returns the list of member values at the root, ``None`` elsewhere."""
        result = yield self._op("gather", value, root)
        return result

    def allgather(self, value: Any):
        """Returns the list of member values at every member."""
        result = yield self._op("allgather", value)
        return result

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0):
        """Root provides one value per member; each member gets its own."""
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError("scatter root must provide one value per member")
            payload = list(values)
        else:
            payload = None
        result = yield self._op("scatter", payload, root)
        return result

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
        """Left-fold of member values with ``op`` at the root (local-rank order)."""
        result = yield self._op("reduce", value, root, op)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]):
        """Reduce then broadcast: every member gets the folded value."""
        result = yield self._op("allreduce", value, 0, op)
        return result

    def alltoall(self, values: Sequence[Any]):
        """Member i's ``values[j]`` is delivered to member j's result[i]."""
        if len(values) != self.size:
            raise ValueError("alltoall needs exactly one value per member")
        result = yield self._op("alltoall", list(values))
        return result

    # -- typed array collectives -------------------------------------------
    #
    # The *v operations move numpy columns as ArrayBundles: aligned typed
    # buffers with per-member row counts as uncharged metadata.  They are
    # drop-in replacements for the gather/allgather/scatter/alltoall of
    # tuples-of-arrays — identical communication charges and bit-identical
    # values — but the engine concatenates/splits column-wise, and the mp
    # transport moves each payload as one contiguous (counts, dtype,
    # flat-buffer) triple per column instead of pickled object parts.

    def gatherv(self, *columns, root: int = 0):
        """Typed gather: members' aligned columns, concatenated at the root.

        Each member contributes equal-length columns (or one ready
        :class:`ArrayBundle`).  The root receives an :class:`ArrayBundle`
        whose columns are the members' columns concatenated in local-rank
        order and whose ``counts`` are the per-member row counts; other
        members receive ``None``.  Charges are identical to
        ``gather((col0, col1, ...))``.
        """
        payload = columns[0] if len(columns) == 1 else ArrayBundle(*columns)
        result = yield self._op("gatherv", as_bundle(payload), root)
        return result

    def allgatherv(self, *columns):
        """Typed allgather: the concatenated bundle at every member.

        Like :meth:`gatherv`, but every member receives the (shared,
        read-only) concatenated :class:`ArrayBundle`.  Charges are
        identical to ``allgather((col0, col1, ...))``.
        """
        payload = columns[0] if len(columns) == 1 else ArrayBundle(*columns)
        result = yield self._op("allgatherv", as_bundle(payload))
        return result

    def scatterv(self, columns=None, counts=None, root: int = 0):
        """Typed scatter: the root's columns split into per-member row blocks.

        The root provides aligned columns (bundle, array, or tuple of
        arrays) plus ``counts`` — one non-negative row count per member,
        summing to the bundle's row count.  Member ``i`` receives the
        :class:`ArrayBundle` holding rows ``sum(counts[:i]) ..
        sum(counts[:i+1])``.  Charges are identical to ``scatter`` of the
        same rows: the root sends every row once, each member receives its
        own block.
        """
        if self.rank == root:
            if columns is None or counts is None:
                raise ValueError(
                    "scatterv root must provide columns and per-member counts"
                )
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (self.size,):
                raise ValueError(
                    f"scatterv needs one count per member, got {counts.shape} "
                    f"for a size-{self.size} communicator"
                )
            bundle = as_bundle(columns)
            if counts.size and counts.min() < 0:
                raise ValueError("scatterv counts must be non-negative")
            if int(counts.sum()) != bundle.nrows:
                raise ValueError(
                    f"scatterv counts sum to {int(counts.sum())}, bundle "
                    f"has {bundle.nrows} rows"
                )
            payload = ArrayBundle(*bundle.columns, counts=counts)
        else:
            payload = None
        result = yield self._op("scatterv", payload, root)
        return result

    def alltoallv(self, parcels: Sequence):
        """Typed all-to-all: one bundle per destination, concatenated receives.

        ``parcels[j]`` (a bundle, array, or tuple of aligned arrays) is
        delivered to member ``j``; every member receives an
        :class:`ArrayBundle` whose columns are the senders' contributions
        concatenated in local-rank order, with per-sender row counts in
        ``counts``.  All parcels of one exchange must agree on the column
        count and dtypes.  Charges are identical to ``alltoall`` of the
        same tuples-of-arrays.
        """
        if len(parcels) != self.size:
            raise ValueError("alltoallv needs exactly one parcel per member")
        bundles = [as_bundle(q) for q in parcels]
        ncols = bundles[0].ncols
        if any(b.ncols != ncols for b in bundles):
            raise ValueError(
                "alltoallv parcels must agree on the column count; got "
                f"{[b.ncols for b in bundles]}"
            )
        result = yield self._op("alltoallv", bundles)
        return result

    def split(self, color: int, key: int | None = None):
        """Partition the group by ``color`` into new communicators.

        Members of equal color form a new group, ordered by ``(key, old
        local rank)`` (``key`` defaults to the old local rank, preserving
        relative order as in ``MPI_Comm_split``).  Returns this member's new
        :class:`Communicator`.
        """
        result = yield self._op(
            "split", (int(color), self.rank if key is None else int(key))
        )
        return result

    # -- explicit superstep fusion -----------------------------------------
    #
    # ``op_<kind>`` builders return the request *descriptor* a normal
    # ``yield from comm.<kind>`` would yield, without yielding it; ``batch``
    # wraps several descriptors into one ``fused`` collective so they all
    # execute within a single superstep (one latency charge, the combined
    # h-relation).  Only latency-bound kinds may batch — see
    # :data:`repro.bsp.fusion.FUSABLE_KINDS`.

    def op_barrier(self) -> CollectiveOp:
        """Descriptor for :meth:`barrier` (for use with :meth:`batch`)."""
        return self._op("barrier")

    def op_bcast(self, value: Any = None, root: int = 0) -> CollectiveOp:
        """Descriptor for :meth:`bcast` (for use with :meth:`batch`)."""
        return self._op("bcast", value if self.rank == root else None, root)

    def op_gather(self, value: Any, root: int = 0) -> CollectiveOp:
        """Descriptor for :meth:`gather` (for use with :meth:`batch`)."""
        return self._op("gather", value, root)

    def op_allgather(self, value: Any) -> CollectiveOp:
        """Descriptor for :meth:`allgather` (for use with :meth:`batch`)."""
        return self._op("allgather", value)

    def op_reduce(self, value: Any, op: Callable[[Any, Any], Any],
                  root: int = 0) -> CollectiveOp:
        """Descriptor for :meth:`reduce` (for use with :meth:`batch`)."""
        return self._op("reduce", value, root, op)

    def op_allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> CollectiveOp:
        """Descriptor for :meth:`allreduce` (for use with :meth:`batch`)."""
        return self._op("allreduce", value, 0, op)

    def op_gatherv(self, *columns, root: int = 0) -> CollectiveOp:
        """Descriptor for :meth:`gatherv` (for use with :meth:`batch`)."""
        payload = columns[0] if len(columns) == 1 else ArrayBundle(*columns)
        return self._op("gatherv", as_bundle(payload), root)

    def op_allgatherv(self, *columns) -> CollectiveOp:
        """Descriptor for :meth:`allgatherv` (for use with :meth:`batch`)."""
        payload = columns[0] if len(columns) == 1 else ArrayBundle(*columns)
        return self._op("allgatherv", as_bundle(payload))

    def batch(self, *sub_ops: CollectiveOp):
        """Execute several collectives inside **one** superstep.

        All members of the group must issue a matching batch: same length,
        same sub-operation kinds in the same order.  Returns a tuple with
        one result per sub-operation, exactly what the unbatched sequence
        would have returned — and charges exactly the same computation,
        transfer, and miss costs; only one superstep (one latency ``L``)
        is billed instead of ``len(sub_ops)``::

            total, names = yield from comm.batch(
                comm.op_allreduce(n, op=operator.add),
                comm.op_allgather(name),
            )
        """
        from repro.bsp.fusion import FUSABLE_KINDS

        if not sub_ops:
            raise ValueError("batch needs at least one collective descriptor")
        for sub in sub_ops:
            if not isinstance(sub, CollectiveOp):
                raise TypeError(
                    f"batch arguments must be op_<kind> descriptors, got "
                    f"{type(sub).__name__} (did you yield the collective "
                    "instead of building a descriptor?)"
                )
            if sub.kind not in FUSABLE_KINDS:
                raise ValueError(
                    f"collective kind {sub.kind!r} cannot be batched; "
                    f"fusable kinds: {sorted(FUSABLE_KINDS)}"
                )
            if sub.group.gid != self.group.gid:
                raise ValueError(
                    f"batched {sub.kind!r} targets group {sub.group.gid}, "
                    f"but the batch runs on group {self.group.gid}"
                )
        result = yield self._op("fused", tuple(sub_ops))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(gid={self.group.gid}, rank={self.rank}/{self.size})"
