"""Distributed sample sort.

Sparse bulk edge contraction (§4.1) needs to "globally sort the edges by
their endpoints" in O(1) supersteps.  Sample sort achieves this: local sort,
splitter selection from an oversampled allgathered key sample, one alltoall
exchange, local merge.  With p <= sqrt(m)/log n slices (the paper's
assumption for Lemma 4.2) the per-processor volume stays O(m/p) w.h.p.

``distributed_sort`` sorts a key array together with any number of aligned
payload arrays and returns each processor's slice of the global order
(concatenating the slices in rank order yields the sorted sequence).
"""

from __future__ import annotations

import numpy as np

__all__ = ["distributed_sort"]

#: Oversampling factor for splitter selection (per processor).
_OVERSAMPLE = 8


def distributed_sort(ctx, comm, keys: np.ndarray, payloads: tuple = ()):
    """Generator: sample-sort ``keys`` (+aligned payloads) across ``comm``.

    Parameters
    ----------
    ctx:
        The processor's :class:`~repro.bsp.engine.Context` (cost charging).
    comm:
        Communicator to sort across.
    keys:
        1-D array of sortable keys (local slice).
    payloads:
        Tuple of arrays with the same length as ``keys``; permuted and
        exchanged alongside them.

    Returns
    -------
    (keys, payloads):
        This processor's contiguous slice of the global sorted order.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    for pl in payloads:
        if len(pl) != keys.size:
            raise ValueError("payload arrays must align with keys")
    p = comm.size

    # 1. Local sort.
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    payloads = tuple(np.asarray(pl)[order] for pl in payloads)
    ctx.charge_sort(keys.size, words_per_elem=1 + len(payloads))

    if p == 1:
        return keys, payloads

    # 2. Splitter selection: evenly spaced local sample, allgathered; every
    #    processor derives the same p-1 global splitters deterministically.
    q = min(keys.size, _OVERSAMPLE * p)
    if q > 0:
        pick = np.linspace(0, keys.size - 1, q).astype(np.int64)
        sample = keys[pick]
    else:
        sample = keys[:0]
    samples = yield from comm.allgatherv(sample)
    pool = np.sort(samples[0])
    ctx.charge_sort(pool.size)
    if pool.size == 0:
        # Globally empty input: any splitters work; route all to bucket 0.
        splitters = np.zeros(p - 1, dtype=keys.dtype)
    else:
        cut = np.linspace(0, pool.size, p + 1).astype(np.int64)[1:-1]
        cut = np.minimum(cut, pool.size - 1)
        splitters = pool[cut]

    # 3. Partition the locally sorted run by splitters and exchange.
    #    Element with key k goes to the first bucket whose splitter >= k.
    cuts = np.searchsorted(keys, splitters, side="right")
    key_parts = np.split(keys, cuts)
    payload_parts = [np.split(pl, cuts) for pl in payloads]
    parcels = list(zip(key_parts, *payload_parts))
    received = yield from comm.alltoallv(parcels)

    # 4. Local multiway merge (argsort of the concatenation; runs are short).
    #    alltoallv already concatenated per-sender parcels in rank order.
    my_keys = received[0]
    merged_payloads = tuple(received[1 + j] for j in range(len(payloads)))
    order = np.argsort(my_keys, kind="stable")
    my_keys = my_keys[order]
    merged_payloads = tuple(pl[order] for pl in merged_payloads)
    ctx.charge_sort(my_keys.size, words_per_elem=1 + len(payloads))
    return my_keys, merged_payloads
