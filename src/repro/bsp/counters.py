"""Per-processor BSP cost counters and run-level aggregation.

The paper's cost model (§2.1) tracks, per superstep, the maximum local
computation, the maximum number of unit-size messages sent or received, and
the maximum number of cache misses over all processors; an algorithm's cost
is the sum over supersteps.  We track the per-processor cumulative totals
(the quantities the artifact actually measures per rank — §5 "we always
choose the maximum among all participating processors") plus, per collective
synchronization, the *imbalance wait*: how far each participant lagged the
slowest one.  Wait time plus transfer volume is what the paper reports as
"time spent in MPI".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcCounters", "CountersReport"]


@dataclass
class ProcCounters:
    """Cumulative cost counters of one virtual processor."""

    ops: float = 0.0          # local computation (unit operations)
    words_sent: float = 0.0   # words sent over the network
    words_recv: float = 0.0   # words received over the network
    misses: float = 0.0       # cache misses (analytic CO charges)
    supersteps: int = 0       # synchronizations this processor took part in
    wait_ops: float = 0.0     # imbalance: ops the proc idled at sync points

    #: ops snapshot taken at this processor's last synchronization; used by
    #: the engine to compute the imbalance wait of the next collective.
    ops_at_last_sync: float = field(default=0.0, repr=False)

    def charge(self, ops: float = 0.0, misses: float = 0.0) -> None:
        """Charge local computation and cache misses."""
        if ops < 0 or misses < 0:
            raise ValueError("cost charges must be non-negative")
        self.ops += ops
        self.misses += misses

    def charge_comm(self, sent: float, recv: float, misses: float = 0.0) -> None:
        """Charge one collective's transfer volume at this processor."""
        if sent < 0 or recv < 0 or misses < 0:
            raise ValueError("cost charges must be non-negative")
        self.words_sent += sent
        self.words_recv += recv
        self.misses += misses

    @property
    def volume(self) -> float:
        """BSP communication volume: max of sent and received words."""
        return max(self.words_sent, self.words_recv)

    def snapshot(self) -> tuple[float, float, float, float, float, int]:
        """Cumulative totals as a wire-friendly tuple, in the field order
        the trace layer consumes: (ops, sent, recv, misses, wait, supersteps)."""
        return (self.ops, self.words_sent, self.words_recv,
                self.misses, self.wait_ops, self.supersteps)


@dataclass(frozen=True)
class CountersReport:
    """Aggregated counters of a finished BSP run.

    Every field follows the artifact's methodology: the maximum over all
    participating processors of the per-rank total.
    """

    p: int
    computation: float      # max_i ops_i
    volume: float           # max_i max(sent_i, recv_i)
    supersteps: int         # max_i supersteps_i
    misses: float           # max_i misses_i
    wait: float             # max_i wait_ops_i (sync imbalance, in op units)
    total_ops: float        # sum_i ops_i (the "completed instructions" metric)
    total_volume: float     # sum_i sent_i (global traffic)

    @classmethod
    def from_procs(cls, procs: list[ProcCounters]) -> "CountersReport":
        """Aggregate per-processor counters (max/sum per the artifact)."""
        if not procs:
            raise ValueError("need at least one processor")
        return cls(
            p=len(procs),
            computation=max(c.ops for c in procs),
            volume=max(c.volume for c in procs),
            supersteps=max(c.supersteps for c in procs),
            misses=max(c.misses for c in procs),
            wait=max(c.wait_ops for c in procs),
            total_ops=sum(c.ops for c in procs),
            total_volume=sum(c.words_sent for c in procs),
        )

    def instructions_per_miss(self) -> float:
        """IPM of the bottleneck processor (Figs 4c, 8)."""
        return float("inf") if self.misses == 0 else self.computation / self.misses
