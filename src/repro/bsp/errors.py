"""BSP engine error types with deadlock diagnostics."""

from __future__ import annotations

__all__ = ["BSPError", "DeadlockError", "CollectiveMismatchError"]


class BSPError(RuntimeError):
    """Base class for BSP engine failures."""


class DeadlockError(BSPError):
    """No processor can make progress and no collective is complete.

    Raised with a per-processor state dump: which collective each blocked
    processor is waiting on, and which processors already terminated.
    """


class CollectiveMismatchError(BSPError):
    """Members of one communicator issued different collective operations."""
