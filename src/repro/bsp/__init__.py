"""Deterministic BSP machine simulator.

Stands in for the paper's MPI runtime on Piz Daint.  Virtual processors are
Python generators executing SPMD programs; a superstep engine matches
collective operations, moves the data, and charges every processor's cost
counters (local operations, communication volume, synchronization steps,
cache misses).  A :class:`MachineModel` converts the counters into predicted
execution and MPI time exactly in the spirit of the paper's constant-factor
performance model (§5.3).

The collectives mirror §2.1: ``broadcast``, ``reduce``, ``gather``,
``all-reduce``/``all-gather``, plus ``scatter``/``alltoallv`` and
communicator ``split`` (used to run minimum-cut trials on processor groups
and to halve groups inside Recursive Contraction).  Every collective costs
O(1) supersteps, O(k) communication volume and time, and O(k/B + 1) cache
misses, as assumed by the paper.
"""

from repro.bsp.counters import ProcCounters, CountersReport
from repro.bsp.machine import MachineModel, TimeEstimate, fit_model
from repro.bsp.engine import Engine, Context, run_spmd
from repro.bsp.comm import Communicator
from repro.bsp.errors import BSPError, DeadlockError, CollectiveMismatchError
from repro.bsp.sort import distributed_sort
from repro.bsp.combine import combine_by_key

__all__ = [
    "ProcCounters",
    "CountersReport",
    "MachineModel",
    "TimeEstimate",
    "fit_model",
    "Engine",
    "Context",
    "run_spmd",
    "Communicator",
    "BSPError",
    "DeadlockError",
    "CollectiveMismatchError",
    "distributed_sort",
    "combine_by_key",
]
