"""Superstep fusion policy: which collectives may share one latency charge.

The paper's cost model bills every synchronization one latency ``L`` (times
``log p`` for the MPI collective implementation).  Back-to-back *small*
collectives on the same group — an ``allreduce`` of one scalar followed
immediately by another, with no local computation in between — each pay that
L today even though a real runtime would piggyback them on a single round
trip.  Fusion merges such neighbours into **one superstep**: one L, the
combined h-relation, and — critically — bit-identical results, computation,
transfer and miss counters, because fusion only elides synchronizations, it
never reorders or re-associates any charge.

Two mechanisms share this policy module:

* **Explicit batches** (:meth:`repro.bsp.comm.Communicator.batch`): the
  program yields one ``fused`` collective carrying several sub-operations,
  which the engine executes back-to-back inside a single superstep.
  Always available; needs no engine configuration.
* **Automatic adjacent fusion** (``Engine(fuse=...)``): the engine notices
  that every member of a group arrived at a new collective with *no local
  charges* since that group's previous collective, and retroactively merges
  the new collective into the previous superstep.  Opt-in, governed by a
  :class:`FusionConfig`.

Both are restricted to :data:`FUSABLE_KINDS` — collectives whose results do
not change group membership (``split`` creates communicators and must remain
its own synchronization point) — and to small payloads, mirroring the
"latency-bound message" regime where fusion pays off on a real machine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FusionConfig", "FUSABLE_KINDS", "as_fusion_config"]

#: Collective kinds eligible for fusion (explicit batches and auto-merge).
#: ``split`` is excluded because its result is a new communicator (group
#: structure must be settled between supersteps); ``scatter``/``scatterv``
#: and the all-to-alls are excluded because their payloads are root- or
#: matrix-shaped and essentially never latency-bound; nested ``fused``
#: batches are flattened by chaining, not nesting.
FUSABLE_KINDS = frozenset({
    "barrier", "bcast", "gather", "allgather", "reduce", "allreduce",
    "gatherv", "allgatherv",
})


@dataclass(frozen=True)
class FusionConfig:
    """Tunables for automatic adjacent fusion.

    Parameters
    ----------
    auto:
        Enable the engine's retroactive adjacent-merge.  When ``False``
        only explicit ``comm.batch`` requests fuse.
    max_words:
        Upper bound on the *combined* payload words of one fused
        superstep; collectives that would push the running superstep past
        this stay unfused (big transfers are bandwidth-bound, and fusing
        them would hide real h-relation serialization).
    max_chain:
        Maximum number of collectives merged into one superstep.  Bounds
        the latency win per superstep and keeps traces legible.
    """

    auto: bool = True
    max_words: int = 4096
    max_chain: int = 16

    def __post_init__(self) -> None:
        if self.max_words < 1:
            raise ValueError(f"max_words must be >= 1, got {self.max_words}")
        if self.max_chain < 2:
            raise ValueError(f"max_chain must be >= 2, got {self.max_chain}")


def as_fusion_config(fuse) -> FusionConfig | None:
    """Normalize the ``fuse=`` argument accepted across backends.

    ``None``/``False`` disable auto-fusion (the default — blessed baselines
    keep their superstep counts), ``True`` selects the default
    :class:`FusionConfig`, and a ready config passes through.
    """
    if fuse is None or fuse is False:
        return None
    if fuse is True:
        return FusionConfig()
    if isinstance(fuse, FusionConfig):
        return fuse
    raise TypeError(
        f"fuse must be None, a bool, or a FusionConfig, got {type(fuse).__name__}"
    )
