"""Deterministic fault injection for the execution backends.

The fault-tolerant trial scheduler (:mod:`repro.sched`) only earns its
keep if its recovery paths are *testable*: a retry loop nobody can trigger
on demand is dead code.  This module describes faults as data — a
:class:`FaultPlan` of :class:`FaultSpec` records, each pinned to a global
rank, a local superstep index, a dispatch (wave) index and an attempt
number — so the exact same failure fires at the exact same point of the
computation on every run, on both backends:

* the **multiprocess backend** injects at the worker driver loop
  (:mod:`repro.runtime.worker`) just before the rank ships its ``step``-th
  collective request over the transport;
* the **simulator** injects at the engine's step loop via a transparent
  generator wrapper (:meth:`SimBackend.run(..., faults=...)
  <repro.runtime.sim.SimBackend.run>`) at the same point: after local
  compute, before the ``step``-th collective executes.

Both seams therefore surface the *same* typed
:class:`~repro.runtime.errors.WorkerFailure` errors, which is what lets
the scheduler exercise one recovery path for both runtimes.

Fault kinds
-----------
``crash``
    The rank dies abruptly (``os._exit`` under mp; a raised
    :class:`~repro.runtime.errors.WorkerCrashError` under sim).
``stall``
    The rank sleeps ``seconds`` of real wall-clock before proceeding
    (visible in measured times and, under mp, in per-event ``wall_s``).
``work``
    The rank charges ``ops`` extra synthetic operations — a *deterministic*
    straggler: the imbalance shows up bit-identically in both backends'
    wait counters and trace wait deltas.
``delay``
    The rank sleeps ``seconds`` before shipping the collective request
    (mp: at the transport seam; sim: same point in the wrapper).
``drop``
    The rank's collective request is never delivered.  Under mp the worker
    goes silent and the coordinator's inactivity timeout fires
    (:class:`~repro.runtime.errors.WorkerTimeoutError`); the simulator
    raises the same error type immediately (it has no wall clock to wait
    out).

Plan syntax
-----------
Inline (CLI ``--inject-faults``)::

    crash:rank=1,step=2;work:rank=0,step=1,ops=5e4;stall:rank=1,step=0,secs=0.2

JSON (a path given to ``--inject-faults`` is loaded as a file)::

    {"faults": [{"kind": "crash", "rank": 1, "step": 2, "attempt": 0}]}

``attempt`` (default 0) scopes a fault to one retry attempt — the default
makes a fault fire on the first try and vanish on the retry, which is the
shape every recovery test wants.  ``wave`` (default 0) scopes it to one
scheduler dispatch when trials are dispatched in multiple batches.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_plan",
]

#: Recognized fault kinds (see module docstring).
FAULT_KINDS = ("crash", "stall", "work", "delay", "drop")

#: Exit code of an injected crash (distinctive, out of errno range).
CRASH_EXIT_CODE = 113


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *what* happens *where* and *when*.

    ``step`` is the target rank's local superstep index — the number of
    collectives that rank has already completed when the fault fires
    (0-based: ``step=0`` fires before the rank's first collective).
    """

    kind: str
    rank: int
    step: int
    wave: int = 0        # scheduler dispatch index this fault belongs to
    attempt: int = 0     # retry attempt it fires on (0 = first try)
    seconds: float = 0.0  # stall/delay duration
    ops: float = 0.0     # synthetic work charge
    exitcode: int = CRASH_EXIT_CODE

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ValueError(f"fault rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise ValueError(f"fault step must be >= 0, got {self.step}")
        if self.wave < 0 or self.attempt < 0:
            raise ValueError("fault wave/attempt must be >= 0")
        if self.kind in ("stall", "delay") and not self.seconds > 0:
            raise ValueError(f"{self.kind} fault needs seconds > 0")
        if self.kind == "work" and not self.ops > 0:
            raise ValueError("work fault needs ops > 0")
        if not math.isfinite(self.seconds) or not math.isfinite(self.ops):
            raise ValueError("fault seconds/ops must be finite")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of deterministic faults, filterable per dispatch.

    The scheduler narrows the plan per ``(wave, attempt)`` before handing
    the remaining specs to a backend, so backends never know about retry
    attempts — they just fire whatever they are given.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_dispatch(self, wave: int, attempt: int) -> tuple[FaultSpec, ...]:
        """The specs that fire on dispatch ``wave``, retry ``attempt``."""
        return tuple(s for s in self.specs
                     if s.wave == wave and s.attempt == attempt)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"faults": [asdict(s) for s in self.specs]},
                          indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        if not isinstance(doc, dict) or "faults" not in doc:
            raise ValueError('fault plan JSON must be {"faults": [...]}')
        return cls(tuple(FaultSpec(**entry) for entry in doc["faults"]))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


_FIELD_TYPES = {
    "rank": int, "step": int, "wave": int, "attempt": int,
    "secs": float, "seconds": float, "ops": float, "exitcode": int,
}


def _parse_entry(entry: str) -> FaultSpec:
    kind, sep, rest = entry.partition(":")
    kind = kind.strip()
    if not sep or not rest.strip():
        raise ValueError(
            f"fault entry {entry!r} must look like "
            "'kind:rank=R,step=K[,key=value...]'"
        )
    kw: dict = {}
    for item in rest.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in _FIELD_TYPES:
            raise ValueError(
                f"bad fault field {item!r} in {entry!r}; known fields: "
                f"{sorted(set(_FIELD_TYPES) - {'secs'})}"
            )
        conv = _FIELD_TYPES[key]
        if key == "secs":
            key = "seconds"
        try:
            kw[key] = conv(float(value)) if conv is int else conv(value)
        except ValueError:
            raise ValueError(
                f"fault field {item!r} in {entry!r} is not a number"
            ) from None
    missing = {"rank", "step"} - set(kw)
    if missing:
        raise ValueError(f"fault entry {entry!r} missing {sorted(missing)}")
    return FaultSpec(kind=kind, **kw)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a fault plan: inline spec, JSON document, or a file path.

    A path to an existing file is loaded as JSON; a string starting with
    ``{`` is parsed as JSON directly; anything else uses the inline
    ``kind:rank=R,step=K;...`` syntax.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty fault plan")
    if os.path.isfile(text):
        return FaultPlan.load(text)
    if text.startswith("{"):
        return FaultPlan.from_json(text)
    entries = [e.strip() for e in text.split(";") if e.strip()]
    if not entries:
        raise ValueError("empty fault plan")
    return FaultPlan(tuple(_parse_entry(e) for e in entries))


class FaultInjector:
    """One rank's view of a set of fault specs, indexed by superstep.

    Both seams drive the same object: call :meth:`at` with the rank's
    local superstep index right before it issues that collective, and
    apply whatever comes back.  ``active`` lets the fault-free fast path
    skip the lookup entirely.
    """

    def __init__(self, specs, rank: int):
        self._by_step: dict[int, list[FaultSpec]] = {}
        for spec in specs or ():
            if spec.rank == rank:
                self._by_step.setdefault(spec.step, []).append(spec)
        self.rank = rank
        self.active = bool(self._by_step)

    def at(self, step: int) -> list[FaultSpec]:
        """The specs that fire before this rank's ``step``-th collective."""
        if not self.active:
            return []
        return self._by_step.get(step, [])
