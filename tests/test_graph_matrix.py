"""Tests for the dense adjacency-matrix representation."""

import numpy as np
import pytest

from repro.graph import AdjacencyMatrix, EdgeList, complete_graph


class TestConstruction:
    def test_from_edgelist_combines_parallels(self):
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 1.0)])
        a = AdjacencyMatrix.from_edgelist(g)
        assert a.a[0, 1] == 3.0
        assert a.a[1, 0] == 3.0
        assert a.m == 2

    def test_total_weight(self):
        g = complete_graph(4, weight=2.0)
        a = AdjacencyMatrix.from_edgelist(g)
        assert a.total_weight() == 12.0
        assert a.total_weight() == g.total_weight()

    def test_validation_square(self):
        with pytest.raises(ValueError):
            AdjacencyMatrix(np.zeros((2, 3)))

    def test_validation_symmetric(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            AdjacencyMatrix(bad)

    def test_validation_diagonal(self):
        bad = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            AdjacencyMatrix(bad)

    def test_validation_negative(self):
        bad = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            AdjacencyMatrix(bad)

    def test_roundtrip_edgelist(self):
        g = EdgeList.from_pairs(4, [(0, 1, 2.0), (2, 3, 1.5)])
        back = AdjacencyMatrix.from_edgelist(g).to_edgelist()
        assert sorted(back.as_tuples()) == sorted(g.as_tuples())


class TestContract:
    def test_merge_two_vertices(self):
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        a = AdjacencyMatrix.from_edgelist(g)
        # merge 0 and 1 -> new vertex 0
        out = a.contract(np.array([0, 0, 1]), 2)
        assert out.n == 2
        assert out.a[0, 1] == 5.0  # 1-2 and 0-2 combine
        assert out.a[0, 0] == 0.0  # loop removed

    def test_identity_contraction(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(5))
        out = a.contract(np.arange(5), 5)
        assert np.array_equal(out.a, a.a)

    def test_contract_to_two(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(4))
        out = a.contract(np.array([0, 0, 1, 1]), 2)
        assert out.a[0, 1] == 4.0  # the 4 crossing edges of K4

    def test_contract_preserves_total_crossing_weight(self):
        g = complete_graph(6)
        a = AdjacencyMatrix.from_edgelist(g)
        labels = np.array([0, 0, 1, 1, 2, 2])
        out = a.contract(labels, 3)
        # every pair of groups has 2*2 = 4 unit edges between them
        assert out.a[0, 1] == 4.0
        assert out.a[0, 2] == 4.0
        assert out.a[1, 2] == 4.0

    def test_invalid_labels(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(3))
        with pytest.raises(ValueError):
            a.contract(np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            a.contract(np.array([0, 1, 5]), 2)


class TestCutValue:
    def test_matches_edgelist(self):
        g = EdgeList.from_pairs(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0)])
        a = AdjacencyMatrix.from_edgelist(g)
        side = np.array([True, True, False, False])
        assert a.cut_value(side) == g.cut_value(side)

    def test_rejects_trivial(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(3))
        with pytest.raises(ValueError):
            a.cut_value(np.zeros(3, dtype=bool))

    def test_copy_independent(self):
        a = AdjacencyMatrix.from_edgelist(complete_graph(3))
        b = a.copy()
        b.a[0, 1] = 9.0
        assert a.a[0, 1] == 1.0
