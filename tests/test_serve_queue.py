"""Deficit-round-robin fair queue (repro.serve.queue)."""

import pytest

from repro.serve.queue import DeficitFairQueue


def drain(q, limit=1000):
    order = []
    for _ in range(limit):
        popped = q.pop()
        if popped is None:
            break
        order.append(popped)
    return order


def test_single_client_fifo():
    q = DeficitFairQueue(quantum=1.0)
    for i in range(5):
        q.push("a", i)
    assert [item for _, item in drain(q)] == [0, 1, 2, 3, 4]
    assert q.pop() is None


def test_equal_clients_interleave():
    q = DeficitFairQueue(quantum=1.0)
    for i in range(4):
        q.push("a", f"a{i}")
        q.push("b", f"b{i}")
    order = [c for c, _ in drain(q)]
    # each round serves each client once: strict alternation
    assert order == ["a", "b"] * 4


def test_weight_scales_share():
    q = DeficitFairQueue(quantum=1.0)
    q.set_weight("heavy", 2.0)
    for i in range(12):
        q.push("heavy", i)
        q.push("light", i)
    first9 = [c for c, _ in [q.pop() for _ in range(9)]]
    # weight 2 drains twice as fast: 2:1 service ratio
    assert first9.count("heavy") == 2 * first9.count("light")


def test_cost_heavier_than_quantum_still_dispatches():
    q = DeficitFairQueue(quantum=1.0)
    q.push("a", "big", cost=5.0)
    q.push("b", "small", cost=1.0)
    order = drain(q)
    assert ("a", "big") in order and ("b", "small") in order
    # the cheap slice is not stuck behind the expensive one
    assert order.index(("b", "small")) < order.index(("a", "big"))


def test_emptied_client_forfeits_deficit():
    q = DeficitFairQueue(quantum=10.0)
    q.push("a", 1, cost=1.0)
    q.pop()
    # queue drained: banked credit must be gone on the next burst
    q.push("a", 2, cost=1.0)
    q.push("b", 3, cost=1.0)
    order = [c for c, _ in drain(q)]
    assert sorted(order) == ["a", "b"]
    assert q._deficits["a"] == 0.0


def test_drop_client_removes_all():
    q = DeficitFairQueue()
    for i in range(3):
        q.push("a", i)
    q.push("b", "keep")
    assert sorted(q.drop_client("a")) == [0, 1, 2]
    assert [item for _, item in drain(q)] == ["keep"]


def test_drop_items_predicate():
    q = DeficitFairQueue()
    for i in range(6):
        q.push("a" if i % 2 else "b", i)
    dropped = q.drop_items(lambda item: item >= 4)
    assert sorted(dropped) == [4, 5]
    assert sorted(item for _, item in drain(q)) == [0, 1, 2, 3]


def test_reactivation_after_idle():
    q = DeficitFairQueue()
    q.push("a", 1)
    assert q.pop() == ("a", 1)
    assert q.pop() is None
    q.push("a", 2)
    assert q.pop() == ("a", 2)


def test_validation():
    q = DeficitFairQueue()
    with pytest.raises(ValueError):
        DeficitFairQueue(quantum=0)
    with pytest.raises(ValueError):
        q.push("a", 1, cost=0)
    with pytest.raises(ValueError):
        q.set_weight("a", -1)


def test_stats_and_len():
    q = DeficitFairQueue(quantum=2.0)
    q.push("a", 1, cost=1.0, weight=3.0)
    q.push("a", 2)
    assert len(q) == 2 and q.depth("a") == 2
    q.pop()
    st = q.stats()
    assert st["served_total"] == 1
    assert st["clients"]["a"]["weight"] == 3.0
