"""Tests for networkx interop and the multi-candidate AppMC witness."""

import networkx as nx
import numpy as np
import pytest

from repro.core import approx_minimum_cut, connected_components, minimum_cut
from repro.graph import EdgeList, erdos_renyi
from repro.graph.validate import networkx_mincut
from repro.rng import philox_stream


class TestFromNetworkx:
    def test_roundtrip(self):
        g = erdos_renyi(40, 100, philox_stream(95), weighted=True)
        back = EdgeList.from_networkx(g.to_networkx())
        assert back.n == g.n
        assert sorted(back.as_tuples()) == sorted(g.as_tuples())

    def test_arbitrary_node_labels(self):
        h = nx.Graph()
        h.add_edge("alice", "bob", weight=2.0)
        h.add_edge("bob", "carol")
        g = EdgeList.from_networkx(h)
        assert g.n == 3 and g.m == 2
        assert sorted(g.w.tolist()) == [1.0, 2.0]

    def test_multigraph_parallel_edges(self):
        h = nx.MultiGraph()
        h.add_edge(0, 1, weight=1.0)
        h.add_edge(0, 1, weight=3.0)
        g = EdgeList.from_networkx(h)
        assert g.m == 2
        assert g.total_weight() == 4.0

    def test_self_loops_dropped(self):
        h = nx.Graph()
        h.add_edge(0, 0)
        h.add_edge(0, 1)
        g = EdgeList.from_networkx(h)
        assert g.m == 1

    def test_isolated_nodes_kept(self):
        h = nx.Graph()
        h.add_nodes_from(range(5))
        h.add_edge(0, 1)
        g = EdgeList.from_networkx(h)
        assert g.n == 5
        assert connected_components(g, p=2, seed=0).n_components == 4

    def test_empty(self):
        g = EdgeList.from_networkx(nx.Graph())
        assert g.n == 0 and g.m == 0


class TestAppMCWitnessQuality:
    def test_witness_bounds_truth_from_above(self):
        g = erdos_renyi(50, 300, philox_stream(96), weighted=True)
        truth = networkx_mincut(g)
        for seed in range(5):
            r = approx_minimum_cut(g, p=3, seed=seed)
            assert r.witness_value is not None
            assert r.witness_value >= truth - 1e-9
            assert g.cut_value(r.witness_side) == pytest.approx(r.witness_value)

    def test_witness_often_tight(self):
        """Picking the best of all disconnected trials' candidates keeps the
        witness within a small factor of the optimum on most seeds."""
        g = erdos_renyi(60, 360, philox_stream(97), weighted=True)
        truth = networkx_mincut(g)
        ratios = []
        for seed in range(8):
            r = approx_minimum_cut(g, p=3, seed=seed)
            ratios.append(r.witness_value / truth)
        assert np.median(ratios) < 2.0, ratios

    def test_pipelined_witness_consistent(self):
        g = erdos_renyi(40, 200, philox_stream(98), weighted=True)
        r = approx_minimum_cut(g, p=2, seed=3, pipelined=True)
        if r.witness_side is not None:
            assert g.cut_value(r.witness_side) == pytest.approx(r.witness_value)
