"""Smoke tests for the kernel microbenchmarks and the perf gate.

The tier-1 run only executes the tiny-scale smoke (the benchmarks carry
their own correctness asserts, so this catches interface drift cheaply);
the full-scale speedup assertions are ``perf``-marked and excluded by
default — run them with ``pytest -m perf tests/test_bench_smoke.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.bench_kernels import BENCHES, run_benchmarks


def test_bench_kernels_smoke_tiny_scale():
    results = run_benchmarks(scale=0.01, seed=1)
    assert set(results) == set(BENCHES)
    for name, r in results.items():
        assert r["fast_s"] > 0 and r["slow_s"] > 0, name
        assert np.isfinite(r["speedup"]), name


def test_bench_kernels_single_selection():
    results = run_benchmarks(scale=0.01, seed=2, names={"contract"})
    assert set(results) == {"contract"}


def test_perf_gate_importable():
    from benchmarks import perf_gate

    assert perf_gate.BASELINE_PATH.name == "perf_baseline.json"
    assert perf_gate.SPEEDUP_FLOORS["contract"] == 10.0


def test_bench_two_out_smoke_small_scale():
    from benchmarks.bench_two_out import run_benchmarks as run_two_out

    r = run_two_out(scale=0.25, seed=1)
    assert r["values_match"] and r["small_truth_match"]
    assert r["degrade_honest"]
    assert not r["dense"]["degraded"]
    assert r["dense"]["dispatched_trials"] >= 1
    assert r["dense"]["reduction"] > 1.0


def test_bench_serve_smoke():
    """The daemon benchmark end-to-end at minimal repeats: served answers
    must match direct runs (the speedup floor itself is perf-gated, not
    asserted here — one repeat is too noisy)."""
    from tests.conftest import require_mp

    require_mp()
    from benchmarks.bench_serve import run_benchmarks as run_serve

    r = run_serve(repeats=1, seed=1, clients=2, per_client=2)
    assert r["results_match"]
    assert np.isfinite(r["cc_value"]) and np.isfinite(r["sq_value"])
    assert r["min_warm_speedup"] > 0


def test_bench_fusion_smoke_small_scale():
    from benchmarks.bench_fusion import run_benchmarks as run_fusion

    r = run_fusion(scale=0.25, seed=0)
    a, c = r["appmc_dense"], r["cc_multiround"]
    assert a["values_match"] and c["values_match"]
    assert c["shrink_fired"]
    # Fusion must strictly reduce supersteps even at smoke scale.
    assert (a["cluster"]["fused_shrink"]["supersteps"]
            < a["cluster"]["base"]["supersteps"])
    assert c["default"]["fused"]["supersteps"] \
        < c["default"]["base"]["supersteps"]
    assert a["reduction"] > 1.0 and c["ops_reduction"] > 1.0


def test_bench_dynamic_smoke_small_scale():
    """The streaming benchmark end-to-end at reduced scale: every
    deterministic bar (per-epoch label equality, warm/cold cut replay,
    served-equals-local) must hold; the 3x speedup floor itself is
    perf-gated, not asserted here."""
    from benchmarks.bench_dynamic import run_benchmarks as run_dynamic

    r = run_dynamic(scale=0.25, seed=1)
    assert r["results_match"]
    assert r["cc"]["labels_match_every_epoch"]
    assert r["cut"]["replay_match"]
    assert r["speedup"] > 0
    assert r["serve"]["final_epoch"] == r["cc"]["epochs"]


@pytest.mark.perf
def test_dynamic_speedup_meets_floor_full_scale():
    """Acceptance bar: incremental CC query >= 3x faster than full
    recompute on the churn workload, with bit-identical answers."""
    from benchmarks.bench_dynamic import (
        DYNAMIC_SPEEDUP_FLOOR,
        run_benchmarks as run_dynamic,
    )

    r = run_dynamic(scale=1.0, seed=0)
    assert r["results_match"]
    assert r["speedup_ok"], r["speedup"]
    assert r["speedup"] >= DYNAMIC_SPEEDUP_FLOOR


@pytest.mark.perf
def test_fusion_reduction_meets_floor_full_scale():
    """Acceptance bar: >= 1.3x predicted-time reduction from fusion +
    group-shrink on the dense min-cut workload (cluster profile), and
    >= 1.2x total-work reduction from shrink on the multi-round CC."""
    from benchmarks.bench_fusion import (
        OPS_REDUCTION_FLOOR,
        REDUCTION_FLOOR,
        run_benchmarks as run_fusion,
    )

    r = run_fusion(scale=1.0, seed=0)
    assert r["reduction_ok"], r["appmc_dense"]["reduction"]
    assert r["ops_reduction_ok"], r["cc_multiround"]["ops_reduction"]
    assert r["appmc_dense"]["reduction"] >= REDUCTION_FLOOR
    assert r["cc_multiround"]["ops_reduction"] >= OPS_REDUCTION_FLOOR


@pytest.mark.perf
def test_contract_speedup_meets_floor_full_scale():
    """Acceptance bar: >= 10x over the scalar reference on contraction of a
    10^5-edge random multigraph (scale=1.0 defaults)."""
    results = run_benchmarks(scale=1.0, seed=0, names={"contract"})
    r = results["contract"]
    assert r["m"] >= 100_000
    assert r["speedup"] >= 10.0, r
