"""Tests for relabeling, combining and contraction utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import EdgeList, complete_graph
from repro.graph.contract import (
    combine_parallel_edges,
    components_from_edges,
    compress_labels,
    contract_edges,
    relabel_edges,
    union_find_components,
)
from repro.graph.validate import brute_force_mincut


class TestRelabel:
    def test_drops_loops(self):
        g = EdgeList.from_pairs(3, [(0, 1), (1, 2)])
        h = relabel_edges(g, np.array([0, 0, 1]), 2)
        assert h.m == 1
        assert h.as_tuples() == [(0, 1, 1.0)]

    def test_keeps_parallel(self):
        g = EdgeList.from_pairs(4, [(0, 2), (1, 3)])
        h = relabel_edges(g, np.array([0, 0, 1, 1]), 2)
        assert h.m == 2  # two parallel (0,1) edges survive

    def test_invalid_mapping(self):
        g = EdgeList.from_pairs(2, [(0, 1)])
        with pytest.raises(ValueError):
            relabel_edges(g, np.array([0]), 1)
        with pytest.raises(ValueError):
            relabel_edges(g, np.array([0, 5]), 2)


class TestCombine:
    def test_sums_weights(self):
        g = EdgeList.from_pairs(2, [(0, 1, 1.0), (0, 1, 2.5)])
        h = combine_parallel_edges(g)
        assert h.m == 1
        assert h.w[0] == 3.5

    def test_empty(self):
        g = EdgeList.empty(3)
        assert combine_parallel_edges(g).m == 0

    def test_preserves_total_weight(self, rng):
        u = rng.integers(0, 10, 50)
        v = (u + 1 + rng.integers(0, 8, 50)) % 10
        keep = u != v
        g = EdgeList(10, u[keep], v[keep])
        h = combine_parallel_edges(g)
        assert h.total_weight() == pytest.approx(g.total_weight())
        assert h.m <= g.m


class TestContractEdges:
    def test_contract_never_decreases_mincut(self, rng):
        g = EdgeList.from_pairs(
            6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        before = brute_force_mincut(g)
        h, labels = contract_edges(g, np.array([0]))  # contract (0,1)
        after = brute_force_mincut(h)
        assert after >= before
        assert labels[0] == labels[1]

    def test_contract_all_edges_of_component(self):
        g = EdgeList.from_pairs(4, [(0, 1), (1, 2)])
        h, labels = contract_edges(g, np.array([0, 1]))
        assert h.n == 2  # {0,1,2} merged, 3 isolated
        assert h.m == 0
        assert labels[3] != labels[0]


class TestComponents:
    def test_path(self):
        labels, k = components_from_edges(4, np.array([0, 1]), np.array([1, 2]))
        assert k == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_no_edges(self):
        labels, k = components_from_edges(5, np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert k == 5
        assert np.array_equal(labels, np.arange(5))

    def test_matches_union_find(self, rng):
        n = 64
        u = rng.integers(0, n, 100)
        v = rng.integers(0, n, 100)
        keep = u != v
        u, v = u[keep], v[keep]
        fast_labels, fast_k = components_from_edges(n, u, v)
        roots = union_find_components(n, u, v)
        uf_labels, uf_k = compress_labels(roots)
        assert fast_k == uf_k
        # same partition
        assert (fast_labels[u] == fast_labels[v]).all()
        same_fast = fast_labels[:, None] == fast_labels[None, :]
        same_uf = uf_labels[:, None] == uf_labels[None, :]
        assert (same_fast == same_uf).all()

    def test_labels_dense(self):
        labels, k = components_from_edges(6, np.array([0, 2, 4]), np.array([1, 3, 5]))
        assert sorted(np.unique(labels).tolist()) == list(range(k))

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_component_count_bounds(self, n, m):
        rng = np.random.default_rng(n * 1000 + m)
        u = rng.integers(0, n, m)
        v = rng.integers(0, n, m)
        keep = u != v
        labels, k = components_from_edges(n, u[keep], v[keep])
        assert max(1, n - int(keep.sum())) <= k <= n
        assert labels.size == n


class TestCompressLabels:
    def test_dense_and_order_preserving(self):
        labels, k = compress_labels(np.array([5, 5, 2, 9, 2]))
        assert k == 3
        assert labels.tolist() == [1, 1, 0, 2, 0]


class TestUnionFind:
    def test_kn_single_component(self):
        g = complete_graph(8)
        roots = union_find_components(8, g.u, g.v)
        assert np.unique(roots).size == 1

    def test_roots_are_fixpoints(self, rng):
        n = 32
        u = rng.integers(0, n, 40)
        v = rng.integers(0, n, 40)
        keep = u != v
        roots = union_find_components(n, u[keep], v[keep])
        assert np.array_equal(roots[roots], roots)
