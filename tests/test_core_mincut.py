"""Tests for the exact communication-avoiding minimum cut (§4)."""

import math

import numpy as np
import pytest

from repro.cache import LRUTracker
from repro.core import minimum_cut, minimum_cut_sequential
from repro.core.mincut import sequential_trial, sequential_eager_step
from repro.graph import (
    EdgeList,
    complete_graph,
    erdos_renyi,
    two_cliques_bridge,
    verification_suite,
    weighted_cycle,
)
from repro.graph.validate import networkx_components, networkx_mincut
from repro.rng import philox_stream


class TestVerificationSuite:
    @pytest.mark.parametrize("p", [1, 3])
    def test_known_cuts(self, p):
        for case in verification_suite():
            if case.mincut is None:
                continue
            r = minimum_cut(case.graph, p=p, seed=31)
            assert r.value == case.mincut, (case.name, p)
            assert case.graph.cut_value(r.side) == r.value, case.name

    def test_disconnected_graphs_zero(self):
        for case in verification_suite():
            if case.mincut is not None or case.graph.n < 2:
                continue
            r = minimum_cut(case.graph, p=2, seed=32)
            assert r.value == 0.0, case.name


class TestRandomGraphs:
    def test_matches_stoer_wagner(self):
        for seed in range(4):
            g = erdos_renyi(40, 250, philox_stream(seed + 40), weighted=True)
            if networkx_components(g) != 1:
                continue
            truth = networkx_mincut(g)
            r = minimum_cut(g, p=4, seed=seed)
            assert r.value == truth, seed
            assert g.cut_value(r.side) == r.value

    def test_witness_always_consistent(self):
        """Even when a scaled-down run misses the optimum, the witness must
        be a real cut of the reported value."""
        g = erdos_renyi(60, 300, philox_stream(50), weighted=True)
        r = minimum_cut(g, p=3, seed=1, trials=2)  # deliberately few trials
        assert g.cut_value(r.side) == pytest.approx(r.value)

    def test_value_never_below_truth(self):
        g = erdos_renyi(30, 120, philox_stream(51), weighted=True)
        truth = networkx_mincut(g)
        for trials in (1, 3):
            r = minimum_cut(g, p=2, seed=9, trials=trials)
            assert r.value >= truth - 1e-9


class TestParallelPaths:
    def test_group_parallel_trials(self):
        """p > trials exercises the distributed eager + recursive steps."""
        g = two_cliques_bridge(10, bridge_weight=2.0)
        r = minimum_cut(g, p=8, seed=3, trials=2)
        assert g.cut_value(r.side) == r.value
        assert r.value == 2.0

    def test_uneven_groups(self):
        g = two_cliques_bridge(8)
        r = minimum_cut(g, p=7, seed=4, trials=3)  # groups of 3/2/2
        assert g.cut_value(r.side) == r.value

    def test_single_group(self):
        g = weighted_cycle(12)
        r = minimum_cut(g, p=5, seed=5, trials=1)
        assert g.cut_value(r.side) == r.value

    def test_sequential_and_parallel_agree_on_easy_graph(self):
        g = two_cliques_bridge(9, bridge_weight=3.0)
        rs = minimum_cut(g, p=2, seed=6)           # p <= trials
        rp = minimum_cut(g, p=8, seed=6, trials=4)  # p > trials
        assert rs.value == rp.value == 3.0

    def test_disconnected_parallel(self):
        g = EdgeList.from_pairs(8, [(0, 1), (1, 2), (4, 5), (5, 6)])
        r = minimum_cut(g, p=6, seed=7, trials=2)
        assert r.value == 0.0
        assert g.cut_value(r.side) == 0.0


class TestBackends:
    """The same entry point on each execution backend (smoke-level)."""

    def test_known_cut_by_backend(self, backend):
        g = two_cliques_bridge(6, bridge_weight=2.0)
        r = minimum_cut(g, p=2, seed=33, trials=6, backend=backend)
        assert r.value == 2.0
        assert g.cut_value(r.side) == 2.0

    def test_backends_agree_exactly(self, backend):
        g = erdos_renyi(40, 200, philox_stream(52), weighted=True)
        ref = minimum_cut(g, p=3, seed=34, trials=4)  # sim oracle
        res = minimum_cut(g, p=3, seed=34, trials=4, backend=backend)
        assert res.value == ref.value
        assert np.array_equal(res.side, ref.side)
        assert res.report == ref.report


class TestDeterminism:
    def test_same_seed_same_cut(self):
        g = erdos_renyi(40, 160, philox_stream(60), weighted=True)
        a = minimum_cut(g, p=4, seed=11)
        b = minimum_cut(g, p=4, seed=11)
        assert a.value == b.value
        assert np.array_equal(a.side, b.side)

    def test_p_independent_when_sequential_trials(self):
        """With p <= trials the trial set is fixed, so the result does not
        depend on the processor count."""
        g = erdos_renyi(30, 120, philox_stream(61), weighted=True)
        values = {minimum_cut(g, p=p, seed=13).value for p in (1, 2, 4)}
        assert len(values) == 1


class TestEdgeCases:
    def test_two_vertices(self):
        g = EdgeList.from_pairs(2, [(0, 1, 7.0)])
        r = minimum_cut(g, p=2, seed=0)
        assert r.value == 7.0

    def test_empty_edge_set(self):
        g = EdgeList.empty(4)
        r = minimum_cut(g, p=2, seed=0, trials=1)
        assert r.value == 0.0

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            minimum_cut(EdgeList.empty(1), p=1, seed=0)

    def test_parallel_edges_combine(self):
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (0, 1, 1.0), (1, 2, 3.0)])
        r = minimum_cut(g, p=2, seed=1)
        assert r.value == 2.0

    def test_trials_recorded(self):
        g = complete_graph(8)
        r = minimum_cut(g, p=2, seed=2, trials=5)
        assert r.trials == 5

    def test_trial_scale(self):
        g = complete_graph(8)
        full = minimum_cut(g, p=1, seed=3)
        scaled = minimum_cut(g, p=1, seed=3, trial_scale=0.5)
        assert scaled.trials <= full.trials


class TestSequentialInternals:
    def test_eager_step_reaches_target(self):
        g = erdos_renyi(50, 400, philox_stream(70), weighted=True)
        target = 12
        u, v, w, labels, k = sequential_eager_step(
            g.u, g.v, g.w, g.n, target, philox_stream(0)
        )
        assert k == target
        assert labels.max() < k
        # relabeled edges must live in the contracted space with no loops
        assert (u != v).all()
        assert u.max(initial=-1) < k

    def test_eager_step_weight_bound(self):
        g = erdos_renyi(40, 300, philox_stream(71), weighted=True)
        u, v, w, labels, k = sequential_eager_step(
            g.u, g.v, g.w, g.n, 8, philox_stream(1)
        )
        assert w.sum() <= g.total_weight() + 1e-9

    def test_trial_on_connected_graph(self):
        g = two_cliques_bridge(7)
        val, side = sequential_trial(g.u, g.v, g.w, g.n, philox_stream(2))
        assert g.cut_value(side) == pytest.approx(val)

    def test_minimum_cut_sequential_instrumented(self):
        g = erdos_renyi(25, 100, philox_stream(72), weighted=True)
        mem = LRUTracker(M=8192, B=8)
        val, side = minimum_cut_sequential(g, seed=4, trial_scale=0.2, mem=mem)
        assert g.cut_value(side) == pytest.approx(val)
        assert mem.miss_count > 0

    def test_minimum_cut_sequential_exact(self):
        g = weighted_cycle(10, np.arange(1.0, 11.0))
        val, side = minimum_cut_sequential(g, seed=5)
        assert val == 3.0  # weights 1 + 2
        assert g.cut_value(side) == 3.0
