"""Tests for the Philox stream families."""

import numpy as np
import pytest

from repro.rng import RngStreams, philox_stream


class TestPhiloxStream:
    def test_deterministic(self):
        a = philox_stream(7, 3).random(16)
        b = philox_stream(7, 3).random(16)
        assert np.array_equal(a, b)

    def test_streams_differ_by_id(self):
        a = philox_stream(7, 0).random(16)
        b = philox_stream(7, 1).random(16)
        assert not np.array_equal(a, b)

    def test_streams_differ_by_seed(self):
        a = philox_stream(1, 0).random(16)
        b = philox_stream(2, 0).random(16)
        assert not np.array_equal(a, b)

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            philox_stream(-1)

    def test_rejects_negative_stream(self):
        with pytest.raises(ValueError):
            philox_stream(0, -1)

    def test_uniformity_sanity(self):
        x = philox_stream(42).random(100_000)
        assert abs(x.mean() - 0.5) < 0.01
        assert abs(x.var() - 1 / 12) < 0.01


class TestRngStreams:
    def test_rank_streams_independent(self):
        fam = RngStreams(9)
        a = fam.for_rank(0).random(8)
        b = fam.for_rank(1).random(8)
        assert not np.array_equal(a, b)

    def test_rank_stream_reproducible(self):
        fam = RngStreams(9)
        assert np.array_equal(fam.for_rank(5).random(8),
                              RngStreams(9).for_rank(5).random(8))

    def test_aux_disjoint_from_ranks(self):
        fam = RngStreams(9)
        aux = fam.aux(0).random(8)
        for r in range(8):
            assert not np.array_equal(aux, fam.for_rank(r).random(8))

    def test_spawn_children_differ(self):
        fam = RngStreams(3)
        c0 = fam.spawn(0)
        c1 = fam.spawn(1)
        assert c0.seed != c1.seed
        assert not np.array_equal(c0.for_rank(0).random(4),
                                  c1.for_rank(0).random(4))

    def test_spawn_deterministic(self):
        assert RngStreams(3).spawn(2).seed == RngStreams(3).spawn(2).seed

    def test_rank_bounds(self):
        fam = RngStreams(1)
        with pytest.raises(ValueError):
            fam.for_rank(-1)
        with pytest.raises(ValueError):
            fam.for_rank(1 << 20)

    def test_aux_bounds(self):
        with pytest.raises(ValueError):
            RngStreams(1).aux(-1)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-5)
