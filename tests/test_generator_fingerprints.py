"""Statistical fingerprints of the §5 graph families.

The evaluation leans on the four families having "distinct vertex degree
distributions as well as spectral (and thus connectivity) properties".
These tests verify the distributional signatures our generators must show
for the benchmark inputs to play their roles.
"""

import numpy as np
import pytest

from repro.graph import barabasi_albert, erdos_renyi, rmat, watts_strogatz
from repro.rng import philox_stream


class TestErdosRenyiFingerprint:
    def test_poisson_like_degrees(self):
        """ER degrees concentrate: variance ~ mean (Poisson)."""
        g = erdos_renyi(4_000, 16_000, philox_stream(1))
        deg = g.degrees()
        assert abs(deg.var() / deg.mean() - 1.0) < 0.25

    def test_edge_position_uniformity(self):
        """Every vertex participates at the same rate (chi-square)."""
        n = 500
        counts = np.zeros(n)
        for seed in range(10):
            g = erdos_renyi(n, 4_000, philox_stream(seed + 10))
            counts += g.degrees()
        expected = counts.mean()
        stat = ((counts - expected) ** 2 / expected).sum()
        assert stat < 3 * n  # very loose chi-square bound


class TestWattsStrogatzFingerprint:
    def test_degrees_near_k(self):
        """Rewiring keeps degrees tightly around k."""
        g = watts_strogatz(2_000, 8, philox_stream(2))
        deg = g.degrees()
        assert deg.mean() == pytest.approx(8, rel=0.05)
        assert deg.std() < 2.5

    def test_rewiring_shrinks_diameter(self):
        """The small-world effect: rewired ring has a far smaller diameter
        than the pure lattice."""
        import networkx as nx

        lattice = watts_strogatz(400, 4, philox_stream(3), rewire_p=0.0)
        small_world = watts_strogatz(400, 4, philox_stream(3), rewire_p=0.3)
        gl = nx.Graph(list(zip(lattice.u.tolist(), lattice.v.tolist())))
        gs = nx.Graph(list(zip(small_world.u.tolist(), small_world.v.tolist())))
        if nx.is_connected(gl) and nx.is_connected(gs):
            dl = nx.diameter(gl)
            ds = nx.diameter(gs)
            assert ds < dl / 2


class TestBarabasiAlbertFingerprint:
    def test_heavy_tail(self):
        """Scale-free: the max degree dwarfs the median."""
        g = barabasi_albert(3_000, 3, philox_stream(4))
        deg = g.degrees()
        assert deg.max() > 10 * np.median(deg)

    def test_power_law_ish_ccdf(self):
        """The CCDF decays polynomially, not exponentially: the fraction of
        vertices above 4x the median exceeds the Poisson prediction by
        orders of magnitude."""
        g = barabasi_albert(3_000, 3, philox_stream(5))
        deg = g.degrees()
        med = np.median(deg)
        frac_heavy = (deg > 4 * med).mean()
        assert frac_heavy > 0.01  # a Poisson tail would be ~1e-6 here


class TestRmatFingerprint:
    def test_skewed_vs_er(self):
        """R-MAT(0.45, .22, .22) is visibly more skewed than ER of the same
        size — the property the dense benchmarks rely on."""
        n, m = 2_048, 16_384
        g_rmat = rmat(n, m, philox_stream(6))
        g_er = erdos_renyi(n, m, philox_stream(7))
        assert g_rmat.degrees().std() > 2 * g_er.degrees().std()

    def test_quadrant_bias(self):
        """Low-id vertices accumulate more edges (quadrant a = 0.45)."""
        g = rmat(1_024, 8_192, philox_stream(8))
        deg = g.degrees()
        low = deg[: 256].mean()
        high = deg[768:].mean()
        assert low > 1.5 * high

    def test_uniform_parameters_recover_er_like(self):
        """With a=b=c=d=0.25 the skew disappears."""
        g_uniform = rmat(1_024, 8_192, philox_stream(9), a=0.25, b=0.25, c=0.25)
        g_skewed = rmat(1_024, 8_192, philox_stream(9))
        assert g_uniform.degrees().std() < g_skewed.degrees().std()
