"""Fault injection against real OS processes: crash/drop/work faults at
the transport seam, error context (superstep, trials in flight), and the
zero-shm-leak guarantee after a worker is killed mid-collective."""

import operator
import os
import sys

import numpy as np
import pytest

from tests.conftest import require_mp
from repro.faults import CRASH_EXIT_CODE, FaultSpec
from repro.runtime.errors import WorkerCrashError, WorkerTimeoutError
from repro.runtime.mp import MpBackend
from repro.runtime.sim import SimBackend

needs_dev_shm = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="needs /dev/shm"
)


def two_step_program(ctx, nwords=1):
    """Two collectives (local steps 0 and 1); returns summed payload."""
    data = np.full(nwords, float(ctx.rank + 1))
    total = yield from ctx.comm.allreduce(data, op=operator.add)
    ctx.charge(ops=float(ctx.rank) * 100.0)
    total = yield from ctx.comm.allreduce(total, op=operator.add)
    return float(total[0])


def _shm_entries() -> set:
    return set(os.listdir("/dev/shm"))


class TestCrash:
    def test_crash_error_carries_superstep_and_exitcode(self):
        require_mp()
        backend = MpBackend()
        with pytest.raises(WorkerCrashError) as exc_info:
            backend.run(two_step_program, 2, seed=0,
                        faults=[FaultSpec("crash", rank=1, step=1)])
        err = exc_info.value
        assert err.rank == 1
        assert err.exitcode == CRASH_EXIT_CODE
        assert err.superstep == 1
        assert "superstep 1" in str(err)
        assert f"exit code {CRASH_EXIT_CODE}" in str(err)

    def test_sim_raises_identical_message(self):
        require_mp()
        def msg(backend):
            with pytest.raises(WorkerCrashError) as exc_info:
                backend.run(two_step_program, 2, seed=0,
                            faults=[FaultSpec("crash", rank=1, step=1)])
            return str(exc_info.value)

        assert msg(SimBackend()) == msg(MpBackend())

    @needs_dev_shm
    def test_crash_mid_collective_leaks_no_segments(self):
        require_mp()
        before = _shm_entries()
        backend = MpBackend()
        with pytest.raises(WorkerCrashError):
            # Big payloads force the arena path; the crashing worker dies
            # while its peers are mid-collective holding live slabs.
            backend.run(two_step_program, 3, seed=0,
                        kwargs={"nwords": 1 << 16},
                        faults=[FaultSpec("crash", rank=2, step=1)])
        assert _shm_entries() - before == set()

    @needs_dev_shm
    def test_retry_after_crash_leaks_nothing(self):
        require_mp()
        before = _shm_entries()
        backend = MpBackend()
        with pytest.raises(WorkerCrashError):
            backend.run(two_step_program, 2, seed=0,
                        kwargs={"nwords": 1 << 16},
                        faults=[FaultSpec("crash", rank=0, step=0)])
        res = backend.run(two_step_program, 2, seed=0,
                          kwargs={"nwords": 1 << 16})
        assert res.values[0] == res.values[1] == 6.0
        assert _shm_entries() - before == set()


class TestDrop:
    def test_timeout_error_carries_supersteps(self):
        require_mp()
        backend = MpBackend(timeout=2.0)
        with pytest.raises(WorkerTimeoutError) as exc_info:
            backend.run(two_step_program, 2, seed=0,
                        faults=[FaultSpec("drop", rank=1, step=1)])
        err = exc_info.value
        assert err.missing == [1]
        assert err.supersteps == {1: 1}
        assert "superstep" in str(err)

    def test_sim_drop_is_immediate(self):
        with pytest.raises(WorkerTimeoutError) as exc_info:
            SimBackend().run(two_step_program, 2, seed=0,
                             faults=[FaultSpec("drop", rank=1, step=1)])
        assert exc_info.value.supersteps == {1: 1}


class TestWorkFault:
    def test_counter_parity_sim_vs_mp(self):
        require_mp()
        faults = [FaultSpec("work", rank=0, step=1, ops=12345.0)]

        def tally(backend):
            r = backend.run(two_step_program, 2, seed=0, faults=faults).report
            return (r.computation, r.total_ops, r.volume, r.total_volume,
                    r.wait, r.supersteps)

        assert tally(SimBackend()) == tally(MpBackend())

    def test_work_fault_changes_only_target_rank(self):
        base = SimBackend().run(two_step_program, 2, seed=0)
        res = SimBackend().run(
            two_step_program, 2, seed=0,
            faults=[FaultSpec("work", rank=0, step=1, ops=500.0)])
        assert res.values == base.values
        assert res.report.total_ops == base.report.total_ops + 500.0


class TestSleepFaults:
    def test_stall_preserves_results(self):
        res = SimBackend().run(
            two_step_program, 2, seed=0,
            faults=[FaultSpec("stall", rank=1, step=0, seconds=0.01)])
        assert res.values[0] == 6.0

    def test_delay_preserves_results_mp(self):
        require_mp()
        res = MpBackend().run(
            two_step_program, 2, seed=0,
            faults=[FaultSpec("delay", rank=1, step=0, seconds=0.01)])
        assert res.values[0] == 6.0


class TestNoFaultRegression:
    def test_faults_none_is_default_path(self):
        a = SimBackend().run(two_step_program, 2, seed=0)
        b = SimBackend().run(two_step_program, 2, seed=0, faults=None)
        c = SimBackend().run(two_step_program, 2, seed=0, faults=[])
        assert a.values == b.values == c.values
        assert a.report == b.report == c.report

    def test_faults_for_other_ranks_are_inert(self):
        require_mp()
        res = MpBackend().run(
            two_step_program, 2, seed=0,
            faults=[FaultSpec("crash", rank=7, step=0)])
        assert res.values[0] == 6.0
