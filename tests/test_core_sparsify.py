"""Tests for communication-avoiding sparsification (§3.1, §3.2)."""

import numpy as np
import pytest

from repro.bsp import run_spmd
from repro.core.sparsify import sparsify_unweighted, sparsify_weighted
from repro.graph import EdgeList, erdos_renyi
from repro.rng import philox_stream


def run_weighted(g, p, s, seed=0):
    slices = g.slices(p)

    def prog(ctx):
        sl = slices[ctx.rank]
        out = yield from sparsify_weighted(ctx, ctx.comm, sl.u, sl.v, sl.w, s)
        return out

    return run_spmd(prog, p, seed=seed)


def run_unweighted(g, p, s, seed=0, delta=0.5):
    slices = g.slices(p)

    def prog(ctx):
        sl = slices[ctx.rank]
        out = yield from sparsify_unweighted(
            ctx, ctx.comm, sl.u, sl.v, s, n=g.n, delta=delta
        )
        return out

    return run_spmd(prog, p, seed=seed)


class TestWeightedSparsification:
    def test_sample_size(self):
        g = erdos_renyi(50, 200, philox_stream(0), weighted=True)
        res = run_weighted(g, 4, 64)
        su, sv, sw = res.root_value
        assert su.size == 64
        assert res.values[1] is None

    def test_samples_are_real_edges(self):
        g = erdos_renyi(30, 100, philox_stream(1), weighted=True)
        su, sv, sw = run_weighted(g, 3, 50).root_value
        edges = {(u, v): w for u, v, w in g.as_tuples()}
        for u, v, w in zip(su.tolist(), sv.tolist(), sw.tolist()):
            assert (min(u, v), max(u, v)) in edges

    def test_lemma_3_1_distribution(self):
        """Each sample position is ∝ weight (Lemma 3.1), across processors."""
        g = EdgeList.from_pairs(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 8.0)])
        counts = np.zeros(3)
        for seed in range(40):
            su, sv, _ = run_weighted(g, 3, 50, seed=seed).root_value
            for u, v in zip(su.tolist(), sv.tolist()):
                for i, (a, b, _w) in enumerate(g.as_tuples()):
                    if (min(u, v), max(u, v)) == (a, b):
                        counts[i] += 1
        frac = counts / counts.sum()
        assert abs(frac[2] - 0.8) < 0.03
        assert abs(frac[0] - 0.1) < 0.03

    def test_first_position_uniformity(self):
        """The permutation makes every position identically distributed."""
        g = EdgeList.from_pairs(3, [(0, 1, 1.0), (1, 2, 1.0)])
        first = np.zeros(2)
        for seed in range(200):
            su, sv, _ = run_weighted(g, 2, 4, seed=seed).root_value
            first[0 if (su[0], sv[0]) == (0, 1) else 1] += 1
        assert abs(first[0] / 200 - 0.5) < 0.12

    def test_constant_supersteps(self):
        g = erdos_renyi(100, 500, philox_stream(2), weighted=True)
        for p in (2, 4, 8):
            rep = run_weighted(g, p, 100).report
            assert rep.supersteps <= 4  # gather, scatter, gather (+slack)

    def test_zero_sample(self):
        g = erdos_renyi(20, 50, philox_stream(3))
        su, sv, sw = run_weighted(g, 2, 0).root_value
        assert su.size == 0

    def test_negative_sample_rejected(self):
        g = erdos_renyi(20, 50, philox_stream(3))
        with pytest.raises(ValueError):
            run_weighted(g, 2, -1)

    def test_zero_weight_graph_rejected(self):
        g = EdgeList.empty(5)
        with pytest.raises(ValueError):
            run_weighted(g, 2, 4)

    def test_skewed_distribution_across_procs(self):
        """Slices with zero weight are never asked for samples."""
        # all edges in the first slice; other procs' slices are empty
        g = EdgeList.from_pairs(4, [(0, 1, 1.0), (1, 2, 1.0)])
        su, sv, _ = run_weighted(g, 4, 20).root_value
        assert su.size == 20


class TestUnweightedSparsification:
    def test_small_slices_fully_included(self):
        """Below the Chernoff threshold every local edge is contributed."""
        g = erdos_renyi(30, 60, philox_stream(4))
        su, sv = run_unweighted(g, 3, 60).root_value
        # threshold >> mu here, so the sample is exactly the whole graph
        assert su.size == g.m

    def test_oversampling_large_slices(self):
        g = erdos_renyi(200, 4000, philox_stream(5))
        s = 400
        su, sv = run_unweighted(g, 2, s, delta=0.2).root_value
        # each processor contributes either all its edges or (1+delta)mu
        assert su.size <= g.m
        assert su.size >= s  # oversampled or full inclusion

    def test_samples_are_real_edges(self):
        g = erdos_renyi(40, 150, philox_stream(6))
        su, sv = run_unweighted(g, 4, 80).root_value
        edges = set(zip(g.u.tolist(), g.v.tolist()))
        for u, v in zip(su.tolist(), sv.tolist()):
            assert (min(u, v), max(u, v)) in edges

    def test_empty_graph(self):
        g = EdgeList.empty(10)
        su, sv = run_unweighted(g, 2, 16).root_value
        assert su.size == 0

    def test_constant_supersteps(self):
        g = erdos_renyi(100, 1000, philox_stream(7))
        rep = run_unweighted(g, 8, 200).report
        assert rep.supersteps <= 3  # allreduce + gather

    def test_invalid_delta(self):
        g = erdos_renyi(20, 40, philox_stream(8))
        with pytest.raises(ValueError):
            run_unweighted(g, 2, 10, delta=1.5)

    def test_invalid_s(self):
        g = erdos_renyi(20, 40, philox_stream(8))
        with pytest.raises(ValueError):
            run_unweighted(g, 2, -2)
